//! Quickstart: spin up a simulated cluster, ALLOC a terabyte-scale blob,
//! write fine-grain segments, read versioned snapshots.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use blobseer::{Ctx, Deployment, DeploymentConfig, Segment};

fn main() {
    // The paper's §V topology: 20 storage nodes (each one data provider +
    // one metadata provider), dedicated version-manager and
    // provider-manager nodes, Grid'5000-calibrated link costs.
    let cluster = Deployment::build(DeploymentConfig::grid5000(20));
    let client = cluster.client();
    let mut ctx = Ctx::start();

    // ALLOC: a 1 TB logical blob with 64 KB pages. Storage is allocated
    // on write, so this costs nothing until data arrives.
    let info = client.alloc(&mut ctx, 1 << 40, 64 << 10).unwrap();
    println!(
        "allocated blob {} ({} pages of 64 KiB)",
        info.blob,
        1u64 << 24
    );

    // WRITE: each write patches a segment and publishes a new immutable
    // snapshot version.
    let megabyte = vec![0xABu8; 1 << 20];
    let v1 = client.write(&mut ctx, info.blob, 0, &megabyte).unwrap();
    println!("v{} written: 1 MiB at offset 0", v1);

    let patch = vec![0xCDu8; 128 << 10];
    let v2 = client
        .write(&mut ctx, info.blob, 256 << 10, &patch)
        .unwrap();
    println!("v{} written: 128 KiB at offset 256 KiB", v2);

    // READ: the old snapshot is untouched by the new write.
    let seg = Segment::new(256 << 10, 128 << 10);
    let (old, latest) = client.read(&mut ctx, info.blob, Some(v1), seg).unwrap();
    let (new, _) = client.read(&mut ctx, info.blob, Some(v2), seg).unwrap();
    println!(
        "read back segment {:?}: v1 sees 0x{:02X}.., v2 sees 0x{:02X}.. (latest = {})",
        seg, old[0], new[0], latest
    );
    assert!(old.iter().all(|&b| b == 0xAB));
    assert!(new.iter().all(|&b| b == 0xCD));

    // Reads of never-written space cost no storage and return zeros.
    let far = Segment::new(1 << 39, 64 << 10);
    let (zeros, _) = client.read(&mut ctx, info.blob, None, far).unwrap();
    assert!(zeros.iter().all(|&b| b == 0));
    println!("unwritten space at 512 GiB reads as zeros (allocate-on-write)");

    // The virtual clock shows what this would have cost on the paper's
    // 2008 cluster.
    println!(
        "total virtual time on the simulated Grid'5000 cluster: {}",
        blobseer::util::stats::fmt_ns(ctx.vt)
    );
    println!(
        "cluster carried {} messages / {} payload bytes",
        cluster.cluster.message_count(),
        cluster.cluster.byte_count()
    );
}
