//! Fault tolerance: page + metadata replication keep a deployment serving
//! reads through storage-node failures (the paper's §VI roadmap,
//! implemented).
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use blobseer::{Ctx, Deployment, DeploymentConfig, Segment};

fn main() {
    // 6 storage nodes, 2 replicas of every page, 2 replicas of every
    // metadata tree node.
    let mut cfg = DeploymentConfig::grid5000(6);
    cfg.replication = 2;
    cfg.meta_replication = 2;
    let d = Deployment::build(cfg);
    let client = d.client();
    let mut ctx = Ctx::start();

    let info = client.alloc(&mut ctx, 1 << 30, 64 << 10).unwrap();
    let data: Vec<u8> = (0..(2u64 << 20)).map(|i| (i % 241) as u8).collect();
    client.write(&mut ctx, info.blob, 0, &data).unwrap();
    println!(
        "wrote 2 MiB across {} storage nodes with 2x replication ({} pages stored)",
        d.storage_nodes.len(),
        d.total_pages()
    );

    // Baseline read.
    let seg = Segment::new(0, 2 << 20);
    let (ok, _) = client.read(&mut ctx, info.blob, Some(1), seg).unwrap();
    assert_eq!(ok, data);
    let healthy_vt = ctx.vt;
    println!(
        "healthy read OK ({})",
        blobseer::util::stats::fmt_ns(healthy_vt)
    );

    // Kill each node in turn (revive before the next kill): with 2x
    // replication the system tolerates any *single* concurrent failure,
    // so every read keeps succeeding via the surviving replicas.
    for i in 0..d.storage_nodes.len() {
        d.kill_storage(i);
        let before = ctx.vt;
        let (got, _) = client
            .read(&mut ctx, info.blob, Some(1), seg)
            .expect("replicas must cover a single dead node");
        assert_eq!(got, data);
        println!(
            "killed storage node {} -> read still OK (failover cost {})",
            i,
            blobseer::util::stats::fmt_ns(ctx.vt - before)
        );
        d.revive_storage(i);
    }

    // New writes keep flowing around a failure too: the provider manager
    // routes placement away from dead nodes.
    d.kill_storage(2);
    let v = client.write(&mut ctx, info.blob, 4 << 20, &data).unwrap();
    println!("write under a dead node published as v{v}");
    d.revive_storage(2);

    let (got, latest) = client.read(&mut ctx, info.blob, None, seg).unwrap();
    assert_eq!(got, data);
    println!("after revival: latest = v{latest}, everything readable");

    // Losing MORE nodes than the replication factor tolerates loses data —
    // show the failure is detected loudly, never silent.
    for i in 0..5 {
        d.kill_storage(i);
    }
    match client.read(&mut ctx, info.blob, Some(1), seg) {
        Err(e) => println!("with 5/6 nodes dead the read fails loudly: {e}"),
        Ok(_) => println!("(read survived — every needed replica was on the last node)"),
    }
}
