//! The paper's motivating application end to end: telescopes write sky
//! epochs into a versioned blob while detector clients difference old
//! snapshots to find supernovae.
//!
//! ```sh
//! cargo run --release --example supernovae
//! ```

use blobseer::sky::{
    score, DetectConfig, Detector, LocalBackend, SkyBackend, SkyGeometry, SkyModel, SynthConfig,
    Telescope,
};
use blobseer::LocalEngine;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // An 8x8-tile sky of 128x128-pixel images, 12 monthly epochs,
    // 10 injected supernovae with onsets in the first 5 epochs.
    let geom = SkyGeometry::new(8, 8, 128, 4096);
    let epochs = 12u32;
    let model = SkyModel::new(geom, SynthConfig::default(), 0xa57e0, 10, 5);
    println!(
        "sky: {}x{} tiles of {}x{} px, {} epochs, {} injected transients",
        geom.tiles_x,
        geom.tiles_y,
        geom.tile_px,
        geom.tile_px,
        epochs,
        model.transients.len()
    );
    println!(
        "epoch size: {}",
        blobseer::util::stats::fmt_bytes(geom.epoch_bytes())
    );

    // Embedded concurrent engine (wall-clock run).
    let engine = Arc::new(LocalEngine::new());
    let backend: Arc<dyn SkyBackend> = Arc::new(LocalBackend::new(engine, &geom, epochs));

    // Two telescopes split the sky and write concurrently; a detector
    // scans each published epoch while later epochs are still arriving —
    // the read/write concurrency the paper is about.
    let t0 = Instant::now();
    let half = geom.tiles() / 2;
    std::thread::scope(|s| {
        let model = &model;
        let b1 = Arc::clone(&backend);
        let b2 = Arc::clone(&backend);
        s.spawn(move || {
            let t = Telescope { model, backend: b1 };
            for e in 0..epochs {
                t.capture_epoch_tiles(e, 0, half).unwrap();
            }
        });
        s.spawn(move || {
            let t = Telescope { model, backend: b2 };
            for e in 0..epochs {
                t.capture_epoch_tiles(e, half, geom.tiles() - half).unwrap();
            }
        });
    });
    let ingest = t0.elapsed();
    let total_bytes = geom.epoch_bytes() * epochs as u64;
    println!(
        "ingest: {} in {:.2?} ({:.1} MB/s)",
        blobseer::util::stats::fmt_bytes(total_bytes),
        ingest,
        total_bytes as f64 / 1e6 / ingest.as_secs_f64()
    );

    // Detection: scan every epoch against the epoch-0 template.
    let cfg = DetectConfig::default();
    let detector = Detector {
        geom,
        config: cfg,
        backend: Arc::clone(&backend),
    };
    let t1 = Instant::now();
    let mut candidates = Vec::new();
    for e in 1..epochs {
        candidates.extend(detector.scan_epoch(None, e).unwrap());
    }
    let scan = t1.elapsed();
    let report = score(&model, &cfg, candidates);
    println!(
        "detection: {} candidates, {} light curves, {} classified supernovae in {:.2?}",
        report.candidates.len(),
        report.curves.len(),
        report.supernovae.len(),
        scan
    );
    println!(
        "ground truth: {} recovered / {} missed (recall {:.0}%), {} false positives",
        report.recovered,
        report.missed,
        report.recall() * 100.0,
        report.false_positives
    );
    for (i, sn) in report.supernovae.iter().enumerate() {
        println!(
            "  SN {}: tile ({},{}) at ({:.1},{:.1}), {} epochs observed",
            i,
            sn.tx,
            sn.ty,
            sn.x,
            sn.y,
            sn.samples.len()
        );
    }
}
