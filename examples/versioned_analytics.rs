//! Versioned analytics: many analysts pin different snapshots of a live
//! dataset and all read at full speed while a writer keeps publishing —
//! the databases / data-mining use case of the paper's §I, and a direct
//! demonstration of read/read + read/write concurrency.
//!
//! ```sh
//! cargo run --release --example versioned_analytics
//! ```

use blobseer::{LocalEngine, Segment};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

const PAGE: u64 = 16 << 10;
const PAGES: u64 = 512;
const TOTAL: u64 = PAGE * PAGES; // 8 MiB dataset

fn main() {
    let engine = Arc::new(LocalEngine::new());
    let blob = engine.alloc(TOTAL, PAGE).unwrap();

    // Ingest the base dataset: 8 MiB of "records" (version 1).
    let base: Vec<u8> = (0..TOTAL).map(|i| (i % 251) as u8).collect();
    engine.write(blob, 0, &base).unwrap();
    println!("base dataset ingested as version 1 ({} pages)", PAGES);

    let stop = Arc::new(AtomicBool::new(false));
    let updates = Arc::new(AtomicU64::new(0));

    // A writer continuously patches random pages (new versions).
    let writer = {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        let updates = Arc::clone(&updates);
        std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let off = (i * 37 % PAGES) * PAGE;
                let fill = vec![(i % 250) as u8 + 1; PAGE as usize];
                engine.write(blob, off, &fill).unwrap();
                updates.fetch_add(1, Ordering::Relaxed);
                i += 1;
            }
        })
    };

    // Analysts: each pins version 1 and computes a full-scan checksum
    // repeatedly. Because snapshots are immutable, every scan of v1 must
    // produce the identical answer no matter how fast the writer runs.
    let t0 = Instant::now();
    let analysts: Vec<_> = (0..4)
        .map(|id| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let mut scans = 0u64;
                let mut checksum0 = None;
                for _ in 0..30 {
                    let (buf, _) = engine.read(blob, Some(1), Segment::new(0, TOTAL)).unwrap();
                    let sum: u64 = buf.iter().map(|&b| b as u64).sum();
                    match checksum0 {
                        None => checksum0 = Some(sum),
                        Some(c) => assert_eq!(c, sum, "analyst {id}: snapshot must be stable"),
                    }
                    scans += 1;
                }
                (scans, checksum0.unwrap())
            })
        })
        .collect();

    let mut total_scans = 0;
    let mut checksums = Vec::new();
    for a in analysts {
        let (scans, sum) = a.join().unwrap();
        total_scans += scans;
        checksums.push(sum);
    }
    let elapsed = t0.elapsed();
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();

    assert!(checksums.windows(2).all(|w| w[0] == w[1]));
    let scanned = total_scans * TOTAL;
    println!(
        "4 analysts scanned v1 {} times ({}) in {:.2?} — {:.0} MB/s aggregate",
        total_scans,
        blobseer::util::stats::fmt_bytes(scanned),
        elapsed,
        scanned as f64 / 1e6 / elapsed.as_secs_f64()
    );
    println!(
        "writer published {} new versions concurrently (latest = {})",
        updates.load(Ordering::Relaxed),
        engine.latest(blob).unwrap()
    );

    // Time travel: compare the base snapshot with the live head.
    let (v1_page, _) = engine.read(blob, Some(1), Segment::new(0, PAGE)).unwrap();
    let (head_page, latest) = engine.read(blob, None, Segment::new(0, PAGE)).unwrap();
    println!(
        "page 0 at v1 starts with {:?}, at v{} with {:?}",
        &v1_page[..4],
        latest,
        &head_page[..4]
    );

    // Retention: collect everything older than the last 10 versions.
    let keep_from = engine.latest(blob).unwrap().saturating_sub(10).max(1);
    let (nodes, pages) = engine.gc(blob, keep_from).unwrap();
    println!(
        "GC (keep >= v{keep_from}): reclaimed {nodes} tree nodes and {pages} pages; \
         store now holds {} pages",
        engine.page_count()
    );
}
