//! Workspace-level integration tests: every crate exercised together
//! through the public facade, the way a downstream user would.

use blobseer::sky::{
    score, DetectConfig, Detector, SimBackend, SkyBackend, SkyGeometry, SkyModel, SynthConfig,
    Telescope,
};
use blobseer::{
    AggregationPolicy, BlobError, Ctx, Deployment, DeploymentConfig, LocalEngine, ReferenceStore,
    Segment,
};
use std::sync::Arc;

const PAGE: u64 = 4096;
const TOTAL: u64 = PAGE * 64;

#[test]
fn facade_quickstart_compiles_and_runs() {
    let d = Deployment::build(DeploymentConfig::functional(3));
    let client = d.client();
    let mut ctx = Ctx::start();
    let blob = client.alloc(&mut ctx, TOTAL, PAGE).unwrap().blob;
    let v = client
        .write(&mut ctx, blob, 0, &vec![1u8; PAGE as usize])
        .unwrap();
    let (data, latest) = client
        .read(&mut ctx, blob, Some(v), Segment::new(0, PAGE))
        .unwrap();
    assert_eq!((v, latest), (1, 1));
    assert!(data.iter().all(|&b| b == 1));
}

#[test]
fn distributed_engine_agrees_with_embedded_and_reference() {
    // Three implementations of the same semantics must agree bit-for-bit:
    // the distributed deployment, the embedded concurrent engine, and the
    // single-threaded reference store.
    let d = Deployment::build(DeploymentConfig::functional(4));
    let dist = d.client();
    let mut ctx = Ctx::start();
    let blob = dist.alloc(&mut ctx, TOTAL, PAGE).unwrap().blob;

    let local = LocalEngine::new();
    let lblob = local.alloc(TOTAL, PAGE).unwrap();

    let geom = blobseer::Geometry::new(TOTAL, PAGE).unwrap();
    let mut oracle = ReferenceStore::new(geom);

    let writes: Vec<(u64, u64, u8)> = vec![
        (0, 4, 11),
        (8, 8, 22),
        (4, 2, 33),
        (0, 1, 44),
        (60, 4, 55),
        (30, 10, 66),
    ];
    for (page, len, fill) in writes {
        let seg = Segment::new(page * PAGE, len * PAGE);
        let data = vec![fill; seg.size as usize];
        let v1 = dist.write(&mut ctx, blob, seg.offset, &data).unwrap();
        let v2 = local.write(lblob, seg.offset, &data).unwrap();
        let v3 = oracle.write(seg, &data).unwrap();
        assert_eq!(v1, v2);
        assert_eq!(v2, v3);
    }
    for v in 0..=oracle.latest() {
        let want = oracle.read(v, Segment::new(0, TOTAL)).unwrap();
        let (got_d, _) = dist
            .read(&mut ctx, blob, Some(v), Segment::new(0, TOTAL))
            .unwrap();
        let (got_l, _) = local.read(lblob, Some(v), Segment::new(0, TOTAL)).unwrap();
        assert_eq!(got_d, want, "distributed v{v}");
        assert_eq!(got_l, want, "embedded v{v}");
    }
}

#[test]
fn snapshot_isolation_under_interleaved_writers_and_gc() {
    let d = Deployment::build(DeploymentConfig::functional(4));
    let c = d.client();
    let mut ctx = Ctx::start();
    let blob = c.alloc(&mut ctx, TOTAL, PAGE).unwrap().blob;

    // Build 10 versions; remember version 5's full content.
    let mut v5_content = Vec::new();
    let mut model = vec![0u8; TOTAL as usize];
    for i in 1..=10u64 {
        let off = ((i * 7) % 32) * PAGE;
        let data = vec![i as u8; (2 * PAGE) as usize];
        c.write(&mut ctx, blob, off, &data).unwrap();
        model[off as usize..off as usize + data.len()].copy_from_slice(&data);
        if i == 5 {
            v5_content = model.clone();
        }
    }
    let (got, _) = c
        .read(&mut ctx, blob, Some(5), Segment::new(0, TOTAL))
        .unwrap();
    assert_eq!(got, v5_content);

    // GC keeping >= 5; version 5 must still read exactly the same.
    c.gc(&mut ctx, blob, 5).unwrap();
    let (got, _) = c
        .read(&mut ctx, blob, Some(5), Segment::new(0, TOTAL))
        .unwrap();
    assert_eq!(got, v5_content, "GC must not disturb kept snapshots");
    // Collected versions fail loudly, not silently.
    assert!(matches!(
        c.read(&mut ctx, blob, Some(2), Segment::new(0, TOTAL)),
        Err(BlobError::MissingMetadata { .. }) | Err(BlobError::MissingPage { .. }) | Ok(_)
    ));
}

#[test]
fn costed_deployment_behaves_like_functional() {
    // The Grid'5000-calibrated deployment must be functionally identical
    // to the zero-cost one (costs shape time, never results).
    let d = Deployment::build(DeploymentConfig::grid5000(5));
    let c = d.client();
    let mut ctx = Ctx::start();
    let blob = c.alloc(&mut ctx, TOTAL, PAGE).unwrap().blob;
    let data: Vec<u8> = (0..TOTAL / 2).map(|i| (i % 253) as u8).collect();
    c.write(&mut ctx, blob, 0, &data).unwrap();
    let (got, _) = c
        .read(&mut ctx, blob, None, Segment::new(0, TOTAL / 2))
        .unwrap();
    assert_eq!(got, data);
    assert!(ctx.vt > 0, "costed transport must consume virtual time");
}

#[test]
fn aggregation_policies_are_functionally_identical() {
    let mut results = Vec::new();
    for policy in [AggregationPolicy::Batch, AggregationPolicy::PerCall] {
        let mut cfg = DeploymentConfig::functional(4);
        cfg.aggregation = policy;
        let d = Deployment::build(cfg);
        let c = d.client();
        let mut ctx = Ctx::start();
        let blob = c.alloc(&mut ctx, TOTAL, PAGE).unwrap().blob;
        c.write(&mut ctx, blob, 0, &vec![9u8; (8 * PAGE) as usize])
            .unwrap();
        c.write(&mut ctx, blob, 4 * PAGE, &vec![7u8; (8 * PAGE) as usize])
            .unwrap();
        let (got, _) = c
            .read(&mut ctx, blob, None, Segment::new(0, 16 * PAGE))
            .unwrap();
        results.push(got);
    }
    assert_eq!(results[0], results[1]);
}

#[test]
fn replicated_survey_survives_node_loss() {
    // The application keeps detecting through a storage-node failure when
    // replication is on — sky pipeline + fault injection + failover.
    let mut cfg = DeploymentConfig::functional(5);
    cfg.replication = 2;
    cfg.meta_replication = 2;
    let d = Arc::new(Deployment::build(cfg));

    let geom = SkyGeometry::new(2, 2, 64, 4096);
    let epochs = 8u32;
    let model = SkyModel::new(geom, SynthConfig::default(), 42, 2, 3);

    let setup = d.client();
    let mut sctx = Ctx::start();
    let blob = setup
        .alloc(&mut sctx, geom.blob_size(epochs), geom.page_size)
        .unwrap()
        .blob;

    let backend: Arc<dyn SkyBackend> = Arc::new(SimBackend::new(d.client(), blob));
    let telescope = Telescope {
        model: &model,
        backend: Arc::clone(&backend),
    };
    for e in 0..epochs {
        telescope.capture_epoch(e).unwrap();
    }

    // Kill a storage node mid-survey.
    d.kill_storage(1);

    let cfg_det = DetectConfig::default();
    let detector = Detector {
        geom,
        config: cfg_det,
        backend: Arc::clone(&backend),
    };
    let mut candidates = Vec::new();
    for e in 1..epochs {
        candidates.extend(
            detector
                .scan_epoch(None, e)
                .expect("replicas must cover the loss"),
        );
    }
    let report = score(&model, &cfg_det, candidates);
    assert!(
        report.recall() > 0.4,
        "detection still works: {:?}",
        report.recall()
    );
    assert_eq!(report.false_positives, 0);
}

#[test]
fn many_threads_one_deployment_stress() {
    let d = Arc::new(Deployment::build(DeploymentConfig::functional(6)));
    let setup = d.client();
    let mut ctx = Ctx::start();
    let blob = setup.alloc(&mut ctx, TOTAL, PAGE).unwrap().blob;
    setup
        .write(&mut ctx, blob, 0, &vec![1u8; TOTAL as usize])
        .unwrap();

    let threads: Vec<_> = (0..6)
        .map(|t| {
            let d = Arc::clone(&d);
            std::thread::spawn(move || {
                let c = d.client();
                let mut ctx = Ctx::start();
                for i in 0..20u64 {
                    if t % 2 == 0 {
                        let off = ((t as u64 * 20 + i) % 60) * PAGE;
                        c.write(&mut ctx, blob, off, &vec![t as u8 + 2; PAGE as usize])
                            .unwrap();
                    } else {
                        // Version 1 is immutable.
                        let (buf, _) = c
                            .read(&mut ctx, blob, Some(1), Segment::new(0, TOTAL))
                            .unwrap();
                        assert!(buf.iter().all(|&b| b == 1));
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    // 3 writer threads x 20 writes each, all published.
    let mut ctx2 = Ctx::start();
    assert_eq!(setup.latest(&mut ctx2, blob).unwrap(), 1 + 60);
}
