//! Copy-accounting parity between the in-process transport and the real
//! TCP transport: the payload leg must meter the **same byte counts**
//! over a socket as it does in process — send side gather-writes with
//! zero flatten copies, receive side lends payloads out of the receive
//! buffer by refcount. Plus the negative control: the flatten-write
//! ablation reintroduces one body copy per frame and the meter shows it.
//!
//! Lives in its own test binary because TCP dispatch happens on server
//! worker threads, so the measurements use the process-global copy
//! meters (thread-local meters, which `zero_copy.rs` uses for the
//! inline-dispatch transports, cannot see the worker side).

use blobseer_core::{Deployment, DeploymentConfig, TransportKind};
use blobseer_proto::Segment;
use blobseer_rpc::Ctx;
use blobseer_util::copymeter;

const PAGE: u64 = 4096;
const PAGES: u64 = 16;
const TOTAL: u64 = PAGE * PAGES;
const SEG: u64 = 8 * PAGE;

/// Run the canonical write / read / aligned-read_buf workload on the
/// given transport and return the global bytes-copied of each leg.
fn measure(kind: TransportKind) -> (u64, u64, u64) {
    let mut cfg = DeploymentConfig::functional(4);
    cfg.transport = kind;
    cfg.replication = 2; // replica fan-out shares one buffer on both paths
    let d = Deployment::build(cfg);
    let c = d.client();
    let mut ctx = Ctx::start();
    let info = c.alloc(&mut ctx, TOTAL, PAGE).unwrap();

    let data: Vec<u8> = (0..SEG).map(|i| (i % 251) as u8).collect();
    let before = copymeter::snapshot();
    c.write(&mut ctx, info.blob, 0, &data).unwrap();
    let write_copied = before.bytes_since();

    let mut out = vec![0u8; SEG as usize];
    let before = copymeter::snapshot();
    c.read_into(&mut ctx, info.blob, Some(1), Segment::new(0, SEG), &mut out)
        .unwrap();
    let read_copied = before.bytes_since();
    assert_eq!(out, data);

    let before = copymeter::snapshot();
    let (page, _) = c
        .read_buf(&mut ctx, info.blob, Some(1), Segment::new(0, PAGE))
        .unwrap();
    let read_buf_copied = before.bytes_since();
    assert_eq!(&page[..], &data[..PAGE as usize]);

    (write_copied, read_copied, read_buf_copied)
}

#[test]
fn tcp_payload_leg_meters_identically_to_in_process() {
    // Single test function: the global meter must not see traffic from
    // sibling tests, so this binary holds exactly one.
    let _shared = blobseer_util::testsync::ablation_shared();

    let (sim_w, sim_r, sim_rb) = measure(TransportKind::Sim);
    let (tcp_w, tcp_r, tcp_rb) = measure(TransportKind::Tcp);

    assert_eq!(
        (tcp_w, tcp_r, tcp_rb),
        (sim_w, sim_r, sim_rb),
        "the payload leg must copy the same byte counts over a socket \
         (sim: w={sim_w} r={sim_r} rb={sim_rb})"
    );
    assert_eq!(
        tcp_w, SEG,
        "a write copies the caller's buffer exactly once; gather-write \
         adds zero flatten copies"
    );
    assert_eq!(tcp_r, SEG, "a read copies each page exactly once");
    assert_eq!(
        tcp_rb, 0,
        "an aligned single-page read_buf is zero-copy: the page is lent \
         from the receive buffer"
    );

    // Negative control: the flatten-write ablation copies every body it
    // sends — the meter must catch the regression it models.
    let mut cfg = DeploymentConfig::functional_tcp(4);
    cfg.replication = 2;
    let d = Deployment::build(cfg);
    // lint: allow(unguarded-ablation) — per-transport toggle on a deployment
    // owned by this test; no process-global state to restore
    d.cluster.tcp().unwrap().set_gather_write(false);
    let c = d.client();
    let mut ctx = Ctx::start();
    let info = c.alloc(&mut ctx, TOTAL, PAGE).unwrap();
    let data: Vec<u8> = (0..SEG).map(|i| (i % 251) as u8).collect();
    let before = copymeter::snapshot();
    c.write(&mut ctx, info.blob, 0, &data).unwrap();
    assert!(
        before.bytes_since() >= 2 * SEG,
        "flatten ablation must add at least one body copy per written \
         segment: copied {} for a {} byte segment",
        before.bytes_since(),
        SEG
    );
}
