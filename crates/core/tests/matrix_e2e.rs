//! The transport × backend conformance matrix: the same end-to-end
//! scenarios must pass on every `{Sim, Tcp} × {Memory, Mmap}` pairing —
//! frames either dispatch in-process or cross a real socket, pages
//! either live on the heap or in an append-only mapped page log, and
//! none of it may change observable semantics.
//!
//! The pairing is selected by environment (`BLOBSEER_TRANSPORT` =
//! `sim`|`tcp`, `BLOBSEER_BACKEND` = `memory`|`mmap`; defaults
//! `sim`/`memory`), which is how CI fans the binary out over all four
//! cells without four copies of the suite.

use blobseer_core::{BackendKind, Deployment, DeploymentConfig, TransportKind};
use blobseer_meta::ReferenceStore;
use blobseer_proto::Segment;
use blobseer_rpc::Ctx;
use blobseer_util::rng::rng_for;
use rand::Rng;

const PAGE: u64 = 1024;
const PAGES: u64 = 32;
const TOTAL: u64 = PAGE * PAGES;

fn seg(o: u64, s: u64) -> Segment {
    Segment::new(o, s)
}

fn matrix_cell() -> (TransportKind, BackendKind) {
    let transport = match std::env::var("BLOBSEER_TRANSPORT").as_deref() {
        Ok("tcp") => TransportKind::Tcp,
        Ok("sim") | Err(_) => TransportKind::Sim,
        Ok(other) => panic!("unknown BLOBSEER_TRANSPORT {other:?} (want sim|tcp)"),
    };
    let backend = match std::env::var("BLOBSEER_BACKEND").as_deref() {
        Ok("mmap") => BackendKind::Mmap,
        Ok("memory") | Err(_) => BackendKind::Memory,
        Ok(other) => panic!("unknown BLOBSEER_BACKEND {other:?} (want memory|mmap)"),
    };
    (transport, backend)
}

fn cfg(providers: usize) -> DeploymentConfig {
    let (transport, backend) = matrix_cell();
    DeploymentConfig::functional(providers)
        .tune()
        .transport(transport)
        .backend(backend)
        .build()
}

#[test]
fn alloc_write_read_roundtrip() {
    let d = Deployment::build(cfg(4));
    let c = d.client();
    let mut ctx = Ctx::start();
    let info = c.alloc(&mut ctx, TOTAL, PAGE).unwrap();
    assert_eq!(info.latest, 0);

    let data: Vec<u8> = (0..2 * PAGE).map(|i| (i % 251) as u8).collect();
    let v = c.write(&mut ctx, info.blob, PAGE, &data).unwrap();
    assert_eq!(v, 1);

    let (got, latest) = c
        .read(&mut ctx, info.blob, Some(1), seg(PAGE, 2 * PAGE))
        .unwrap();
    assert_eq!(latest, 1);
    assert_eq!(got, data);

    // Unwritten space reads as zeros (allocate-on-write).
    let (z, _) = c
        .read(&mut ctx, info.blob, Some(1), seg(4 * PAGE, PAGE))
        .unwrap();
    assert!(z.iter().all(|&b| b == 0));

    // Data and metadata really are distributed, on the right backend.
    assert_eq!(d.total_pages(), 2);
    assert!(d.total_tree_nodes() > 0);
    let (_, backend) = matrix_cell();
    assert!(d.storage.iter().all(|s| s.data().backend_kind() == backend));
}

#[test]
fn matches_reference_store_on_random_workload() {
    let d = Deployment::build(cfg(5));
    let c = d.client();
    let mut ctx = Ctx::start();
    let info = c.alloc(&mut ctx, TOTAL, PAGE).unwrap();
    let geom = info.geometry();
    let mut oracle = ReferenceStore::new(geom);
    let mut rng = rng_for(2025, 4);

    for i in 0..20u64 {
        let start = rng.gen_range(0..PAGES);
        let len = rng.gen_range(1..=(PAGES - start).min(6));
        let s = seg(start * PAGE, len * PAGE);
        let data: Vec<u8> = (0..s.size)
            .map(|j| (i as u8).wrapping_mul(43).wrapping_add(j as u8))
            .collect();
        let v1 = c.write(&mut ctx, info.blob, s.offset, &data).unwrap();
        let v2 = oracle.write(s, &data).unwrap();
        assert_eq!(v1, v2);
    }

    for v in 0..=oracle.latest() {
        let (got, _) = c.read(&mut ctx, info.blob, Some(v), seg(0, TOTAL)).unwrap();
        assert_eq!(got, oracle.read(v, seg(0, TOTAL)).unwrap(), "version {v}");
    }
    for _ in 0..25 {
        let v = rng.gen_range(0..=oracle.latest());
        let off = rng.gen_range(0..TOTAL - 1);
        let len = rng.gen_range(1..=(TOTAL - off).min(5000));
        let s = seg(off, len);
        let (got, _) = c.read(&mut ctx, info.blob, Some(v), s).unwrap();
        assert_eq!(got, oracle.read(v, s).unwrap(), "v{v} {s:?}");
    }
}

#[test]
fn page_replication_survives_provider_death() {
    let mut config = cfg(4);
    config.replication = 2;
    config.meta_replication = 2;
    let d = Deployment::build(config);
    let c = d.client();
    let mut ctx = Ctx::start();
    let info = c.alloc(&mut ctx, TOTAL, PAGE).unwrap();
    let data: Vec<u8> = (0..TOTAL).map(|i| (i % 199) as u8).collect();
    c.write(&mut ctx, info.blob, 0, &data).unwrap();

    // Kill each storage node in turn; the client must fail over to the
    // surviving replica.
    for i in 0..4 {
        d.kill_storage(i);
        let (got, _) = c.read(&mut ctx, info.blob, Some(1), seg(0, TOTAL)).unwrap();
        assert_eq!(got, data, "after killing storage node {i}");
        d.revive_storage(i);
    }
}

#[test]
fn concurrent_writers_serialize_into_dense_versions() {
    let d = std::sync::Arc::new(Deployment::build(cfg(4)));
    let setup = d.client();
    let mut ctx = Ctx::start();
    let info = setup.alloc(&mut ctx, TOTAL, PAGE).unwrap();
    let blob = info.blob;

    let writers = 4;
    let per = 6;
    let handles: Vec<_> = (0..writers)
        .map(|t| {
            let d = std::sync::Arc::clone(&d);
            std::thread::spawn(move || {
                let c = d.client();
                let mut ctx = Ctx::start();
                let mut rng = rng_for(99, t as u64);
                let mut produced = Vec::new();
                for _ in 0..per {
                    let start = rng.gen_range(0..PAGES);
                    let len = rng.gen_range(1..=(PAGES - start).min(4));
                    let s = seg(start * PAGE, len * PAGE);
                    let fill: u8 = rng.gen();
                    let data: Vec<u8> = (0..s.size).map(|j| fill.wrapping_add(j as u8)).collect();
                    let v = c.write(&mut ctx, blob, s.offset, &data).unwrap();
                    produced.push((v, s, fill));
                }
                produced
            })
        })
        .collect();

    let mut all: Vec<(u64, Segment, u8)> = Vec::new();
    for h in handles {
        all.extend(h.join().unwrap());
    }
    all.sort_by_key(|(v, _, _)| *v);
    for (i, (v, _, _)) in all.iter().enumerate() {
        assert_eq!(*v, i as u64 + 1, "dense unique versions");
    }

    // Global serializability: each version equals prefix application.
    let reader = d.client();
    let mut rctx = Ctx::start();
    let mut model = vec![0u8; TOTAL as usize];
    for (v, s, fill) in &all {
        let data: Vec<u8> = (0..s.size).map(|j| fill.wrapping_add(j as u8)).collect();
        model[s.offset as usize..s.end() as usize].copy_from_slice(&data);
        let (got, _) = reader
            .read(&mut rctx, blob, Some(*v), seg(0, TOTAL))
            .unwrap();
        assert_eq!(got, model, "version {v}");
    }
}

#[test]
fn shared_metadata_cache_is_prewarmed_by_writers() {
    let mut config = cfg(3);
    config.cache_nodes = 1 << 12;
    let d = Deployment::build(config);
    let c = d.client();
    let mut ctx = Ctx::start();
    let info = c.alloc(&mut ctx, TOTAL, PAGE).unwrap();
    let data = vec![5u8; TOTAL as usize];
    c.write(&mut ctx, info.blob, 0, &data).unwrap();

    // A fresh client reads through the cache the writer warmed.
    let c2 = d.client();
    let (_, m0) = c2.cache_stats().unwrap();
    let (r, _) = c2
        .read(&mut ctx, info.blob, Some(1), seg(0, TOTAL))
        .unwrap();
    let (_, m1) = c2.cache_stats().unwrap();
    assert_eq!(m1, m0, "shared cache is pre-warmed by the writer");
    assert_eq!(r, data);
}

#[test]
fn compaction_reclaims_dead_log_space() {
    // The PR 5 scenario cell: write several versions, drop the old ones
    // (half the pages become dead), compact every provider, restart,
    // and verify the surviving version byte-for-byte. On the memory
    // cells compaction must be the documented no-op (removes free
    // eagerly; there is nothing to rewrite); on the mmap cells it must
    // reclaim at least 90% of the dead bytes and hand back a smaller
    // generation.
    let (_, backend) = matrix_cell();
    let d = Deployment::build(cfg(3));
    let c = d.client();
    let mut ctx = Ctx::start();
    let info = c.alloc(&mut ctx, TOTAL, PAGE).unwrap();
    for round in 0..4u8 {
        c.write(&mut ctx, info.blob, 0, &vec![round; TOTAL as usize])
            .unwrap();
    }
    // Drop versions 1–3: three quarters of all pages become dead.
    let (_, pages) = c.gc(&mut ctx, info.blob, 4).unwrap();
    assert!(pages > 0, "gc dropped the superseded versions' pages");

    for i in 0..3 {
        let before = d.storage[i].data().stats();
        let report = d.compact_storage(i).unwrap();
        let after = d.storage[i].data().stats();
        match backend {
            BackendKind::Memory => {
                assert!(report.is_none(), "memory backend has nothing to compact");
                assert_eq!(after, before, "compaction is a no-op on the heap");
                assert_eq!(after.dead_bytes, 0);
                assert_eq!(after.mapped_bytes, 0);
            }
            BackendKind::Mmap => {
                let r = report.expect("mmap backend compacts");
                assert!(before.dead_bytes > 0, "gc left dead log bytes");
                assert!(
                    r.reclaimed_bytes as f64 >= 0.9 * before.dead_bytes as f64,
                    "provider {i}: reclaimed {} of {} dead bytes",
                    r.reclaimed_bytes,
                    before.dead_bytes
                );
                assert_eq!(after.dead_bytes, 0, "fresh generation starts clean");
                assert_eq!(after.mapped_bytes, r.new_log_bytes);
                assert!(
                    after.mapped_bytes < before.mapped_bytes,
                    "the log actually shrank"
                );
                assert_eq!(
                    after.reserved_bytes(),
                    r.new_log_bytes,
                    "capacity accounting follows the surviving generation only"
                );
            }
        }
    }

    // The surviving version still reads back intact after the swap.
    let (got, _) = c.read(&mut ctx, info.blob, Some(4), seg(0, TOTAL)).unwrap();
    assert!(got.iter().all(|&b| b == 3));

    if backend == BackendKind::Mmap {
        // Restart every provider on its compacted generation: replay
        // must re-serve the live version and only the live version.
        for i in 0..3 {
            d.kill_storage(i);
            d.restart_storage(i);
        }
        let (got, _) = c.read(&mut ctx, info.blob, Some(4), seg(0, TOTAL)).unwrap();
        assert!(
            got.iter().all(|&b| b == 3),
            "survivor byte-identical after restart on the compacted log"
        );
        assert!(
            c.read(&mut ctx, info.blob, Some(1), seg(0, TOTAL)).is_err(),
            "collected versions stay collected across the restart"
        );
    }
}

#[test]
fn gc_reclaims_dead_versions() {
    let d = Deployment::build(cfg(3));
    let c = d.client();
    let mut ctx = Ctx::start();
    let info = c.alloc(&mut ctx, TOTAL, PAGE).unwrap();
    for round in 0..4u8 {
        c.write(&mut ctx, info.blob, 0, &vec![round; (4 * PAGE) as usize])
            .unwrap();
    }
    let pages_before = d.total_pages();
    let (nodes, pages) = c.gc(&mut ctx, info.blob, 4).unwrap();
    assert!(nodes > 0 && pages > 0, "gc reclaimed something");
    assert!(d.total_pages() < pages_before, "index entries dropped");
    // The surviving version still reads back intact.
    let (got, _) = c
        .read(&mut ctx, info.blob, Some(4), seg(0, 4 * PAGE))
        .unwrap();
    assert!(got.iter().all(|&b| b == 3));
    let res = c.read(&mut ctx, info.blob, Some(1), seg(0, 4 * PAGE));
    assert!(res.is_err(), "collected version is unreadable");
}

#[test]
fn cluster_restart_recovers_acknowledged_writes() {
    // The PR 7 scenario cell: several versions from several clients,
    // then a whole-cluster cold restart — data providers, metadata
    // providers, version manager and provider manager all killed and
    // reopened from their durable directories. On the mmap cells every
    // acknowledged write must come back byte-identical at its version
    // and the post-restart cluster must keep working (including fresh
    // writes, which must not recycle replayed write ids). On the memory
    // cells the restart is the documented negative control: the cluster
    // comes back empty, reads fail with a typed error — never a hang or
    // panic — and the cluster is immediately usable again.
    let (_, backend) = matrix_cell();
    let mut d = Deployment::build(cfg(3));
    let c = d.client();
    let mut ctx = Ctx::start();
    let info = c.alloc(&mut ctx, TOTAL, PAGE).unwrap();
    let geom = info.geometry();
    let mut oracle = ReferenceStore::new(geom);
    let mut rng = rng_for(7, 7);
    for i in 0..8u64 {
        let start = rng.gen_range(0..PAGES);
        let len = rng.gen_range(1..=(PAGES - start).min(5));
        let s = seg(start * PAGE, len * PAGE);
        let data: Vec<u8> = (0..s.size)
            .map(|j| (i as u8).wrapping_mul(37).wrapping_add(j as u8))
            .collect();
        let v1 = c.write(&mut ctx, info.blob, s.offset, &data).unwrap();
        assert_eq!(v1, oracle.write(s, &data).unwrap());
    }

    d.restart_cluster().unwrap();
    // Clients spawned before the restart keep working: node identities
    // and listeners survive, only the services' state was reopened.
    match backend {
        BackendKind::Mmap => {
            for v in 0..=oracle.latest() {
                let (got, latest) = c.read(&mut ctx, info.blob, Some(v), seg(0, TOTAL)).unwrap();
                assert_eq!(latest, oracle.latest(), "latest survives the restart");
                assert_eq!(got, oracle.read(v, seg(0, TOTAL)).unwrap(), "version {v}");
            }
            // Restarting twice is identical to restarting once.
            d.restart_cluster().unwrap();
            let (got, latest) = c.read(&mut ctx, info.blob, None, seg(0, TOTAL)).unwrap();
            assert_eq!(latest, oracle.latest());
            assert_eq!(got, oracle.read(oracle.latest(), seg(0, TOTAL)).unwrap());
            // The recovered cluster accepts new writes on dense versions
            // and reads them back.
            let data = vec![0xABu8; PAGE as usize];
            let v = c.write(&mut ctx, info.blob, 0, &data).unwrap();
            assert_eq!(v, oracle.latest() + 1);
            let (got, _) = c.read(&mut ctx, info.blob, Some(v), seg(0, PAGE)).unwrap();
            assert_eq!(got, data);
            // ...without corrupting any recovered version underneath.
            let (got, _) = c
                .read(&mut ctx, info.blob, Some(oracle.latest()), seg(0, TOTAL))
                .unwrap();
            assert_eq!(got, oracle.read(oracle.latest(), seg(0, TOTAL)).unwrap());
        }
        BackendKind::Memory => {
            // Negative control: nothing was durable, so nothing is
            // served — as a clean typed error, not a hang or panic.
            let err = c
                .read(&mut ctx, info.blob, Some(1), seg(0, PAGE))
                .unwrap_err();
            assert!(
                matches!(err, blobseer_proto::BlobError::UnknownBlob(_)),
                "got {err:?}"
            );
            // The emptied cluster is immediately usable again.
            let info2 = c.alloc(&mut ctx, TOTAL, PAGE).unwrap();
            let data = vec![9u8; PAGE as usize];
            assert_eq!(c.write(&mut ctx, info2.blob, 0, &data).unwrap(), 1);
            let (got, _) = c.read(&mut ctx, info2.blob, Some(1), seg(0, PAGE)).unwrap();
            assert_eq!(got, data);
        }
    }
}
