//! End-to-end tests for the PR 9 client-side contracts, over a real
//! deployment:
//!
//! * hot-page read fan-out — repeated reads of one page promote it onto
//!   extra providers, reads stay byte-correct, and the replica cap
//!   holds;
//! * retry semantics — idempotent reads ride out an outage under a
//!   [`RetryPolicy`]; the non-idempotent version-publish legs of a
//!   write never retry, whatever policy is set;
//! * [`ReadOptions`] behavior — version pins and the `deadline_ms`
//!   retry budget.

use blobseer_core::{Deployment, DeploymentConfig, FanOutOptions, ReadOptions, WriteOptions};
use blobseer_proto::{BlobError, Segment};
use blobseer_rpc::{Ctx, RetryPolicy};
use std::time::{Duration, Instant};

const PAGE: u64 = 1024;
const TOTAL: u64 = PAGE * 16;

fn seg(o: u64, s: u64) -> Segment {
    Segment::new(o, s)
}

/// A policy whose first backoff is far longer than any test below is
/// willing to wait — retrying under it is detectable from the clock.
fn glacial() -> RetryPolicy {
    RetryPolicy {
        base_backoff: Duration::from_secs(60),
        max_backoff: Duration::from_secs(60),
        ..RetryPolicy::default()
    }
}

#[test]
fn hot_reads_promote_the_page_and_stay_correct() {
    let d = Deployment::build(
        DeploymentConfig::functional(4)
            .tune()
            .fan_out(FanOutOptions {
                promote_after_reads: 4,
                max_replicas: 3,
            })
            .build(),
    );
    let c = d.client();
    let mut ctx = Ctx::start();
    let info = c.alloc(&mut ctx, TOTAL, PAGE).unwrap();
    let data: Vec<u8> = (0..PAGE).map(|i| (i % 199) as u8).collect();
    c.write(&mut ctx, info.blob, 0, &data).unwrap();
    let pages_before = d.total_pages();
    assert_eq!(pages_before, 1, "one page, replication 1");

    // Hammer the single page well past two promotion thresholds.
    for _ in 0..16 {
        let (got, _) = c.read(&mut ctx, info.blob, None, seg(0, PAGE)).unwrap();
        assert_eq!(got, data, "reads stay byte-correct during fan-out");
    }

    let heat = d.heat.as_ref().expect("fan-out configured");
    // 16 reads at promote_after_reads=4 cross the threshold 4 times,
    // but max_replicas=3 caps useful promotions at 2 (primary + 2).
    assert_eq!(heat.promotions(), 2, "promotions stop at the replica cap");
    // Each promotion physically stored one more copy of the page.
    assert_eq!(
        d.total_pages(),
        pages_before + 2,
        "promoted replicas land on real providers"
    );

    // A *fresh* client (fresh leaf fetch) sees the extended replica
    // list and still reads correctly through the rotation.
    let c2 = d.client();
    for _ in 0..6 {
        let (got, _) = c2.read(&mut ctx, info.blob, None, seg(0, PAGE)).unwrap();
        assert_eq!(got, data);
    }
}

#[test]
fn fan_out_survives_losing_the_primary() {
    let d = Deployment::build(
        DeploymentConfig::functional(4)
            .tune()
            .fan_out(FanOutOptions {
                promote_after_reads: 2,
                max_replicas: 2,
            })
            // Metadata has its own replication; this test is about the
            // *data* fan-out, so keep the tree reachable past the kill.
            .meta_replication(3)
            .build(),
    );
    let c = d.client();
    let mut ctx = Ctx::start();
    let info = c.alloc(&mut ctx, TOTAL, PAGE).unwrap();
    let data: Vec<u8> = (0..PAGE).map(|i| (i % 23) as u8).collect();
    c.write(&mut ctx, info.blob, 0, &data).unwrap();

    // Find the primary (the only provider holding a page right now),
    // then heat the page until it fans out onto a second provider.
    let primary = d
        .storage
        .iter()
        .position(|s| s.data().page_count() > 0)
        .expect("someone stores the page");
    for _ in 0..4 {
        c.read(&mut ctx, info.blob, None, seg(0, PAGE)).unwrap();
    }
    assert_eq!(d.heat.as_ref().unwrap().promotions(), 1);

    // With the primary dead, the promoted replica serves the read via
    // the failover path — fan-out is real redundancy, not a cache.
    d.kill_storage(primary);
    let (got, _) = c.read(&mut ctx, info.blob, None, seg(0, PAGE)).unwrap();
    assert_eq!(got, data, "promoted replica serves after primary loss");
}

#[test]
fn idempotent_reads_retry_through_an_outage() {
    let d = Deployment::build(DeploymentConfig::functional(2));
    let c = d.client();
    let mut ctx = Ctx::start();
    let info = c.alloc(&mut ctx, TOTAL, PAGE).unwrap();
    let data = vec![7u8; PAGE as usize];
    c.write(&mut ctx, info.blob, 0, &data).unwrap();

    // Take the version manager down; a fail-fast read surfaces the
    // typed outage immediately.
    d.cluster.kill(d.vm_node);
    let err = c.read(&mut ctx, info.blob, None, seg(0, PAGE)).unwrap_err();
    assert!(matches!(err, BlobError::Unreachable(_)), "{err:?}");

    // Under a retry policy, the same read rides the outage out: a
    // sibling thread revives the node while the client is backing off
    // (backoff sleeps real wall time, so the revival lands mid-retry).
    let sim = std::sync::Arc::clone(d.cluster.sim().expect("functional runs on sim"));
    let vm_node = d.vm_node;
    let reviver = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(30));
        sim.revive(vm_node);
    });
    let opts = ReadOptions::with_retry(RetryPolicy {
        base_backoff: Duration::from_millis(20),
        max_attempts: 10,
        ..RetryPolicy::default()
    });
    let (got, latest) = c
        .read_with(&mut ctx, info.blob, seg(0, PAGE), &opts)
        .unwrap();
    reviver.join().unwrap();
    assert_eq!(latest, 1);
    assert_eq!(got, data, "read is replayed whole and stays correct");
}

#[test]
fn publish_legs_never_retry_even_with_a_policy_set() {
    // Deployment-wide glacial retry policy: if any non-idempotent leg
    // consulted it, the write below would stall for a minute.
    let d = Deployment::build(
        DeploymentConfig::functional(2)
            .tune()
            .retry(glacial())
            .build(),
    );
    let c = d.client();
    let mut ctx = Ctx::start();
    let info = c.alloc(&mut ctx, TOTAL, PAGE).unwrap();

    // Kill the version manager: the write sails through plan + page
    // puts and dies at REQUEST_VERSION — the non-idempotent leg.
    d.cluster.kill(d.vm_node);
    let t0 = Instant::now();
    let err = c
        .write_with(
            &mut ctx,
            info.blob,
            0,
            &vec![1u8; PAGE as usize],
            &WriteOptions::with_retry(glacial()),
        )
        .unwrap_err();
    assert!(matches!(err, BlobError::Unreachable(_)), "{err:?}");
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "publish legs must fail fast, not back off ({:?})",
        t0.elapsed()
    );
}

#[test]
fn read_deadline_caps_the_retry_budget() {
    let d = Deployment::build(DeploymentConfig::functional(2));
    let c = d.client();
    let mut ctx = Ctx::start();
    let info = c.alloc(&mut ctx, TOTAL, PAGE).unwrap();
    c.write(&mut ctx, info.blob, 0, &vec![9u8; PAGE as usize])
        .unwrap();
    d.cluster.kill(d.vm_node);

    // The policy alone would sleep a minute before its first retry;
    // the 5 ms deadline refuses that backoff, so the call fails fast
    // with the last typed error instead.
    let opts = ReadOptions {
        retry: Some(glacial()),
        deadline_ms: Some(5),
        ..ReadOptions::default()
    };
    let t0 = Instant::now();
    let err = c
        .read_with(&mut ctx, info.blob, seg(0, PAGE), &opts)
        .unwrap_err();
    assert!(matches!(err, BlobError::Unreachable(_)), "{err:?}");
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "deadline must bound the backoff ({:?})",
        t0.elapsed()
    );
}

#[test]
fn read_options_pin_versions_exactly() {
    let d = Deployment::build(DeploymentConfig::functional(2));
    let c = d.client();
    let mut ctx = Ctx::start();
    let info = c.alloc(&mut ctx, TOTAL, PAGE).unwrap();
    let v1 = vec![1u8; PAGE as usize];
    let v2 = vec![2u8; PAGE as usize];
    c.write(&mut ctx, info.blob, 0, &v1).unwrap();
    c.write(&mut ctx, info.blob, 0, &v2).unwrap();

    // Pinned read returns the pinned snapshot, and reports the latest.
    let (got, latest) = c
        .read_with(
            &mut ctx,
            info.blob,
            seg(0, PAGE),
            &ReadOptions::at_version(1),
        )
        .unwrap();
    assert_eq!((got, latest), (v1, 2));

    // Default options read the latest snapshot.
    let (got, latest) = c
        .read_with(&mut ctx, info.blob, seg(0, PAGE), &ReadOptions::default())
        .unwrap();
    assert_eq!((got, latest), (v2, 2));

    // Pinning an unpublished version is a typed refusal, not a wait —
    // and it is not retryable, so a policy never spins on it.
    let err = c
        .read_with(
            &mut ctx,
            info.blob,
            seg(0, PAGE),
            &ReadOptions::at_version(9),
        )
        .unwrap_err();
    assert!(
        matches!(
            err,
            BlobError::VersionNotPublished {
                requested: 9,
                latest: 2
            }
        ),
        "{err:?}"
    );
}
