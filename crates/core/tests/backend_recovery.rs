//! Crash-recovery of the persistent provider backend, end to end: a
//! provider killed mid-workload and *restarted on the same directory*
//! must re-serve every page it acknowledged, byte-identical — while
//! replication keeps the cluster serving through the outage window.
//! The memory backend run alongside shows the contrast: its restart is
//! a cold, empty provider.

use blobseer_core::{BackendKind, Deployment, DeploymentConfig, TransportKind};
use blobseer_proto::Segment;
use blobseer_rpc::Ctx;

const PAGE: u64 = 1024;
const PAGES: u64 = 32;
const TOTAL: u64 = PAGE * PAGES;

fn seg(o: u64, s: u64) -> Segment {
    Segment::new(o, s)
}

/// The full scenario over either transport: write, kill provider 0
/// mid-workload, survive the outage on replicas, restart the provider
/// on its directory, verify the replayed index byte-for-byte.
fn crash_recovery_scenario(transport: TransportKind) {
    let mut cfg = DeploymentConfig::functional(4)
        .tune()
        .transport(transport)
        .backend(BackendKind::Mmap)
        .build();
    cfg.replication = 2;
    cfg.meta_replication = 2;
    let d = Deployment::build(cfg);
    let c = d.client();
    let mut ctx = Ctx::start();
    let info = c.alloc(&mut ctx, TOTAL, PAGE).unwrap();

    // Phase 1: acknowledged writes land pages on every provider.
    let mut model = vec![0u8; TOTAL as usize];
    let data_a: Vec<u8> = (0..TOTAL / 2).map(|i| (i % 251) as u8).collect();
    c.write(&mut ctx, info.blob, 0, &data_a).unwrap();
    model[..data_a.len()].copy_from_slice(&data_a);

    // Snapshot what provider 0 acknowledged before the crash.
    let victim = d.storage[0].data();
    let acked: Vec<_> = victim
        .keys()
        .into_iter()
        .map(|k| (k, victim.page(&k).expect("indexed page")))
        .collect();
    assert!(
        !acked.is_empty(),
        "workload must have landed pages on the victim"
    );
    drop(victim);

    // Mid-workload kill. The outage window: reads fail over to the
    // surviving replica, writes plan around the dead provider.
    d.kill_storage(0);
    let (got, _) = c
        .read(&mut ctx, info.blob, None, seg(0, TOTAL))
        .expect("replication failover during the outage");
    assert_eq!(got, model);
    let data_b: Vec<u8> = (0..TOTAL / 2).map(|i| (i % 241) as u8).collect();
    c.write(&mut ctx, info.blob, TOTAL / 2, &data_b)
        .expect("writes continue during the outage");
    model[TOTAL as usize / 2..].copy_from_slice(&data_b);

    // Restart: a fresh provider process on the same directory replays
    // its page log and re-registers.
    d.restart_storage(0);
    let restarted = d.storage[0].data();
    assert_eq!(
        restarted.page_count(),
        acked.len(),
        "every acknowledged page is re-indexed"
    );
    for (key, page) in &acked {
        let replayed = restarted
            .page(key)
            .unwrap_or_else(|| panic!("acknowledged page {key:?} lost by restart"));
        assert_eq!(&replayed, page, "page {key:?} byte-identical after restart");
        #[cfg(unix)]
        assert!(
            replayed.is_mapped(),
            "replayed pages are served from the log mapping"
        );
    }

    // The whole blob still reads correctly, and the restarted provider
    // takes new writes again.
    let (got, _) = c.read(&mut ctx, info.blob, None, seg(0, TOTAL)).unwrap();
    assert_eq!(got, model);
    let before = d.storage[0].data().page_count();
    for round in 0..8u64 {
        c.write(
            &mut ctx,
            info.blob,
            (round % 4) * 4 * PAGE,
            &vec![7u8; (4 * PAGE) as usize],
        )
        .unwrap();
    }
    assert!(
        d.storage[0].data().page_count() > before,
        "restarted provider receives new placements"
    );
}

#[test]
fn mmap_provider_crash_recovery_over_sim() {
    crash_recovery_scenario(TransportKind::Sim);
}

#[test]
fn mmap_provider_crash_recovery_over_tcp() {
    crash_recovery_scenario(TransportKind::Tcp);
}

#[test]
fn memory_provider_restart_is_data_loss() {
    // The negative control the persistent backend exists for: restart a
    // RAM provider and its pages are gone; an unreplicated read fails.
    let d = Deployment::build(DeploymentConfig::functional(2));
    let c = d.client();
    let mut ctx = Ctx::start();
    let info = c.alloc(&mut ctx, TOTAL, PAGE).unwrap();
    c.write(&mut ctx, info.blob, 0, &vec![3u8; TOTAL as usize])
        .unwrap();
    assert!(d.storage[0].data().page_count() > 0);
    d.kill_storage(0);
    d.restart_storage(0);
    assert_eq!(
        d.storage[0].data().page_count(),
        0,
        "memory restart is a cold provider"
    );
    let res = c.read(&mut ctx, info.blob, Some(1), seg(0, TOTAL));
    assert!(res.is_err(), "unreplicated pages died with the provider");
}

#[test]
fn mmap_restart_preserves_capacity_accounting() {
    // After a restart the replayed provider's heartbeat must report the
    // log's true footprint, so the manager cannot over-assign it.
    let d = Deployment::build(DeploymentConfig::functional_mmap(2));
    let c = d.client();
    let mut ctx = Ctx::start();
    let info = c.alloc(&mut ctx, TOTAL, PAGE).unwrap();
    c.write(&mut ctx, info.blob, 0, &vec![9u8; TOTAL as usize])
        .unwrap();
    let mapped_before = d.storage[0].data().stats().mapped_bytes;
    d.kill_storage(0);
    d.restart_storage(0);
    let stats = d.storage[0].data().stats();
    assert_eq!(
        stats.mapped_bytes, mapped_before,
        "replayed log footprint matches what was acknowledged"
    );
    assert_eq!(stats.heap_bytes, 0);
    assert!(stats.reserved_bytes() >= stats.bytes, "headers included");
    d.heartbeat(0);
    let p = d
        .manager
        .projection(blobseer_proto::ProviderId(d.storage_nodes[0].0))
        .unwrap();
    assert_eq!(p.reported, stats.mapped_bytes);
}
