//! Copy-accounting parity for the persistent provider backend: with
//! `BackendKind::Mmap` over `TransportKind::Tcp`, the payload leg must
//! meter **exactly** what the in-memory backend meters — write = 1 copy
//! of the caller's slice (the sanctioned client-side copy; appending to
//! the page log is positioned kernel I/O, not a memcpy), read = 1 copy
//! per page into the result, aligned single-page `read_buf` = 0 extra.
//! Serving a page out of the mapped log is a refcount bump on the
//! mapping — if the provider copied, the read legs would show it.
//!
//! Lives in its own test binary because TCP dispatch happens on server
//! worker threads, so the measurements use the process-global copy
//! meters (one test function, nothing else to pollute them).

use blobseer_core::{BackendKind, Deployment, DeploymentConfig, TransportKind};
use blobseer_proto::Segment;
use blobseer_rpc::Ctx;
use blobseer_util::copymeter;

const PAGE: u64 = 4096;
const PAGES: u64 = 16;
const TOTAL: u64 = PAGE * PAGES;
const SEG: u64 = 8 * PAGE;

/// Run the canonical write / read / aligned-read_buf workload on the
/// given transport × backend and return the global bytes-copied of each
/// leg.
fn measure(transport: TransportKind, backend: BackendKind) -> (u64, u64, u64) {
    let mut cfg = DeploymentConfig::functional(4)
        .tune()
        .transport(transport)
        .backend(backend)
        .build();
    cfg.replication = 2; // replica fan-out shares one buffer on both paths
    let d = Deployment::build(cfg);
    let c = d.client();
    let mut ctx = Ctx::start();
    let info = c.alloc(&mut ctx, TOTAL, PAGE).unwrap();

    let data: Vec<u8> = (0..SEG).map(|i| (i % 251) as u8).collect();
    let before = copymeter::snapshot();
    c.write(&mut ctx, info.blob, 0, &data).unwrap();
    let write_copied = before.bytes_since();

    let mut out = vec![0u8; SEG as usize];
    let before = copymeter::snapshot();
    c.read_into(&mut ctx, info.blob, Some(1), Segment::new(0, SEG), &mut out)
        .unwrap();
    let read_copied = before.bytes_since();
    assert_eq!(out, data);

    let before = copymeter::snapshot();
    let (page, _) = c
        .read_buf(&mut ctx, info.blob, Some(1), Segment::new(0, PAGE))
        .unwrap();
    let read_buf_copied = before.bytes_since();
    assert_eq!(&page[..], &data[..PAGE as usize]);

    (write_copied, read_copied, read_buf_copied)
}

#[test]
fn mmap_backend_meters_identically_to_memory() {
    // Single test function: the global meter must not see traffic from
    // sibling tests, so this binary holds exactly one.
    let _shared = blobseer_util::testsync::ablation_shared();

    let (mem_w, mem_r, mem_rb) = measure(TransportKind::Tcp, BackendKind::Memory);
    let (map_w, map_r, map_rb) = measure(TransportKind::Tcp, BackendKind::Mmap);

    assert_eq!(
        (map_w, map_r, map_rb),
        (mem_w, mem_r, mem_rb),
        "the mmap backend must copy the same byte counts as memory \
         (memory: w={mem_w} r={mem_r} rb={mem_rb})"
    );
    assert_eq!(
        map_w, SEG,
        "a write copies the caller's buffer exactly once; appending to \
         the page log adds zero metered copies"
    );
    assert_eq!(
        map_r, SEG,
        "a read copies each page exactly once, straight off the mapping"
    );
    assert_eq!(
        map_rb, 0,
        "an aligned single-page read_buf is zero-copy end to end"
    );

    // White-box on the in-process transport: the page a client gets from
    // read_buf *is* a slice of the provider's log mapping — the whole
    // data path from file to client is one refcount chain.
    let mut cfg = DeploymentConfig::functional_mmap(4);
    cfg.replication = 2;
    let d = Deployment::build(cfg);
    let c = d.client();
    let mut ctx = Ctx::start();
    let info = c.alloc(&mut ctx, TOTAL, PAGE).unwrap();
    let data: Vec<u8> = (0..SEG).map(|i| (i % 239) as u8).collect();
    c.write(&mut ctx, info.blob, 0, &data).unwrap();
    let (page, _) = c
        .read_buf(&mut ctx, info.blob, Some(1), Segment::new(0, PAGE))
        .unwrap();
    assert_eq!(&page[..], &data[..PAGE as usize]);
    #[cfg(unix)]
    assert!(
        page.is_mapped(),
        "over the in-process transport the served page is lent straight \
         from the provider's log mapping"
    );
}
