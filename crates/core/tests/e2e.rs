//! End-to-end functional tests of the full distributed stack (zero-cost
//! transport: logic identical to the costed runs, instant).

use blobseer_core::{Deployment, DeploymentConfig};
use blobseer_meta::ReferenceStore;
use blobseer_proto::{BlobError, Segment};
use blobseer_rpc::{AggregationPolicy, Ctx};
use blobseer_util::rng::rng_for;
use rand::Rng;

const PAGE: u64 = 1024;
const PAGES: u64 = 32;
const TOTAL: u64 = PAGE * PAGES;

fn seg(o: u64, s: u64) -> Segment {
    Segment::new(o, s)
}

#[test]
fn alloc_write_read_roundtrip() {
    let d = Deployment::build(DeploymentConfig::functional(4));
    let c = d.client();
    let mut ctx = Ctx::start();
    let info = c.alloc(&mut ctx, TOTAL, PAGE).unwrap();
    assert_eq!(info.latest, 0);

    let data: Vec<u8> = (0..2 * PAGE).map(|i| (i % 251) as u8).collect();
    let v = c.write(&mut ctx, info.blob, PAGE, &data).unwrap();
    assert_eq!(v, 1);

    let (got, latest) = c
        .read(&mut ctx, info.blob, Some(1), seg(PAGE, 2 * PAGE))
        .unwrap();
    assert_eq!(latest, 1);
    assert_eq!(got, data);

    // Unwritten space reads as zeros (allocate-on-write).
    let (z, _) = c
        .read(&mut ctx, info.blob, Some(1), seg(4 * PAGE, PAGE))
        .unwrap();
    assert!(z.iter().all(|&b| b == 0));

    // Data and metadata really are distributed.
    assert_eq!(d.total_pages(), 2);
    assert!(d.total_tree_nodes() > 0);
}

#[test]
fn matches_reference_store_on_random_workload() {
    let d = Deployment::build(DeploymentConfig::functional(5));
    let c = d.client();
    let mut ctx = Ctx::start();
    let info = c.alloc(&mut ctx, TOTAL, PAGE).unwrap();
    let geom = info.geometry();
    let mut oracle = ReferenceStore::new(geom);
    let mut rng = rng_for(2024, 0);

    for i in 0..40u64 {
        let start = rng.gen_range(0..PAGES);
        let len = rng.gen_range(1..=(PAGES - start).min(6));
        let s = seg(start * PAGE, len * PAGE);
        let data: Vec<u8> = (0..s.size)
            .map(|j| (i as u8).wrapping_mul(37).wrapping_add(j as u8))
            .collect();
        let v1 = c.write(&mut ctx, info.blob, s.offset, &data).unwrap();
        let v2 = oracle.write(s, &data).unwrap();
        assert_eq!(v1, v2);
    }

    // Every version, full-blob and random unaligned sub-reads.
    for v in 0..=oracle.latest() {
        let (got, _) = c.read(&mut ctx, info.blob, Some(v), seg(0, TOTAL)).unwrap();
        assert_eq!(got, oracle.read(v, seg(0, TOTAL)).unwrap(), "version {v}");
    }
    for _ in 0..50 {
        let v = rng.gen_range(0..=oracle.latest());
        let off = rng.gen_range(0..TOTAL - 1);
        let len = rng.gen_range(1..=(TOTAL - off).min(5000));
        let s = seg(off, len);
        let (got, _) = c.read(&mut ctx, info.blob, Some(v), s).unwrap();
        assert_eq!(got, oracle.read(v, s).unwrap(), "v{v} {s:?}");
    }
}

#[test]
fn unpublished_version_read_fails() {
    let d = Deployment::build(DeploymentConfig::functional(2));
    let c = d.client();
    let mut ctx = Ctx::start();
    let info = c.alloc(&mut ctx, TOTAL, PAGE).unwrap();
    let err = c
        .read(&mut ctx, info.blob, Some(3), seg(0, PAGE))
        .unwrap_err();
    assert!(matches!(
        err,
        BlobError::VersionNotPublished {
            requested: 3,
            latest: 0
        }
    ));
}

#[test]
fn unaligned_write_read_modify_write() {
    let d = Deployment::build(DeploymentConfig::functional(3));
    let c = d.client();
    let mut ctx = Ctx::start();
    let info = c.alloc(&mut ctx, TOTAL, PAGE).unwrap();
    c.write(&mut ctx, info.blob, 0, &vec![7u8; (2 * PAGE) as usize])
        .unwrap();
    let v = c
        .write_unaligned(&mut ctx, info.blob, 100, &[9u8; 50])
        .unwrap();
    assert_eq!(v, 2);
    let (buf, _) = c
        .read(&mut ctx, info.blob, Some(2), seg(0, 2 * PAGE))
        .unwrap();
    assert!(buf[..100].iter().all(|&b| b == 7));
    assert!(buf[100..150].iter().all(|&b| b == 9));
    assert!(buf[150..].iter().all(|&b| b == 7));
    // v1 unchanged (snapshot isolation).
    let (old, _) = c.read(&mut ctx, info.blob, Some(1), seg(0, PAGE)).unwrap();
    assert!(old.iter().all(|&b| b == 7));
}

#[test]
fn metadata_cache_hits_and_consistency() {
    let mut cfg = DeploymentConfig::functional(4);
    cfg.cache_nodes = 1 << 16;
    let d = Deployment::build(cfg);
    let c = d.client();
    let mut ctx = Ctx::start();
    let info = c.alloc(&mut ctx, TOTAL, PAGE).unwrap();
    let data = vec![5u8; TOTAL as usize];
    c.write(&mut ctx, info.blob, 0, &data).unwrap();

    // The cache is shared across the deployment's clients: a second,
    // freshly spawned client reads through the cache the writer already
    // warmed — zero misses on its very first descent.
    let c2 = d.client();
    let (h0, m0) = c2.cache_stats().unwrap();
    let (r1, _) = c2
        .read(&mut ctx, info.blob, Some(1), seg(0, TOTAL))
        .unwrap();
    let (h1, m1) = c2.cache_stats().unwrap();
    assert_eq!(m1, m0, "shared cache is pre-warmed by the writer");
    assert!(h1 > h0, "co-located reader hits the writer's nodes");
    assert_eq!(r1, data);

    // Cold-cache behavior survives: clear the shared cache, then the
    // first descent misses and refills, and a repeat stays warm.
    d.meta_cache.as_ref().unwrap().clear();
    let (r2, _) = c2
        .read(&mut ctx, info.blob, Some(1), seg(0, TOTAL))
        .unwrap();
    let (_, m2) = c2.cache_stats().unwrap();
    assert!(m2 > m1, "cold cache must miss");
    let (h3, m3) = c2.cache_stats().unwrap();
    let (r3, _) = c2
        .read(&mut ctx, info.blob, Some(1), seg(0, TOTAL))
        .unwrap();
    let (h4, m4) = c2.cache_stats().unwrap();
    assert_eq!(m4, m3, "warm cache must not miss again");
    assert!(h4 > h3);
    assert_eq!(r1, r2);
    assert_eq!(r2, r3);

    // Writer-side caching: the writing client re-reads its own tree with
    // no new misses (every node was inserted as it was built).
    let (_, mw0) = c.cache_stats().unwrap();
    let (r5, _) = c.read(&mut ctx, info.blob, Some(1), seg(0, TOTAL)).unwrap();
    assert_eq!(r5, data);
    let (_, mw1) = c.cache_stats().unwrap();
    assert_eq!(mw1, mw0, "writer's cache serves its own tree");
}

#[test]
fn aggregation_cuts_message_count() {
    let run = |policy: AggregationPolicy| -> u64 {
        let mut cfg = DeploymentConfig::functional(4);
        cfg.aggregation = policy;
        let d = Deployment::build(cfg);
        let c = d.client();
        let mut ctx = Ctx::start();
        let info = c.alloc(&mut ctx, TOTAL, PAGE).unwrap();
        let before = d.cluster.message_count();
        c.write(&mut ctx, info.blob, 0, &vec![1u8; (16 * PAGE) as usize])
            .unwrap();
        d.cluster.message_count() - before
    };
    let batched = run(AggregationPolicy::Batch);
    let per_call = run(AggregationPolicy::PerCall);
    assert!(
        batched * 2 <= per_call,
        "aggregation must at least halve messages: batched={batched} per_call={per_call}"
    );
}

#[test]
fn page_replication_survives_provider_failure() {
    let mut cfg = DeploymentConfig::functional(4);
    cfg.replication = 2;
    cfg.meta_replication = 2;
    let d = Deployment::build(cfg);
    let c = d.client();
    let mut ctx = Ctx::start();
    let info = c.alloc(&mut ctx, TOTAL, PAGE).unwrap();
    let data: Vec<u8> = (0..TOTAL).map(|i| (i % 199) as u8).collect();
    c.write(&mut ctx, info.blob, 0, &data).unwrap();

    // Kill each storage node in turn; every read must still succeed.
    for i in 0..4 {
        d.kill_storage(i);
        let (got, _) = c.read(&mut ctx, info.blob, Some(1), seg(0, TOTAL)).unwrap();
        assert_eq!(got, data, "after killing storage node {i}");
        d.revive_storage(i);
    }
}

#[test]
fn unreplicated_deployment_loses_data_on_failure() {
    // Negative control: with replication=1 a dead provider must surface as
    // an error, not silent corruption.
    let d = Deployment::build(DeploymentConfig::functional(3));
    let c = d.client();
    let mut ctx = Ctx::start();
    let info = c.alloc(&mut ctx, TOTAL, PAGE).unwrap();
    c.write(&mut ctx, info.blob, 0, &vec![3u8; TOTAL as usize])
        .unwrap();
    d.kill_storage(0);
    let res = c.read(&mut ctx, info.blob, Some(1), seg(0, TOTAL));
    assert!(res.is_err(), "some pages/metadata lived on the dead node");
}

#[test]
fn gc_end_to_end() {
    let d = Deployment::build(DeploymentConfig::functional(4));
    let c = d.client();
    let mut ctx = Ctx::start();
    let info = c.alloc(&mut ctx, TOTAL, PAGE).unwrap();

    // v1: full write; v2, v3: rewrite page 0.
    c.write(&mut ctx, info.blob, 0, &vec![1u8; TOTAL as usize])
        .unwrap();
    c.write(&mut ctx, info.blob, 0, &vec![2u8; PAGE as usize])
        .unwrap();
    c.write(&mut ctx, info.blob, 0, &vec![3u8; PAGE as usize])
        .unwrap();

    let pages_before = d.total_pages();
    let nodes_before = d.total_tree_nodes();
    let (nodes_gone, pages_gone) = c.gc(&mut ctx, info.blob, 3).unwrap();
    assert_eq!(pages_gone, 2, "page 0 of v1 and v2");
    assert!(nodes_gone > 0);
    assert_eq!(d.total_pages(), pages_before - 2);
    assert_eq!(d.total_tree_nodes(), nodes_before - nodes_gone as usize);

    // Kept version fully readable.
    let (got, _) = c.read(&mut ctx, info.blob, Some(3), seg(0, TOTAL)).unwrap();
    assert!(got[..PAGE as usize].iter().all(|&b| b == 3));
    assert!(got[PAGE as usize..].iter().all(|&b| b == 1));
    // Collected versions are no longer traversable (their superseded path
    // nodes — including the root — were reclaimed).
    assert!(c.read(&mut ctx, info.blob, Some(1), seg(0, PAGE)).is_err());
    // But v1's untouched *pages* survive, shared through v3's tree.
    let (tail, _) = c
        .read(&mut ctx, info.blob, Some(3), seg(PAGE, PAGE))
        .unwrap();
    assert!(tail.iter().all(|&b| b == 1));

    // Idempotent: second GC finds nothing.
    assert_eq!(c.gc(&mut ctx, info.blob, 3).unwrap(), (0, 0));
}

#[test]
fn concurrent_clients_full_stack() {
    // Real threads through the whole distributed stack: the lock-free
    // claims of §IV exercised end to end.
    let d = std::sync::Arc::new(Deployment::build(DeploymentConfig::functional(6)));
    let setup = d.client();
    let mut ctx = Ctx::start();
    let info = setup.alloc(&mut ctx, TOTAL, PAGE).unwrap();
    let blob = info.blob;

    let writers = 6;
    let per = 15;
    let handles: Vec<_> = (0..writers)
        .map(|t| {
            let d = std::sync::Arc::clone(&d);
            std::thread::spawn(move || {
                let c = d.client();
                let mut ctx = Ctx::start();
                let mut rng = rng_for(55, t as u64);
                let mut produced = Vec::new();
                for _ in 0..per {
                    let start = rng.gen_range(0..PAGES);
                    let len = rng.gen_range(1..=(PAGES - start).min(4));
                    let s = seg(start * PAGE, len * PAGE);
                    let fill: u8 = rng.gen();
                    let data: Vec<u8> = (0..s.size).map(|j| fill.wrapping_add(j as u8)).collect();
                    let v = c.write(&mut ctx, blob, s.offset, &data).unwrap();
                    produced.push((v, s, fill));
                }
                produced
            })
        })
        .collect();

    let mut all: Vec<(u64, Segment, u8)> = Vec::new();
    for h in handles {
        all.extend(h.join().unwrap());
    }
    all.sort_by_key(|(v, _, _)| *v);
    // Dense unique versions.
    for (i, (v, _, _)) in all.iter().enumerate() {
        assert_eq!(*v, i as u64 + 1);
    }

    // Global serializability: each version equals prefix application.
    let reader = d.client();
    let mut rctx = Ctx::start();
    let mut model = vec![0u8; TOTAL as usize];
    for (v, s, fill) in &all {
        let data: Vec<u8> = (0..s.size).map(|j| fill.wrapping_add(j as u8)).collect();
        model[s.offset as usize..s.end() as usize].copy_from_slice(&data);
        let (got, _) = reader
            .read(&mut rctx, blob, Some(*v), seg(0, TOTAL))
            .unwrap();
        assert_eq!(got, model, "version {v}");
    }
}

#[test]
fn multiple_blobs_are_isolated() {
    let d = Deployment::build(DeploymentConfig::functional(3));
    let c = d.client();
    let mut ctx = Ctx::start();
    let a = c.alloc(&mut ctx, TOTAL, PAGE).unwrap();
    let b = c.alloc(&mut ctx, TOTAL, 2 * PAGE).unwrap();
    assert_ne!(a.blob, b.blob);
    c.write(&mut ctx, a.blob, 0, &vec![0xA; PAGE as usize])
        .unwrap();
    c.write(&mut ctx, b.blob, 0, &vec![0xB; (2 * PAGE) as usize])
        .unwrap();
    let (ra, _) = c.read(&mut ctx, a.blob, None, seg(0, PAGE)).unwrap();
    let (rb, _) = c.read(&mut ctx, b.blob, None, seg(0, PAGE)).unwrap();
    assert!(ra.iter().all(|&x| x == 0xA));
    assert!(rb.iter().all(|&x| x == 0xB));
}

#[test]
fn rejects_misaligned_and_oversized_segments() {
    let d = Deployment::build(DeploymentConfig::functional(2));
    let c = d.client();
    let mut ctx = Ctx::start();
    let info = c.alloc(&mut ctx, TOTAL, PAGE).unwrap();
    assert!(c
        .write(&mut ctx, info.blob, 10, &vec![0u8; PAGE as usize])
        .is_err());
    assert!(c.write(&mut ctx, info.blob, 0, &[0u8; 100]).is_err());
    assert!(c
        .write(
            &mut ctx,
            info.blob,
            TOTAL - PAGE,
            &vec![0u8; (2 * PAGE) as usize]
        )
        .is_err());
    assert!(c.read(&mut ctx, info.blob, None, seg(TOTAL, 1)).is_err());
    // Bad geometry at alloc.
    assert!(c.alloc(&mut ctx, 1000, 100).is_err());
}

#[test]
fn read_returns_latest_version_witness() {
    let d = Deployment::build(DeploymentConfig::functional(2));
    let c = d.client();
    let mut ctx = Ctx::start();
    let info = c.alloc(&mut ctx, TOTAL, PAGE).unwrap();
    c.write(&mut ctx, info.blob, 0, &vec![1u8; PAGE as usize])
        .unwrap();
    c.write(&mut ctx, info.blob, 0, &vec![2u8; PAGE as usize])
        .unwrap();
    // Reading version 1 still reports vr = 2 (paper: "vr >= v holds").
    let (_, vr) = c.read(&mut ctx, info.blob, Some(1), seg(0, PAGE)).unwrap();
    assert_eq!(vr, 2);
}
