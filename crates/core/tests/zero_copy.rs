//! End-to-end copy accounting through the full distributed stack.
//!
//! Asserts the PR's copy discipline as *measured numbers*, not claims:
//!
//! * WRITE copies the caller's buffer exactly once, no matter how many
//!   replicas fan out (they share one `PageBuf`);
//! * `write_buf` copies nothing at all;
//! * READ copies each page exactly once, into the result buffer;
//! * `read_into` copies straight into the caller's buffer;
//! * a single-page aligned `read_buf` copies **zero** bytes — the caller
//!   receives a refcount borrow of the provider's stored page.
//!
//! One test function on one thread, using the thread-local copy meters:
//! the simulated transports dispatch handlers inline on the calling
//! thread, so every hop's copies land on this thread's meter.

use blobseer_core::{Deployment, DeploymentConfig};
use blobseer_proto::{PageBuf, Segment};
use blobseer_rpc::Ctx;
use blobseer_util::copymeter;

const PAGE: u64 = 4096;
const PAGES: u64 = 16;
const TOTAL: u64 = PAGE * PAGES;

#[test]
fn copies_are_counted_and_minimal() {
    // Copy counts are flag sensitive; exclude any concurrent ablation
    // flip (none lives in this binary today, but the guard is the rule).
    let _shared = blobseer_util::testsync::ablation_shared();
    let mut cfg = DeploymentConfig::functional(4);
    cfg.replication = 3; // make per-replica copying impossible to miss
    let d = Deployment::build(cfg);
    let c = d.client();
    let mut ctx = Ctx::start();
    let info = c.alloc(&mut ctx, TOTAL, PAGE).unwrap();

    // WRITE from a borrowed slice: exactly one copy of the segment
    // (slice → shared PageBuf), despite 8 pages × 3 replicas = 24 puts.
    let seg_bytes = 8 * PAGE;
    let data: Vec<u8> = (0..seg_bytes).map(|i| (i % 251) as u8).collect();
    let before = copymeter::thread_snapshot();
    c.write(&mut ctx, info.blob, 0, &data).unwrap();
    assert_eq!(
        before.bytes_since(),
        seg_bytes,
        "write must copy the caller's buffer exactly once across all replicas"
    );

    // Zero-copy WRITE: the caller's PageBuf is shared, never copied.
    let buf = PageBuf::from_vec(vec![7u8; (2 * PAGE) as usize]);
    let before = copymeter::thread_snapshot();
    let v2 = c
        .write_buf(&mut ctx, info.blob, 8 * PAGE, buf.clone())
        .unwrap();
    assert_eq!(before.bytes_since(), 0, "write_buf must copy nothing");

    // All three replicas of a write_buf page are the caller's allocation.
    let stored: usize = d.storage.iter().map(|s| s.data().page_count()).sum();
    assert!(stored >= 24 + 6, "replicated pages stored: {stored}");

    // READ: each page copied exactly once into the result.
    let before = copymeter::thread_snapshot();
    let (got, _) = c
        .read(&mut ctx, info.blob, None, Segment::new(0, seg_bytes))
        .unwrap();
    assert_eq!(got, data);
    assert_eq!(
        before.bytes_since(),
        seg_bytes,
        "read must copy each page exactly once into the result"
    );

    // read_into: same copy count, caller-owned destination.
    let mut out = vec![0u8; (2 * PAGE) as usize];
    let before = copymeter::thread_snapshot();
    let latest = c
        .read_into(
            &mut ctx,
            info.blob,
            Some(v2),
            Segment::new(8 * PAGE, 2 * PAGE),
            &mut out,
        )
        .unwrap();
    assert_eq!(latest, v2);
    assert_eq!(out, &buf[..]);
    assert_eq!(
        before.bytes_since(),
        2 * PAGE,
        "read_into copies each page once"
    );

    // Single-page aligned read_buf: zero copies end to end; the result
    // shares the allocation the writer handed in (stored by the
    // provider, lent through the RPC response).
    let before = copymeter::thread_snapshot();
    let (page, _) = c
        .read_buf(&mut ctx, info.blob, Some(v2), Segment::new(8 * PAGE, PAGE))
        .unwrap();
    assert_eq!(
        before.bytes_since(),
        0,
        "aligned single-page read_buf must be zero-copy"
    );
    assert!(
        page.same_allocation(&buf),
        "the read page must be the very allocation the writer stored"
    );
    assert_eq!(&page[..], &buf[..PAGE as usize]);

    // Unaligned read_buf still works (one copy per touched page).
    let before = copymeter::thread_snapshot();
    let (span, _) = c
        .read_buf(&mut ctx, info.blob, None, Segment::new(PAGE / 2, PAGE))
        .unwrap();
    assert_eq!(
        &span[..],
        &data[(PAGE / 2) as usize..(3 * PAGE / 2) as usize]
    );
    assert_eq!(
        before.bytes_since(),
        PAGE,
        "a straddling read copies exactly the requested bytes (each byte once)"
    );
}
