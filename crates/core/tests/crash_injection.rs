//! The crash-injection lane: a **real `SIGKILL`**, not a drop.
//!
//! Every other crash-recovery test in the workspace models a crash as
//! dropping the provider in-process, which can never tear a half-
//! written record. This harness closes that gap: a *child process*
//! (this very test binary, re-executed with `BLOBSEER_CRASH_DIR` set)
//! runs a full `{Tcp} × {Mmap}` deployment and hammers its providers
//! with appends, removes, and threshold-triggered online compactions —
//! while the parent kills it with `SIGKILL` at a fuzzed offset into the
//! workload, mid-append or mid-compaction, wherever the timer lands.
//!
//! The contract being verified, straight from the commit-marker design:
//!
//! * every **acknowledged** page (the child logs an ack only after the
//!   `PUT_PAGE` RPC returned `Ok`, i.e. after the commit marker landed)
//!   is recovered **byte-identical** by replaying the provider
//!   directories the kill left behind — including across generation
//!   swaps the kill may have interrupted half-way;
//! * only **uncommitted tails** are lost: everything replay surfaces
//!   was at least attempted by the child (no corruption, no invented
//!   records), and every recovered payload matches its key's expected
//!   bytes.
//!
//! A page the child removed may legitimately resurrect (removal drops
//! the index entry; the log record stays dead until a compaction
//! reclaims it) — the verifier allows that and nothing else.

use blobseer_core::{BackendKind, Deployment, DeploymentConfig, TransportKind, MMAP_LOG_CAP};
use blobseer_proto::messages::{method, PutPage, RemovePage};
use blobseer_proto::tree::PageKey;
use blobseer_proto::{BlobId, WriteId};
use blobseer_provider::DataProviderService;
use blobseer_rpc::{Ctx, RpcClient};
use blobseer_simnet::ServiceCosts;
use blobseer_util::rng::splitmix64;
use blobseer_util::PageBuf;
use std::collections::{BTreeMap, BTreeSet};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const PROVIDERS: usize = 2;
const CRASH_BLOB: u64 = 7;

/// Deterministic payload for sequence number `w` — parent and child
/// derive the exact same bytes, so "byte-identical" needs no shared
/// state beyond `w` itself.
fn expected_payload(w: u64) -> Vec<u8> {
    let len = 256 + ((w.wrapping_mul(977)) % 3840) as usize;
    let mut state = w ^ 0xc0de_cafe_f00d_beef;
    (0..len).map(|_| splitmix64(&mut state) as u8).collect()
}

fn crash_key(w: u64) -> PageKey {
    PageKey {
        blob: BlobId(CRASH_BLOB),
        write: WriteId(w),
        index: 0,
    }
}

// ---------------------------------------------------------------------------
// Child: the process that gets killed
// ---------------------------------------------------------------------------

/// The child half. As a plain member of the suite this returns
/// immediately; re-executed with `BLOBSEER_CRASH_DIR` it builds a
/// tcp × mmap deployment, publishes its provider directories, and
/// appends/removes/compacts **forever** — it only ever exits via the
/// parent's `SIGKILL`.
#[test]
fn crash_child() {
    let Ok(dir) = std::env::var("BLOBSEER_CRASH_DIR") else {
        return;
    };
    run_child(Path::new(&dir));
}

fn run_child(harness_dir: &Path) -> ! {
    let mut cfg = DeploymentConfig::functional(PROVIDERS)
        .tune()
        .transport(TransportKind::Tcp)
        .backend(BackendKind::Mmap)
        .build();
    // Aggressive compaction thresholds so the workload swaps
    // generations every few removes — the kill timer lands
    // mid-compaction often.
    cfg.log.compact_min_dead_bytes = 4 * 1024;
    cfg.log.compact_dead_ratio = 0.2;
    let d = Deployment::build(cfg);

    // Tell the parent where the page logs live (write + rename so the
    // parent never reads a half-written manifest).
    let dirs: Vec<String> = (0..PROVIDERS)
        .map(|i| {
            d.backend_dir(i)
                .expect("mmap deployment has dirs")
                .display()
                .to_string()
        })
        .collect();
    let tmp = harness_dir.join("dirs.txt.tmp");
    std::fs::write(&tmp, dirs.join("\n")).expect("write dirs manifest");
    std::fs::rename(&tmp, harness_dir.join("dirs.txt")).expect("publish dirs manifest");

    let mut acks = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(harness_dir.join("acks.txt"))
        .expect("open ack log");
    let mut ack = |line: String| {
        // One flushed line per event; SIGKILL can cut at most the line
        // being written, which the parent tolerates.
        acks.write_all(line.as_bytes()).expect("ack write");
        acks.flush().expect("ack flush");
    };

    let node = d.cluster.add_node();
    let rpc = RpcClient::new(d.cluster.transport(), node);
    let mut ctx = Ctx::start();
    let mut w = 0u64;
    loop {
        let key = crash_key(w);
        let data = PageBuf::from_vec(expected_payload(w));
        let target = d.storage_nodes[(w as usize) % PROVIDERS];
        ack(format!("try {w}\n"));
        let put: Result<(), _> =
            rpc.call(&mut ctx, target, method::PUT_PAGE, &PutPage { key, data });
        if put.is_ok() {
            ack(format!("put {w}\n"));
        }
        // Every third put, remove a page eight puts back (victims
        // alternate parity, so *both* providers accumulate the dead
        // bytes that trip the online compaction threshold).
        if w.is_multiple_of(3) && w >= 8 {
            let victim = w - 8;
            let target = d.storage_nodes[(victim as usize) % PROVIDERS];
            ack(format!("try-rm {victim}\n"));
            let removed: Result<bool, _> = rpc.call(
                &mut ctx,
                target,
                method::REMOVE_PAGE,
                &RemovePage {
                    key: crash_key(victim),
                },
            );
            if removed == Ok(true) {
                ack(format!("rm {victim}\n"));
            }
        }
        w += 1;
    }
}

// ---------------------------------------------------------------------------
// Parent: kill, replay, verify
// ---------------------------------------------------------------------------

struct AckLog {
    tried: BTreeSet<u64>,
    put: BTreeSet<u64>,
    try_rm: BTreeSet<u64>,
}

fn parse_acks(path: &Path) -> AckLog {
    let raw = std::fs::read_to_string(path).expect("read ack log");
    let mut log = AckLog {
        tried: BTreeSet::new(),
        put: BTreeSet::new(),
        try_rm: BTreeSet::new(),
    };
    // The final line may be torn by the kill; `ends_with('\n')` decides
    // whether it counts.
    let complete: Vec<&str> = if raw.ends_with('\n') {
        raw.lines().collect()
    } else {
        let mut all: Vec<&str> = raw.lines().collect();
        all.pop();
        all
    };
    for line in complete {
        let mut parts = line.split_whitespace();
        let (Some(tag), Some(w)) = (parts.next(), parts.next()) else {
            continue;
        };
        let Ok(w) = w.parse::<u64>() else { continue };
        match tag {
            "try" => {
                log.tried.insert(w);
            }
            "put" => {
                log.put.insert(w);
            }
            "try-rm" => {
                log.try_rm.insert(w);
            }
            "rm" => {}
            other => panic!("unknown ack tag {other:?}"),
        }
    }
    log
}

/// One fuzzed iteration: spawn the child, let the workload run for a
/// seeded-random slice, `SIGKILL` it, then replay the provider
/// directories and check the commit contract.
fn crash_iteration(iter: u64) {
    let harness =
        std::env::temp_dir().join(format!("blobseer-crash-{}-{iter}", std::process::id()));
    let _ = std::fs::remove_dir_all(&harness);
    std::fs::create_dir_all(&harness).expect("create harness dir");

    let exe = std::env::current_exe().expect("own test binary");
    let stderr = std::fs::File::create(harness.join("child.stderr")).expect("stderr sink");
    let mut child = std::process::Command::new(exe)
        .args(["crash_child", "--exact", "--nocapture", "--test-threads=1"])
        .env("BLOBSEER_CRASH_DIR", &harness)
        .stdout(std::process::Stdio::null())
        .stderr(stderr)
        .spawn()
        .expect("spawn crash child");

    // Wait for the deployment to come up and the workload to visibly
    // run (the manifest lands first, then acks start flowing).
    let deadline = Instant::now() + Duration::from_secs(30);
    let dirs_path = harness.join("dirs.txt");
    let acks_path = harness.join("acks.txt");
    let warmed_up = |p: &Path, min: u64| p.metadata().map(|m| m.len() >= min).unwrap_or(false);
    while !(dirs_path.exists() && warmed_up(&acks_path, 64)) {
        if let Some(status) = child.try_wait().expect("poll child") {
            let err = std::fs::read_to_string(harness.join("child.stderr")).unwrap_or_default();
            panic!("crash child exited on its own ({status}); stderr:\n{err}");
        }
        assert!(
            Instant::now() < deadline,
            "crash child never started its workload"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // The fuzzed offset: a seeded slice of workload time, so different
    // iterations kill mid-append, mid-remove, and mid-compaction.
    let mut seed = 0x5eed_0000 + iter;
    let fuzz_ms = splitmix64(&mut seed) % 150;
    std::thread::sleep(Duration::from_millis(fuzz_ms));
    child.kill().expect("SIGKILL the child"); // SIGKILL on unix — no drop, no unwind
    child.wait().expect("reap the child");

    // Replay what the kill left behind.
    let acks = parse_acks(&acks_path);
    assert!(
        !acks.put.is_empty(),
        "iteration {iter}: the child never acknowledged a put — kill landed too early"
    );
    let dirs: Vec<PathBuf> = std::fs::read_to_string(&dirs_path)
        .expect("read dirs manifest")
        .lines()
        .map(PathBuf::from)
        .collect();
    assert_eq!(dirs.len(), PROVIDERS);

    let mut recovered: BTreeMap<u64, PageBuf> = BTreeMap::new();
    for dir in &dirs {
        let replayed = DataProviderService::open_mmap(dir, MMAP_LOG_CAP, ServiceCosts::zero())
            .expect("replay provider dir after SIGKILL");
        for key in replayed.keys() {
            assert_eq!(key.blob, BlobId(CRASH_BLOB), "foreign key {key:?}");
            assert_eq!(key.index, 0);
            let page = replayed.page(&key).expect("indexed page");
            let prev = recovered.insert(key.write.0, page);
            assert!(prev.is_none(), "page {key:?} recovered on two providers");
        }
    }

    // Loses only uncommitted tails: nothing replay surfaced was
    // invented, and every surfaced payload is byte-identical to what
    // the child wrote for that key.
    for (&w, page) in &recovered {
        assert!(
            acks.tried.contains(&w),
            "iteration {iter}: recovered page {w} was never written"
        );
        assert_eq!(
            page.as_slice(),
            expected_payload(w).as_slice(),
            "iteration {iter}: page {w} recovered but not byte-identical"
        );
    }

    // Recovers every committed page: an acknowledged put whose removal
    // was never even attempted must replay. (A page with an attempted
    // remove may be gone — the remove may have applied with its ack
    // lost to the kill; one that was removed pre-compaction may
    // resurrect — both are within contract and covered above.)
    for &w in acks.put.difference(&acks.try_rm) {
        assert!(
            recovered.contains_key(&w),
            "iteration {iter}: acknowledged page {w} lost by the crash"
        );
    }

    // Clean up the harness dir and the killed child's deployment root
    // (its Drop never ran).
    if let Some(root) = dirs[0].parent() {
        let _ = std::fs::remove_dir_all(root);
    }
    let _ = std::fs::remove_dir_all(&harness);
}

/// The lane itself: several fuzzed kill offsets per run. Each
/// iteration spawns a fresh child, so the kill can land anywhere in
/// the append/remove/compact loop.
#[test]
fn sigkill_mid_workload_loses_only_uncommitted_tails() {
    for iter in 0..5 {
        crash_iteration(iter);
    }
}

// ---------------------------------------------------------------------------
// PR 7: whole-cluster kills — metadata and version nodes die too
// ---------------------------------------------------------------------------

const CLUSTER_PAGE: u64 = 1024;
const CLUSTER_PAGES: u64 = 32;
const CLUSTER_TOTAL: u64 = CLUSTER_PAGE * CLUSTER_PAGES;
const CLUSTER_WRITERS: u64 = 3;

/// Deterministic segment + fill for one logical write `w` — parent and
/// child derive identical bytes from `w` alone.
fn cluster_write_shape(w: u64) -> (blobseer_proto::Segment, u8) {
    let mut state = w ^ 0xfeed_beef_0bad_cafe;
    let start = splitmix64(&mut state) % CLUSTER_PAGES;
    let len = 1 + splitmix64(&mut state) % (CLUSTER_PAGES - start).min(4);
    let fill = splitmix64(&mut state) as u8;
    (
        blobseer_proto::Segment::new(start * CLUSTER_PAGE, len * CLUSTER_PAGE),
        fill,
    )
}

fn cluster_fill(fill: u8, size: u64) -> Vec<u8> {
    (0..size).map(|j| fill.wrapping_add(j as u8)).collect()
}

fn cluster_cfg() -> DeploymentConfig {
    DeploymentConfig::functional(PROVIDERS)
        .tune()
        .transport(TransportKind::Tcp)
        .backend(BackendKind::Mmap)
        .build()
}

/// The whole-cluster child: a tcp × mmap deployment pinned at a root
/// the parent knows (`build_at`), with concurrent writers publishing
/// versions **through the full stack** — provider page logs, metadata
/// journals, version journal — forever, until the parent's `SIGKILL`.
/// A write is acked only after the client observed `latest >= v`: from
/// that moment the version is *published*, and publication is exactly
/// what the durable control plane promises to re-serve.
#[test]
fn crash_cluster_child() {
    let Ok(dir) = std::env::var("BLOBSEER_CRASH_CLUSTER_DIR") else {
        return;
    };
    run_cluster_child(Path::new(&dir));
}

fn run_cluster_child(harness_dir: &Path) -> ! {
    let d = Deployment::build_at(cluster_cfg(), &harness_dir.join("root"));
    let setup = d.client();
    let mut ctx = Ctx::start();
    let info = setup
        .alloc(&mut ctx, CLUSTER_TOTAL, CLUSTER_PAGE)
        .expect("alloc crash blob");

    let acks = std::sync::Mutex::new(
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(harness_dir.join("acks.txt"))
            .expect("open ack log"),
    );
    let ack = |line: String| {
        let mut f = acks.lock().unwrap();
        f.write_all(line.as_bytes()).expect("ack write");
        f.flush().expect("ack flush");
    };
    // Publish the blob id last: once the parent sees it, acks may flow.
    ack(format!("blob {}\n", info.blob.0));

    std::thread::scope(|s| {
        for t in 0..CLUSTER_WRITERS {
            let d = &d;
            let ack = &ack;
            let blob = info.blob;
            s.spawn(move || {
                let c = d.client();
                let mut ctx = Ctx::start();
                // Disjoint w-spaces per writer; interleaving at the
                // version manager is what the kill window fuzzes.
                let mut w = 1 + t;
                loop {
                    let (seg, fill) = cluster_write_shape(w);
                    let data = cluster_fill(fill, seg.size);
                    if let Ok(v) = c.write(&mut ctx, blob, seg.offset, &data) {
                        // Ack only once the version is *published* —
                        // observable to any reader — not merely
                        // completed out of order above a gap.
                        while c.latest(&mut ctx, blob).unwrap_or(0) < v {
                            std::thread::yield_now();
                        }
                        ack(format!("ok {v} {w}\n"));
                    }
                    w += CLUSTER_WRITERS;
                }
            });
        }
    });
    unreachable!("writer threads never return");
}

struct ClusterAcks {
    blob: u64,
    /// version -> logical write `w`, complete lines only.
    published: BTreeMap<u64, u64>,
}

fn parse_cluster_acks(path: &Path) -> ClusterAcks {
    let raw = std::fs::read_to_string(path).expect("read ack log");
    let mut out = ClusterAcks {
        blob: 0,
        published: BTreeMap::new(),
    };
    // The final line may be torn by the kill; `ends_with('\n')` decides
    // whether it counts.
    let complete: Vec<&str> = if raw.ends_with('\n') {
        raw.lines().collect()
    } else {
        let mut all: Vec<&str> = raw.lines().collect();
        all.pop();
        all
    };
    for line in complete {
        let mut parts = line.split_whitespace();
        match (parts.next(), parts.next(), parts.next()) {
            (Some("blob"), Some(b), None) => out.blob = b.parse().expect("blob id"),
            (Some("ok"), Some(v), Some(w)) => {
                let (Ok(v), Ok(w)) = (v.parse::<u64>(), w.parse::<u64>()) else {
                    continue;
                };
                out.published.insert(v, w);
            }
            _ => {}
        }
    }
    out
}

/// One fuzzed whole-cluster kill: SIGKILL takes down data providers,
/// metadata providers, the version manager and the provider manager in
/// one blow — possibly mid-publish, mid-meta-batch, or mid-checkpoint.
/// The parent then performs the cold restart (`build_at` on the same
/// root, a different process) and checks the control-plane contract:
///
/// * replay surfaces exactly a published prefix: `latest` after
///   recovery is at least the highest version the child saw published;
/// * every acked version re-serves its write's bytes byte-identical;
/// * **no torn tree**: every recovered version 0..=latest is fully
///   readable end to end;
/// * restarting again (in-process `restart_cluster`) changes nothing.
fn cluster_crash_iteration(iter: u64) {
    let harness =
        std::env::temp_dir().join(format!("blobseer-ccrash-{}-{iter}", std::process::id()));
    let _ = std::fs::remove_dir_all(&harness);
    std::fs::create_dir_all(&harness).expect("create harness dir");

    let exe = std::env::current_exe().expect("own test binary");
    let stderr = std::fs::File::create(harness.join("child.stderr")).expect("stderr sink");
    let mut child = std::process::Command::new(exe)
        .args([
            "crash_cluster_child",
            "--exact",
            "--nocapture",
            "--test-threads=1",
        ])
        .env("BLOBSEER_CRASH_CLUSTER_DIR", &harness)
        .stdout(std::process::Stdio::null())
        .stderr(stderr)
        .spawn()
        .expect("spawn cluster crash child");

    let deadline = Instant::now() + Duration::from_secs(30);
    let acks_path = harness.join("acks.txt");
    // Wait until some publishes are acked, so the kill always lands on
    // a cluster with recoverable state.
    while !acks_path.metadata().map(|m| m.len() >= 64).unwrap_or(false) {
        if let Some(status) = child.try_wait().expect("poll child") {
            let err = std::fs::read_to_string(harness.join("child.stderr")).unwrap_or_default();
            panic!("cluster crash child exited on its own ({status}); stderr:\n{err}");
        }
        assert!(
            Instant::now() < deadline,
            "cluster crash child never published"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut seed = 0xc1u64 * 0x5eed + iter;
    let fuzz_ms = splitmix64(&mut seed) % 150;
    std::thread::sleep(Duration::from_millis(fuzz_ms));
    child.kill().expect("SIGKILL the cluster child");
    child.wait().expect("reap the child");

    let acks = parse_cluster_acks(&acks_path);
    assert!(
        !acks.published.is_empty(),
        "iteration {iter}: no published version was acked"
    );
    let blob = BlobId(acks.blob);
    let max_acked = *acks.published.keys().next_back().unwrap();

    // The cold restart, in a different process than the one that died.
    let mut d = Deployment::build_at(cluster_cfg(), &harness.join("root"));
    let c = d.client();
    let mut ctx = Ctx::start();
    let latest = c.latest(&mut ctx, blob).expect("blob survives the crash");
    assert!(
        latest >= max_acked,
        "iteration {iter}: published v{max_acked} lost (recovered latest {latest})"
    );

    let verify = |c: &blobseer_core::BlobClient, latest: u64| {
        let mut ctx = Ctx::start();
        // Never a torn tree: every surfaced version reads end to end.
        for v in 0..=latest {
            let (full, _) = c
                .read(
                    &mut ctx,
                    blob,
                    Some(v),
                    blobseer_proto::Segment::new(0, CLUSTER_TOTAL),
                )
                .unwrap_or_else(|e| panic!("iteration {iter}: version {v} torn: {e}"));
            assert_eq!(full.len() as u64, CLUSTER_TOTAL);
        }
        // Every acked publish re-serves its own bytes at its version.
        for (&v, &w) in &acks.published {
            let (seg, fill) = cluster_write_shape(w);
            let (got, _) = c
                .read(&mut ctx, blob, Some(v), seg)
                .unwrap_or_else(|e| panic!("iteration {iter}: acked v{v} unreadable: {e}"));
            assert_eq!(
                got,
                cluster_fill(fill, seg.size),
                "iteration {iter}: acked v{v} (write {w}) not byte-identical"
            );
        }
    };
    verify(&c, latest);

    // Restart idempotence: a second (in-process) cold restart of the
    // recovered cluster changes nothing observable.
    d.restart_cluster().expect("second cold restart");
    let latest2 = c.latest(&mut ctx, blob).expect("blob survives again");
    assert_eq!(latest, latest2, "iteration {iter}: restart not idempotent");
    verify(&c, latest2);

    drop(d);
    let _ = std::fs::remove_dir_all(&harness);
}

/// The whole-cluster lane: several fuzzed kill offsets, each landing
/// wherever the concurrent publish workload happens to be — including
/// mid-publish at the version manager and mid-batch at the metadata
/// journals.
#[test]
fn sigkill_whole_cluster_recovers_published_prefix() {
    for iter in 0..4 {
        cluster_crash_iteration(iter);
    }
}
