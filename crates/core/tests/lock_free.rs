//! End-to-end lock accounting through the full distributed stack — the
//! control-plane analogue of `zero_copy.rs`.
//!
//! Asserts PR 2's lock discipline as *measured numbers*, not claims
//! (taxonomy in `blobseer_util::lockmeter`):
//!
//! * a steady-state WRITE (geometry known, providers registered) takes
//!   **exactly one** version-assignment acquisition — the paper's
//!   sanctioned serialization point — and **zero** other serializing
//!   acquisitions: write planning is lock-free end to end;
//! * a cache-hit READ takes **zero** exclusive acquisitions of any
//!   class: the whole metadata descent runs on shard read locks and
//!   atomic reference bits;
//! * the serialized-control-plane ablation reintroduces the measured
//!   serialization, so the meter (and the `pr2_lockfree` bench built on
//!   it) actually discriminates the two regimes.
//!
//! One test function per regime on one thread, using the thread-local
//! lock meters: the simulated transports dispatch service handlers
//! inline on the calling thread, so manager-, version- and cache-side
//! acquisitions all land on this thread's meter.

use blobseer_core::{Deployment, DeploymentConfig};
use blobseer_proto::Segment;
use blobseer_rpc::Ctx;
use blobseer_util::lockmeter;
use blobseer_util::testsync;

// The serialized-control-plane ablation flag is process global, and
// every test here asserts flag-sensitive meter readings, so they hold
// the shared side of the cross-test ablation lock
// (`blobseer_util::testsync`); the one test that flips the flag takes
// the exclusive side via the `lockmeter::serialized_ablation` RAII
// guard. Meter tests still run in parallel with each other.

const PAGE: u64 = 4096;
const PAGES: u64 = 8;
const TOTAL: u64 = PAGE * PAGES;

fn warm_deployment() -> (
    Deployment,
    blobseer_core::BlobClient,
    Ctx,
    blobseer_proto::BlobId,
) {
    let mut cfg = DeploymentConfig::functional(4);
    cfg.cache_nodes = 1 << 12;
    cfg.replication = 2; // replica fan-out must stay lock-free too
    let d = Deployment::build(cfg);
    let c = d.client();
    let mut ctx = Ctx::start();
    let info = c.alloc(&mut ctx, TOTAL, PAGE).unwrap();
    let blob = info.blob;
    // Warm everything: geometry map, provider roster snapshot, metadata
    // cache (whole-blob write caches the whole latest tree).
    let data = vec![7u8; TOTAL as usize];
    c.write(&mut ctx, blob, 0, &data).unwrap();
    c.read(&mut ctx, blob, None, Segment::new(0, TOTAL))
        .unwrap();
    (d, c, ctx, blob)
}

#[test]
fn steady_state_write_serializes_only_on_version_assignment() {
    let _shared = testsync::ablation_shared();
    let (_d, c, mut ctx, blob) = warm_deployment();
    let data = vec![9u8; TOTAL as usize];

    let snap = lockmeter::thread_snapshot();
    c.write(&mut ctx, blob, 0, &data).unwrap();
    let locks = snap.since();

    assert_eq!(
        locks.serializing, 0,
        "write planning and geometry lookup must acquire no singleton lock: {locks:?}"
    );
    assert_eq!(
        locks.version_assign, 1,
        "exactly the paper-sanctioned version-assignment mutex: {locks:?}"
    );
    // Cache population is the only exclusive work left, and it is
    // sharded and bounded by the number of tree nodes built.
    let nodes_built = blobseer_meta::node_count_for_write(
        &blobseer_proto::Geometry::new(TOTAL, PAGE).unwrap(),
        &Segment::new(0, TOTAL),
    );
    assert!(
        locks.sharded <= nodes_built,
        "sharded acquisitions bounded by tree nodes built: {locks:?} vs {nodes_built}"
    );
}

#[test]
fn cache_hit_read_takes_zero_exclusive_locks() {
    let _shared = testsync::ablation_shared();
    let (_d, c, mut ctx, blob) = warm_deployment();

    let snap = lockmeter::thread_snapshot();
    let (data, _) = c
        .read(&mut ctx, blob, None, Segment::new(0, TOTAL))
        .unwrap();
    let locks = snap.since();

    assert!(data.iter().all(|&b| b == 7));
    assert_eq!(
        locks.total_exclusive(),
        0,
        "a cache-hit read is exclusive-lock-free end to end: {locks:?}"
    );
    assert!(
        locks.shared > 0,
        "the descent does probe the cache (shared acquisitions): {locks:?}"
    );
}

#[test]
fn repeated_opens_of_a_known_blob_are_lock_write_free() {
    let _shared = testsync::ablation_shared();
    let (_d, c, mut ctx, blob) = warm_deployment();

    let snap = lockmeter::thread_snapshot();
    for _ in 0..10 {
        c.info(&mut ctx, blob).unwrap();
        c.latest(&mut ctx, blob).unwrap();
    }
    let locks = snap.since();
    assert_eq!(
        locks.total_exclusive(),
        0,
        "re-opening a known blob must not write-lock the geometry map: {locks:?}"
    );
}

#[test]
fn serialized_ablation_restores_the_old_regime() {
    let (_d, c, mut ctx, blob) = warm_deployment();
    let data = vec![3u8; TOTAL as usize];

    {
        let _ablation = lockmeter::serialized_ablation(true);
        let snap = lockmeter::thread_snapshot();
        c.write(&mut ctx, blob, 0, &data).unwrap();
        c.read(&mut ctx, blob, None, Segment::new(0, TOTAL))
            .unwrap();
        let locks = snap.since();
        assert!(
            locks.serializing > 1,
            "the ablation must serialize planning and every cache access: {locks:?}"
        );
    }

    // Guard dropped: switching back really ends it.
    let _shared = testsync::ablation_shared();
    let snap = lockmeter::thread_snapshot();
    c.read(&mut ctx, blob, None, Segment::new(0, TOTAL))
        .unwrap();
    assert_eq!(snap.since().serializing, 0);
}
