//! PR 10 end-to-end: batched version grants and the sharded version
//! manager, exercised through the whole deployment.
//!
//! Three contracts, straight from the grant protocol's design notes in
//! `blobseer-version`:
//!
//! * **Shard routing is total and durable** — with `version_shards > 1`
//!   every blob lives in exactly one residue-class registry, clients
//!   route to it transparently, and a whole-cluster cold restart
//!   replays *every* shard journal, not just shard 0's.
//! * **A grant is not an ack** — versions assigned by a grant but never
//!   published are volatile: a cold restart forgets them, reissues the
//!   same numbers, and never surfaces them to readers.
//! * **Batching preserves the total order** — 16 writers hammering one
//!   hot blob still produce the dense sequence `1..=16`, and every
//!   intermediate version equals prefix application of its
//!   predecessors.

use blobseer_core::{Deployment, DeploymentConfig};
use blobseer_proto::{BlobError, Segment, WriteId};
use blobseer_rpc::Ctx;
use std::sync::{Arc, Barrier};
use std::time::Duration;

const PAGE: u64 = 1024;
const PAGES: u64 = 32;
const TOTAL: u64 = PAGE * PAGES;

fn seg(o: u64, s: u64) -> Segment {
    Segment::new(o, s)
}

#[test]
fn sharded_deployment_routes_blobs_and_replays_every_journal() {
    const SHARDS: usize = 3;
    let mut d = Deployment::build(
        DeploymentConfig::functional_mmap(3)
            .tune()
            .version_shards(SHARDS)
            .build(),
    );
    let c = d.client();
    let mut ctx = Ctx::start();

    // Blob creation round-robins across the shards, so six allocations
    // land two blobs in every residue class.
    let blobs: Vec<_> = (0..6)
        .map(|_| c.alloc(&mut ctx, TOTAL, PAGE).unwrap().blob)
        .collect();
    let mut residues: Vec<u64> = blobs.iter().map(|b| b.0 % SHARDS as u64).collect();
    residues.sort_unstable();
    assert_eq!(residues, vec![0, 0, 1, 1, 2, 2], "round-robin placement");

    // White-box: each blob exists in exactly its residue-class registry.
    for b in &blobs {
        let home = (b.0 % SHARDS as u64) as usize;
        for s in 0..SHARDS {
            let found = d.registries[s].get(*b).is_ok();
            assert_eq!(found, s == home, "blob {} vs shard {s}", b.0);
        }
    }

    // Every shard has its own journal directory on disk.
    for s in 0..SHARDS {
        let dir = d.version_shard_dir(s).expect("mmap backend is durable");
        assert!(dir.is_dir(), "shard {s} journal at {}", dir.display());
    }

    // Two versions per blob, with blob-distinct payloads.
    for (i, b) in blobs.iter().enumerate() {
        for v in 1..=2u64 {
            let fill = (i as u8 + 1).wrapping_mul(v as u8).wrapping_add(13);
            let data = vec![fill; (2 * PAGE) as usize];
            assert_eq!(c.write(&mut ctx, *b, PAGE, &data).unwrap(), v);
        }
    }

    // Cold restart: every shard journal replays, nothing leaks between
    // residue classes, and all acked data reads back byte-identical.
    d.restart_cluster().unwrap();
    let c = d.client();
    for (i, b) in blobs.iter().enumerate() {
        let (got, latest) = c.read(&mut ctx, *b, None, seg(PAGE, 2 * PAGE)).unwrap();
        assert_eq!(latest, 2, "blob {} latest after restart", b.0);
        let fill = (i as u8 + 1).wrapping_mul(2).wrapping_add(13);
        assert!(got.iter().all(|&x| x == fill), "blob {} payload", b.0);
    }

    // The recovered shards keep allocating from their residue classes:
    // three more blobs extend the same 0,1,2 rotation without colliding
    // with any pre-restart id.
    let fresh: Vec<_> = (0..SHARDS)
        .map(|_| c.alloc(&mut ctx, TOTAL, PAGE).unwrap().blob)
        .collect();
    let mut fresh_res: Vec<u64> = fresh.iter().map(|b| b.0 % SHARDS as u64).collect();
    fresh_res.sort_unstable();
    assert_eq!(fresh_res, vec![0, 1, 2]);
    for f in &fresh {
        assert!(!blobs.contains(f), "fresh id {} collides", f.0);
    }
    // And the recovered cluster still accepts writes on old blobs.
    let data = vec![0x5Au8; PAGE as usize];
    assert_eq!(c.write(&mut ctx, blobs[0], 0, &data).unwrap(), 3);
}

#[test]
fn assigned_but_unpublished_grant_tail_does_not_resurrect() {
    let mut d = Deployment::build(DeploymentConfig::functional_mmap(2));
    let c = d.client();
    let mut ctx = Ctx::start();
    let info = c.alloc(&mut ctx, TOTAL, PAGE).unwrap();
    let blob = info.blob;

    let page_a = vec![0x11u8; PAGE as usize];
    let page_b = vec![0x22u8; PAGE as usize];
    assert_eq!(c.write(&mut ctx, blob, 0, &page_a).unwrap(), 1);
    assert_eq!(c.write(&mut ctx, blob, PAGE, &page_b).unwrap(), 2);

    // White-box: a grant hands out versions 3, 4, 5 — but none of the
    // three writers ever publishes. Assignment is in-memory state; only
    // the publish record is write-ahead.
    let state = d.registry.get(blob).unwrap();
    for i in 0..3u64 {
        let t = state
            .request_version(WriteId(0xDEAD + i), seg(0, PAGE))
            .unwrap();
        assert_eq!(t.version, 3 + i);
    }
    assert_eq!(state.latest(), 2, "unpublished tail never moves latest");

    // Cold restart: the tail evaporates. Latest is unchanged, both
    // acked versions are byte-identical, and the abandoned numbers are
    // reissued to the next real writer instead of leaking a gap.
    d.restart_cluster().unwrap();
    let c = d.client();
    let (got, latest) = c.read(&mut ctx, blob, Some(1), seg(0, PAGE)).unwrap();
    assert_eq!((got, latest), (page_a.clone(), 2));
    let (got, _) = c.read(&mut ctx, blob, Some(2), seg(PAGE, PAGE)).unwrap();
    assert_eq!(got, page_b);
    let err = c.read(&mut ctx, blob, Some(3), seg(0, PAGE)).unwrap_err();
    assert!(
        matches!(
            err,
            BlobError::VersionNotPublished {
                requested: 3,
                latest: 2
            }
        ),
        "{err:?}"
    );
    let page_c = vec![0x33u8; PAGE as usize];
    assert_eq!(
        c.write(&mut ctx, blob, 2 * PAGE, &page_c).unwrap(),
        3,
        "abandoned ticket numbers are reused, not leaked"
    );
    let (got, _) = c
        .read(&mut ctx, blob, Some(3), seg(2 * PAGE, PAGE))
        .unwrap();
    assert_eq!(got, page_c);
}

#[test]
fn hot_blob_sixteen_writers_keep_dense_total_order() {
    const WRITERS: usize = 16;
    // A real grant window so writers actually pile up behind a leader
    // on this host instead of each becoming a leader-of-one.
    let d = Arc::new(Deployment::build(
        DeploymentConfig::functional(4)
            .tune()
            .version_grant_window(Duration::from_millis(2))
            .build(),
    ));
    let setup = d.client();
    let mut ctx = Ctx::start();
    let info = setup.alloc(&mut ctx, TOTAL, PAGE).unwrap();
    let blob = info.blob;

    let barrier = Arc::new(Barrier::new(WRITERS));
    let handles: Vec<_> = (0..WRITERS)
        .map(|t| {
            let d = Arc::clone(&d);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let c = d.client();
                let mut ctx = Ctx::start();
                // Writer t owns page t with a distinct fill byte.
                let fill = t as u8 + 1;
                let data = vec![fill; PAGE as usize];
                barrier.wait();
                let v = c.write(&mut ctx, blob, t as u64 * PAGE, &data).unwrap();
                (v, t)
            })
        })
        .collect();

    let mut order: Vec<(u64, usize)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    order.sort_unstable();

    // Dense total order: exactly the versions 1..=16, no gap, no dup.
    let versions: Vec<u64> = order.iter().map(|(v, _)| *v).collect();
    assert_eq!(versions, (1..=WRITERS as u64).collect::<Vec<_>>());

    // Snapshot semantics: version v shows exactly the pages of the
    // writers serialized at or before v, zeros elsewhere.
    let reader = d.client();
    let mut rctx = Ctx::start();
    for upto in 1..=WRITERS {
        let (got, latest) = reader
            .read(&mut rctx, blob, Some(upto as u64), seg(0, TOTAL))
            .unwrap();
        assert_eq!(latest, WRITERS as u64);
        let written: Vec<usize> = order[..upto].iter().map(|&(_, t)| t).collect();
        for t in 0..WRITERS {
            let page = &got[t * PAGE as usize..(t + 1) * PAGE as usize];
            let expect = if written.contains(&t) { t as u8 + 1 } else { 0 };
            assert!(
                page.iter().all(|&x| x == expect),
                "version {upto}, page {t}"
            );
        }
    }
}
