//! `BlobClient` — the public client library: `ALLOC` / `READ` / `WRITE`
//! exactly as specified in the paper's §II, plus the §VI future-work
//! features (garbage collection, client-side metadata caching, page
//! replication) implemented.
//!
//! Protocol fidelity (§III.B):
//! * **READ**: one version-manager round trip for the latest version, then
//!   a level-by-level descent of the segment tree with *batched, parallel*
//!   metadata fetches, then *parallel* page downloads — no lock anywhere,
//!   no interaction with any writer.
//! * **WRITE**: provider-manager plan → parallel page puts → version +
//!   border links from the version manager → metadata built **in
//!   isolation** → batched metadata puts → completion report.
//!
//! The client charges its own per-node processing costs (deserialization,
//! tree descent, buffer stitching) to the virtual clock — the paper notes
//! "the main limiting factor is actually the performance of the client's
//! processing power", and reproducing Figure 3(a) depends on it.

use crate::heat::HeatTracker;
use crate::options::{ReadOptions, WriteOptions};
use blobseer_dht::{DhtClient, Ring};
use blobseer_meta::read::{assemble_read, assemble_read_into, expand, root_key, Visit};
use blobseer_meta::shape::align_to_pages;
use blobseer_meta::write::build_write_tree;
use blobseer_proto::messages::{
    method, BlobInfo, CompleteWrite, CreateBlob, GcRequest, GetLatest, GetPage, PlanWrite,
    PublishState, PutPage, RemovePage, RequestVersion, WriteTicket,
};
use blobseer_proto::tree::{NodeBody, NodeKey, PageKey, PageLoc, TreeNode};
use blobseer_proto::{BlobError, BlobId, Geometry, NodeId, PageBuf, ProviderId, Segment, Version};
use blobseer_rpc::{Ctx, RetryPolicy, RpcClient, ShardRouter};
use blobseer_simnet::ClientCosts;
use blobseer_util::{lockmeter, ClockCache, FxHashMap};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The client-side metadata-tree cache: a sharded concurrent CLOCK cache
/// of refcounted tree-node bodies. One instance may be shared by any
/// number of [`BlobClient`]s (tree nodes are immutable, so the cache
/// never needs invalidation), letting co-located readers warm one cache
/// instead of N cold ones.
pub type MetaCache = ClockCache<NodeKey, Arc<NodeBody>>;

/// Virtual-time breakdown of one WRITE (Figure 3(b)'s instrument).
#[derive(Clone, Copy, Debug, Default)]
pub struct WriteStats {
    /// Provider-manager plan round trip.
    pub plan_ns: u64,
    /// Parallel page puts.
    pub pages_ns: u64,
    /// Version + border-link round trip.
    pub ticket_ns: u64,
    /// Metadata build + batched DHT puts — the paper's "metadata write".
    pub meta_ns: u64,
    /// Completion report round trip.
    pub publish_ns: u64,
    /// Tree nodes this write created.
    pub nodes_built: u64,
}

impl WriteStats {
    /// The metadata share (ticket + build + store + publish) — what
    /// Fig. 3(b) plots.
    pub fn metadata_ns(&self) -> u64 {
        self.ticket_ns + self.meta_ns + self.publish_ns
    }

    /// Total time.
    pub fn total_ns(&self) -> u64 {
        self.plan_ns + self.pages_ns + self.ticket_ns + self.meta_ns + self.publish_ns
    }
}

/// Virtual-time breakdown of one READ (Figure 3(a)'s instrument).
#[derive(Clone, Copy, Debug, Default)]
pub struct ReadStats {
    /// Version-manager round trip.
    pub latest_ns: u64,
    /// Tree descent with batched metadata fetches — what Fig. 3(a) plots.
    pub meta_ns: u64,
    /// Parallel page downloads + buffer assembly.
    pub data_ns: u64,
    /// Tree nodes visited.
    pub nodes_visited: u64,
}

impl ReadStats {
    /// The metadata share (latest + descent).
    pub fn metadata_ns(&self) -> u64 {
        self.latest_ns + self.meta_ns
    }

    /// Total time.
    pub fn total_ns(&self) -> u64 {
        self.latest_ns + self.meta_ns + self.data_ns
    }
}

/// The resolved pieces of one READ, ready for assembly. `pieces` is
/// `None` for a version-0 (all-zero) read; otherwise it holds the zero
/// ranges and the fetched pages (shared buffers) with their clipped
/// blob ranges.
struct ReadPlan {
    geom: Geometry,
    latest: Version,
    stats: ReadStats,
    #[allow(clippy::type_complexity)]
    pieces: Option<(Vec<Segment>, Vec<(PageLoc, Segment, PageBuf)>)>,
}

/// A client of the blob store. One instance per logical client process;
/// cheap to create. Nothing in it serializes independent operations: the
/// metadata cache is a shared concurrent [`MetaCache`] and the geometry
/// map is read-checked before its write lock is ever touched (see
/// `crates/core/tests/lock_free.rs` for the measured invariant).
pub struct BlobClient {
    rpc: RpcClient,
    vms: ShardRouter,
    pm: NodeId,
    dht: DhtClient,
    costs: ClientCosts,
    cache: Option<Arc<MetaCache>>,
    geoms: RwLock<FxHashMap<BlobId, Geometry>>,
    replication: u32,
    retry: RetryPolicy,
    heat: Option<Arc<HeatTracker>>,
    // Round-robin cursor spreading multi-replica page reads.
    rr: AtomicU64,
    // Round-robin cursor spreading key-less version-manager requests
    // (blob creation) across shards.
    vm_rr: AtomicU64,
}

impl BlobClient {
    /// Assemble a client. Usually called via
    /// [`Deployment::client`](crate::Deployment::client), which hands
    /// every client one shared [`MetaCache`].
    pub fn new(
        rpc: RpcClient,
        vm: NodeId,
        pm: NodeId,
        ring: Arc<RwLock<Ring>>,
        costs: ClientCosts,
        cache: Option<Arc<MetaCache>>,
        replication: u32,
    ) -> Self {
        let dht = DhtClient::new(rpc.clone(), ring);
        Self {
            rpc,
            vms: ShardRouter::new(vec![vm]),
            pm,
            dht,
            costs,
            cache,
            // lint: allow(unmetered-lock) — construction only; every geometry-map
            // acquisition below carries its Shared/Serializing charge
            geoms: RwLock::new(FxHashMap::default()),
            replication,
            retry: RetryPolicy::none(),
            heat: None,
            rr: AtomicU64::new(0),
            vm_rr: AtomicU64::new(0),
        }
    }

    /// Route version-manager traffic across sharded manager nodes:
    /// `nodes[s]` must serve the registry shard owning blob ids
    /// `≡ s (mod nodes.len())`. Blob-keyed requests route by one modulo
    /// (`vm_for`); creation round-robins, since any shard may
    /// allocate (each hands out ids from its own residue class).
    pub fn with_version_nodes(mut self, nodes: Vec<NodeId>) -> Self {
        self.vms = ShardRouter::new(nodes);
        self
    }

    /// The version-manager shard owning `blob`.
    fn vm_for(&self, blob: BlobId) -> NodeId {
        self.vms.route(blob.0)
    }

    /// Set the client-wide default [`RetryPolicy`], applied to
    /// idempotent operations when a call's options don't override it.
    /// The default is [`RetryPolicy::none`] (fail fast).
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Attach a shared [`HeatTracker`]: page fetches are counted and
    /// hot pages are promoted onto extra providers (read fan-out).
    pub fn with_heat(mut self, heat: Arc<HeatTracker>) -> Self {
        self.heat = Some(heat);
        self
    }

    /// The client-wide default retry policy.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// The shared heat tracker, when fan-out is enabled.
    pub fn heat(&self) -> Option<&Arc<HeatTracker>> {
        self.heat.as_ref()
    }

    /// Back off before retry `attempt`, spending the delay on both
    /// clocks: the virtual clock (so sim benches see queueing delay)
    /// and the wall clock (so TCP peers actually get air). Returns
    /// `None` — ending the retry loop — once the policy or the caller's
    /// `deadline_ms` budget (measured in virtual time since `t0`) is
    /// exhausted, or the error is not retryable.
    fn backoff(
        &self,
        ctx: &mut Ctx,
        policy: &RetryPolicy,
        deadline_ms: Option<u64>,
        t0: u64,
        attempt: u32,
        err: &BlobError,
    ) -> Option<()> {
        let delay = policy.backoff_for(attempt, err)?;
        let delay_ns = u64::try_from(delay.as_nanos()).unwrap_or(u64::MAX);
        if let Some(ms) = deadline_ms {
            let budget_ns = ms.saturating_mul(1_000_000);
            if (ctx.vt - t0).saturating_add(delay_ns) > budget_ns {
                return None;
            }
        }
        ctx.advance(delay_ns);
        if delay > Duration::ZERO {
            std::thread::sleep(delay);
        }
        Some(())
    }

    /// `(hits, misses)` of the metadata cache, if enabled. When the cache
    /// is shared, the counters aggregate every sharing client.
    pub fn cache_stats(&self) -> Option<(u64, u64)> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// Record `blob`'s geometry, write-locking the map only when the
    /// entry is actually new or changed — repeated opens of a known blob
    /// stay lock-write-free (geometries are immutable, so the read check
    /// almost always suffices).
    fn remember_geometry(&self, blob: BlobId, geom: Geometry) {
        lockmeter::record_shared();
        if self.geoms.read().get(&blob) == Some(&geom) {
            return;
        }
        lockmeter::record_serializing();
        self.geoms.write().insert(blob, geom);
    }

    /// `ALLOC`: create a blob, returning its descriptor.
    pub fn alloc(
        &self,
        ctx: &mut Ctx,
        total_size: u64,
        page_size: u64,
    ) -> Result<BlobInfo, BlobError> {
        let shard = self
            .vms
            .round_robin(self.vm_rr.fetch_add(1, Ordering::Relaxed));
        let info: BlobInfo = self.rpc.call(
            ctx,
            shard,
            method::CREATE_BLOB,
            &CreateBlob {
                total_size,
                page_size,
            },
        )?;
        self.remember_geometry(info.blob, info.geometry());
        Ok(info)
    }

    /// Blob descriptor (geometry + latest published version).
    pub fn info(&self, ctx: &mut Ctx, blob: BlobId) -> Result<BlobInfo, BlobError> {
        let info: BlobInfo = self.rpc.call(
            ctx,
            self.vm_for(blob),
            method::GET_BLOB,
            &GetLatest { blob },
        )?;
        self.remember_geometry(info.blob, info.geometry());
        Ok(info)
    }

    /// Latest published version.
    pub fn latest(&self, ctx: &mut Ctx, blob: BlobId) -> Result<Version, BlobError> {
        self.rpc.call(
            ctx,
            self.vm_for(blob),
            method::GET_LATEST,
            &GetLatest { blob },
        )
    }

    fn geometry(&self, ctx: &mut Ctx, blob: BlobId) -> Result<Geometry, BlobError> {
        lockmeter::record_shared();
        if let Some(g) = self.geoms.read().get(&blob) {
            return Ok(*g);
        }
        Ok(self.info(ctx, blob)?.geometry())
    }

    // ------------------------------------------------------------------
    // WRITE
    // ------------------------------------------------------------------

    /// `WRITE(id, buffer, offset, size)` for page-aligned segments.
    /// Returns the snapshot version this write produced (`vw`).
    ///
    /// The buffer is copied **once** into a shared [`PageBuf`]; page
    /// splitting, replica fan-out, framing and batching all share that
    /// single allocation. Callers that already hold a `PageBuf` should
    /// use [`BlobClient::write_buf`], which performs zero copies.
    pub fn write(
        &self,
        ctx: &mut Ctx,
        blob: BlobId,
        offset: u64,
        data: &[u8],
    ) -> Result<Version, BlobError> {
        Ok(self.write_with_stats(ctx, blob, offset, data)?.0)
    }

    /// Zero-copy `WRITE`: the caller's buffer is shared, never copied.
    pub fn write_buf(
        &self,
        ctx: &mut Ctx,
        blob: BlobId,
        offset: u64,
        data: PageBuf,
    ) -> Result<Version, BlobError> {
        Ok(self.write_buf_with_stats(ctx, blob, offset, data)?.0)
    }

    /// Canonical `WRITE` entry point: zero-copy buffer plus
    /// [`WriteOptions`] (retry override for the idempotent page puts,
    /// admission deadline). The other write methods are thin forwards.
    pub fn write_buf_with(
        &self,
        ctx: &mut Ctx,
        blob: BlobId,
        offset: u64,
        data: PageBuf,
        opts: &WriteOptions,
    ) -> Result<Version, BlobError> {
        Ok(self.write_buf_stats_with(ctx, blob, offset, data, opts)?.0)
    }

    /// [`BlobClient::write_buf_with`] for a borrowed slice (one metered
    /// copy into a shared [`PageBuf`], like [`BlobClient::write`]).
    pub fn write_with(
        &self,
        ctx: &mut Ctx,
        blob: BlobId,
        offset: u64,
        data: &[u8],
        opts: &WriteOptions,
    ) -> Result<Version, BlobError> {
        self.write_buf_with(ctx, blob, offset, PageBuf::copy_from_slice(data), opts)
    }

    /// [`BlobClient::write`] with per-phase virtual-time breakdown — the
    /// instrument behind Figure 3(b), which reports the *metadata* share
    /// of a write.
    pub fn write_with_stats(
        &self,
        ctx: &mut Ctx,
        blob: BlobId,
        offset: u64,
        data: &[u8],
    ) -> Result<(Version, WriteStats), BlobError> {
        self.write_buf_with_stats(ctx, blob, offset, PageBuf::copy_from_slice(data))
    }

    /// [`BlobClient::write_buf`] with per-phase breakdown.
    pub fn write_buf_with_stats(
        &self,
        ctx: &mut Ctx,
        blob: BlobId,
        offset: u64,
        data: PageBuf,
    ) -> Result<(Version, WriteStats), BlobError> {
        self.write_buf_stats_with(ctx, blob, offset, data, &WriteOptions::default())
    }

    /// The full write pipeline: plan → page puts (idempotent, retried
    /// under `opts`) → version ticket → metadata → publish (never
    /// retried), with the per-phase breakdown.
    pub fn write_buf_stats_with(
        &self,
        ctx: &mut Ctx,
        blob: BlobId,
        offset: u64,
        data: PageBuf,
        opts: &WriteOptions,
    ) -> Result<(Version, WriteStats), BlobError> {
        let t0 = ctx.vt;
        let seg = Segment::new(offset, data.len() as u64);
        let geom = self.geometry(ctx, blob)?;
        let range = geom.validate_aligned(&seg)?;
        let n_pages = range.count();

        // Step 1: provider-manager plan (write id + page placement).
        let plan: blobseer_proto::messages::WritePlan = self.rpc.call(
            ctx,
            self.pm,
            method::PLAN_WRITE,
            &PlanWrite {
                blob,
                pages: n_pages,
                replication: self.replication,
            },
        )?;
        if plan.targets.len() as u64 != n_pages {
            return Err(BlobError::Internal("write plan page count mismatch"));
        }
        let t_plan = ctx.vt;

        // Step 2: parallel page puts — one call per (page, replica).
        // Splitting the buffer into page-sized send buffers is O(1) per
        // page (shared slices of the one write buffer), and every replica
        // of a page shares the same allocation: the fan-out moves
        // refcounts, not bytes.
        //
        // Page puts are the idempotent prefix of the pipeline (pages are
        // immutable: re-putting a key re-stores identical bytes), so
        // pages that collected zero acks — shed or unreachable replicas —
        // are retried under the policy before the write gives up. The
        // version-publish legs below never retry.
        ctx.advance(self.costs.write_page_ns * n_pages);
        let policy = opts.retry.unwrap_or(self.retry);
        let t_retry0 = ctx.vt;
        let mut ok_replicas: Vec<Vec<ProviderId>> = vec![Vec::new(); n_pages as usize];
        let mut attempt = 0u32;
        loop {
            let mut calls: Vec<(NodeId, u16, PutPage)> = Vec::new();
            let mut call_page: Vec<usize> = Vec::new();
            for (i, page_idx) in range.iter().enumerate() {
                if !ok_replicas[i].is_empty() {
                    continue; // acked on a previous attempt
                }
                let key = PageKey {
                    blob,
                    write: plan.write,
                    index: page_idx,
                };
                let start = i * geom.page_size as usize;
                let page_data = data.slice(start..start + geom.page_size as usize);
                for &target in &plan.targets[i] {
                    calls.push((
                        NodeId(target.0),
                        method::PUT_PAGE,
                        PutPage {
                            key,
                            data: page_data.clone(),
                        },
                    ));
                    call_page.push(i);
                }
            }
            let put_results = self.rpc.fan_out::<PutPage, ()>(ctx, &calls);

            // A page is durable on the replicas that acknowledged;
            // require at least one per page.
            let mut last_err = None;
            for (slot, res) in put_results.into_iter().enumerate() {
                let page_i = call_page[slot];
                match res {
                    Ok(()) => ok_replicas[page_i].push(ProviderId(calls[slot].0 .0)),
                    Err(e) => last_err = Some(e),
                }
            }
            if ok_replicas.iter().all(|r| !r.is_empty()) {
                break;
            }
            let err = last_err.unwrap_or(BlobError::Internal("page put failed"));
            if self
                .backoff(ctx, &policy, opts.deadline_ms, t_retry0, attempt, &err)
                .is_none()
            {
                return Err(err);
            }
            attempt += 1;
        }
        let locs: Vec<PageLoc> = range
            .iter()
            .zip(ok_replicas)
            .map(|(page_idx, replicas)| PageLoc {
                key: PageKey {
                    blob,
                    write: plan.write,
                    index: page_idx,
                },
                replicas,
            })
            .collect();
        let t_pages = ctx.vt;

        // Step 3: version number + precomputed border links.
        let ticket: WriteTicket = self.rpc.call(
            ctx,
            self.vm_for(blob),
            method::REQUEST_VERSION,
            &RequestVersion {
                blob,
                write: plan.write,
                offset: seg.offset,
                size: seg.size,
            },
        )?;
        let t_ticket = ctx.vt;

        // Step 4: build metadata in complete isolation, then batched puts.
        let nodes = build_write_tree(&geom, blob, &seg, &locs, &ticket)?;
        ctx.advance(self.costs.build_node_ns * nodes.len() as u64);
        self.dht.put_nodes(ctx, &nodes)?;
        if let Some(cache) = &self.cache {
            // Best effort: a writer never blocks on a contended cache
            // shard just to pre-warm readers — a skipped insert costs at
            // most one DHT fetch later.
            for n in &nodes {
                cache.try_insert(n.key, Arc::new(n.body.clone()));
            }
            ctx.advance(self.costs.cache_ns * nodes.len() as u64);
        }

        let t_meta = ctx.vt;

        // Step 5: report success; the version manager publishes in order.
        let _publish: PublishState = self.rpc.call(
            ctx,
            self.vm_for(blob),
            method::COMPLETE_WRITE,
            &CompleteWrite {
                blob,
                version: ticket.version,
            },
        )?;
        let stats = WriteStats {
            plan_ns: t_plan - t0,
            pages_ns: t_pages - t_plan,
            ticket_ns: t_ticket - t_pages,
            meta_ns: t_meta - t_ticket,
            publish_ns: ctx.vt - t_meta,
            nodes_built: blobseer_meta::node_count_for_write(&geom, &seg),
        };
        Ok((ticket.version, stats))
    }

    /// `WRITE` for arbitrary segments: read-modify-write of the boundary
    /// pages against the latest published snapshot. Note the paper's model
    /// only defines aligned segments (§II); this extension patches at page
    /// granularity, so two *concurrent* unaligned writers touching the
    /// same boundary page resolve last-writer-wins on that page.
    pub fn write_unaligned(
        &self,
        ctx: &mut Ctx,
        blob: BlobId,
        offset: u64,
        data: &[u8],
    ) -> Result<Version, BlobError> {
        let seg = Segment::new(offset, data.len() as u64);
        let geom = self.geometry(ctx, blob)?;
        geom.validate_bounds(&seg)?;
        let envelope = align_to_pages(&geom, &seg);
        if envelope == seg {
            return self.write(ctx, blob, offset, data);
        }
        let (mut buf, _latest) = self.read(ctx, blob, None, envelope)?;
        let start = (seg.offset - envelope.offset) as usize;
        buf[start..start + data.len()].copy_from_slice(data);
        self.write(ctx, blob, envelope.offset, &buf)
    }

    // ------------------------------------------------------------------
    // READ
    // ------------------------------------------------------------------

    /// `READ(id, v, buffer, offset, size)`.
    ///
    /// * `version: None` reads the latest published snapshot.
    /// * `version: Some(v)` fails with
    ///   [`BlobError::VersionNotPublished`] if `v` has not been published —
    ///   exactly the paper's semantics.
    ///
    /// Returns the bytes and `vr`, the latest published version observed
    /// (`vr >= v` always holds). Each page is copied exactly once, from
    /// the (shared) fetched buffer into the result.
    pub fn read(
        &self,
        ctx: &mut Ctx,
        blob: BlobId,
        version: Option<Version>,
        seg: Segment,
    ) -> Result<(Vec<u8>, Version), BlobError> {
        let opts = ReadOptions {
            version,
            ..ReadOptions::default()
        };
        self.read_with(ctx, blob, seg, &opts)
    }

    /// Canonical `READ` entry point: segment plus [`ReadOptions`]
    /// (version pin, retry override, admission deadline). The other
    /// read methods are thin forwards.
    pub fn read_with(
        &self,
        ctx: &mut Ctx,
        blob: BlobId,
        seg: Segment,
        opts: &ReadOptions,
    ) -> Result<(Vec<u8>, Version), BlobError> {
        let (data, latest, _) = self.read_stats_with(ctx, blob, seg, opts)?;
        Ok((data, latest))
    }

    /// Scatter-assembling `READ` into a caller-provided buffer of exactly
    /// `seg.size` bytes: each page is copied exactly once, directly into
    /// `out`; no intermediate result buffer exists.
    pub fn read_into(
        &self,
        ctx: &mut Ctx,
        blob: BlobId,
        version: Option<Version>,
        seg: Segment,
        out: &mut [u8],
    ) -> Result<Version, BlobError> {
        let opts = ReadOptions {
            version,
            ..ReadOptions::default()
        };
        self.read_into_with(ctx, blob, seg, out, &opts)
    }

    /// [`BlobClient::read_into`] with [`ReadOptions`].
    pub fn read_into_with(
        &self,
        ctx: &mut Ctx,
        blob: BlobId,
        seg: Segment,
        out: &mut [u8],
        opts: &ReadOptions,
    ) -> Result<Version, BlobError> {
        if out.len() as u64 != seg.size {
            return Err(BlobError::BadSegment {
                segment: seg,
                reason: "buffer size mismatch",
            });
        }
        let plan = self.read_plan_with(ctx, blob, seg, opts)?;
        match plan.pieces {
            None => out.fill(0),
            Some((zeros, pages)) => {
                let geom = plan.geom;
                assemble_read_into(&geom, &seg, &zeros, &pages, out)?;
            }
        }
        Ok(plan.latest)
    }

    /// Zero-copy `READ` of a single-page-aligned segment: returns the
    /// fetched page buffer itself (a refcount borrow of the provider's
    /// stored page under the in-process transports) — **zero** page
    /// copies end to end. Non-aligned or multi-page segments are
    /// assembled with exactly one copy per page.
    pub fn read_buf(
        &self,
        ctx: &mut Ctx,
        blob: BlobId,
        version: Option<Version>,
        seg: Segment,
    ) -> Result<(PageBuf, Version), BlobError> {
        let opts = ReadOptions {
            version,
            ..ReadOptions::default()
        };
        self.read_buf_with(ctx, blob, seg, &opts)
    }

    /// [`BlobClient::read_buf`] with [`ReadOptions`].
    pub fn read_buf_with(
        &self,
        ctx: &mut Ctx,
        blob: BlobId,
        seg: Segment,
        opts: &ReadOptions,
    ) -> Result<(PageBuf, Version), BlobError> {
        let plan = self.read_plan_with(ctx, blob, seg, opts)?;
        let geom = plan.geom;
        match plan.pieces {
            None => Ok((PageBuf::zeroed(seg.size as usize), plan.latest)),
            Some((zeros, pages)) => {
                // Fast path: the read is exactly one whole page.
                if zeros.is_empty()
                    && pages.len() == 1
                    && seg.size == geom.page_size
                    && seg.offset.is_multiple_of(geom.page_size)
                {
                    let (_, blob_range, data) = &pages[0];
                    if *blob_range == seg && data.len() as u64 == geom.page_size {
                        return Ok((data.clone(), plan.latest));
                    }
                }
                let buf = assemble_read(&geom, &seg, &zeros, &pages)?;
                Ok((PageBuf::from_vec(buf), plan.latest))
            }
        }
    }

    /// [`BlobClient::read`] with a virtual-time breakdown — the instrument
    /// behind Figure 3(a), which reports the *metadata* share of a read.
    pub fn read_with_stats(
        &self,
        ctx: &mut Ctx,
        blob: BlobId,
        version: Option<Version>,
        seg: Segment,
    ) -> Result<(Vec<u8>, Version, ReadStats), BlobError> {
        let opts = ReadOptions {
            version,
            ..ReadOptions::default()
        };
        self.read_stats_with(ctx, blob, seg, &opts)
    }

    /// [`BlobClient::read_with_stats`] with [`ReadOptions`].
    pub fn read_stats_with(
        &self,
        ctx: &mut Ctx,
        blob: BlobId,
        seg: Segment,
        opts: &ReadOptions,
    ) -> Result<(Vec<u8>, Version, ReadStats), BlobError> {
        let plan = self.read_plan_with(ctx, blob, seg, opts)?;
        let stats = plan.stats;
        let latest = plan.latest;
        match plan.pieces {
            None => Ok((vec![0u8; seg.size as usize], latest, stats)),
            Some((zeros, pages)) => {
                let geom = plan.geom;
                let buf = assemble_read(&geom, &seg, &zeros, &pages)?;
                Ok((buf, latest, stats))
            }
        }
    }

    /// [`BlobClient::read_plan`] under the retry loop: reads are
    /// idempotent end to end, so a shed or unreachable attempt is
    /// replayed whole under the effective policy (per-call override,
    /// else the client default) until it succeeds, the policy caps out,
    /// or the `deadline_ms` budget is spent.
    fn read_plan_with(
        &self,
        ctx: &mut Ctx,
        blob: BlobId,
        seg: Segment,
        opts: &ReadOptions,
    ) -> Result<ReadPlan, BlobError> {
        let policy = opts.retry.unwrap_or(self.retry);
        let t0 = ctx.vt;
        let mut attempt = 0u32;
        loop {
            match self.read_plan(ctx, blob, opts.version, seg) {
                Ok(plan) => return Ok(plan),
                Err(e) => {
                    if self
                        .backoff(ctx, &policy, opts.deadline_ms, t0, attempt, &e)
                        .is_none()
                    {
                        return Err(e);
                    }
                    attempt += 1;
                }
            }
        }
    }

    /// The shared READ engine: version resolution, cached level-by-level
    /// tree descent, parallel page fetches. Returns the pieces for the
    /// caller to assemble (`None` pieces = version-0 all-zero read).
    fn read_plan(
        &self,
        ctx: &mut Ctx,
        blob: BlobId,
        version: Option<Version>,
        seg: Segment,
    ) -> Result<ReadPlan, BlobError> {
        let t0 = ctx.vt;
        let geom = self.geometry(ctx, blob)?;
        geom.validate_bounds(&seg)?;

        // Single interaction with the (only) centralized entity.
        let latest = self.latest(ctx, blob)?;
        let t_latest = ctx.vt;
        let v = match version {
            None => latest,
            Some(v) if v > latest => {
                return Err(BlobError::VersionNotPublished {
                    requested: v,
                    latest,
                })
            }
            Some(v) => v,
        };
        if v == 0 {
            let stats = ReadStats {
                latest_ns: t_latest - t0,
                meta_ns: 0,
                data_ns: 0,
                nodes_visited: 0,
            };
            return Ok(ReadPlan {
                geom,
                latest,
                stats,
                pieces: None,
            });
        }

        // Level-by-level descent with batched parallel metadata fetches;
        // cache hits and misses alike hand out refcounted bodies, never
        // deep clones.
        let mut nodes_visited = 0u64;
        let mut frontier = vec![root_key(&geom, blob, v)];
        let mut zeros: Vec<Segment> = Vec::new();
        let mut leaves: Vec<(NodeKey, PageLoc, Segment)> = Vec::new();
        while !frontier.is_empty() {
            let mut bodies: Vec<Option<Arc<NodeBody>>> = vec![None; frontier.len()];
            let mut missing_idx = Vec::new();
            if let Some(cache) = &self.cache {
                for (i, key) in frontier.iter().enumerate() {
                    match cache.get(key) {
                        Some(body) => bodies[i] = Some(body),
                        None => missing_idx.push(i),
                    }
                }
                ctx.advance(self.costs.cache_ns * frontier.len() as u64);
            } else {
                missing_idx = (0..frontier.len()).collect();
            }
            if !missing_idx.is_empty() {
                let keys: Vec<NodeKey> = missing_idx.iter().map(|&i| frontier[i]).collect();
                let fetched = self.dht.get_nodes(ctx, &keys)?;
                for (&i, node) in missing_idx.iter().zip(fetched) {
                    let node = node.ok_or(BlobError::MissingMetadata {
                        blob,
                        version: frontier[i].version,
                    })?;
                    let body = Arc::new(node.body);
                    if let Some(cache) = &self.cache {
                        cache.insert(node.key, Arc::clone(&body));
                    }
                    bodies[i] = Some(body);
                }
                // Client-side processing of freshly fetched nodes.
                ctx.advance(self.costs.read_node_ns * missing_idx.len() as u64);
            }
            let mut next = Vec::new();
            nodes_visited += frontier.len() as u64;
            for (key, body) in frontier.iter().zip(bodies) {
                // lint: allow(panic-on-serving-path) — every missing index was
                // filled by the fetch loop above; a hole is a local logic bug
                let body = body.expect("filled above");
                for visit in expand(&geom, key, &body, &seg)? {
                    match visit {
                        Visit::Descend(k) => next.push(k),
                        Visit::Zeros(z) => zeros.push(z),
                        Visit::Page { page, blob_range } => leaves.push((*key, page, blob_range)),
                    }
                }
            }
            frontier = next;
        }
        let t_meta = ctx.vt;

        // Parallel page downloads with replica failover.
        let pages = self.fetch_pages(ctx, &leaves)?;
        ctx.advance(self.costs.page_ns * pages.len() as u64);
        let stats = ReadStats {
            latest_ns: t_latest - t0,
            meta_ns: t_meta - t_latest,
            data_ns: ctx.vt - t_meta,
            nodes_visited,
        };
        Ok(ReadPlan {
            geom,
            latest,
            stats,
            pieces: Some((zeros, pages)),
        })
    }

    /// Fetch every leaf's page. Single-replica pages go to their
    /// primary; multi-replica (fanned-out or replicated) pages rotate
    /// the starting replica round-robin so a hot page's read load
    /// spreads over every holder. On failure the remaining replicas are
    /// tried in rotation order; if every replica fails, a typed
    /// `Overload` among the failures wins over `MissingPage` (the page
    /// exists — the system is shedding, and the caller's retry policy
    /// should see that).
    ///
    /// Successful fetches feed the shared [`HeatTracker`] (when
    /// enabled); a page crossing the promotion threshold is fanned out
    /// onto one more provider right here, best-effort.
    fn fetch_pages(
        &self,
        ctx: &mut Ctx,
        leaves: &[(NodeKey, PageLoc, Segment)],
    ) -> Result<Vec<(PageLoc, Segment, PageBuf)>, BlobError> {
        if leaves.is_empty() {
            return Ok(Vec::new());
        }
        let starts: Vec<usize> = leaves
            .iter()
            .map(|(_, loc, _)| {
                if loc.replicas.len() > 1 {
                    (self.rr.fetch_add(1, Ordering::Relaxed) % loc.replicas.len() as u64) as usize
                } else {
                    0
                }
            })
            .collect();
        let calls: Vec<(NodeId, u16, GetPage)> = leaves
            .iter()
            .zip(&starts)
            .map(|((_, loc, _), &start)| {
                // Well-formed leaves always carry at least one replica; a
                // malformed one routes to an impossible node and surfaces
                // as MissingPage through the normal failover path.
                let first = loc
                    .replicas
                    .get(start)
                    .copied()
                    .unwrap_or(ProviderId(u32::MAX));
                (NodeId(first.0), method::GET_PAGE, GetPage { key: loc.key })
            })
            .collect();
        let results = self.rpc.fan_out::<GetPage, PageBuf>(ctx, &calls);
        let mut out = Vec::with_capacity(leaves.len());
        for (((leaf_key, loc, range), res), start) in leaves.iter().zip(results).zip(&starts) {
            let data = match res {
                Ok(data) => data,
                Err(first_err) => {
                    // Failover: the remaining replicas, in rotation order.
                    let mut found = None;
                    let mut last_shed = first_err.retry_after_hint_ms();
                    let n = loc.replicas.len();
                    for k in 1..n {
                        let replica = loc.replicas[(start + k) % n];
                        let r: Result<PageBuf, BlobError> = self.rpc.call(
                            ctx,
                            NodeId(replica.0),
                            method::GET_PAGE,
                            &GetPage { key: loc.key },
                        );
                        match r {
                            Ok(data) => {
                                found = Some(data);
                                break;
                            }
                            Err(e) => {
                                if let Some(hint) = e.retry_after_hint_ms() {
                                    last_shed = Some(last_shed.unwrap_or(0).max(hint));
                                }
                            }
                        }
                    }
                    match (found, last_shed) {
                        (Some(data), _) => data,
                        // Every replica failed and at least one shed:
                        // the page is there, the system is overloaded —
                        // keep the typed Overload so retry policies see
                        // it (never demote to MissingPage/Unreachable).
                        (None, Some(hint)) => {
                            return Err(BlobError::Overload {
                                retry_after_hint: hint,
                            })
                        }
                        (None, None) => {
                            return Err(BlobError::MissingPage {
                                tried: loc.replicas.clone(),
                            })
                        }
                    }
                }
            };
            if let Some(heat) = &self.heat {
                if heat.record_read(loc.key) && loc.replicas.len() < heat.options().max_replicas {
                    self.promote_page(ctx, *leaf_key, loc, &data);
                }
            }
            out.push((loc.clone(), *range, data));
        }
        Ok(out)
    }

    /// Fan a hot page out onto one more provider: reserve placement via
    /// the provider manager, store the already-fetched bytes there
    /// (refcount, no copy), and re-put the metadata leaf with the
    /// extended replica list — the publisher/subscriber split: the
    /// original writer's primary publishes, promoted providers
    /// subscribe by joining the leaf's `replicas`. Replica extension is
    /// additive, so stale cached leaves stay valid (they just name
    /// fewer replicas). Best-effort: any failure leaves the previous
    /// state intact and the next threshold crossing tries again.
    fn promote_page(&self, ctx: &mut Ctx, leaf: NodeKey, loc: &PageLoc, data: &PageBuf) {
        let outcome = (|| -> Result<bool, BlobError> {
            let plan: blobseer_proto::messages::WritePlan = self.rpc.call(
                ctx,
                self.pm,
                method::PLAN_WRITE,
                &PlanWrite {
                    blob: loc.key.blob,
                    pages: 1,
                    replication: 1,
                },
            )?;
            let Some(&target) = plan.targets.first().and_then(|t| t.first()) else {
                return Ok(false);
            };
            if loc.replicas.contains(&target) {
                // Placement chose an existing holder; skip this round.
                return Ok(false);
            }
            self.rpc.call::<PutPage, ()>(
                ctx,
                NodeId(target.0),
                method::PUT_PAGE,
                &PutPage {
                    key: loc.key,
                    data: data.clone(),
                },
            )?;
            let mut replicas = loc.replicas.clone();
            replicas.push(target);
            let node = TreeNode {
                key: leaf,
                body: NodeBody::Leaf {
                    page: PageLoc {
                        key: loc.key,
                        replicas,
                    },
                },
            };
            self.dht.put_nodes(ctx, std::slice::from_ref(&node))?;
            if let Some(cache) = &self.cache {
                cache.insert(node.key, Arc::new(node.body));
            }
            Ok(true)
        })();
        if matches!(outcome, Ok(true)) {
            if let Some(heat) = &self.heat {
                heat.record_promotion();
            }
        }
    }

    // ------------------------------------------------------------------
    // Garbage collection (paper §VI future work, implemented)
    // ------------------------------------------------------------------

    /// Discard every version below `keep_from`. Returns
    /// `(tree_nodes_removed, pages_removed)`.
    ///
    /// The version manager computes the dead set (metadata-only
    /// reasoning); the client resolves dead leaves to replica locations,
    /// deletes the pages, then the tree nodes.
    pub fn gc(
        &self,
        ctx: &mut Ctx,
        blob: BlobId,
        keep_from: Version,
    ) -> Result<(u64, u64), BlobError> {
        let plan: blobseer_proto::messages::GcPlan = self.rpc.call(
            ctx,
            self.vm_for(blob),
            method::GC_PLAN,
            &GcRequest { blob, keep_from },
        )?;
        if plan.dead_nodes.is_empty() {
            return Ok((0, 0));
        }
        // Resolve dead leaves to their replica sets.
        let geom = self.geometry(ctx, blob)?;
        let leaf_keys: Vec<NodeKey> = plan
            .dead_nodes
            .iter()
            .copied()
            .filter(|k| k.size == geom.page_size)
            .collect();
        let leaves = self.dht.get_nodes(ctx, &leaf_keys)?;
        let mut page_calls: Vec<(NodeId, u16, RemovePage)> = Vec::new();
        for leaf in leaves.into_iter().flatten() {
            if let NodeBody::Leaf { page } = leaf.body {
                for &replica in &page.replicas {
                    page_calls.push((
                        NodeId(replica.0),
                        method::REMOVE_PAGE,
                        RemovePage { key: page.key },
                    ));
                }
            }
        }
        let removed_pages: u64 = self
            .rpc
            .fan_out::<RemovePage, bool>(ctx, &page_calls)
            .into_iter()
            .filter(|r| matches!(r, Ok(true)))
            .count() as u64;

        // Drop the metadata (all replicas) and purge the local cache.
        let removed_nodes = self.dht.remove_nodes(ctx, &plan.dead_nodes);
        if let Some(cache) = &self.cache {
            for k in &plan.dead_nodes {
                cache.remove(k);
            }
        }
        Ok((removed_nodes, removed_pages))
    }
}
