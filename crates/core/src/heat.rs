//! Hot-page read tracking and fan-out promotion policy.
//!
//! The write path already shares one `PageBuf` across N replicas for
//! free; this module makes that pay off on *reads*. A [`HeatTracker`]
//! counts page fetches per [`PageKey`] (shared per deployment, like the
//! metadata cache, so co-located readers pool their heat); every time a
//! page's read count crosses a multiple of
//! [`FanOutOptions::promote_after_reads`], the reading client **promotes**
//! the page — stores one more replica on a fresh provider and re-puts
//! the metadata leaf with the extended replica list — until
//! [`FanOutOptions::max_replicas`] is reached. Promotion is modeled on
//! dsf-core's publisher/subscriber split: the primary written by the
//! original writer is the publisher, promoted replicas are subscribers
//! registered in the leaf's `replicas` list.
//!
//! Extending a leaf's replica list is *additive*, so the tree-node
//! immutability contract survives in the way that matters: a stale
//! cached leaf still names valid replicas (fewer of them), and readers
//! holding it simply miss the new fan-out until their cache turns over.
//!
//! Readers then rotate across the replica list
//! (`BlobClient::fetch_pages`) instead of hammering the primary, so a
//! hot page's read load spreads over every holder.

use blobseer_proto::tree::PageKey;
use blobseer_util::ShardedMap;

/// Policy knobs for hot-page read fan-out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FanOutOptions {
    /// Reads of one page between promotions: each time a page's fetch
    /// count reaches a multiple of this, one more replica is added.
    pub promote_after_reads: u64,
    /// Replica-count cap per page, primary included.
    pub max_replicas: usize,
}

impl Default for FanOutOptions {
    fn default() -> Self {
        FanOutOptions {
            promote_after_reads: 64,
            max_replicas: 3,
        }
    }
}

/// Shared per-deployment read-heat accounting (the data-plane sharded
/// store is deliberately outside the lockmeter, like the page tables).
pub struct HeatTracker {
    opts: FanOutOptions,
    counts: ShardedMap<PageKey, u64>,
    promotions: std::sync::atomic::AtomicU64,
}

impl HeatTracker {
    /// Build a tracker with the given policy.
    pub fn new(opts: FanOutOptions) -> Self {
        HeatTracker {
            opts: FanOutOptions {
                promote_after_reads: opts.promote_after_reads.max(1),
                max_replicas: opts.max_replicas.max(1),
            },
            counts: ShardedMap::with_shards(64),
            promotions: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The policy the tracker enforces.
    pub fn options(&self) -> &FanOutOptions {
        &self.opts
    }

    /// Count one fetch of `key`; true exactly when the count crosses a
    /// promotion threshold (the calling reader is elected to promote).
    pub fn record_read(&self, key: PageKey) -> bool {
        let count = self.counts.with_or_insert(
            key,
            || 0u64,
            |c| {
                *c += 1;
                *c
            },
        );
        count.is_multiple_of(self.opts.promote_after_reads)
    }

    /// Reads recorded for `key` so far.
    pub fn reads(&self, key: &PageKey) -> u64 {
        self.counts.get_cloned(key).unwrap_or(0)
    }

    /// Count one successful promotion (for benches and tests).
    pub fn record_promotion(&self) {
        self.promotions
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Successful promotions so far.
    pub fn promotions(&self) -> u64 {
        self.promotions.load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_proto::{BlobId, WriteId};

    fn key(i: u64) -> PageKey {
        PageKey {
            blob: BlobId(1),
            write: WriteId(2),
            index: i,
        }
    }

    #[test]
    fn crossing_elects_exactly_one_promotion_per_threshold() {
        let t = HeatTracker::new(FanOutOptions {
            promote_after_reads: 4,
            max_replicas: 3,
        });
        let crossings: Vec<bool> = (0..9).map(|_| t.record_read(key(7))).collect();
        assert_eq!(
            crossings,
            vec![false, false, false, true, false, false, false, true, false]
        );
        assert_eq!(t.reads(&key(7)), 9);
    }

    #[test]
    fn distinct_pages_count_independently() {
        let t = HeatTracker::new(FanOutOptions::default());
        t.record_read(key(1));
        t.record_read(key(1));
        t.record_read(key(2));
        assert_eq!(t.reads(&key(1)), 2);
        assert_eq!(t.reads(&key(2)), 1);
        assert_eq!(t.reads(&key(3)), 0);
    }
}
