//! Deployment assembly: wire every actor of Figure 1 onto a simulated
//! cluster.
//!
//! The paper's canonical topology (§V.C/D): N nodes each hosting **one
//! data provider and one metadata provider**, plus two dedicated nodes for
//! the version manager and the provider manager; clients run on their own
//! nodes. [`Deployment::build`] reproduces exactly that and returns a
//! handle from which any number of [`BlobClient`]s can be spawned.
//!
//! The transport is selectable ([`TransportKind`]): the default simulated
//! cluster with its virtual-time cost model, or real TCP sockets on
//! loopback ([`blobseer_rpc::TcpTransport`]) — same services, same frame
//! bytes, same copy discipline, but every frame actually crosses the
//! kernel.
//!
//! The storage backend is selectable the same way ([`BackendKind`]): the
//! default in-memory page store, or the persistent append-only mapped
//! page log under a per-provider directory — same services, same copy
//! discipline (pages are served as refcounted slices of the log
//! mapping), plus [`Deployment::restart_storage`]: a killed provider
//! re-opened on the directory it died with re-serves every page it
//! acknowledged.
//!
//! Since PR 7 the **control plane** shares that guarantee: on the mmap
//! backend every metadata provider journals its tree-node mutations
//! (`meta-<i>/meta.g<N>.log`) and the version manager journals blob
//! creations and publications (`version/version.g<N>.log`), all through
//! the same record-then-commit engine as the page log, write-ahead of
//! the acknowledgement. [`Deployment::restart_cluster`] is the
//! whole-cluster cold restart: every node kind is killed, reopened from
//! its logs, replayed, and re-served — acknowledged writes come back
//! byte-identical, on either transport. [`Deployment::build_at`] pins
//! the durable root so a *different process* can perform the same cold
//! restart (the SIGKILL crash-injection lane).

use crate::client::{BlobClient, MetaCache};
use crate::heat::{FanOutOptions, HeatTracker};
use crate::vm_service::VersionManagerService;
use blobseer_dht::{DhtNodeService, Ring};
use blobseer_proto::messages::ProviderStats;
use blobseer_proto::{NodeId, ProviderId};
use blobseer_provider::{DataProviderService, ProviderManagerService, Strategy};
use blobseer_rpc::{
    dispatch_frame, AdmissionControlled, AdmissionGate, AdmissionOptions, AggregationPolicy, Frame,
    RetryPolicy, RpcClient, ServerCtx, Service, TcpOptions, TcpTransport, Transport,
};
use blobseer_simnet::{ClientCosts, CostModel, ServiceCosts, SimCluster};
use blobseer_util::recordlog::RecordLogOptions;
use blobseer_version::{RegistryConfig, VersionLog, VersionRegistry, DEFAULT_WINDOW};
use parking_lot::RwLock;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

pub use blobseer_provider::{BackendKind, CompactReport, LogOptions};

/// One storage node's two co-located services (paper: "each hosting one
/// data provider and one metadata provider"), routed by method namespace.
///
/// Both halves are swappable behind locks so a *restart* can be
/// modelled on a live node: the old service (and its in-memory index)
/// is dropped, a fresh one — possibly replayed from a persistent
/// backend — takes its slot, while the node identity and its listener
/// survive. The data half swaps alone for a provider restart; a
/// whole-cluster cold restart ([`Deployment::restart_cluster`]) swaps
/// both.
///
/// Deliberately an `RwLock`, not [`blobseer_util::RcuCell`]: RCU
/// reclaims by retention, so it would pin every dropped incarnation's
/// whole page index for the cell's lifetime — the exact memory a
/// restart must release. The per-frame read is uncontended (writes
/// happen only at restart) and data-plane, hence outside the lockmeter
/// like the sharded page store itself.
pub struct StorageNodeService {
    /// The data-provider half (current incarnation).
    data: RwLock<Arc<DataProviderService>>,
    /// The metadata-provider half (current incarnation).
    meta: RwLock<Arc<DhtNodeService>>,
}

impl StorageNodeService {
    /// Compose a storage node from its two halves.
    pub fn new(data: Arc<DataProviderService>, meta: Arc<DhtNodeService>) -> Self {
        Self {
            // lint: allow(unmetered-lock) — incarnation pointers, written only at restart
            data: RwLock::new(data),
            // lint: allow(unmetered-lock) — incarnation pointer, written only at restart
            meta: RwLock::new(meta),
        }
    }

    /// The current data-provider incarnation (white-box accessor).
    pub fn data(&self) -> Arc<DataProviderService> {
        // lint: allow(unmetered-lock) — uncontended Arc swap read; restart seam, not control plane
        Arc::clone(&self.data.read())
    }

    /// The current metadata-provider incarnation (white-box accessor).
    pub fn meta(&self) -> Arc<DhtNodeService> {
        // lint: allow(unmetered-lock) — uncontended Arc swap read; restart seam, not control plane
        Arc::clone(&self.meta.read())
    }

    /// Swap in a fresh data-provider incarnation (provider restart).
    fn replace_data(&self, data: Arc<DataProviderService>) {
        // lint: allow(unmetered-lock) — restart-only swap, never on a serving path
        *self.data.write() = data;
    }

    /// Swap in a fresh metadata-provider incarnation (cluster restart).
    fn replace_meta(&self, meta: Arc<DhtNodeService>) {
        // lint: allow(unmetered-lock) — restart-only swap, never on a serving path
        *self.meta.write() = meta;
    }
}

impl Service for StorageNodeService {
    fn name(&self) -> &'static str {
        "storage-node"
    }

    fn handle(&self, ctx: &mut ServerCtx, frame: &Frame) -> Frame {
        match frame.method >> 8 {
            0x01 => {
                let data = self.data();
                dispatch_frame(data.as_ref(), ctx, frame)
            }
            0x03 => {
                let meta = self.meta();
                dispatch_frame(meta.as_ref(), ctx, frame)
            }
            _ => blobseer_rpc::error_frame(
                frame.method,
                blobseer_proto::BlobError::Internal("method not served by storage node"),
            ),
        }
    }
}

/// Which transport carries the deployment's frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// The simulated cluster: inline dispatch, virtual-time cost model.
    #[default]
    Sim,
    /// Real TCP sockets on loopback: gather-written frames, lent-on-
    /// receive payloads, wall-clock time. Cost models are ignored.
    Tcp,
}

/// The transport a deployment runs on, with the node-management surface
/// the builder and tests need, independent of which kind it is.
pub enum ClusterHandle {
    /// A simulated cluster (also exposes cost/horizon accessors).
    Sim(Arc<SimCluster>),
    /// A real TCP transport on loopback.
    Tcp(Arc<TcpTransport>),
}

impl ClusterHandle {
    /// The transport as the RPC layer sees it.
    pub fn transport(&self) -> Arc<dyn Transport> {
        match self {
            ClusterHandle::Sim(c) => Arc::clone(c) as _,
            ClusterHandle::Tcp(t) => Arc::clone(t) as _,
        }
    }

    /// The simulated cluster, when that is what this deployment runs on.
    pub fn sim(&self) -> Option<&Arc<SimCluster>> {
        match self {
            ClusterHandle::Sim(c) => Some(c),
            ClusterHandle::Tcp(_) => None,
        }
    }

    /// The TCP transport, when that is what this deployment runs on.
    pub fn tcp(&self) -> Option<&Arc<TcpTransport>> {
        match self {
            ClusterHandle::Sim(_) => None,
            ClusterHandle::Tcp(t) => Some(t),
        }
    }

    /// Add a node.
    pub fn add_node(&self) -> NodeId {
        match self {
            ClusterHandle::Sim(c) => c.add_node(),
            ClusterHandle::Tcp(t) => t.add_node(),
        }
    }

    /// Bind a service to a node (for TCP: start its listener).
    pub fn bind(&self, node: NodeId, svc: Arc<dyn Service>) {
        match self {
            ClusterHandle::Sim(c) => c.bind(node, svc),
            ClusterHandle::Tcp(t) => t.bind(node, svc),
        }
    }

    /// Kill a node: subsequent calls to it fail with `Unreachable`.
    pub fn kill(&self, node: NodeId) {
        match self {
            ClusterHandle::Sim(c) => c.kill(node),
            ClusterHandle::Tcp(t) => t.kill(node),
        }
    }

    /// Revive a previously killed node.
    pub fn revive(&self, node: NodeId) {
        match self {
            ClusterHandle::Sim(c) => c.revive(node),
            ClusterHandle::Tcp(t) => t.revive(node),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        match self {
            ClusterHandle::Sim(c) => c.len(),
            ClusterHandle::Tcp(t) => t.len(),
        }
    }

    /// True when no nodes exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total messages carried (request + response per call on both
    /// transports, so aggregation assertions are transport-agnostic).
    pub fn message_count(&self) -> u64 {
        match self {
            ClusterHandle::Sim(c) => c.message_count(),
            ClusterHandle::Tcp(t) => t.message_count(),
        }
    }

    /// Total payload bytes carried.
    pub fn byte_count(&self) -> u64 {
        match self {
            ClusterHandle::Sim(c) => c.byte_count(),
            ClusterHandle::Tcp(t) => t.byte_count(),
        }
    }

    /// The virtual-time horizon. TCP runs on wall clocks, so its horizon
    /// is always zero — benches that sequence phases by virtual time are
    /// simulation-only.
    pub fn horizon(&self) -> u64 {
        match self {
            ClusterHandle::Sim(c) => c.horizon(),
            ClusterHandle::Tcp(_) => 0,
        }
    }
}

/// Deployment parameters.
#[derive(Clone, Copy, Debug)]
pub struct DeploymentConfig {
    /// Number of storage nodes (data + metadata provider each).
    pub providers: usize,
    /// Page replica count (1 = the paper's base configuration).
    pub replication: u32,
    /// Metadata (DHT) replica count.
    pub meta_replication: usize,
    /// Page placement strategy.
    pub strategy: Strategy,
    /// RAM capacity per data provider, bytes.
    pub provider_capacity: u64,
    /// Transport cost model.
    pub cost: CostModel,
    /// Service processing costs.
    pub service_costs: ServiceCosts,
    /// Client-side processing costs.
    pub client_costs: ClientCosts,
    /// RPC aggregation (the paper's optimization; off for ablations).
    pub aggregation: AggregationPolicy,
    /// Metadata cache capacity in tree nodes (0 disables; the paper's
    /// experiments use 2^20 when enabled). One concurrent cache is built
    /// per deployment and shared by every client it spawns, so
    /// co-located readers warm a single cache.
    pub cache_nodes: usize,
    /// Placement/ring seed.
    pub seed: u64,
    /// Which transport carries the frames.
    pub transport: TransportKind,
    /// Which storage backend providers keep their pages on. `Mmap`
    /// gives every provider its own page-log directory under a
    /// deployment-private temp root (removed when the deployment
    /// drops); its log capacity is `provider_capacity` clamped to
    /// [`MMAP_LOG_CAP`], and the provider registers the clamped value
    /// so the manager's reservations match what the log can hold.
    pub backend: BackendKind,
    /// Page-log tuning for the `Mmap` backend: the fsync-on-commit
    /// durability knob, the group-commit window, and the dead-bytes
    /// thresholds that trigger online compaction. Ignored by `Memory`.
    pub log: LogOptions,
    /// Bounded per-storage-node admission: `Some` wraps every storage
    /// node's dispatch in an [`AdmissionGate`] (`max_inflight` permits,
    /// `max_queue` waiters, typed [`blobseer_proto::BlobError::Overload`]
    /// past either bound — never an unbounded buffer, never a hang).
    /// `None` (the default) serves every frame immediately, the
    /// pre-PR 9 behavior.
    pub admission: Option<AdmissionOptions>,
    /// Retry policy every spawned client starts with, applied only on
    /// idempotent paths (reads and page puts; the version-publish leg
    /// never retries). Defaults to [`RetryPolicy::none`] so fault tests
    /// observe first errors undisturbed; per-call
    /// [`crate::ReadOptions`]/[`crate::WriteOptions`] can override it.
    pub retry: RetryPolicy,
    /// Hot-page read fan-out: `Some` gives the deployment one shared
    /// [`HeatTracker`], and clients promote pages whose read count
    /// crosses the threshold onto extra providers. `None` (the
    /// default) leaves replica lists exactly as written.
    pub fan_out: Option<FanOutOptions>,
    /// Transport tunables for [`TransportKind::Tcp`] (reactor sizing,
    /// connection caps, timeouts). Ignored by the simulated transport.
    pub tcp: TcpOptions,
    /// Number of version-manager shard nodes. Shard `s` of `S` owns the
    /// blob ids `≡ s (mod S)` (residue-class allocation), clients route
    /// by one modulo, and each shard journals/replays independently
    /// under its own directory. `1` (the default) is the classic
    /// single-manager topology, bit-for-bit.
    pub version_shards: usize,
    /// Batch version assignment through the grant protocol (one
    /// `VersionAssign` acquisition per grant group — the default).
    /// `false` is the per-op ablation: every writer pays its own
    /// acquisition, the pre-PR-10 behaviour.
    pub version_batched: bool,
    /// How long a grant leader lingers so concurrent writers can join
    /// its grant (the assignment analogue of the record log's
    /// `group_commit_window`). Zero still batches whatever queued
    /// naturally during the previous drain.
    pub version_grant_window: Duration,
}

/// Upper bound on one provider's page-log size (the file is extended
/// sparsely to its capacity up front so the read-only mapping is
/// created exactly once; functional configs pass `u64::MAX` capacity,
/// which no file system will `set_len`).
pub const MMAP_LOG_CAP: u64 = 4 << 30;

impl DeploymentConfig {
    /// The paper's §V testbed defaults with `providers` storage nodes.
    pub fn grid5000(providers: usize) -> Self {
        Self {
            providers,
            replication: 1,
            meta_replication: 1,
            strategy: Strategy::default(), // power of two choices
            provider_capacity: 4 << 30,    // 4 GB nodes
            cost: CostModel::grid5000(),
            service_costs: ServiceCosts::grid5000(),
            client_costs: ClientCosts::grid5000(),
            aggregation: AggregationPolicy::Batch,
            cache_nodes: 0, // paper's worst case: caching disabled
            seed: 0x5eed,
            transport: TransportKind::Sim,
            backend: BackendKind::Memory,
            log: LogOptions::default(),
            admission: None,
            retry: RetryPolicy::none(),
            fan_out: None,
            tcp: TcpOptions::default(),
            version_shards: 1,
            version_batched: true,
            version_grant_window: Duration::ZERO,
        }
    }

    /// Zero-cost deployment for functional tests: logic identical, all
    /// virtual-time charges zero.
    pub fn functional(providers: usize) -> Self {
        Self {
            providers,
            replication: 1,
            meta_replication: 1,
            strategy: Strategy::default(),
            provider_capacity: u64::MAX,
            cost: CostModel::zero(),
            service_costs: ServiceCosts::zero(),
            client_costs: ClientCosts::zero(),
            aggregation: AggregationPolicy::Batch,
            cache_nodes: 0,
            seed: 0x5eed,
            transport: TransportKind::Sim,
            backend: BackendKind::Memory,
            log: LogOptions::default(),
            admission: None,
            retry: RetryPolicy::none(),
            fan_out: None,
            tcp: TcpOptions::default(),
            version_shards: 1,
            version_batched: true,
            version_grant_window: Duration::ZERO,
        }
    }

    /// [`DeploymentConfig::functional`], but every frame crosses a real
    /// loopback socket: logic and copy discipline identical, time is
    /// wall-clock.
    pub fn functional_tcp(providers: usize) -> Self {
        Self {
            transport: TransportKind::Tcp,
            ..Self::functional(providers)
        }
    }

    /// [`DeploymentConfig::functional`], but every provider persists its
    /// pages to an append-only mapped page log (and serves them as
    /// slices of the mapping).
    pub fn functional_mmap(providers: usize) -> Self {
        Self {
            backend: BackendKind::Mmap,
            ..Self::functional(providers)
        }
    }

    /// Enter the typed builder: tune any subset of knobs off a named
    /// baseline, then [`DeploymentConfigBuilder::build`] back into a
    /// config. This is the one coherent way to configure a deployment
    /// (the historical `with_*` setters are deprecated forwards).
    ///
    /// ```
    /// use blobseer_core::{AdmissionOptions, DeploymentConfig, RetryPolicy, TransportKind};
    ///
    /// let cfg = DeploymentConfig::functional(4)
    ///     .tune()
    ///     .transport(TransportKind::Tcp)
    ///     .admission(AdmissionOptions::default())
    ///     .retry(RetryPolicy::default())
    ///     .build();
    /// assert_eq!(cfg.transport, TransportKind::Tcp);
    /// assert!(cfg.admission.is_some() && cfg.retry.retries());
    /// ```
    pub fn tune(self) -> DeploymentConfigBuilder {
        DeploymentConfigBuilder { config: self }
    }

    /// Select the storage backend (builder style, keeps the rest).
    #[deprecated(note = "use `config.tune().backend(..).build()`")]
    pub fn with_backend(self, backend: BackendKind) -> Self {
        self.tune().backend(backend).build()
    }

    /// Select the transport (builder style, keeps the rest).
    #[deprecated(note = "use `config.tune().transport(..).build()`")]
    pub fn with_transport(self, transport: TransportKind) -> Self {
        self.tune().transport(transport).build()
    }

    /// Replace the page-log tuning wholesale (builder style).
    #[deprecated(note = "use `config.tune().log(..).build()`")]
    pub fn with_log(self, log: LogOptions) -> Self {
        self.tune().log(log).build()
    }

    /// The durability knob: `fdatasync` the page log on every commit
    /// marker.
    #[deprecated(note = "use `config.tune().fsync_on_commit(..).build()`")]
    pub fn with_fsync_on_commit(self, fsync: bool) -> Self {
        self.tune().fsync_on_commit(fsync).build()
    }

    /// The capacity each provider actually registers and enforces:
    /// the configured RAM capacity, clamped to [`MMAP_LOG_CAP`] for the
    /// mmap backend so manager reservations never exceed the log.
    pub fn effective_capacity(&self) -> u64 {
        match self.backend {
            BackendKind::Memory => self.provider_capacity,
            BackendKind::Mmap => self.provider_capacity.min(MMAP_LOG_CAP),
        }
    }
}

/// The typed builder behind [`DeploymentConfig::tune`]: one coherent
/// surface over every deployment knob — transport, backend, page-log
/// tuning, and the PR 9 traffic-shape options (admission, retry,
/// fan-out) — replacing the accreted `with_*` setters.
///
/// Sub-configs stay typed ([`TransportKind`], [`BackendKind`],
/// [`LogOptions`], [`AdmissionOptions`], [`RetryPolicy`],
/// [`FanOutOptions`]); each method overwrites exactly one field and the
/// builder is `Copy`, so partially tuned configs can be forked for
/// ablation matrices.
#[derive(Clone, Copy, Debug)]
pub struct DeploymentConfigBuilder {
    config: DeploymentConfig,
}

impl DeploymentConfigBuilder {
    /// Which transport carries the frames.
    pub fn transport(mut self, transport: TransportKind) -> Self {
        self.config.transport = transport;
        self
    }

    /// Which storage backend providers keep their pages on.
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.config.backend = backend;
        self
    }

    /// Replace the page-log tuning wholesale.
    pub fn log(mut self, log: LogOptions) -> Self {
        self.config.log = log;
        self
    }

    /// The durability knob: `fdatasync` the page log on every commit
    /// marker, so an acknowledged append survives power loss, not just
    /// a process crash. One sync per *group* commit — concurrent
    /// appenders share it.
    pub fn fsync_on_commit(mut self, fsync: bool) -> Self {
        self.config.log.fsync_on_commit = fsync;
        self
    }

    /// Transport tunables for the TCP transport (reactor sizing,
    /// connection caps, timeouts). Ignored by the simulated transport.
    pub fn tcp(mut self, tcp: TcpOptions) -> Self {
        self.config.tcp = tcp;
        self
    }

    /// Bound every storage node's dispatch with an [`AdmissionGate`].
    pub fn admission(mut self, opts: AdmissionOptions) -> Self {
        self.config.admission = Some(opts);
        self
    }

    /// Serve every frame immediately (the default; undoes
    /// [`DeploymentConfigBuilder::admission`]).
    pub fn no_admission(mut self) -> Self {
        self.config.admission = None;
        self
    }

    /// The retry policy every spawned client starts with (idempotent
    /// paths only).
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.config.retry = policy;
        self
    }

    /// Enable hot-page read fan-out with the given promotion policy.
    pub fn fan_out(mut self, opts: FanOutOptions) -> Self {
        self.config.fan_out = Some(opts);
        self
    }

    /// Disable hot-page fan-out (the default).
    pub fn no_fan_out(mut self) -> Self {
        self.config.fan_out = None;
        self
    }

    /// Page replica count written by every client.
    pub fn replication(mut self, replication: u32) -> Self {
        self.config.replication = replication;
        self
    }

    /// Metadata (DHT) replica count.
    pub fn meta_replication(mut self, meta_replication: usize) -> Self {
        self.config.meta_replication = meta_replication;
        self
    }

    /// Page placement strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.config.strategy = strategy;
        self
    }

    /// RAM capacity per data provider, bytes.
    pub fn provider_capacity(mut self, bytes: u64) -> Self {
        self.config.provider_capacity = bytes;
        self
    }

    /// RPC aggregation policy.
    pub fn aggregation(mut self, aggregation: AggregationPolicy) -> Self {
        self.config.aggregation = aggregation;
        self
    }

    /// Metadata cache capacity in tree nodes (0 disables).
    pub fn cache_nodes(mut self, cache_nodes: usize) -> Self {
        self.config.cache_nodes = cache_nodes;
        self
    }

    /// Placement/ring seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Replace the service processing costs wholesale (ablation knob —
    /// e.g. stressing the version-assignment critical section).
    pub fn service_costs(mut self, costs: ServiceCosts) -> Self {
        self.config.service_costs = costs;
        self
    }

    /// Number of version-manager shard nodes (blob ids route by
    /// `id % shards`; each shard journals independently).
    pub fn version_shards(mut self, shards: usize) -> Self {
        self.config.version_shards = shards;
        self
    }

    /// Toggle grant-batched version assignment (`false` = the per-op
    /// ablation: every writer pays its own `VersionAssign` acquisition).
    pub fn version_batched(mut self, batched: bool) -> Self {
        self.config.version_batched = batched;
        self
    }

    /// How long a grant leader lingers so concurrent writers can join
    /// its version grant.
    pub fn version_grant_window(mut self, window: Duration) -> Self {
        self.config.version_grant_window = window;
        self
    }

    /// Finish tuning.
    pub fn build(self) -> DeploymentConfig {
        self.config
    }
}

/// A fully wired system on a simulated cluster or a loopback TCP mesh.
pub struct Deployment {
    /// The cluster (also the transport).
    pub cluster: ClusterHandle,
    /// Configuration used to build it.
    pub config: DeploymentConfig,
    /// Version manager node (shard 0 — the only shard in the classic
    /// single-manager topology).
    pub vm_node: NodeId,
    /// All version-manager shard nodes, in residue order
    /// (`vm_nodes[0] == vm_node`). Clients route `blob_id % shards`.
    pub vm_nodes: Vec<NodeId>,
    /// Provider manager node.
    pub pm_node: NodeId,
    /// Storage nodes, in creation order.
    pub storage_nodes: Vec<NodeId>,
    /// Shard 0's version registry (for white-box assertions in tests).
    pub registry: Arc<VersionRegistry>,
    /// Every shard's version registry, in residue order
    /// (`registries[0] == registry`).
    pub registries: Vec<Arc<VersionRegistry>>,
    /// Storage node service handles (for white-box assertions).
    pub storage: Vec<Arc<StorageNodeService>>,
    /// Provider manager handle.
    pub manager: Arc<ProviderManagerService>,
    /// The shared metadata ring.
    pub ring: Arc<RwLock<Ring>>,
    /// The metadata cache shared by every client of this deployment
    /// (`None` when `cache_nodes == 0`).
    pub meta_cache: Option<Arc<MetaCache>>,
    /// Per-storage-node admission gates, in `storage_nodes` order
    /// (empty when `config.admission` is `None`). White-box access for
    /// shed/queue counters in benches and tests.
    pub gates: Vec<Arc<AdmissionGate>>,
    /// The read-heat tracker shared by every client of this deployment
    /// (`None` when `config.fan_out` is `None`).
    pub heat: Option<Arc<HeatTracker>>,
    /// Shard 0's version manager handle (swappable internals, for
    /// [`Deployment::restart_cluster`] and white-box assertions).
    pub vm: Arc<VersionManagerService>,
    /// Every shard's version manager handle, in residue order
    /// (`vms[0] == vm`).
    pub vms: Vec<Arc<VersionManagerService>>,
    /// Root of the per-node durable directories (`Some` only for the
    /// mmap backend): `provider-<i>` page logs, `meta-<i>` metadata
    /// journals, `version` the version-manager journal.
    data_root: Option<PathBuf>,
    /// Whether the deployment created `data_root` itself (and thus
    /// removes it on drop). [`Deployment::build_at`] adopts a
    /// caller-owned root that must survive the deployment — that is the
    /// whole point of a cold-restart harness.
    owns_root: bool,
}

impl Deployment {
    /// Build the paper's topology on a fresh cluster of the configured
    /// transport kind.
    pub fn build(config: DeploymentConfig) -> Self {
        Self::build_inner(config, None)
    }

    /// [`Deployment::build`], but every durable directory lives under
    /// the caller-supplied `root`, which is **not** removed on drop.
    /// Building twice on the same root is a whole-cluster cold restart
    /// across processes: the second build replays every page log,
    /// metadata journal and version journal found there. Mmap backend
    /// only.
    pub fn build_at(config: DeploymentConfig, root: &Path) -> Self {
        assert_eq!(
            config.backend,
            BackendKind::Mmap,
            "an explicit durable root needs the persistent backend"
        );
        Self::build_inner(config, Some(root.to_path_buf()))
    }

    fn build_inner(config: DeploymentConfig, root_override: Option<PathBuf>) -> Self {
        assert!(config.providers >= 1, "need at least one storage node");
        assert!(
            config.version_shards >= 1,
            "need at least one version-manager shard"
        );
        let cluster = match config.transport {
            TransportKind::Sim => ClusterHandle::Sim(Arc::new(SimCluster::new(config.cost))),
            TransportKind::Tcp => {
                ClusterHandle::Tcp(Arc::new(TcpTransport::with_options(config.tcp)))
            }
        };

        // Dedicated manager nodes (paper: "deployed on separate,
        // dedicated nodes"). Extra version-manager shards come right
        // after the classic two, so the single-shard node layout is
        // untouched.
        let vm_node = cluster.add_node();
        let pm_node = cluster.add_node();
        let mut vm_nodes = vec![vm_node];
        for _ in 1..config.version_shards {
            vm_nodes.push(cluster.add_node());
        }

        // Per-node durable directories for the persistent backend.
        let owns_root = root_override.is_none();
        let data_root = match config.backend {
            BackendKind::Memory => None,
            BackendKind::Mmap => Some(root_override.unwrap_or_else(|| {
                use std::sync::atomic::{AtomicU64, Ordering};
                static NEXT: AtomicU64 = AtomicU64::new(0);
                std::env::temp_dir().join(format!(
                    "blobseer-deploy-{}-{}",
                    std::process::id(),
                    NEXT.fetch_add(1, Ordering::Relaxed)
                ))
            })),
        };
        if let Some(root) = &data_root {
            // lint: allow(panic-on-serving-path) — deployment construction at
            // startup; failing fast beats serving with no data root
            std::fs::create_dir_all(root).expect("create deployment data root");
        }

        // The version-manager shards: durable (journaled + replayed)
        // when the deployment has a durable root, classic in-memory
        // otherwise. Each shard owns its residue class of blob ids and
        // its own journal directory.
        let mut vms = Vec::with_capacity(config.version_shards);
        let mut registries = Vec::with_capacity(config.version_shards);
        for (s, node) in vm_nodes.iter().enumerate() {
            let (svc, reg) = build_version_service(&config, data_root.as_deref(), s);
            cluster.bind(*node, Arc::clone(&svc) as Arc<dyn Service>);
            vms.push(svc);
            registries.push(reg);
        }
        let vm = Arc::clone(&vms[0]);
        let registry = Arc::clone(&registries[0]);

        let manager = Arc::new(ProviderManagerService::new(
            config.strategy,
            config.seed,
            config.service_costs,
        ));
        cluster.bind(pm_node, manager.clone() as Arc<dyn Service>);

        // Storage nodes.
        let capacity = config.effective_capacity();
        let mut storage_nodes = Vec::with_capacity(config.providers);
        let mut storage = Vec::with_capacity(config.providers);
        let mut gates = Vec::new();
        for i in 0..config.providers {
            let node = cluster.add_node();
            let data = build_data_service(&config, data_root.as_deref(), i);
            let meta = build_meta_service(&config, data_root.as_deref(), i);
            let svc = Arc::new(StorageNodeService::new(data, meta));
            // With admission configured, the bound service is the gated
            // wrapper around the same `Arc` the white-box handle keeps:
            // restarts still swap incarnations inside `svc`, and the
            // gate sits at the dispatch layer on either transport.
            match config.admission {
                None => cluster.bind(node, svc.clone() as Arc<dyn Service>),
                Some(opts) => {
                    let gate = Arc::new(AdmissionGate::new(opts));
                    cluster.bind(
                        node,
                        Arc::new(AdmissionControlled::new(svc.clone(), Arc::clone(&gate)))
                            as Arc<dyn Service>,
                    );
                    gates.push(gate);
                }
            }
            // Register with the provider manager (in a real run this is an
            // RPC from the provider at startup; the registration content is
            // identical).
            manager.register(ProviderId(node.0), capacity);
            storage_nodes.push(node);
            storage.push(svc);
        }

        // lint: allow(unmetered-lock) — ring construction at deployment build; the
        // client-side read locks carry their own sanction in dht::client
        let ring = Arc::new(RwLock::new(Ring::new(
            &storage_nodes,
            128,
            config.meta_replication,
            config.seed,
        )));

        let meta_cache =
            (config.cache_nodes > 0).then(|| Arc::new(MetaCache::new(config.cache_nodes)));
        let heat = config.fan_out.map(|opts| Arc::new(HeatTracker::new(opts)));

        let d = Self {
            cluster,
            config,
            vm_node,
            vm_nodes,
            pm_node,
            storage_nodes,
            registry,
            registries,
            storage,
            manager,
            ring,
            meta_cache,
            gates,
            heat,
            vm,
            vms,
            data_root,
            owns_root,
        };
        // A build over pre-existing durable state (build_at on a used
        // root) is a cold restart: the manager's soft write-id counter
        // must move past every id the replayed state still references.
        d.advance_write_floor();
        d
    }

    /// Raise the provider manager's write-id allocator past every write
    /// id visible in the replayed state (provider page indexes and the
    /// recovered version histories), so fresh writes can never collide
    /// with durable pages under a reused `PageKey`.
    fn advance_write_floor(&self) {
        let mut floor = 0u64;
        for svc in &self.storage {
            for key in svc.data().keys() {
                floor = floor.max(key.write.0);
            }
        }
        for registry in &self.registries {
            for state in registry.states() {
                for v in 1..=state.latest() {
                    if let Some(rec) = state.record(v) {
                        floor = floor.max(rec.write.0);
                    }
                }
            }
        }
        self.manager.advance_write_ids(floor + 1);
    }

    /// Spawn a client on its own fresh node. All clients of one
    /// deployment share the same concurrent metadata cache, the same
    /// default [`RetryPolicy`], and (when fan-out is configured) the
    /// same [`HeatTracker`].
    pub fn client(&self) -> BlobClient {
        let node = self.cluster.add_node();
        let rpc = RpcClient::new(self.cluster.transport(), node)
            .with_aggregation(self.config.aggregation);
        let mut client = BlobClient::new(
            rpc,
            self.vm_node,
            self.pm_node,
            Arc::clone(&self.ring),
            self.config.client_costs,
            self.meta_cache.clone(),
            self.config.replication,
        )
        .with_version_nodes(self.vm_nodes.clone())
        .with_retry_policy(self.config.retry);
        if let Some(heat) = &self.heat {
            client = client.with_heat(Arc::clone(heat));
        }
        client
    }

    /// Kill storage node `i` (both of its services become unreachable).
    pub fn kill_storage(&self, i: usize) {
        self.cluster.kill(self.storage_nodes[i]);
        self.manager.mark_dead(ProviderId(self.storage_nodes[i].0));
    }

    /// Revive storage node `i` and re-register it. The provider's
    /// process state is intact (the sim's "death with intact memory
    /// image" semantics) — contrast [`Deployment::restart_storage`].
    pub fn revive_storage(&self, i: usize) {
        self.cluster.revive(self.storage_nodes[i]);
        self.manager.register(
            ProviderId(self.storage_nodes[i].0),
            self.config.effective_capacity(),
        );
    }

    /// **Restart** storage node `i`'s data provider: the old incarnation
    /// (and its in-memory serving index) is dropped, a fresh one opens
    /// on the same backend state, the node is revived and re-registered.
    ///
    /// With the mmap backend the fresh provider replays its page log
    /// from the same directory and re-serves every acknowledged page;
    /// with the memory backend a restart is a cold, empty provider —
    /// exactly the data-loss the persistent backend exists to prevent.
    pub fn restart_storage(&self, i: usize) {
        let data = build_data_service(&self.config, self.data_root.as_deref(), i);
        self.storage[i].replace_data(data);
        self.revive_storage(i);
    }

    /// Whole-cluster **cold restart**: kill every node kind — data
    /// providers, metadata providers, version manager, provider manager
    /// — drop all their in-memory state, reopen each from its durable
    /// directory, replay, and re-serve. Node identities, listeners and
    /// client handles survive (services swap internally), so existing
    /// clients keep working against the recovered cluster.
    ///
    /// On the mmap backend every acknowledged write is re-served
    /// byte-identical: page logs replay into the data providers, the
    /// metadata journals replay into the DHT nodes, and the version
    /// journal replays into a fresh registry whose latest published
    /// version is exactly the last durable one. The provider manager's
    /// state is soft (rebuilt by re-registration, as in a real
    /// deployment), except its write-id allocator, which is advanced
    /// past every replayed id so recycled `PageKey`s cannot corrupt
    /// recovered versions.
    ///
    /// On the memory backend this is the documented **negative
    /// control**: there is nothing durable to replay, so the cluster
    /// comes back *empty* — every previously acknowledged byte is gone.
    /// The restart itself still succeeds cleanly and subsequent reads
    /// fail with typed errors ([`blobseer_proto::BlobError::UnknownBlob`]),
    /// never a hang or a panic; `crates/core/tests/matrix_e2e.rs`
    /// asserts exactly that. This is the data-loss mode the durable
    /// backend exists to prevent.
    ///
    /// Restarting twice is identical to restarting once (replay is
    /// idempotent — the version journal checkpoints on open).
    pub fn restart_cluster(&mut self) -> Result<(), blobseer_proto::BlobError> {
        // Kill everything first: a cold restart has no surviving node.
        for node in &self.vm_nodes {
            self.cluster.kill(*node);
        }
        self.cluster.kill(self.pm_node);
        for i in 0..self.storage_nodes.len() {
            self.kill_storage(i);
        }

        // Reopen + replay each service from its durable directory (or
        // fresh and empty on the volatile backend).
        for (i, svc) in self.storage.iter().enumerate() {
            svc.replace_data(build_data_service(
                &self.config,
                self.data_root.as_deref(),
                i,
            ));
            svc.replace_meta(build_meta_service(
                &self.config,
                self.data_root.as_deref(),
                i,
            ));
        }
        // Replay every shard's journal into a fresh registry/log pair.
        for (s, svc) in self.vms.iter().enumerate() {
            let (registry, vlog) =
                reopen_version_state(&self.config, self.data_root.as_deref(), s)?;
            svc.replace(Arc::clone(&registry), vlog);
            self.registries[s] = registry;
        }
        self.registry = Arc::clone(&self.registries[0]);

        // The shared client-side cache belongs to the old incarnation:
        // on the volatile backend it could serve nodes the restarted
        // cluster no longer stores.
        self.meta_cache = (self.config.cache_nodes > 0)
            .then(|| Arc::new(MetaCache::new(self.config.cache_nodes)));
        // Read heat is an in-memory popularity signal, not durable
        // state: a cold restart starts counting from zero.
        self.heat = self
            .config
            .fan_out
            .map(|opts| Arc::new(HeatTracker::new(opts)));

        self.advance_write_floor();

        // Bring the nodes back; providers re-register exactly as their
        // startup RPC would.
        for node in &self.vm_nodes {
            self.cluster.revive(*node);
        }
        self.cluster.revive(self.pm_node);
        for i in 0..self.storage_nodes.len() {
            self.revive_storage(i);
        }
        Ok(())
    }

    /// The page-log directory of storage node `i` (`Some` only for the
    /// mmap backend).
    pub fn backend_dir(&self, i: usize) -> Option<PathBuf> {
        self.data_root.as_deref().map(|r| provider_dir(r, i))
    }

    /// The metadata-journal directory of storage node `i` (`Some` only
    /// for the mmap backend).
    pub fn meta_dir(&self, i: usize) -> Option<PathBuf> {
        self.data_root.as_deref().map(|r| meta_dir(r, i))
    }

    /// Shard 0's version-manager journal directory (`Some` only for the
    /// mmap backend).
    pub fn version_dir(&self) -> Option<PathBuf> {
        self.version_shard_dir(0)
    }

    /// Version-manager shard `s`'s journal directory (`Some` only for
    /// the mmap backend). Shard 0 keeps the classic `version` directory
    /// so single-shard layouts are unchanged on disk; shard `s > 0`
    /// journals under `version-<s>`.
    pub fn version_shard_dir(&self, s: usize) -> Option<PathBuf> {
        self.data_root.as_deref().map(|r| version_shard_dir(r, s))
    }

    /// Compact storage node `i`'s page log: rewrite the live pages into
    /// a fresh generation and reclaim the dead bytes (removed pages,
    /// superseded re-puts). `Ok(None)` on the memory backend — nothing
    /// to compact, its removes free eagerly.
    pub fn compact_storage(
        &self,
        i: usize,
    ) -> Result<Option<CompactReport>, blobseer_proto::BlobError> {
        self.storage[i].data().compact()
    }

    /// Send a heartbeat for storage node `i` with its true current usage
    /// (drives the least-loaded strategy in long benches).
    pub fn heartbeat(&self, i: usize) {
        let stats: ProviderStats = self.storage[i].data().stats();
        self.manager
            .heartbeat(ProviderId(self.storage_nodes[i].0), stats);
    }

    /// Total pages stored across the cluster.
    pub fn total_pages(&self) -> usize {
        self.storage.iter().map(|s| s.data().page_count()).sum()
    }

    /// Total metadata tree nodes stored across the cluster.
    pub fn total_tree_nodes(&self) -> usize {
        self.storage.iter().map(|s| s.meta().len()).sum()
    }
}

/// Storage node `i`'s page-log directory under the deployment's data
/// root — the **single** source of the naming scheme, shared by the
/// builder, [`Deployment::restart_storage`] and
/// [`Deployment::backend_dir`]: restart must reopen exactly the
/// directory the original incarnation wrote.
fn provider_dir(data_root: &Path, i: usize) -> PathBuf {
    data_root.join(format!("provider-{i}"))
}

/// Storage node `i`'s metadata-journal directory (same contract as
/// [`provider_dir`]: builder and restart must agree).
fn meta_dir(data_root: &Path, i: usize) -> PathBuf {
    data_root.join(format!("meta-{i}"))
}

/// Version-manager shard `s`'s journal directory. Shard 0 keeps the
/// pre-sharding name `version` (so existing single-shard layouts replay
/// unchanged); later shards get `version-<s>`.
fn version_shard_dir(data_root: &Path, s: usize) -> PathBuf {
    if s == 0 {
        data_root.join("version")
    } else {
        data_root.join(format!("version-{s}"))
    }
}

/// The [`RegistryConfig`] for version-manager shard `s` of this
/// deployment: residue-class membership plus the grant-protocol knobs.
fn registry_config(config: &DeploymentConfig, s: usize) -> RegistryConfig {
    RegistryConfig {
        window: DEFAULT_WINDOW,
        batched: config.version_batched,
        grant_window: config.version_grant_window,
        shard: s as u32,
        shards: config.version_shards as u32,
    }
}

/// The control-plane journals inherit the page log's durability knobs
/// (fsync-on-commit, group-commit window); compaction thresholds do not
/// apply — both journals checkpoint/rewrite on their own schedule.
fn record_log_options(config: &DeploymentConfig) -> RecordLogOptions {
    RecordLogOptions {
        fsync_on_commit: config.log.fsync_on_commit,
        group_commit_window: config.log.group_commit_window,
    }
}

/// Build storage node `i`'s metadata half: journaled (and replayed)
/// under `meta-<i>` when the deployment has a durable root, volatile
/// otherwise.
fn build_meta_service(
    config: &DeploymentConfig,
    data_root: Option<&Path>,
    i: usize,
) -> Arc<DhtNodeService> {
    match data_root {
        None => Arc::new(DhtNodeService::new(config.service_costs)),
        Some(root) => Arc::new(
            DhtNodeService::open_durable(
                &meta_dir(root, i),
                record_log_options(config),
                config.service_costs,
            )
            // lint: allow(panic-on-serving-path) — deployment construction at startup
            .expect("open metadata journal"),
        ),
    }
}

/// Replay (or freshly create) version-manager shard `s`'s durable state.
fn reopen_version_state(
    config: &DeploymentConfig,
    data_root: Option<&Path>,
    s: usize,
) -> Result<(Arc<VersionRegistry>, Option<Arc<VersionLog>>), blobseer_proto::BlobError> {
    let reg_config = registry_config(config, s);
    match data_root {
        None => Ok((Arc::new(VersionRegistry::with_config(reg_config)), None)),
        Some(root) => {
            let (vlog, registry) = VersionLog::open_with(
                &version_shard_dir(root, s),
                record_log_options(config),
                reg_config,
            )?;
            Ok((Arc::new(registry), Some(Arc::new(vlog))))
        }
    }
}

/// Build version-manager shard `s`'s service for the configured backend.
fn build_version_service(
    config: &DeploymentConfig,
    data_root: Option<&Path>,
    s: usize,
) -> (Arc<VersionManagerService>, Arc<VersionRegistry>) {
    let opened = reopen_version_state(config, data_root, s);
    // lint: allow(panic-on-serving-path) — deployment construction at startup
    let (registry, vlog) = opened.expect("open version journal");
    let vm = match vlog {
        None => Arc::new(VersionManagerService::new(
            Arc::clone(&registry),
            config.service_costs,
        )),
        Some(log) => Arc::new(VersionManagerService::with_log(
            Arc::clone(&registry),
            log,
            config.service_costs,
        )),
    };
    (vm, registry)
}

/// Build storage node `i`'s data-provider service for the configured
/// backend (fresh for memory; opened — and replayed — from its page-log
/// directory for mmap).
fn build_data_service(
    config: &DeploymentConfig,
    data_root: Option<&Path>,
    i: usize,
) -> Arc<DataProviderService> {
    match config.backend {
        BackendKind::Memory => Arc::new(DataProviderService::new(
            config.provider_capacity,
            config.service_costs,
        )),
        BackendKind::Mmap => {
            // lint: allow(panic-on-serving-path) — config invariant: the mmap
            // backend always carries a data root (set in DeploymentConfig)
            let dir = provider_dir(data_root.expect("mmap backend has a data root"), i);
            Arc::new(
                DataProviderService::open_mmap_with(
                    &dir,
                    config.effective_capacity(),
                    config.log,
                    config.service_costs,
                )
                // lint: allow(panic-on-serving-path) — deployment construction at startup
                .expect("open mmap provider backend"),
            )
        }
    }
}

impl Drop for Deployment {
    fn drop(&mut self) {
        if !self.owns_root {
            return;
        }
        if let Some(root) = &self.data_root {
            // Unlinking while mapped is fine on unix: served PageBufs
            // keep their pages alive until the last slice drops.
            let _ = std::fs::remove_dir_all(root);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_paper_topology() {
        let d = Deployment::build(DeploymentConfig::functional(5));
        assert_eq!(d.storage_nodes.len(), 5);
        assert_eq!(d.cluster.len(), 2 + 5);
        assert_eq!(d.manager.provider_count(), 5);
        assert_eq!(d.total_pages(), 0);
        assert!(d.cluster.sim().is_some() && d.cluster.tcp().is_none());
    }

    #[test]
    fn builds_paper_topology_on_tcp() {
        let d = Deployment::build(DeploymentConfig::functional_tcp(3));
        assert_eq!(d.cluster.len(), 2 + 3);
        assert_eq!(d.manager.provider_count(), 3);
        let tcp = d.cluster.tcp().expect("tcp transport");
        // Every service node listens on a real loopback port.
        for node in [d.vm_node, d.pm_node]
            .into_iter()
            .chain(d.storage_nodes.iter().copied())
        {
            assert!(tcp.addr(node).is_some(), "node {node:?} must listen");
        }
        assert_eq!(d.cluster.horizon(), 0, "tcp runs on wall clocks");
    }

    #[test]
    fn builds_paper_topology_on_mmap_backend() {
        let d = Deployment::build(DeploymentConfig::functional_mmap(3));
        assert_eq!(d.manager.provider_count(), 3);
        for i in 0..3 {
            let dir = d.backend_dir(i).expect("mmap deployments have dirs");
            assert!(
                dir.join("pages.g0.log").exists(),
                "generation-0 page log exists for {i}"
            );
            assert_eq!(
                d.storage[i].data().backend_kind(),
                blobseer_provider::BackendKind::Mmap
            );
        }
        // Registered capacity is the clamped log capacity, so manager
        // reservations can never exceed what the log holds.
        let p = d
            .manager
            .projection(ProviderId(d.storage_nodes[0].0))
            .unwrap();
        assert_eq!(p.capacity, MMAP_LOG_CAP);
        let root = d.backend_dir(0).unwrap().parent().unwrap().to_path_buf();
        drop(d);
        assert!(!root.exists(), "data root removed on drop");
    }

    #[test]
    #[allow(deprecated)] // the compat contract under test
    fn deprecated_setters_forward_to_the_builder() {
        let a = DeploymentConfig::functional(1)
            .with_transport(TransportKind::Tcp)
            .with_backend(BackendKind::Mmap)
            .with_fsync_on_commit(true);
        let b = DeploymentConfig::functional(1)
            .tune()
            .transport(TransportKind::Tcp)
            .backend(BackendKind::Mmap)
            .fsync_on_commit(true)
            .build();
        assert_eq!(a.transport, b.transport);
        assert_eq!(a.backend, b.backend);
        assert_eq!(a.log.fsync_on_commit, b.log.fsync_on_commit);
    }

    #[test]
    fn admission_gates_wire_into_dispatch_and_serve_under_capacity() {
        let cfg = DeploymentConfig::functional(2)
            .tune()
            .admission(blobseer_rpc::AdmissionOptions::default())
            .build();
        let d = Deployment::build(cfg);
        assert_eq!(d.gates.len(), 2, "one gate per storage node");
        let c = d.client();
        let mut ctx = blobseer_rpc::Ctx::start();
        let info = c.alloc(&mut ctx, 1 << 20, 4096).unwrap();
        let v = c.write(&mut ctx, info.blob, 0, &[3u8; 8192]).unwrap();
        let (data, _) = c
            .read(
                &mut ctx,
                info.blob,
                Some(v),
                blobseer_proto::Segment::new(0, 8192),
            )
            .unwrap();
        assert!(data.iter().all(|&b| b == 3));
        let admitted: u64 = d.gates.iter().map(|g| g.stats().admitted).sum();
        let shed: u64 = d.gates.iter().map(|g| g.stats().shed).sum();
        assert!(admitted > 0, "traffic flowed through the gates");
        assert_eq!(shed, 0, "an unloaded deployment sheds nothing");
    }

    #[test]
    fn fan_out_config_builds_a_shared_heat_tracker() {
        let cfg = DeploymentConfig::functional(1)
            .tune()
            .fan_out(crate::FanOutOptions::default())
            .build();
        let d = Deployment::build(cfg);
        let heat = d.heat.as_ref().expect("fan-out implies a tracker");
        let c = d.client();
        assert!(
            Arc::ptr_eq(heat, c.heat().expect("clients share the tracker")),
            "every client pools heat in the deployment tracker"
        );
    }

    #[test]
    fn composite_routing_by_namespace() {
        use blobseer_proto::messages::{method, GetLatest};
        let d = Deployment::build(DeploymentConfig::functional(1));
        // A version-manager method sent to a storage node must be refused.
        let frame = Frame::from_msg(
            method::GET_LATEST,
            &GetLatest {
                blob: blobseer_proto::BlobId(1),
            },
        );
        let mut ctx = ServerCtx::new(0);
        let resp = d.storage[0].handle(&mut ctx, &frame);
        assert!(blobseer_rpc::parse_response::<u64>(&resp).is_err());
    }
}
