//! Per-call option structs for the [`BlobClient`](crate::BlobClient)
//! read/write entry points.
//!
//! Instead of multiplying method variants (`read`, `read_into`,
//! `read_buf`, `read_with_stats`, each times every knob), the canonical
//! entry points `read_with` / `write_with` take one options struct with
//! a [`Default`]; the historical signatures survive as thin forwards.

use blobseer_proto::Version;
use blobseer_rpc::RetryPolicy;

/// Options for one READ.
///
/// ```
/// use blobseer_core::ReadOptions;
/// let opts = ReadOptions::default();       // latest version, client policy
/// let pinned = ReadOptions::at_version(3); // paper semantics: fail if unpublished
/// assert_eq!(pinned.version, Some(3));
/// assert!(opts.version.is_none());
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ReadOptions {
    /// Version pin: `None` reads the latest published snapshot;
    /// `Some(v)` fails with `VersionNotPublished` if `v` is not
    /// published yet — exactly the paper's semantics.
    pub version: Option<Version>,
    /// Retry override. `None` uses the client's deployment-level
    /// [`RetryPolicy`]; `Some` replaces it for this call. Reads are
    /// idempotent, so every attempt is safe.
    pub retry: Option<RetryPolicy>,
    /// Admission deadline in milliseconds of virtual time: once this
    /// much has been spent (including backoff), the call stops retrying
    /// and surfaces the last error. `None` = bounded only by the retry
    /// policy's attempt cap.
    pub deadline_ms: Option<u64>,
}

impl ReadOptions {
    /// Read pinned at `version`.
    pub fn at_version(version: Version) -> Self {
        ReadOptions {
            version: Some(version),
            ..ReadOptions::default()
        }
    }

    /// Read the latest snapshot with an explicit retry override.
    pub fn with_retry(retry: RetryPolicy) -> Self {
        ReadOptions {
            retry: Some(retry),
            ..ReadOptions::default()
        }
    }
}

/// Options for one WRITE.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WriteOptions {
    /// Retry override for the **idempotent prefix** of the write
    /// pipeline only — the parallel page puts (pages are immutable, so
    /// re-putting a key re-stores identical bytes). The version-publish
    /// leg (`REQUEST_VERSION` / `COMPLETE_WRITE`) is not idempotent and
    /// never retries, whatever this is set to.
    pub retry: Option<RetryPolicy>,
    /// Admission deadline in milliseconds of virtual time for the page
    /// puts; past it the write stops retrying sheds and fails with the
    /// last typed error.
    pub deadline_ms: Option<u64>,
}

impl WriteOptions {
    /// Write with an explicit retry override for the page-put leg.
    pub fn with_retry(retry: RetryPolicy) -> Self {
        WriteOptions {
            retry: Some(retry),
            ..WriteOptions::default()
        }
    }
}
