//! The version manager as an RPC service (paper §III.A: "the key actor of
//! the system").
//!
//! All state lives in [`blobseer_version::VersionRegistry`]; this wrapper
//! adds wire dispatch and simulated processing costs. Note what is *not*
//! here: no locks around reads of the latest version (atomic load), no
//! serialization between completion reports (lock-free publish window) —
//! only version assignment takes the per-blob mutex, for microseconds.
//!
//! Since PR 2 that claim is measured, not asserted: the assignment mutex
//! is charged to `blobseer_util::lockmeter` under its own
//! `VersionAssign` class. Since PR 10 the charge is per **grant**, not
//! per write: a grant leader pays one acquisition for its whole group
//! (`crates/version` grant protocol), so a solo WRITE still records
//! exactly one `VersionAssign` while a hot-blob storm records `1/group`
//! per op — strictly below 1.0 under contention, which the CI bench
//! gate enforces. The simulated cost mirrors the meter: the handler
//! charges `version_assign_ns` times the acquisitions *this call*
//! performed, so followers riding a grant are free on both meters.
//!
//! ## Durability (PR 7)
//!
//! When built [`with_log`](VersionManagerService::with_log), the service
//! journals through a [`blobseer_version::VersionLog`] **write-ahead**:
//! `CREATE_BLOB` logs the blob before its id is acknowledged, and
//! `COMPLETE_WRITE` logs the publication *before* the version becomes
//! observable in the publish window — so a reader that ever saw
//! `latest >= v` is guaranteed to see `v` again after a cold restart.
//! The registry/log pair is swappable
//! ([`VersionManagerService::replace`]) so a cluster restart can replay
//! into fresh state without rebinding the RPC endpoint. Log appends are
//! positioned writes coordinated by the engine's group-commit machinery
//! — durability plumbing, not data-plane serialization, so the
//! steady-state lock budget (one `VersionAssign` lock per WRITE, zero
//! serializing locks) is unchanged; the bench gate holds it to that.

use blobseer_proto::messages::{
    method, CompleteWrite, CreateBlob, GcRequest, GetLatest, PublishState, RequestVersion,
};
use blobseer_proto::{BlobError, Geometry};
use blobseer_rpc::{error_frame, respond, Frame, ServerCtx, Service};
use blobseer_simnet::ServiceCosts;
use blobseer_version::{VersionLog, VersionRegistry};
use parking_lot::RwLock;
use std::sync::Arc;

/// RPC facade over the version registry.
pub struct VersionManagerService {
    /// Swap-read only: taken shared per request, exclusively only by
    /// [`replace`](Self::replace) during a cluster restart. Not a
    /// steady-state serialization point.
    registry: RwLock<Arc<VersionRegistry>>,
    log: RwLock<Option<Arc<VersionLog>>>,
    costs: ServiceCosts,
}

impl VersionManagerService {
    /// Wrap a registry (volatile: no journal, the pre-PR-7 behaviour).
    pub fn new(registry: Arc<VersionRegistry>, costs: ServiceCosts) -> Self {
        Self {
            // lint: allow(unmetered-lock) — incarnation pointers, swapped only at cluster restart
            registry: RwLock::new(registry),
            // lint: allow(unmetered-lock) — incarnation pointer, swapped only at cluster restart
            log: RwLock::new(None),
            costs,
        }
    }

    /// Wrap a registry with a write-ahead journal: creations and
    /// publications are logged before they are acknowledged.
    pub fn with_log(
        registry: Arc<VersionRegistry>,
        log: Arc<VersionLog>,
        costs: ServiceCosts,
    ) -> Self {
        Self {
            // lint: allow(unmetered-lock) — incarnation pointers, swapped only at cluster restart
            registry: RwLock::new(registry),
            // lint: allow(unmetered-lock) — incarnation pointer, swapped only at cluster restart
            log: RwLock::new(Some(log)),
            costs,
        }
    }

    /// The underlying registry (shared with tests/recovery tooling).
    pub fn registry(&self) -> Arc<VersionRegistry> {
        // lint: allow(unmetered-lock) — uncontended Arc swap read; the registry's own
        // VersionAssign mutex is the metered serialization point
        Arc::clone(&self.registry.read())
    }

    /// The current journal, if durable.
    fn log(&self) -> Option<Arc<VersionLog>> {
        // lint: allow(unmetered-lock) — uncontended Arc swap read; journal appends are
        // kernel writes, not control-plane locks
        self.log.read().clone()
    }

    /// True when creations/publications are journaled.
    pub fn is_durable(&self) -> bool {
        // lint: allow(unmetered-lock) — introspection accessor off the serving path
        self.log.read().is_some()
    }

    /// Journal size in bytes (0 when volatile).
    pub fn log_bytes(&self) -> u64 {
        // lint: allow(unmetered-lock) — introspection accessor off the serving path
        self.log.read().as_ref().map_or(0, |l| l.log_bytes())
    }

    /// Swap in a freshly replayed registry/journal pair (cluster
    /// restart). In-flight requests against the old registry finish
    /// against the old state; new requests see the replayed one.
    pub fn replace(&self, registry: Arc<VersionRegistry>, log: Option<Arc<VersionLog>>) {
        // lint: allow(unmetered-lock) — restart-only swaps, never on a serving path
        *self.log.write() = log;
        // lint: allow(unmetered-lock) — restart-only swap, never on a serving path
        *self.registry.write() = registry;
    }
}

impl Service for VersionManagerService {
    fn name(&self) -> &'static str {
        "version-manager"
    }

    fn handle(&self, ctx: &mut ServerCtx, frame: &Frame) -> Frame {
        match frame.method {
            method::CREATE_BLOB => {
                ctx.charge(self.costs.manager_query_ns);
                respond(frame, |m: CreateBlob| {
                    let geom = Geometry::new(m.total_size, m.page_size)?;
                    let state = self.registry().create_blob(geom);
                    // Write-ahead: the id escapes only through this ack,
                    // so journaling before returning makes the creation
                    // recoverable the moment any client learns of it.
                    if let Some(log) = self.log() {
                        log.record_create(state.blob, &state.geom)?;
                    }
                    Ok(state.info())
                })
            }
            method::GET_BLOB => {
                ctx.charge(self.costs.manager_query_ns);
                respond(frame, |m: GetLatest| {
                    Ok(self.registry().get(m.blob)?.info())
                })
            }
            method::GET_LATEST => {
                ctx.charge(self.costs.manager_query_ns);
                respond(frame, |m: GetLatest| {
                    Ok(self.registry().get(m.blob)?.latest())
                })
            }
            method::REQUEST_VERSION => {
                // Charged after the grant resolves: the leader pays
                // `version_assign_ns` per acquisition it performed for
                // the group, followers pay nothing — the simulated cost
                // mirrors the lock meter exactly.
                let costs = self.costs;
                respond(frame, |m: RequestVersion| {
                    let state = self.registry().get(m.blob)?;
                    let grant = state.request_version_grant(m.write, m.segment())?;
                    ctx.charge(costs.version_assign_ns * u64::from(grant.acquired));
                    Ok(grant.ticket)
                })
            }
            method::COMPLETE_WRITE => {
                ctx.charge(self.costs.manager_query_ns);
                respond(frame, |m: CompleteWrite| {
                    let state = self.registry().get(m.blob)?;
                    // Write-ahead: journal the publication before the
                    // version can become observable. A crash after the
                    // append but before `complete_write` leaves a
                    // harmless never-observed record (replay drops it
                    // past the gap); a crash after `complete_write`
                    // finds it durable — no observable version is ever
                    // lost. Already-completed versions skip the journal
                    // so duplicate completions stay errors without
                    // bloating the log.
                    if let Some(log) = self.log() {
                        let rec = state
                            .record(m.version)
                            .ok_or(BlobError::Internal("completion for unassigned version"))?;
                        if !rec.is_completed() {
                            // Grouped append: concurrent publishers from
                            // one grant flush as a single BSVRPUB1 batch
                            // under one commit marker. Still write-ahead
                            // — this returns only once the caller's
                            // record is covered by a durable marker.
                            log.record_publish_grouped(m.blob, m.version, rec.write, &rec.seg)?;
                        }
                    }
                    Ok(PublishState {
                        latest: state.complete_write(m.version)?,
                    })
                })
            }
            method::GC_PLAN => {
                ctx.charge(self.costs.version_assign_ns);
                respond(frame, |m: GcRequest| {
                    let state = self.registry().get(m.blob)?;
                    Ok(state.gc_plan(m.keep_from))
                })
            }
            other => error_frame(other, BlobError::Internal("unknown version-manager method")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_proto::messages::{BlobInfo, BorderLink, WriteTicket};
    use blobseer_proto::WriteId;
    use blobseer_rpc::parse_response;

    fn svc() -> VersionManagerService {
        VersionManagerService::new(Arc::new(VersionRegistry::default()), ServiceCosts::zero())
    }

    #[test]
    fn create_and_query_blob() {
        let s = svc();
        let mut ctx = ServerCtx::new(0);
        let resp = s.handle(
            &mut ctx,
            &Frame::from_msg(
                method::CREATE_BLOB,
                &CreateBlob {
                    total_size: 4096,
                    page_size: 1024,
                },
            ),
        );
        let info = parse_response::<BlobInfo>(&resp).unwrap();
        assert_eq!(info.latest, 0);
        let resp = s.handle(
            &mut ctx,
            &Frame::from_msg(method::GET_LATEST, &GetLatest { blob: info.blob }),
        );
        assert_eq!(parse_response::<u64>(&resp).unwrap(), 0);
    }

    #[test]
    fn bad_geometry_rejected() {
        let s = svc();
        let mut ctx = ServerCtx::new(0);
        let resp = s.handle(
            &mut ctx,
            &Frame::from_msg(
                method::CREATE_BLOB,
                &CreateBlob {
                    total_size: 100,
                    page_size: 10,
                },
            ),
        );
        assert!(parse_response::<BlobInfo>(&resp).is_err());
    }

    #[test]
    fn full_write_cycle_over_rpc() {
        let s = svc();
        let mut ctx = ServerCtx::new(0);
        let resp = s.handle(
            &mut ctx,
            &Frame::from_msg(
                method::CREATE_BLOB,
                &CreateBlob {
                    total_size: 4096,
                    page_size: 1024,
                },
            ),
        );
        let info = parse_response::<BlobInfo>(&resp).unwrap();

        let resp = s.handle(
            &mut ctx,
            &Frame::from_msg(
                method::REQUEST_VERSION,
                &RequestVersion {
                    blob: info.blob,
                    write: WriteId(1),
                    offset: 1024,
                    size: 1024,
                },
            ),
        );
        let ticket = parse_response::<WriteTicket>(&resp).unwrap();
        assert_eq!(ticket.version, 1);
        // First write: every border links to version 0.
        assert!(ticket
            .borders
            .iter()
            .all(|b: &BorderLink| b.left.or(b.right) == Some(0)));

        let resp = s.handle(
            &mut ctx,
            &Frame::from_msg(
                method::COMPLETE_WRITE,
                &CompleteWrite {
                    blob: info.blob,
                    version: 1,
                },
            ),
        );
        assert_eq!(parse_response::<PublishState>(&resp).unwrap().latest, 1);
    }

    #[test]
    fn unknown_blob_errors() {
        let s = svc();
        let mut ctx = ServerCtx::new(0);
        let resp = s.handle(
            &mut ctx,
            &Frame::from_msg(
                method::GET_LATEST,
                &GetLatest {
                    blob: blobseer_proto::BlobId(99),
                },
            ),
        );
        assert!(matches!(
            parse_response::<u64>(&resp),
            Err(BlobError::UnknownBlob(_))
        ));
    }
}
