//! The version manager as an RPC service (paper §III.A: "the key actor of
//! the system").
//!
//! All state lives in [`blobseer_version::VersionRegistry`]; this wrapper
//! adds wire dispatch and simulated processing costs. Note what is *not*
//! here: no locks around reads of the latest version (atomic load), no
//! serialization between completion reports (lock-free publish window) —
//! only version assignment takes the per-blob mutex, for microseconds.
//!
//! Since PR 2 that claim is measured, not asserted: the assignment mutex
//! is charged to `blobseer_util::lockmeter` under its own
//! `VersionAssign` class, and `crates/core/tests/lock_free.rs` asserts a
//! steady-state WRITE acquires it exactly once and acquires **no** other
//! serializing lock anywhere in the stack.

use blobseer_proto::messages::{
    method, CompleteWrite, CreateBlob, GcRequest, GetLatest, PublishState, RequestVersion,
};
use blobseer_proto::{BlobError, Geometry};
use blobseer_rpc::{error_frame, respond, Frame, ServerCtx, Service};
use blobseer_simnet::ServiceCosts;
use blobseer_version::VersionRegistry;
use std::sync::Arc;

/// RPC facade over the version registry.
pub struct VersionManagerService {
    registry: Arc<VersionRegistry>,
    costs: ServiceCosts,
}

impl VersionManagerService {
    /// Wrap a registry.
    pub fn new(registry: Arc<VersionRegistry>, costs: ServiceCosts) -> Self {
        Self { registry, costs }
    }

    /// The underlying registry (shared with tests/recovery tooling).
    pub fn registry(&self) -> &Arc<VersionRegistry> {
        &self.registry
    }
}

impl Service for VersionManagerService {
    fn name(&self) -> &'static str {
        "version-manager"
    }

    fn handle(&self, ctx: &mut ServerCtx, frame: &Frame) -> Frame {
        match frame.method {
            method::CREATE_BLOB => {
                ctx.charge(self.costs.manager_query_ns);
                respond(frame, |m: CreateBlob| {
                    let geom = Geometry::new(m.total_size, m.page_size)?;
                    let state = self.registry.create_blob(geom);
                    Ok(state.info())
                })
            }
            method::GET_BLOB => {
                ctx.charge(self.costs.manager_query_ns);
                respond(frame, |m: GetLatest| Ok(self.registry.get(m.blob)?.info()))
            }
            method::GET_LATEST => {
                ctx.charge(self.costs.manager_query_ns);
                respond(frame, |m: GetLatest| {
                    Ok(self.registry.get(m.blob)?.latest())
                })
            }
            method::REQUEST_VERSION => {
                ctx.charge(self.costs.version_assign_ns);
                respond(frame, |m: RequestVersion| {
                    let state = self.registry.get(m.blob)?;
                    state.request_version(m.write, m.segment())
                })
            }
            method::COMPLETE_WRITE => {
                ctx.charge(self.costs.manager_query_ns);
                respond(frame, |m: CompleteWrite| {
                    let state = self.registry.get(m.blob)?;
                    Ok(PublishState {
                        latest: state.complete_write(m.version)?,
                    })
                })
            }
            method::GC_PLAN => {
                ctx.charge(self.costs.version_assign_ns);
                respond(frame, |m: GcRequest| {
                    let state = self.registry.get(m.blob)?;
                    Ok(state.gc_plan(m.keep_from))
                })
            }
            other => error_frame(other, BlobError::Internal("unknown version-manager method")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_proto::messages::{BlobInfo, BorderLink, WriteTicket};
    use blobseer_proto::WriteId;
    use blobseer_rpc::parse_response;

    fn svc() -> VersionManagerService {
        VersionManagerService::new(Arc::new(VersionRegistry::default()), ServiceCosts::zero())
    }

    #[test]
    fn create_and_query_blob() {
        let s = svc();
        let mut ctx = ServerCtx::new(0);
        let resp = s.handle(
            &mut ctx,
            &Frame::from_msg(
                method::CREATE_BLOB,
                &CreateBlob {
                    total_size: 4096,
                    page_size: 1024,
                },
            ),
        );
        let info = parse_response::<BlobInfo>(&resp).unwrap();
        assert_eq!(info.latest, 0);
        let resp = s.handle(
            &mut ctx,
            &Frame::from_msg(method::GET_LATEST, &GetLatest { blob: info.blob }),
        );
        assert_eq!(parse_response::<u64>(&resp).unwrap(), 0);
    }

    #[test]
    fn bad_geometry_rejected() {
        let s = svc();
        let mut ctx = ServerCtx::new(0);
        let resp = s.handle(
            &mut ctx,
            &Frame::from_msg(
                method::CREATE_BLOB,
                &CreateBlob {
                    total_size: 100,
                    page_size: 10,
                },
            ),
        );
        assert!(parse_response::<BlobInfo>(&resp).is_err());
    }

    #[test]
    fn full_write_cycle_over_rpc() {
        let s = svc();
        let mut ctx = ServerCtx::new(0);
        let resp = s.handle(
            &mut ctx,
            &Frame::from_msg(
                method::CREATE_BLOB,
                &CreateBlob {
                    total_size: 4096,
                    page_size: 1024,
                },
            ),
        );
        let info = parse_response::<BlobInfo>(&resp).unwrap();

        let resp = s.handle(
            &mut ctx,
            &Frame::from_msg(
                method::REQUEST_VERSION,
                &RequestVersion {
                    blob: info.blob,
                    write: WriteId(1),
                    offset: 1024,
                    size: 1024,
                },
            ),
        );
        let ticket = parse_response::<WriteTicket>(&resp).unwrap();
        assert_eq!(ticket.version, 1);
        // First write: every border links to version 0.
        assert!(ticket
            .borders
            .iter()
            .all(|b: &BorderLink| b.left.or(b.right) == Some(0)));

        let resp = s.handle(
            &mut ctx,
            &Frame::from_msg(
                method::COMPLETE_WRITE,
                &CompleteWrite {
                    blob: info.blob,
                    version: 1,
                },
            ),
        );
        assert_eq!(parse_response::<PublishState>(&resp).unwrap().latest, 1);
    }

    #[test]
    fn unknown_blob_errors() {
        let s = svc();
        let mut ctx = ServerCtx::new(0);
        let resp = s.handle(
            &mut ctx,
            &Frame::from_msg(
                method::GET_LATEST,
                &GetLatest {
                    blob: blobseer_proto::BlobId(99),
                },
            ),
        );
        assert!(matches!(
            parse_response::<u64>(&resp),
            Err(BlobError::UnknownBlob(_))
        ));
    }
}
