//! # blobseer-core
//!
//! The paper's system, assembled: version-manager service, deployment
//! builder reproducing the Figure 1 topology on the simulated cluster, and
//! the [`BlobClient`] implementing `ALLOC` / `READ` / `WRITE` with
//! parallel fan-out, client-side metadata caching, page/metadata
//! replication and garbage collection.
//!
//! ```
//! use blobseer_core::{Deployment, DeploymentConfig};
//! use blobseer_rpc::Ctx;
//! use blobseer_proto::Segment;
//!
//! let d = Deployment::build(DeploymentConfig::functional(4));
//! let client = d.client();
//! let mut ctx = Ctx::start();
//! let info = client.alloc(&mut ctx, 1 << 20, 4096).unwrap();
//! let v = client.write(&mut ctx, info.blob, 0, &[7u8; 8192]).unwrap();
//! assert_eq!(v, 1);
//! let (data, latest) = client
//!     .read(&mut ctx, info.blob, Some(v), Segment::new(0, 8192))
//!     .unwrap();
//! assert_eq!(latest, 1);
//! assert!(data.iter().all(|&b| b == 7));
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod deployment;
pub mod local;
pub mod vm_service;

pub use client::{BlobClient, MetaCache};
pub use deployment::{
    BackendKind, ClusterHandle, CompactReport, Deployment, DeploymentConfig, LogOptions,
    StorageNodeService, TransportKind, MMAP_LOG_CAP,
};
pub use local::LocalEngine;
pub use vm_service::VersionManagerService;
