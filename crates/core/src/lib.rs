//! # blobseer-core
//!
//! The paper's system, assembled: version-manager service, deployment
//! builder reproducing the Figure 1 topology on the simulated cluster, and
//! the [`BlobClient`] implementing `ALLOC` / `READ` / `WRITE` with
//! parallel fan-out, client-side metadata caching, page/metadata
//! replication and garbage collection.
//!
//! ```
//! use blobseer_core::{Deployment, DeploymentConfig};
//! use blobseer_rpc::Ctx;
//! use blobseer_proto::Segment;
//!
//! let d = Deployment::build(DeploymentConfig::functional(4));
//! let client = d.client();
//! let mut ctx = Ctx::start();
//! let info = client.alloc(&mut ctx, 1 << 20, 4096).unwrap();
//! let v = client.write(&mut ctx, info.blob, 0, &[7u8; 8192]).unwrap();
//! assert_eq!(v, 1);
//! let (data, latest) = client
//!     .read(&mut ctx, info.blob, Some(v), Segment::new(0, 8192))
//!     .unwrap();
//! assert_eq!(latest, 1);
//! assert!(data.iter().all(|&b| b == 7));
//! ```
//!
//! Overload is a first-class, *typed* outcome: storage nodes serve
//! behind bounded admission gates ([`AdmissionOptions`], wired through
//! [`DeploymentConfigBuilder::admission`]) that shed excess work as
//! [`BlobError::Overload`](blobseer_proto::BlobError::Overload) with a
//! retry hint — never an unbounded queue, never a hang. On the
//! simulated transport the gates can run in
//! [`AdmissionMode::Virtual`], which makes shed-and-back-off
//! deterministic enough to doc-test:
//!
//! ```
//! use blobseer_core::{AdmissionMode, AdmissionOptions, Deployment, DeploymentConfig, RetryPolicy};
//! use blobseer_proto::{BlobError, Segment};
//! use blobseer_rpc::Ctx;
//!
//! let d = Deployment::build(
//!     DeploymentConfig::functional(1)
//!         .tune()
//!         // Handle sheds by hand to show the typed surface; production
//!         // deployments keep a backoff policy on instead, and the
//!         // client retries idempotent reads for them.
//!         .retry(RetryPolicy::none())
//!         .admission(AdmissionOptions {
//!             mode: AdmissionMode::Virtual {
//!                 max_backlog_ns: 100_000_000,  // ≤ 100 virtual ms queued
//!                 resp_ns_per_kib: 50_000_000,  // a slow modelled NIC
//!             },
//!             ..AdmissionOptions::default()
//!         })
//!         .build(),
//! );
//! let client = d.client();
//! let mut ctx = Ctx::start();
//! let info = client.alloc(&mut ctx, 4096, 4096).unwrap();
//! client.write(&mut ctx, info.blob, 0, &[7u8; 4096]).unwrap();
//!
//! // The first read is admitted and occupies the provider's virtual
//! // backlog; a second at the same instant finds it past the bound.
//! client.read(&mut ctx, info.blob, None, Segment::new(0, 4096)).unwrap();
//! let shed = client.read(&mut ctx, info.blob, None, Segment::new(0, 4096));
//! let Err(BlobError::Overload { retry_after_hint }) = shed else {
//!     panic!("expected a typed shed, got {shed:?}");
//! };
//! assert!(retry_after_hint > 0);
//!
//! // Back off as far as the hint says and the read is admitted again.
//! let mut later = Ctx::at(ctx.vt + retry_after_hint * 1_000_000);
//! client
//!     .read(&mut later, info.blob, None, Segment::new(0, 4096))
//!     .unwrap();
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod deployment;
pub mod heat;
pub mod local;
pub mod options;
pub mod vm_service;

pub use blobseer_rpc::{AdmissionMode, AdmissionOptions, RetryPolicy, TcpOptions};
pub use client::{BlobClient, MetaCache};
pub use deployment::{
    BackendKind, ClusterHandle, CompactReport, Deployment, DeploymentConfig,
    DeploymentConfigBuilder, LogOptions, StorageNodeService, TransportKind, MMAP_LOG_CAP,
};
pub use heat::{FanOutOptions, HeatTracker};
pub use local::LocalEngine;
pub use options::{ReadOptions, WriteOptions};
pub use vm_service::VersionManagerService;
