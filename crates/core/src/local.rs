//! `LocalEngine` — the embedded, in-process, thread-safe deployment.
//!
//! The full BlobSeer protocol (version assignment, border links, weaving,
//! publication) with every network hop replaced by a shared-memory map
//! access. This is:
//!
//! * the **embedded mode** for users who want versioned-snapshot semantics
//!   inside one process (many concurrent threads, zero serialization on
//!   the data path);
//! * the fair **lock-free comparator** for the lock-based baselines in
//!   `blobseer-baseline` (same memory regime, same thread model — the only
//!   variable is the concurrency control design);
//! * the workhorse of wall-clock stress tests.
//!
//! Its lock profile is the paper's ideal and is asserted below with the
//! lock meter: one version-assignment acquisition per write, zero
//! control-plane locks of any other class (the page and node stores are
//! sharded data-plane maps, deliberately outside the meter).

use blobseer_meta::read::{assemble_read, expand, root_key, Visit};
use blobseer_meta::shape::align_to_pages;
use blobseer_meta::write::build_write_tree;
use blobseer_proto::tree::{NodeBody, NodeKey, PageKey, PageLoc};
use blobseer_proto::{BlobError, BlobId, Geometry, ProviderId, Segment, Version, WriteId};
use blobseer_util::{PageBuf, ShardedMap};
use blobseer_version::{BlobState, VersionRegistry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An in-process, concurrent, versioned blob store (the paper's semantics
/// without the network).
pub struct LocalEngine {
    registry: VersionRegistry,
    nodes: ShardedMap<NodeKey, NodeBody>,
    pages: ShardedMap<PageKey, PageBuf>,
    next_write: AtomicU64,
}

impl Default for LocalEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalEngine {
    /// Empty engine.
    pub fn new() -> Self {
        Self {
            registry: VersionRegistry::default(),
            nodes: ShardedMap::with_shards(128),
            pages: ShardedMap::with_shards(128),
            next_write: AtomicU64::new(1),
        }
    }

    /// `ALLOC`: create a blob.
    pub fn alloc(&self, total_size: u64, page_size: u64) -> Result<BlobId, BlobError> {
        let geom = Geometry::new(total_size, page_size)?;
        Ok(self.registry.create_blob(geom).blob)
    }

    fn state(&self, blob: BlobId) -> Result<Arc<BlobState>, BlobError> {
        self.registry.get(blob)
    }

    /// Latest published version.
    pub fn latest(&self, blob: BlobId) -> Result<Version, BlobError> {
        Ok(self.state(blob)?.latest())
    }

    /// Blob geometry.
    pub fn geometry(&self, blob: BlobId) -> Result<Geometry, BlobError> {
        Ok(self.state(blob)?.geom)
    }

    /// Stored tree nodes (white-box metric).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Stored pages (white-box metric).
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// `WRITE` (page-aligned). Fully concurrent: the only serialization is
    /// the version manager's microsecond assignment step.
    ///
    /// The buffer is copied once into a shared [`PageBuf`]; pages are
    /// O(1) slices of it. Use [`LocalEngine::write_buf`] to skip even
    /// that copy.
    pub fn write(&self, blob: BlobId, offset: u64, data: &[u8]) -> Result<Version, BlobError> {
        self.write_buf(blob, offset, PageBuf::copy_from_slice(data))
    }

    /// Zero-copy `WRITE` (page-aligned): the caller's buffer is shared,
    /// never copied.
    pub fn write_buf(
        &self,
        blob: BlobId,
        offset: u64,
        data: PageBuf,
    ) -> Result<Version, BlobError> {
        let state = self.state(blob)?;
        let geom = state.geom;
        let seg = Segment::new(offset, data.len() as u64);
        let range = geom.validate_aligned(&seg)?;

        // Phase 1: store pages under a fresh write id — shared slices of
        // the one buffer, not copies.
        let wid = WriteId(self.next_write.fetch_add(1, Ordering::Relaxed));
        let mut locs = Vec::with_capacity(range.count() as usize);
        for (i, page_idx) in range.iter().enumerate() {
            let key = PageKey {
                blob,
                write: wid,
                index: page_idx,
            };
            let start = i * geom.page_size as usize;
            self.pages
                .insert(key, data.slice(start..start + geom.page_size as usize));
            locs.push(PageLoc {
                key,
                replicas: vec![ProviderId(0)],
            });
        }

        // Phase 2: version + border links (the serialization point).
        let ticket = state.request_version(wid, seg)?;

        // Phase 3: weave metadata in isolation.
        let tree = build_write_tree(&geom, blob, &seg, &locs, &ticket)?;
        for n in tree {
            self.nodes.insert(n.key, n.body);
        }

        // Phase 4: publish.
        state.complete_write(ticket.version)?;
        Ok(ticket.version)
    }

    /// `WRITE` for unaligned segments (read-modify-write envelope).
    pub fn write_unaligned(
        &self,
        blob: BlobId,
        offset: u64,
        data: &[u8],
    ) -> Result<Version, BlobError> {
        let geom = self.geometry(blob)?;
        let seg = Segment::new(offset, data.len() as u64);
        geom.validate_bounds(&seg)?;
        let envelope = align_to_pages(&geom, &seg);
        if envelope == seg {
            return self.write(blob, offset, data);
        }
        let latest = self.latest(blob)?;
        let mut buf = self.read(blob, Some(latest), envelope)?.0;
        let start = (seg.offset - envelope.offset) as usize;
        buf[start..start + data.len()].copy_from_slice(data);
        self.write(blob, envelope.offset, &buf)
    }

    /// `READ` at `version` (or the latest when `None`); returns the bytes
    /// and the latest-version witness.
    pub fn read(
        &self,
        blob: BlobId,
        version: Option<Version>,
        seg: Segment,
    ) -> Result<(Vec<u8>, Version), BlobError> {
        let state = self.state(blob)?;
        let geom = state.geom;
        geom.validate_bounds(&seg)?;
        let latest = state.latest();
        let v = match version {
            None => latest,
            Some(v) if v > latest => {
                return Err(BlobError::VersionNotPublished {
                    requested: v,
                    latest,
                })
            }
            Some(v) => v,
        };
        if v == 0 {
            return Ok((vec![0u8; seg.size as usize], latest));
        }
        let mut frontier = vec![root_key(&geom, blob, v)];
        let mut zeros = Vec::new();
        let mut hits = Vec::new();
        while let Some(key) = frontier.pop() {
            let body = self
                .nodes
                .get_cloned(&key)
                .ok_or(BlobError::MissingMetadata {
                    blob,
                    version: key.version,
                })?;
            for visit in expand(&geom, &key, &body, &seg)? {
                match visit {
                    Visit::Descend(k) => frontier.push(k),
                    Visit::Zeros(z) => zeros.push(z),
                    Visit::Page { page, blob_range } => {
                        let data =
                            self.pages
                                .get_cloned(&page.key)
                                .ok_or(BlobError::MissingPage {
                                    tried: page.replicas.clone(),
                                })?;
                        hits.push((page, blob_range, data));
                    }
                }
            }
        }
        Ok((assemble_read(&geom, &seg, &zeros, &hits)?, latest))
    }

    /// Garbage-collect versions below `keep_from`; returns
    /// `(nodes_removed, pages_removed)`.
    pub fn gc(&self, blob: BlobId, keep_from: Version) -> Result<(u64, u64), BlobError> {
        let state = self.state(blob)?;
        let plan = state.gc_plan(keep_from);
        let mut pages_removed = 0u64;
        for key in &plan.dead_nodes {
            if key.size == state.geom.page_size {
                if let Some(NodeBody::Leaf { page }) = self.nodes.get_cloned(key) {
                    if self.pages.remove(&page.key).is_some() {
                        pages_removed += 1;
                    }
                }
            }
        }
        let mut nodes_removed = 0u64;
        for key in &plan.dead_nodes {
            if self.nodes.remove(key).is_some() {
                nodes_removed += 1;
            }
        }
        Ok((nodes_removed, pages_removed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    const PAGE: u64 = 512;
    const TOTAL: u64 = PAGE * 16;

    #[test]
    fn basic_cycle() {
        let e = LocalEngine::new();
        let blob = e.alloc(TOTAL, PAGE).unwrap();
        assert_eq!(e.latest(blob).unwrap(), 0);
        let v = e.write(blob, 0, &vec![9u8; PAGE as usize]).unwrap();
        assert_eq!(v, 1);
        let (data, latest) = e.read(blob, Some(1), Segment::new(0, PAGE)).unwrap();
        assert_eq!(latest, 1);
        assert!(data.iter().all(|&b| b == 9));
        // Unallocated space reads zero.
        let (z, _) = e.read(blob, None, Segment::new(PAGE, PAGE)).unwrap();
        assert!(z.iter().all(|&b| b == 0));
    }

    #[test]
    fn unaligned_and_gc() {
        let e = LocalEngine::new();
        let blob = e.alloc(TOTAL, PAGE).unwrap();
        e.write(blob, 0, &vec![1u8; TOTAL as usize]).unwrap();
        e.write_unaligned(blob, 10, &[2u8; 5]).unwrap();
        let (buf, _) = e.read(blob, None, Segment::new(0, 20)).unwrap();
        assert_eq!(&buf[10..15], &[2u8; 5]);
        e.write(blob, 0, &vec![3u8; PAGE as usize]).unwrap();
        let (n, p) = e.gc(blob, 3).unwrap();
        assert!(n > 0 && p > 0);
        let (buf, _) = e.read(blob, Some(3), Segment::new(0, TOTAL)).unwrap();
        assert!(buf[..PAGE as usize].iter().all(|&b| b == 3));
    }

    #[test]
    fn embedded_lock_profile_matches_the_paper() {
        use blobseer_util::lockmeter;
        let e = LocalEngine::new();
        let blob = e.alloc(TOTAL, PAGE).unwrap();
        let data = vec![1u8; TOTAL as usize];
        e.write(blob, 0, &data).unwrap(); // warm

        let snap = lockmeter::thread_snapshot();
        e.write(blob, 0, &data).unwrap();
        let w = snap.since();
        assert_eq!(w.version_assign, 1, "{w:?}");
        assert_eq!(w.serializing, 0, "{w:?}");
        assert_eq!(w.sharded, 0, "{w:?}");

        let snap = lockmeter::thread_snapshot();
        e.read(blob, None, Segment::new(0, TOTAL)).unwrap();
        let r = snap.since();
        assert_eq!(r.total_exclusive(), 0, "{r:?}");
    }

    #[test]
    fn concurrent_writers_and_readers() {
        let e = Arc::new(LocalEngine::new());
        let blob = e.alloc(TOTAL, PAGE).unwrap();
        e.write(blob, 0, &vec![7u8; TOTAL as usize]).unwrap();

        let writer = {
            let e = Arc::clone(&e);
            thread::spawn(move || {
                for i in 0..100u64 {
                    let off = (i % 16) * PAGE;
                    e.write(blob, off, &vec![(i % 250) as u8 + 1; PAGE as usize])
                        .unwrap();
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let e = Arc::clone(&e);
                thread::spawn(move || {
                    for _ in 0..200 {
                        // Version 1 is immutable forever.
                        let (buf, _) = e.read(blob, Some(1), Segment::new(0, TOTAL)).unwrap();
                        assert!(buf.iter().all(|&b| b == 7));
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(e.latest(blob).unwrap(), 101);
    }
}
