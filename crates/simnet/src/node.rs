//! Per-node simulated resources.
//!
//! Each node owns five time-shared resources — egress NIC, ingress NIC,
//! send CPU, receive CPU, service work — each a [`Calendar`]: a list of
//! busy intervals in virtual time supporting *backfill*. Backfill is what
//! makes the simulation causally fair when many OS threads drive it at
//! different real-time speeds: a request from an actor whose clock is
//! behind takes the earliest free gap, instead of queueing behind
//! reservations made (in real time) by actors that raced ahead into the
//! virtual future. Without it, per-client throughput collapses with the
//! thread count — an artifact, not a result.

use blobseer_rpc::Service;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Maximum busy intervals kept per calendar before old ones are folded
/// into the floor (bounds memory on long benches).
const MAX_INTERVALS: usize = 8192;

/// A time-shared resource: busy intervals over virtual nanoseconds.
#[derive(Default)]
pub struct Calendar {
    inner: Mutex<CalInner>,
}

#[derive(Default)]
struct CalInner {
    /// Disjoint, coalesced busy intervals: start -> end.
    busy: BTreeMap<u64, u64>,
    /// Reservations may not start before this (pruned history).
    floor: u64,
    /// Latest busy end ever recorded.
    horizon: u64,
}

impl Calendar {
    /// A fresh, idle resource.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserve `dur` ns starting no earlier than `earliest`, taking the
    /// earliest sufficient gap (backfill). Returns the completion time.
    pub fn reserve(&self, earliest: u64, dur: u64) -> u64 {
        let mut g = self.inner.lock();
        let mut start = earliest.max(g.floor);
        if dur == 0 {
            return start.max(g.floor);
        }
        // Skip past the interval covering `start`, if any.
        if let Some((&_s, &e)) = g.busy.range(..=start).next_back() {
            if e > start {
                start = e;
            }
        }
        // Walk successors until a gap of `dur` appears.
        for (&s, &e) in g.busy.range(start..) {
            if s >= start + dur {
                break;
            }
            start = start.max(e);
        }
        let end = start + dur;
        g.busy.insert(start, end);
        // Coalesce with touching neighbours to keep the map small.
        if let Some((&ns, &ne)) = g.busy.range(end..).next() {
            if ns == end {
                g.busy.remove(&ns);
                g.busy.insert(start, ne);
            }
        }
        let cur_end = *g.busy.get(&start).expect("just inserted");
        if let Some((&ps, &pe)) = g.busy.range(..start).next_back() {
            if pe == start {
                g.busy.remove(&start);
                g.busy.insert(ps, cur_end);
            }
        }
        g.horizon = g.horizon.max(end);
        // Prune ancient history.
        if g.busy.len() > MAX_INTERVALS {
            let cut = g.busy.len() / 2;
            let keys: Vec<u64> = g.busy.keys().take(cut).copied().collect();
            let mut new_floor = g.floor;
            for k in keys {
                if let Some(e) = g.busy.remove(&k) {
                    new_floor = new_floor.max(e);
                }
            }
            g.floor = new_floor;
        }
        end
    }

    /// Latest busy end recorded so far.
    pub fn horizon(&self) -> u64 {
        self.inner.lock().horizon
    }

    /// Total busy time accumulated (diagnostics; O(intervals) plus pruned
    /// history is not counted).
    pub fn busy_intervals(&self) -> usize {
        self.inner.lock().busy.len()
    }
}

/// Legacy helper: CAS max-bump reservation on an atomic register. Kept
/// for components that genuinely want FIFO-in-real-time semantics.
pub fn reserve(res: &AtomicU64, earliest: u64, dur: u64) -> u64 {
    let mut cur = res.load(Ordering::Acquire);
    loop {
        let start = cur.max(earliest);
        let end = start + dur;
        match res.compare_exchange_weak(cur, end, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => return end,
            Err(actual) => cur = actual,
        }
    }
}

/// Traffic/usage counters for one node.
#[derive(Debug, Default)]
pub struct NodeMetrics {
    /// Messages received.
    pub msgs_in: AtomicU64,
    /// Messages sent (responses).
    pub msgs_out: AtomicU64,
    /// Payload bytes received.
    pub bytes_in: AtomicU64,
    /// Payload bytes sent.
    pub bytes_out: AtomicU64,
}

impl NodeMetrics {
    /// Snapshot `(msgs_in, msgs_out, bytes_in, bytes_out)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.msgs_in.load(Ordering::Relaxed),
            self.msgs_out.load(Ordering::Relaxed),
            self.bytes_in.load(Ordering::Relaxed),
            self.bytes_out.load(Ordering::Relaxed),
        )
    }
}

/// One simulated machine.
///
/// Endpoint CPU is modelled as three calendars — send path, receive path,
/// and service work — because the node's RPC runtime is multithreaded
/// (the paper's client "performs a large number of concurrent RPCs"):
/// a response being deserialized must not delay the next request's
/// serialization, while each individual path still serializes its own
/// work.
pub struct SimNode {
    /// Egress NIC.
    pub egress: Calendar,
    /// Ingress NIC.
    pub ingress: Calendar,
    /// Send-path CPU (request serialization, syscalls).
    pub cpu_send: Calendar,
    /// Receive-path CPU (deserialization, dispatch).
    pub cpu_recv: Calendar,
    /// Service-work CPU (handler charges).
    pub work: Calendar,
    /// Liveness flag (fault injection).
    pub alive: AtomicBool,
    /// Site index (for multi-site latency matrices).
    pub site: u32,
    /// Bound service, if any.
    pub service: OnceLock<Arc<dyn Service>>,
    /// Traffic counters.
    pub metrics: NodeMetrics,
}

impl SimNode {
    /// A fresh, alive node at `site`.
    pub fn new(site: u32) -> Self {
        Self {
            egress: Calendar::new(),
            ingress: Calendar::new(),
            cpu_send: Calendar::new(),
            cpu_recv: Calendar::new(),
            work: Calendar::new(),
            alive: AtomicBool::new(true),
            site,
            service: OnceLock::new(),
            metrics: NodeMetrics::default(),
        }
    }

    /// True when the node responds to traffic.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Latest busy time across this node's resources.
    pub fn horizon(&self) -> u64 {
        self.egress
            .horizon()
            .max(self.ingress.horizon())
            .max(self.cpu_send.horizon())
            .max(self.cpu_recv.horizon())
            .max(self.work.horizon())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn calendar_serializes_overlapping_requests() {
        let c = Calendar::new();
        assert_eq!(c.reserve(0, 100), 100);
        assert_eq!(c.reserve(0, 100), 200, "queued behind the first");
        assert_eq!(c.reserve(50, 100), 300);
        assert_eq!(c.horizon(), 300);
    }

    #[test]
    fn calendar_backfills_gaps() {
        let c = Calendar::new();
        // An actor far ahead in virtual time reserves late...
        assert_eq!(c.reserve(1_000_000, 100), 1_000_100);
        // ...a causally earlier actor still gets the early gap.
        assert_eq!(c.reserve(0, 100), 100);
        assert_eq!(c.reserve(0, 100), 200);
        // A gap too small is skipped.
        let c2 = Calendar::new();
        c2.reserve(0, 100); // [0,100)
        c2.reserve(150, 100); // [150,250)
        assert_eq!(c2.reserve(0, 80), 330, "the 50-wide gap must be skipped");
    }

    #[test]
    fn calendar_exact_fit_gap() {
        let c = Calendar::new();
        c.reserve(0, 100); // [0,100)
        c.reserve(200, 100); // [200,300)
                             // A 100-ns request fits exactly in [100,200).
        assert_eq!(c.reserve(0, 100), 200);
    }

    #[test]
    fn calendar_idle_respects_earliest() {
        let c = Calendar::new();
        assert_eq!(c.reserve(1_000, 50), 1_050);
        assert_eq!(c.reserve(0, 0), 0, "zero-duration reservations are free");
    }

    #[test]
    fn concurrent_reservations_conserve_busy_time() {
        // With all requests wanting earliest=0, backfill must pack them:
        // total busy time == sum of durations, horizon == total.
        let c = Arc::new(Calendar::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        c.reserve(0, 7);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.horizon(), 8 * 1000 * 7);
    }

    #[test]
    fn calendar_prunes_but_stays_correct() {
        let c = Calendar::new();
        // Far more disjoint intervals than MAX_INTERVALS, spaced out.
        for i in 0..(super::MAX_INTERVALS as u64 + 100) {
            c.reserve(i * 10, 2);
        }
        // Still functional; horizon is sane.
        let h = c.horizon();
        let end = c.reserve(0, 5);
        assert!(end >= 5);
        assert!(c.horizon() >= h);
    }

    #[test]
    fn legacy_atomic_reserve() {
        let res = AtomicU64::new(0);
        assert_eq!(reserve(&res, 0, 100), 100);
        assert_eq!(reserve(&res, 0, 100), 200);
        assert_eq!(reserve(&res, 1_000, 10), 1_010);
    }

    #[test]
    fn node_lifecycle() {
        let n = SimNode::new(0);
        assert!(n.is_alive());
        n.alive.store(false, Ordering::Release);
        assert!(!n.is_alive());
        assert_eq!(n.metrics.snapshot(), (0, 0, 0, 0));
        assert_eq!(n.horizon(), 0);
    }
}
