//! The simulated cluster: an [`rpc::Transport`](blobseer_rpc::Transport)
//! whose calls cost virtual time according to the [`CostModel`].
//!
//! Handlers execute **inline on the caller's OS thread** — real
//! concurrency comes from concurrent client threads, exactly the threads
//! whose interleavings exercise the lock-free structures under test —
//! while *time* is fully simulated: every message reserves the sender CPU,
//! sender egress NIC, receiver ingress NIC and receiver CPU through atomic
//! next-free-time registers, so contention (the phenomenon Figure 3
//! measures) emerges from resource queueing, not wall-clock accidents.

use crate::cost::CostModel;
use crate::node::SimNode;
use blobseer_proto::{BlobError, NodeId};
use blobseer_rpc::{dispatch_frame, Frame, ServerCtx, Transport, TransportResult};
use blobseer_util::{FxHashSet, ShardedMap};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A simulated cluster of nodes with uniform intra-site latency and an
/// optional inter-site latency matrix.
pub struct SimCluster {
    nodes: RwLock<Vec<Arc<SimNode>>>,
    cost: CostModel,
    /// `latency[a][b]` in ns between sites a and b (defaults to the cost
    /// model's uniform latency).
    site_latency: RwLock<Vec<Vec<u64>>>,
    /// (src, dst) pairs that already paid connection setup.
    connected: ShardedMap<(u32, u32), ()>,
    /// Total messages carried (for aggregation ablations).
    messages: AtomicU64,
    /// Total payload bytes carried.
    bytes: AtomicU64,
}

impl SimCluster {
    /// Empty cluster with the given cost model.
    pub fn new(cost: CostModel) -> Self {
        Self {
            nodes: RwLock::new(Vec::new()),
            cost,
            site_latency: RwLock::new(Vec::new()),
            connected: ShardedMap::with_shards(64),
            messages: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// The paper's testbed.
    pub fn grid5000() -> Self {
        Self::new(CostModel::grid5000())
    }

    /// The cost model in force.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Add a node on site 0.
    pub fn add_node(&self) -> NodeId {
        self.add_node_at(0)
    }

    /// Add a node on a given site.
    pub fn add_node_at(&self, site: u32) -> NodeId {
        let mut g = self.nodes.write();
        g.push(Arc::new(SimNode::new(site)));
        NodeId(g.len() as u32 - 1)
    }

    /// Set the inter-site latency matrix (ns). Unspecified pairs use the
    /// cost model's uniform latency.
    pub fn set_site_latency(&self, matrix: Vec<Vec<u64>>) {
        *self.site_latency.write() = matrix;
    }

    /// Bind a service to a node. Panics if the node already has one.
    pub fn bind(&self, node: NodeId, svc: Arc<dyn blobseer_rpc::Service>) {
        let n = self.node(node).expect("bind: node exists");
        n.service
            .set(svc)
            .ok()
            .expect("bind: node already has a service");
    }

    /// Kill a node: subsequent calls to it fail with `Unreachable`.
    pub fn kill(&self, node: NodeId) {
        if let Some(n) = self.node(node) {
            n.alive.store(false, Ordering::Release);
        }
    }

    /// Revive a previously killed node (its state is preserved — RAM
    /// contents in the simulation survive, modelling a process restart
    /// with intact memory image would be wrong, but services are free to
    /// clear their stores on revival).
    pub fn revive(&self, node: NodeId) {
        if let Some(n) = self.node(node) {
            n.alive.store(true, Ordering::Release);
        }
    }

    /// Node accessor.
    pub fn node(&self, id: NodeId) -> Option<Arc<SimNode>> {
        self.nodes.read().get(id.0 as usize).cloned()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.read().len()
    }

    /// True when no nodes exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total messages carried so far.
    pub fn message_count(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Total payload bytes carried so far.
    pub fn byte_count(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// The virtual-time horizon: the latest next-free time across every
    /// resource in the cluster. An actor that is *causally after* all
    /// prior traffic (e.g., a reader measuring a segment that a setup
    /// phase just wrote) must start its clock here, otherwise it would
    /// queue behind phantom traffic from its own past.
    pub fn horizon(&self) -> u64 {
        let g = self.nodes.read();
        g.iter().map(|n| n.horizon()).max().unwrap_or(0)
    }

    fn latency(&self, a: &SimNode, b: &SimNode) -> u64 {
        if std::ptr::eq(a, b) {
            return 0;
        }
        if a.site != b.site {
            let g = self.site_latency.read();
            if let Some(l) = g
                .get(a.site as usize)
                .and_then(|row| row.get(b.site as usize))
            {
                return *l;
            }
        }
        self.cost.latency_ns
    }

    /// One direction of a message: sender send-CPU → egress NIC → wire →
    /// ingress NIC. Returns the arrival time at the receiver.
    fn ship(&self, src: &SimNode, dst: &SimNode, vt: u64, payload: usize, setup: u64) -> u64 {
        let cpu_done = src
            .cpu_send
            .reserve(vt, self.cost.endpoint_cpu_ns(payload) + setup);
        let xfer = self.cost.transfer_ns(payload);
        let egress_done = src.egress.reserve(cpu_done, xfer);
        let latency = self.latency(src, dst);
        // The first byte reaches the receiver one latency after it left;
        // the receiving NIC is then busy for the transfer duration.
        let ingress_earliest = egress_done.saturating_sub(xfer) + latency;
        dst.ingress.reserve(ingress_earliest, xfer)
    }
}

impl Transport for SimCluster {
    fn call(&self, from: NodeId, to: NodeId, vt: u64, frame: Frame) -> TransportResult {
        let src = self
            .node(from)
            .ok_or(BlobError::Unreachable("unknown source node"))?;
        let dst = self
            .node(to)
            .ok_or(BlobError::Unreachable("unknown destination node"))?;
        if !src.is_alive() {
            return Err(BlobError::Unreachable("source node is down"));
        }
        if !dst.is_alive() {
            return Err(BlobError::Unreachable("destination node is down"));
        }
        let svc = dst
            .service
            .get()
            .ok_or(BlobError::Unreachable("no service bound"))?
            .clone();

        // First contact between this pair pays connection setup.
        let setup = if self.connected.insert((from.0, to.0), ()).is_none() {
            self.cost.connection_setup_ns
        } else {
            0
        };

        let req_bytes = frame.wire_size();
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(req_bytes as u64, Ordering::Relaxed);
        src.metrics.msgs_out.fetch_add(1, Ordering::Relaxed);
        src.metrics
            .bytes_out
            .fetch_add(req_bytes as u64, Ordering::Relaxed);
        dst.metrics.msgs_in.fetch_add(1, Ordering::Relaxed);
        dst.metrics
            .bytes_in
            .fetch_add(req_bytes as u64, Ordering::Relaxed);

        // Request: client → server.
        let arrival = self.ship(&src, &dst, vt, req_bytes, setup);

        // Server receive path, then service work: CPU charges serialize on
        // the work calendar; latency charges delay this response only.
        let recv_done = dst
            .cpu_recv
            .reserve(arrival, self.cost.endpoint_cpu_ns(req_bytes));
        let mut sctx = ServerCtx::new(recv_done);
        let resp = dispatch_frame(svc.as_ref(), &mut sctx, &frame);
        let served = dst.work.reserve(recv_done, sctx.charged) + sctx.charged_latency;

        // Check the destination survived handling (it may have been killed
        // mid-flight by fault injection).
        if !dst.is_alive() {
            return Err(BlobError::Unreachable("destination died during call"));
        }

        // Response: server → client.
        let resp_bytes = resp.wire_size();
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(resp_bytes as u64, Ordering::Relaxed);
        dst.metrics.msgs_out.fetch_add(1, Ordering::Relaxed);
        dst.metrics
            .bytes_out
            .fetch_add(resp_bytes as u64, Ordering::Relaxed);
        src.metrics.msgs_in.fetch_add(1, Ordering::Relaxed);
        src.metrics
            .bytes_in
            .fetch_add(resp_bytes as u64, Ordering::Relaxed);
        let back = self.ship(&dst, &src, served, resp_bytes, 0);

        // Client receive path.
        let done = src
            .cpu_recv
            .reserve(back, self.cost.endpoint_cpu_ns(resp_bytes));
        Ok((resp, done))
    }
}

/// Compute the set of distinct destinations a node has talked to — used by
/// tests asserting connection-setup behaviour.
pub fn distinct_peers(cluster: &SimCluster, from: NodeId) -> FxHashSet<u32> {
    let mut out = FxHashSet::default();
    for (a, b) in cluster.connected.keys() {
        if a == from.0 {
            out.insert(b);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_rpc::{respond, Ctx, RpcClient, Service};
    use std::sync::Arc;

    struct Echo;

    impl Service for Echo {
        fn handle(&self, ctx: &mut ServerCtx, frame: &Frame) -> Frame {
            ctx.charge(10_000);
            respond(frame, |x: u64| Ok(x))
        }
    }

    fn cluster_with_echo(n: usize) -> (Arc<SimCluster>, NodeId, Vec<NodeId>) {
        let c = Arc::new(SimCluster::grid5000());
        let client = c.add_node();
        let servers: Vec<NodeId> = (0..n)
            .map(|_| {
                let id = c.add_node();
                c.bind(id, Arc::new(Echo));
                id
            })
            .collect();
        (c, client, servers)
    }

    #[test]
    fn call_costs_are_positive_and_ordered() {
        let (c, client, servers) = cluster_with_echo(1);
        let rpc = RpcClient::new(Arc::clone(&c) as _, client);
        let mut ctx = Ctx::start();
        let _: u64 = rpc.call(&mut ctx, servers[0], 1, &7u64).unwrap();
        let first = ctx.vt;
        assert!(first > 2 * c.cost().latency_ns, "must include 2x latency");
        // Second call is cheaper: connection already set up.
        let mut ctx2 = Ctx::start();
        let _: u64 = rpc.call(&mut ctx2, servers[0], 1, &7u64).unwrap();
        // Resources are busy from the first call, so compare against a
        // fresh cluster for a clean measurement.
        let (c3, cl3, sv3) = cluster_with_echo(1);
        let rpc3 = RpcClient::new(Arc::clone(&c3) as _, cl3);
        let mut ctx3 = Ctx::start();
        let _: u64 = rpc3.call(&mut ctx3, sv3[0], 1, &7u64).unwrap();
        assert_eq!(ctx3.vt, first, "same topology, same deterministic cost");
    }

    #[test]
    fn fan_out_joins_at_max_not_sum() {
        // Measure on *warm* connections: first contact pays connection
        // setup serialized on the client CPU, which is its own effect
        // (asserted by fig3a's provider sweep), not the one under test.
        let (c, client, servers) = cluster_with_echo(8);
        let rpc = RpcClient::new(Arc::clone(&c) as _, client);
        let warm: Vec<(NodeId, u16, u64)> = servers.iter().map(|s| (*s, 1, 1u64)).collect();
        rpc.fan_out::<u64, u64>(&mut Ctx::start(), &warm);

        // One warm call's duration, measured from a quiet start time well
        // past any residual resource occupancy.
        let quiet = 1_000_000_000;
        let mut one = Ctx::at(quiet);
        let _: u64 = rpc.call(&mut one, servers[0], 1, &1u64).unwrap();
        let one_cost = one.vt - quiet;

        // Eight warm parallel calls to eight distinct servers.
        let quiet2 = 2_000_000_000;
        let mut eight = Ctx::at(quiet2);
        let rs = rpc.fan_out::<u64, u64>(&mut eight, &warm);
        assert!(rs.iter().all(|r| r.is_ok()));
        let eight_cost = eight.vt - quiet2;

        // Parallel fan-out must be far cheaper than 8 sequential calls,
        // but dearer than one call (client CPU serializes the sends).
        assert!(
            eight_cost < 6 * one_cost,
            "fan-out {eight_cost} vs one {one_cost}"
        );
        assert!(eight_cost > one_cost);
    }

    #[test]
    fn dead_node_is_unreachable_and_revivable() {
        let (c, client, servers) = cluster_with_echo(1);
        let rpc = RpcClient::new(Arc::clone(&c) as _, client);
        c.kill(servers[0]);
        let err = rpc
            .call::<u64, u64>(&mut Ctx::start(), servers[0], 1, &1)
            .unwrap_err();
        assert!(matches!(err, BlobError::Unreachable(_)));
        c.revive(servers[0]);
        assert!(rpc
            .call::<u64, u64>(&mut Ctx::start(), servers[0], 1, &1)
            .is_ok());
    }

    #[test]
    fn big_messages_pay_bandwidth() {
        let (c, client, servers) = cluster_with_echo(1);
        // 1 MiB payload ≈ 8.9 ms at 117.5 MB/s, dwarfing overheads.
        let frame = Frame::from_msg(1, &vec![0u8; 1 << 20]);
        let big = frame.wire_size();
        let (_resp, vt) = c.call(client, servers[0], 0, frame).unwrap();
        let floor = c.cost().transfer_ns(big);
        assert!(vt > floor, "{vt} must exceed pure transfer {floor}");
        assert!(vt < 4 * floor, "{vt} should be within 4x transfer {floor}");
    }

    #[test]
    fn nic_contention_queues_transfers() {
        // Two clients hammer one server with 1 MiB payloads; the server's
        // ingress NIC must serialize them: total time ≈ 2 transfers, not 1.
        let (c, _cl, servers) = cluster_with_echo(1);
        let c1 = c.add_node();
        let c2 = c.add_node();
        let payload = vec![0u8; 1 << 20];
        let f1 = Frame::from_msg(1, &payload);
        let f2 = Frame::from_msg(1, &payload);
        let xfer = c.cost().transfer_ns(f1.wire_size());
        let (_r1, t1) = c.call(c1, servers[0], 0, f1).unwrap();
        let (_r2, t2) = c.call(c2, servers[0], 0, f2).unwrap();
        let later = t1.max(t2);
        assert!(
            later >= 2 * xfer,
            "ingress must serialize: {later} < {}",
            2 * xfer
        );
    }

    #[test]
    fn multi_site_latency_applies() {
        let c = Arc::new(SimCluster::grid5000());
        let a = c.add_node_at(0);
        let b = c.add_node_at(1);
        c.bind(b, Arc::new(Echo));
        c.set_site_latency(vec![vec![0, 10_000_000], vec![10_000_000, 0]]);
        let (_resp, vt) = c.call(a, b, 0, Frame::from_msg(1, &1u64)).unwrap();
        assert!(
            vt > 20_000_000,
            "cross-site RTT must include 2x 10 ms: {vt}"
        );
    }

    #[test]
    fn message_and_byte_counters_track() {
        let (c, client, servers) = cluster_with_echo(2);
        let rpc = RpcClient::new(Arc::clone(&c) as _, client);
        let before = (c.message_count(), c.byte_count());
        let _: u64 = rpc.call(&mut Ctx::start(), servers[0], 1, &1u64).unwrap();
        let after = (c.message_count(), c.byte_count());
        assert_eq!(after.0 - before.0, 2, "request + response");
        assert!(after.1 > before.1);
        let n = c.node(servers[0]).unwrap();
        let (mi, mo, bi, bo) = n.metrics.snapshot();
        assert_eq!((mi, mo), (1, 1));
        assert!(bi > 0 && bo > 0);
    }
}
