//! # blobseer-simnet
//!
//! The simulated cluster substrate standing in for the paper's Grid'5000
//! testbed (see DESIGN.md §2 and §4 for the substitution argument).
//!
//! * [`cost`] — the calibrated cost model: 117.5 MB/s NICs, 0.1 ms
//!   latency, 2008-era endpoint CPU costs, BambooDHT-era service costs.
//! * [`node`] — per-node resources (egress/ingress NIC, CPU) as lock-free
//!   atomic next-free-time registers.
//! * [`cluster`] — [`SimCluster`], an
//!   [`rpc::Transport`](blobseer_rpc::Transport) whose calls execute
//!   handlers inline on real threads while charging fully simulated
//!   virtual time; includes fault injection (node kill/revive), multi-site
//!   latency, and global/per-node traffic metrics.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod cost;
pub mod node;

pub use cluster::{distinct_peers, SimCluster};
pub use cost::{ClientCosts, CostModel, ServiceCosts};
pub use node::{reserve, NodeMetrics, SimNode};
