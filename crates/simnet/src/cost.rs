//! The cluster cost model.
//!
//! Calibrated against the paper's §V.B testbed: one cluster of the
//! Grid'5000 Rennes site, 1 Gbit/s Ethernet measured at **117.5 MB/s** for
//! TCP with MTU 1500, **0.1 ms** latency, 2008-era Xeon nodes, BambooDHT
//! (Java) metadata services. Absolute numbers are approximations; the
//! benches assert *shapes* (who wins, how curves bend), which are robust
//! to the exact constants — every knob is public so ablations can move
//! them.

/// Transport- and endpoint-level costs (virtual nanoseconds).
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// NIC bandwidth in bytes/second (each direction modelled separately).
    pub bandwidth_bps: f64,
    /// One-way wire latency between distinct nodes, ns.
    pub latency_ns: u64,
    /// Fixed CPU cost to send or receive one message (syscall + framing),
    /// charged at each endpoint, ns.
    pub rpc_overhead_ns: u64,
    /// CPU cost per payload byte at each endpoint (serialize/copy), ns/B.
    pub per_byte_cpu_ns: f64,
    /// One-time cost when a (src, dst) pair first communicates (TCP
    /// handshake + connection state) — this is what makes a single-client
    /// read *slightly slower* with more metadata providers (paper §V.C).
    pub connection_setup_ns: u64,
    /// Fixed per-message envelope bytes (TCP/IP + RPC header).
    pub envelope_bytes: usize,
}

impl CostModel {
    /// The paper's cluster (Grid'5000 Rennes, 2008).
    pub fn grid5000() -> Self {
        Self {
            bandwidth_bps: 117.5e6,
            latency_ns: 50_000,      // 0.1 ms measured RTT => ~50 µs one-way
            rpc_overhead_ns: 30_000, // 2008-era kernel/network stack + Boost RPC
            per_byte_cpu_ns: 2.0,    // ~500 MB/s endpoint copy/serialize
            connection_setup_ns: 250_000,
            envelope_bytes: 66, // Ethernet + IP + TCP headers
        }
    }

    /// A fast LAN with negligible overheads — useful in tests that only
    /// care about message counts, not timing realism.
    pub fn zero() -> Self {
        Self {
            bandwidth_bps: f64::INFINITY,
            latency_ns: 0,
            rpc_overhead_ns: 0,
            per_byte_cpu_ns: 0.0,
            connection_setup_ns: 0,
            envelope_bytes: 0,
        }
    }

    /// Wire transfer time for `bytes` payload bytes, ns.
    pub fn transfer_ns(&self, bytes: usize) -> u64 {
        let total = (bytes + self.envelope_bytes) as f64;
        if self.bandwidth_bps.is_infinite() {
            return 0;
        }
        (total * 1e9 / self.bandwidth_bps) as u64
    }

    /// Endpoint CPU time for handling one message of `bytes` payload, ns.
    pub fn endpoint_cpu_ns(&self, bytes: usize) -> u64 {
        self.rpc_overhead_ns + (bytes as f64 * self.per_byte_cpu_ns) as u64
    }
}

/// Service-level processing costs (charged via `ServerCtx::charge` /
/// `charge_latency`), kept separate from the transport so each service
/// owns its own knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServiceCosts {
    /// Metadata provider: fixed **response latency** of one store message
    /// (BambooDHT-era put acknowledgement: replication round, logging —
    /// I/O wait that overlaps freely across concurrent requests).
    pub meta_store_ns: u64,
    /// Metadata provider: CPU occupancy of storing one tree node
    /// (deserialize, hash, index — serializes on the provider, which is
    /// exactly why spreading a write's nodes over more providers speeds
    /// up its metadata phase, Fig. 3(b)).
    pub meta_store_cpu_ns: u64,
    /// Metadata provider: fetch one tree node (in-memory, pure CPU).
    pub meta_fetch_ns: u64,
    /// Data provider: store one page (beyond byte costs).
    pub page_store_ns: u64,
    /// Data provider: fetch one page.
    pub page_fetch_ns: u64,
    /// Version manager: assign a version + compute border links.
    pub version_assign_ns: u64,
    /// Version manager / provider manager: trivial query.
    pub manager_query_ns: u64,
}

impl ServiceCosts {
    /// Calibrated to land the paper's single-client metadata costs in the
    /// measured 0.005–0.18 s band (§V.C).
    pub fn grid5000() -> Self {
        Self {
            meta_store_ns: 6_000_000,
            meta_store_cpu_ns: 350_000,
            meta_fetch_ns: 60_000,
            page_store_ns: 120_000,
            page_fetch_ns: 100_000,
            version_assign_ns: 80_000,
            manager_query_ns: 20_000,
        }
    }

    /// All-zero costs for logic-only tests.
    pub fn zero() -> Self {
        Self {
            meta_store_ns: 0,
            meta_store_cpu_ns: 0,
            meta_fetch_ns: 0,
            page_store_ns: 0,
            page_fetch_ns: 0,
            version_assign_ns: 0,
            manager_query_ns: 0,
        }
    }
}

/// Client-side per-node processing costs (deserializing tree nodes,
/// descending, building metadata) — charged by `BlobClient` itself since
/// only it knows the operation semantics. The paper: "the main limiting
/// factor is actually the performance of the client's processing power."
#[derive(Clone, Copy, Debug)]
pub struct ClientCosts {
    /// Process one fetched tree node during a read.
    pub read_node_ns: u64,
    /// Build one tree node during a write (weave + serialize).
    pub build_node_ns: u64,
    /// Process one fetched page during a read (buffer stitch).
    pub page_ns: u64,
    /// Prepare one page during a write (split + copy into send buffers).
    pub write_page_ns: u64,
    /// Cache probe/update per node.
    pub cache_ns: u64,
}

impl ClientCosts {
    /// 2008-era client library written in C++ with Boost serialization.
    pub fn grid5000() -> Self {
        Self {
            read_node_ns: 100_000,
            build_node_ns: 80_000,
            page_ns: 25_000,
            write_page_ns: 150_000,
            cache_ns: 4_000,
        }
    }

    /// Zero costs for logic-only tests.
    pub fn zero() -> Self {
        Self {
            read_node_ns: 0,
            build_node_ns: 0,
            page_ns: 0,
            write_page_ns: 0,
            cache_ns: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_matches_bandwidth() {
        let c = CostModel::grid5000();
        // 64 KiB page at 117.5 MB/s ≈ 558 µs.
        let ns = c.transfer_ns(64 * 1024);
        assert!((500_000..650_000).contains(&ns), "{ns}");
        // Zero model is free.
        assert_eq!(CostModel::zero().transfer_ns(1 << 20), 0);
    }

    #[test]
    fn endpoint_cpu_scales_with_bytes() {
        let c = CostModel::grid5000();
        let small = c.endpoint_cpu_ns(100);
        let big = c.endpoint_cpu_ns(1 << 20);
        assert!(big > small);
        assert!(small >= c.rpc_overhead_ns);
    }

    #[test]
    fn presets_exist() {
        let _ = ServiceCosts::grid5000();
        let _ = ClientCosts::grid5000();
        assert_eq!(ServiceCosts::zero().meta_store_ns, 0);
    }
}
