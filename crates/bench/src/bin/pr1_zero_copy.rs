//! PR 1 acceptance benchmark: the zero-copy page path, before vs after.
//!
//! Runs the full distributed stack (zero-cost transport, so wall-clock
//! time is dominated by real CPU work — exactly the memcpy traffic this
//! PR removes) at 1–64 concurrent clients, large pages, in two modes:
//!
//! * **before** — `wire::set_zero_copy(false)`: every page payload is
//!   copied at each hop (encode, batch, decode, store, respond), the
//!   seed's copy regime;
//! * **after** — the zero-copy path: pages are shared by refcount; a
//!   write copies the caller's buffer once, a read copies each page once
//!   into the result.
//!
//! Emits a table per phase and `BENCH_PR1.json` at the repo root with
//! aggregate throughput, per-op bytes-copied, and the before→after
//! improvement on the large-page write benchmark.

use blobseer_bench::{measure_region, payload, MB};
use blobseer_core::{Deployment, DeploymentConfig};
use blobseer_proto::wire;
use blobseer_proto::Segment;
use blobseer_rpc::Ctx;
use blobseer_util::stats::Table;
use std::sync::Arc;

const PAGE: u64 = 256 * 1024; // large pages: the copy-bound regime
const SEG_PAGES: u64 = 4; // 1 MiB per operation
const SEG: u64 = SEG_PAGES * PAGE;
const OPS_PER_CLIENT: u64 = 24;
const PROVIDERS: usize = 8;
const CLIENTS: &[usize] = &[1, 2, 4, 8, 16, 32, 64];

struct Sample {
    clients: usize,
    mib_s: f64,
    copied_per_op: f64,
}

fn deployment() -> Deployment {
    let mut cfg = DeploymentConfig::functional(PROVIDERS);
    cfg.provider_capacity = u64::MAX;
    Deployment::build(cfg)
}

/// One write phase: `n` client threads, disjoint regions, `OPS_PER_CLIENT`
/// segment writes each. Returns aggregate MiB/s and copies per op.
fn run_write(n: usize) -> Sample {
    let d = Arc::new(deployment());
    let setup = d.client();
    let mut ctx = Ctx::start();
    // One blob, each client owns a disjoint region of it.
    let region = SEG * OPS_PER_CLIENT;
    let total = (region * n as u64).next_power_of_two();
    let blob = setup.alloc(&mut ctx, total, PAGE).unwrap().blob;

    let m = measure_region(|| {
        std::thread::scope(|scope| {
            for t in 0..n {
                let d = Arc::clone(&d);
                scope.spawn(move || {
                    let c = d.client();
                    let mut ctx = Ctx::start();
                    let data = payload(SEG, t as u64);
                    let base = region * t as u64;
                    for i in 0..OPS_PER_CLIENT {
                        c.write(&mut ctx, blob, base + i * SEG, &data).unwrap();
                    }
                });
            }
        });
    });
    let ops = (n as u64 * OPS_PER_CLIENT) as f64;
    Sample {
        clients: n,
        mib_s: ops * SEG as f64 / MB as f64 / m.secs,
        copied_per_op: m.bytes_copied as f64 / ops,
    }
}

/// One read phase: prefill a region, then `n` clients re-read segments.
fn run_read(n: usize) -> Sample {
    let d = Arc::new(deployment());
    let setup = d.client();
    let mut ctx = Ctx::start();
    let region = SEG * OPS_PER_CLIENT;
    let total = (region * n as u64).next_power_of_two();
    let blob = setup.alloc(&mut ctx, total, PAGE).unwrap().blob;
    for t in 0..n as u64 {
        let data = payload(SEG, t);
        for i in 0..OPS_PER_CLIENT {
            setup
                .write(&mut ctx, blob, region * t + i * SEG, &data)
                .unwrap();
        }
    }

    let m = measure_region(|| {
        std::thread::scope(|scope| {
            for t in 0..n {
                let d = Arc::clone(&d);
                scope.spawn(move || {
                    let c = d.client();
                    let mut ctx = Ctx::start();
                    let base = region * t as u64;
                    let mut out = vec![0u8; SEG as usize];
                    for i in 0..OPS_PER_CLIENT {
                        c.read_into(
                            &mut ctx,
                            blob,
                            None,
                            Segment::new(base + i * SEG, SEG),
                            &mut out,
                        )
                        .unwrap();
                    }
                });
            }
        });
    });
    let ops = (n as u64 * OPS_PER_CLIENT) as f64;
    Sample {
        clients: n,
        mib_s: ops * SEG as f64 / MB as f64 / m.secs,
        copied_per_op: m.bytes_copied as f64 / ops,
    }
}

fn run_mode(zero_copy: bool) -> (Vec<Sample>, Vec<Sample>) {
    wire::set_zero_copy(zero_copy);
    let writes: Vec<Sample> = CLIENTS.iter().map(|&n| run_write(n)).collect();
    let reads: Vec<Sample> = CLIENTS.iter().map(|&n| run_read(n)).collect();
    wire::set_zero_copy(true);
    (writes, reads)
}

fn table(title: &str, before: &[Sample], after: &[Sample]) -> Table {
    let before_col = format!("{title} before MiB/s");
    let after_col = format!("{title} after MiB/s");
    let mut t = Table::new(&[
        "clients",
        &before_col,
        &after_col,
        "speedup",
        "copied/op before",
        "copied/op after",
    ]);
    for (b, a) in before.iter().zip(after) {
        t.row(&[
            b.clients.to_string(),
            format!("{:.1}", b.mib_s),
            format!("{:.1}", a.mib_s),
            format!("{:.2}x", a.mib_s / b.mib_s),
            format!("{:.0}", b.copied_per_op),
            format!("{:.0}", a.copied_per_op),
        ]);
    }
    t
}

fn json_series(samples: &[Sample]) -> String {
    let entries: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "{{\"clients\": {}, \"mib_s\": {:.2}, \"bytes_copied_per_op\": {:.0}}}",
                s.clients, s.mib_s, s.copied_per_op
            )
        })
        .collect();
    format!("[{}]", entries.join(", "))
}

fn main() {
    println!("pr1 zero-copy benchmark: page={PAGE} seg={SEG} ops/client={OPS_PER_CLIENT}");

    println!("\n-- mode: before (per-hop payload copies, the seed regime)");
    let (w_before, r_before) = run_mode(false);
    println!("-- mode: after (zero-copy shared PageBuf path)");
    let (w_after, r_after) = run_mode(true);

    let wt = table("write", &w_before, &w_after);
    let rt = table("read", &r_before, &r_after);
    blobseer_bench::emit("pr1_write", "PR1 large-page write, before vs after", &wt);
    blobseer_bench::emit("pr1_read", "PR1 large-page read, before vs after", &rt);

    // Headline number: geometric-mean write speedup across client counts.
    let speedups: Vec<f64> = w_before
        .iter()
        .zip(&w_after)
        .map(|(b, a)| a.mib_s / b.mib_s)
        .collect();
    let geo = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
    let pct = (geo - 1.0) * 100.0;
    println!("\nlarge-page write throughput improvement (geomean): {pct:.1}%");

    let json = format!(
        "{{\n  \"bench\": \"pr1_zero_copy\",\n  \"page_size\": {PAGE},\n  \"segment_bytes\": {SEG},\n  \"ops_per_client\": {OPS_PER_CLIENT},\n  \"providers\": {PROVIDERS},\n  \"write\": {{\"before\": {}, \"after\": {}}},\n  \"read\": {{\"before\": {}, \"after\": {}}},\n  \"write_speedup_geomean\": {geo:.3},\n  \"write_improvement_pct\": {pct:.1}\n}}\n",
        json_series(&w_before),
        json_series(&w_after),
        json_series(&r_before),
        json_series(&r_after),
    );
    std::fs::write("BENCH_PR1.json", &json).expect("write BENCH_PR1.json");
    println!("(json written to BENCH_PR1.json)");
}
