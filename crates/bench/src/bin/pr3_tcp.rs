//! PR 3 acceptance benchmark: the real TCP transport on loopback,
//! gather-write vs the flatten-write ablation.
//!
//! Runs the full distributed stack over `TcpTransport` at 1–64
//! concurrent clients with large (256 KiB) pages, in two send modes:
//!
//! * **flatten** — `set_gather_write(false)`: every outbound frame body
//!   is flattened into one contiguous buffer before the socket write
//!   (a metered memcpy per frame), the regime a naive socket port of
//!   the seed would have shipped;
//! * **gather** — the default: the frame header plus every body segment
//!   go to `write_vectored` as one slice list, zero flatten copies.
//!
//! Both modes share the receive path: one buffer per inbound frame,
//! payloads lent out by refcount (`Reader::from_buf`).
//!
//! Emits a table per phase and `BENCH_PR3.json` at the repo root with
//! aggregate throughput, per-op bytes-copied, and the flatten→gather
//! improvement on the large-page write benchmark.

use blobseer_bench::{measure_region, payload, MB};
use blobseer_core::{Deployment, DeploymentConfig};
use blobseer_proto::Segment;
use blobseer_rpc::Ctx;
use blobseer_util::stats::Table;
use std::sync::Arc;

const PAGE: u64 = 256 * 1024; // large pages: the copy-bound regime
const SEG_PAGES: u64 = 4; // 1 MiB per operation
const SEG: u64 = SEG_PAGES * PAGE;
const OPS_PER_CLIENT: u64 = 8;
const PROVIDERS: usize = 8;
const CLIENTS: &[usize] = &[1, 2, 4, 8, 16, 32, 64];

struct Sample {
    clients: usize,
    mib_s: f64,
    copied_per_op: f64,
}

fn deployment(gather: bool) -> Deployment {
    let mut cfg = DeploymentConfig::functional_tcp(PROVIDERS);
    cfg.provider_capacity = u64::MAX;
    let d = Deployment::build(cfg);
    d.cluster
        .tcp()
        .expect("tcp deployment")
        .set_gather_write(gather);
    d
}

/// One write phase: `n` client threads, disjoint regions, over sockets.
fn run_write(n: usize, gather: bool) -> Sample {
    let d = Arc::new(deployment(gather));
    let setup = d.client();
    let mut ctx = Ctx::start();
    let region = SEG * OPS_PER_CLIENT;
    let total = (region * n as u64).next_power_of_two();
    let blob = setup.alloc(&mut ctx, total, PAGE).unwrap().blob;

    let m = measure_region(|| {
        std::thread::scope(|scope| {
            for t in 0..n {
                let d = Arc::clone(&d);
                scope.spawn(move || {
                    let c = d.client();
                    let mut ctx = Ctx::start();
                    let data = payload(SEG, t as u64);
                    let base = region * t as u64;
                    for i in 0..OPS_PER_CLIENT {
                        c.write(&mut ctx, blob, base + i * SEG, &data).unwrap();
                    }
                });
            }
        });
    });
    let ops = (n as u64 * OPS_PER_CLIENT) as f64;
    Sample {
        clients: n,
        mib_s: ops * SEG as f64 / MB as f64 / m.secs,
        copied_per_op: m.bytes_copied as f64 / ops,
    }
}

/// One read phase: prefill a region, then `n` clients re-read segments.
fn run_read(n: usize, gather: bool) -> Sample {
    let d = Arc::new(deployment(gather));
    let setup = d.client();
    let mut ctx = Ctx::start();
    let region = SEG * OPS_PER_CLIENT;
    let total = (region * n as u64).next_power_of_two();
    let blob = setup.alloc(&mut ctx, total, PAGE).unwrap().blob;
    for t in 0..n as u64 {
        let data = payload(SEG, t);
        for i in 0..OPS_PER_CLIENT {
            setup
                .write(&mut ctx, blob, region * t + i * SEG, &data)
                .unwrap();
        }
    }

    let m = measure_region(|| {
        std::thread::scope(|scope| {
            for t in 0..n {
                let d = Arc::clone(&d);
                scope.spawn(move || {
                    let c = d.client();
                    let mut ctx = Ctx::start();
                    let base = region * t as u64;
                    let mut out = vec![0u8; SEG as usize];
                    for i in 0..OPS_PER_CLIENT {
                        c.read_into(
                            &mut ctx,
                            blob,
                            None,
                            Segment::new(base + i * SEG, SEG),
                            &mut out,
                        )
                        .unwrap();
                    }
                });
            }
        });
    });
    let ops = (n as u64 * OPS_PER_CLIENT) as f64;
    Sample {
        clients: n,
        mib_s: ops * SEG as f64 / MB as f64 / m.secs,
        copied_per_op: m.bytes_copied as f64 / ops,
    }
}

fn run_mode(gather: bool) -> (Vec<Sample>, Vec<Sample>) {
    let writes: Vec<Sample> = CLIENTS.iter().map(|&n| run_write(n, gather)).collect();
    let reads: Vec<Sample> = CLIENTS.iter().map(|&n| run_read(n, gather)).collect();
    (writes, reads)
}

fn table(title: &str, flatten: &[Sample], gather: &[Sample]) -> Table {
    let flatten_col = format!("{title} flatten MiB/s");
    let gather_col = format!("{title} gather MiB/s");
    let mut t = Table::new(&[
        "clients",
        &flatten_col,
        &gather_col,
        "speedup",
        "copied/op flatten",
        "copied/op gather",
    ]);
    for (f, g) in flatten.iter().zip(gather) {
        t.row(&[
            f.clients.to_string(),
            format!("{:.1}", f.mib_s),
            format!("{:.1}", g.mib_s),
            format!("{:.2}x", g.mib_s / f.mib_s),
            format!("{:.0}", f.copied_per_op),
            format!("{:.0}", g.copied_per_op),
        ]);
    }
    t
}

fn json_series(samples: &[Sample]) -> String {
    let entries: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "{{\"clients\": {}, \"mib_s\": {:.2}, \"bytes_copied_per_op\": {:.0}}}",
                s.clients, s.mib_s, s.copied_per_op
            )
        })
        .collect();
    format!("[{}]", entries.join(", "))
}

fn main() {
    println!(
        "pr3 tcp transport benchmark: page={PAGE} seg={SEG} ops/client={OPS_PER_CLIENT} (loopback)"
    );

    println!("\n-- mode: flatten (contiguous copy before every socket write)");
    let (w_flat, r_flat) = run_mode(false);
    println!("-- mode: gather (writev straight from the segment chain)");
    let (w_gat, r_gat) = run_mode(true);

    let wt = table("write", &w_flat, &w_gat);
    let rt = table("read", &r_flat, &r_gat);
    blobseer_bench::emit(
        "pr3_write",
        "PR3 tcp large-page write, flatten vs gather",
        &wt,
    );
    blobseer_bench::emit(
        "pr3_read",
        "PR3 tcp large-page read, flatten vs gather",
        &rt,
    );

    // Headline: geometric-mean write speedup across client counts.
    let speedups: Vec<f64> = w_flat
        .iter()
        .zip(&w_gat)
        .map(|(f, g)| g.mib_s / f.mib_s)
        .collect();
    let geo = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
    let pct = (geo - 1.0) * 100.0;
    println!("\ntcp large-page write throughput improvement (geomean): {pct:.1}%");

    let json = format!(
        "{{\n  \"bench\": \"pr3_tcp\",\n  \"transport\": \"tcp-loopback\",\n  \"page_size\": {PAGE},\n  \"segment_bytes\": {SEG},\n  \"ops_per_client\": {OPS_PER_CLIENT},\n  \"providers\": {PROVIDERS},\n  \"write\": {{\"flatten\": {}, \"gather\": {}}},\n  \"read\": {{\"flatten\": {}, \"gather\": {}}},\n  \"write_speedup_geomean\": {geo:.3},\n  \"write_improvement_pct\": {pct:.1}\n}}\n",
        json_series(&w_flat),
        json_series(&w_gat),
        json_series(&r_flat),
        json_series(&r_gat),
    );
    std::fs::write("BENCH_PR3.json", &json).expect("write BENCH_PR3.json");
    println!("(json written to BENCH_PR3.json)");
}
