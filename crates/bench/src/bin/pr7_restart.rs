//! PR 7 acceptance benchmark: the durable control plane — steady-state
//! parity plus cold-restart replay — over the real TCP transport on
//! loopback, mmap backend.
//!
//! **Parity sweep (hard-gated)**: with the metadata journals and the
//! version journal enabled (every mmap deployment journals since PR 7),
//! the steady-state write and read paths must look exactly like PR 5's:
//! the one sanctioned 1 MiB copy per 1 MiB operation, zero
//! `Serializing` locks, and exactly one `VersionAssign` acquisition per
//! write. Control-plane durability is write-ahead appends on the
//! journals' group-commit machinery — kernel writes, never data-plane
//! copies or control-plane locks. Asserted here, then held against the
//! committed `BENCH_PR7.json` by the CI gate's hard columns.
//!
//! **Cold-restart leg (advisory)**: publish a growing history, then
//! time [`Deployment::restart_cluster`] — kill every node kind, reopen
//! the page logs, metadata journals and version journal, replay, and
//! re-serve. Reported per history size: the journal bytes replayed and
//! the restart wall time, plus a post-restart read verifying the
//! recovered latest version end to end. Restart time is replay-bound
//! and machine-dependent — advisory, like throughput.

use blobseer_bench::{measure_region, payload, MB};
use blobseer_core::{BackendKind, Deployment, DeploymentConfig};
use blobseer_proto::Segment;
use blobseer_rpc::Ctx;
use blobseer_util::lockmeter;
use blobseer_util::stats::Table;
use std::sync::Arc;
use std::time::Instant;

const PAGE: u64 = 256 * 1024; // large pages: the copy-bound regime
const SEG_PAGES: u64 = 4; // 1 MiB per operation
const SEG: u64 = SEG_PAGES * PAGE;
const OPS_PER_CLIENT: u64 = 8;
const PROVIDERS: usize = 8;
const CLIENTS: &[usize] = &[1, 2, 4, 8, 16, 32, 64];
const READERS: usize = 4;
const READ_OPS: u64 = 8;

/// Cold-restart leg: histories of this many 1 MiB publishes.
const RESTART_VERSIONS: &[u64] = &[16, 64, 256];

struct Sample {
    clients: usize,
    mib_s: f64,
    copied_per_op: f64,
    ser_per_op: f64,
    va_per_op: f64,
}

fn deployment() -> Arc<Deployment> {
    let mut cfg = DeploymentConfig::functional_tcp(PROVIDERS)
        .tune()
        .backend(BackendKind::Mmap)
        .build();
    cfg.provider_capacity = u64::MAX; // mmap clamps to its log cap
    Arc::new(Deployment::build(cfg))
}

/// One write phase: `n` client threads, disjoint regions, over sockets,
/// every publish journaled write-ahead at the version manager and every
/// tree-node batch journaled at its metadata provider.
fn run_write(n: usize) -> Sample {
    let d = deployment();
    let setup = d.client();
    let mut ctx = Ctx::start();
    let region = SEG * OPS_PER_CLIENT;
    let total = (region * n as u64).next_power_of_two();
    let blob = setup.alloc(&mut ctx, total, PAGE).unwrap().blob;

    // Steady state means warm clients: geometry cached, roster loaded.
    let clients: Vec<_> = (0..n)
        .map(|_| {
            let c = d.client();
            c.info(&mut ctx, blob).unwrap();
            c
        })
        .collect();

    let locks = lockmeter::snapshot();
    let m = measure_region(|| {
        std::thread::scope(|scope| {
            for (t, c) in clients.into_iter().enumerate() {
                scope.spawn(move || {
                    let mut ctx = Ctx::start();
                    let data = payload(SEG, t as u64);
                    let base = region * t as u64;
                    for i in 0..OPS_PER_CLIENT {
                        c.write(&mut ctx, blob, base + i * SEG, &data).unwrap();
                    }
                });
            }
        });
    });
    let d_locks = locks.since();
    let ops = (n as u64 * OPS_PER_CLIENT) as f64;
    Sample {
        clients: n,
        mib_s: ops * SEG as f64 / MB as f64 / m.secs,
        copied_per_op: m.bytes_copied as f64 / ops,
        ser_per_op: d_locks.serializing as f64 / ops,
        va_per_op: d_locks.version_assign as f64 / ops,
    }
}

/// Read parity: `READERS` clients re-reading the latest version of a
/// freshly *restarted* cluster — the replayed serving path must meter
/// exactly like the original one.
fn run_read_after_restart() -> Sample {
    let mut cfg = DeploymentConfig::functional_tcp(PROVIDERS)
        .tune()
        .backend(BackendKind::Mmap)
        .build();
    cfg.provider_capacity = u64::MAX;
    let mut d = Deployment::build(cfg);
    let setup = d.client();
    let mut ctx = Ctx::start();
    let region = SEG * (READERS as u64) * READ_OPS;
    let total = region.next_power_of_two();
    let blob = setup.alloc(&mut ctx, total, PAGE).unwrap().blob;
    let data = payload(SEG, 7);
    let mut off = 0;
    while off < region {
        setup.write(&mut ctx, blob, off, &data).unwrap();
        off += SEG;
    }
    d.restart_cluster().expect("cold restart");

    // Steady state means warm clients here too: the first op per client
    // pulls geometry/roster under a (sanctioned, one-off) serializing
    // lock — pay it outside the measured region.
    let clients: Vec<_> = (0..READERS)
        .map(|_| {
            let c = d.client();
            c.info(&mut ctx, blob).unwrap();
            c
        })
        .collect();

    let locks = lockmeter::snapshot();
    let m = measure_region(|| {
        std::thread::scope(|scope| {
            for (t, c) in clients.into_iter().enumerate() {
                scope.spawn(move || {
                    let mut ctx = Ctx::start();
                    let slots = region / SEG;
                    let mut out = vec![0u8; SEG as usize];
                    for i in 0..READ_OPS {
                        let off = ((t as u64 + i * READERS as u64) % slots) * SEG;
                        c.read_into(&mut ctx, blob, None, Segment::new(off, SEG), &mut out)
                            .unwrap();
                    }
                });
            }
        });
    });
    let d_locks = locks.since();
    let ops = (READERS as u64 * READ_OPS) as f64;
    Sample {
        clients: READERS,
        mib_s: ops * SEG as f64 / MB as f64 / m.secs,
        copied_per_op: m.bytes_copied as f64 / ops,
        ser_per_op: d_locks.serializing as f64 / ops,
        va_per_op: 0.0, // reads never assign versions
    }
}

struct RestartSample {
    versions: u64,
    control_log_bytes: u64,
    restart_ms: f64,
}

/// The cold-restart timing leg: publish `versions` 1 MiB writes, then
/// time the whole-cluster kill + reopen + replay, and verify the
/// recovered latest end to end.
fn run_restart(versions: u64) -> RestartSample {
    let mut cfg = DeploymentConfig::functional_tcp(PROVIDERS)
        .tune()
        .backend(BackendKind::Mmap)
        .build();
    cfg.provider_capacity = u64::MAX;
    let mut d = Deployment::build(cfg);
    let c = d.client();
    let mut ctx = Ctx::start();
    let total = (SEG * versions).next_power_of_two();
    let blob = c.alloc(&mut ctx, total, PAGE).unwrap().blob;
    let data = payload(SEG, versions);
    for i in 0..versions {
        c.write(&mut ctx, blob, (i * SEG) % total, &data).unwrap();
    }
    let control_log_bytes: u64 = (0..PROVIDERS)
        .map(|i| d.storage[i].meta().log_bytes())
        .sum::<u64>()
        + d.vm.log_bytes();

    let t0 = Instant::now();
    d.restart_cluster().expect("cold restart");
    let restart_ms = t0.elapsed().as_secs_f64() * 1e3;

    let (latest_read, latest) = c
        .read(
            &mut ctx,
            blob,
            None,
            Segment::new((versions - 1) * SEG % total, SEG),
        )
        .expect("post-restart read");
    assert_eq!(latest, versions, "replay surfaced every published version");
    assert_eq!(latest_read, data, "recovered bytes are byte-identical");

    RestartSample {
        versions,
        control_log_bytes,
        restart_ms,
    }
}

/// The invariants the parity sweep promises (same budget as PR 5).
fn assert_invariants(name: &str, samples: &[Sample], writes: bool) {
    for s in samples {
        assert!(
            (s.copied_per_op - SEG as f64).abs() < 1.0,
            "{name}@{} clients: copies/op {} != sanctioned {}",
            s.clients,
            s.copied_per_op,
            SEG
        );
        assert!(
            s.ser_per_op < 0.01,
            "{name}@{} clients: {} serializing locks/op on the lock-free plane",
            s.clients,
            s.ser_per_op
        );
        if writes {
            // At most one sanctioned acquisition per write: the PR 10
            // grant protocol may batch concurrent assignments below 1,
            // never above.
            assert!(
                s.va_per_op > 0.0 && s.va_per_op <= 1.01,
                "{name}@{} clients: {} VersionAssign locks/op (sanctioned: <= 1)",
                s.clients,
                s.va_per_op
            );
        }
    }
}

fn json_series(samples: &[Sample]) -> String {
    let entries: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "{{\"clients\": {}, \"mib_s\": {:.2}, \"bytes_copied_per_op\": {:.0}, \"serializing_locks_per_op\": {:.2}, \"version_assign_locks_per_op\": {:.2}}}",
                s.clients, s.mib_s, s.copied_per_op, s.ser_per_op, s.va_per_op
            )
        })
        .collect();
    format!("[{}]", entries.join(", "))
}

fn main() {
    println!(
        "pr7 restart benchmark: page={PAGE} seg={SEG} ops/client={OPS_PER_CLIENT} \
         (tcp loopback, mmap backend, durable control plane)"
    );

    println!("\n-- steady-state write parity (journals on)");
    let writes: Vec<Sample> = CLIENTS.iter().map(|&n| run_write(n)).collect();
    assert_invariants("write/durable-control-plane", &writes, true);
    let mut wt = Table::new(&["clients", "MiB/s", "copied/op", "ser/op", "va/op"]);
    for s in &writes {
        wt.row(&[
            s.clients.to_string(),
            format!("{:.1}", s.mib_s),
            format!("{:.0}", s.copied_per_op),
            format!("{:.2}", s.ser_per_op),
            format!("{:.2}", s.va_per_op),
        ]);
    }
    blobseer_bench::emit(
        "pr7_write",
        "PR7 large-page write with durable control plane",
        &wt,
    );

    println!("-- steady-state read parity after a cold restart");
    let read = run_read_after_restart();
    assert_invariants("read/after-restart", std::slice::from_ref(&read), false);
    println!(
        "read after restart: {:.1} MiB/s, {:.0} copied/op, {:.2} ser/op",
        read.mib_s, read.copied_per_op, read.ser_per_op
    );

    println!("\n-- cold-restart replay time vs history size");
    let restarts: Vec<RestartSample> = RESTART_VERSIONS.iter().map(|&v| run_restart(v)).collect();
    let mut rt = Table::new(&["versions", "control log B", "restart ms"]);
    for r in &restarts {
        rt.row(&[
            r.versions.to_string(),
            r.control_log_bytes.to_string(),
            format!("{:.1}", r.restart_ms),
        ]);
    }
    blobseer_bench::emit("pr7_restart", "PR7 whole-cluster cold restart replay", &rt);

    let restart_json: Vec<String> = restarts
        .iter()
        .map(|r| {
            format!(
                "{{\"versions\": {}, \"control_log_bytes\": {}, \"restart_ms\": {:.1}}}",
                r.versions, r.control_log_bytes, r.restart_ms
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"pr7_restart\",\n  \"transport\": \"tcp-loopback\",\n  \"backend\": \"mmap\",\n  \"page_size\": {PAGE},\n  \"segment_bytes\": {SEG},\n  \"ops_per_client\": {OPS_PER_CLIENT},\n  \"providers\": {PROVIDERS},\n  \"write\": {},\n  \"read_after_restart\": {},\n  \"restart\": [{}]\n}}\n",
        json_series(&writes),
        json_series(std::slice::from_ref(&read)),
        restart_json.join(", "),
    );
    std::fs::write("BENCH_PR7.json", &json).expect("write BENCH_PR7.json");
    println!("(json written to BENCH_PR7.json)");
}
