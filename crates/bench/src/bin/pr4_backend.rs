//! PR 4 acceptance benchmark: the persistent mmap provider backend vs
//! the in-memory backend, over the real TCP transport on loopback.
//!
//! Runs the full distributed stack at 1–64 concurrent clients with
//! large (256 KiB) pages, once per backend:
//!
//! * **memory** — pages live in provider heap buffers (the PR 1–3
//!   regime; a provider restart loses everything);
//! * **mmap** — every acknowledged page is appended to the provider's
//!   page log and *served as a refcounted slice of the log mapping*:
//!   the write path adds positioned kernel writes (durability), the
//!   read path serves straight out of the page cache.
//!
//! The bench **asserts** the copy invariants it sweeps: both backends,
//! both directions, must meter exactly the one sanctioned 1 MiB copy
//! per 1 MiB operation (write: the client's `copy_from_slice`; read:
//! the per-page assembly into the result) and an aligned single-page
//! `read_buf` must add zero copies on the mmap path. A backend that
//! snuck an extra copy in aborts the bench — and the CI gate
//! (`bench_gate`) catches quieter drifts against the committed
//! `BENCH_PR4.json`.

use blobseer_bench::{measure_region, payload, MB};
use blobseer_core::{BackendKind, Deployment, DeploymentConfig};
use blobseer_proto::Segment;
use blobseer_rpc::Ctx;
use blobseer_util::copymeter;
use blobseer_util::stats::Table;
use std::sync::Arc;

const PAGE: u64 = 256 * 1024; // large pages: the copy-bound regime
const SEG_PAGES: u64 = 4; // 1 MiB per operation
const SEG: u64 = SEG_PAGES * PAGE;
const OPS_PER_CLIENT: u64 = 8;
const PROVIDERS: usize = 8;
const CLIENTS: &[usize] = &[1, 2, 4, 8, 16, 32, 64];

struct Sample {
    clients: usize,
    mib_s: f64,
    copied_per_op: f64,
}

fn deployment(backend: BackendKind) -> Deployment {
    let mut cfg = DeploymentConfig::functional_tcp(PROVIDERS)
        .tune()
        .backend(backend)
        .build();
    cfg.provider_capacity = u64::MAX; // mmap clamps to its log cap
    Deployment::build(cfg)
}

/// One write phase: `n` client threads, disjoint regions, over sockets.
fn run_write(n: usize, backend: BackendKind) -> Sample {
    let d = Arc::new(deployment(backend));
    let setup = d.client();
    let mut ctx = Ctx::start();
    let region = SEG * OPS_PER_CLIENT;
    let total = (region * n as u64).next_power_of_two();
    let blob = setup.alloc(&mut ctx, total, PAGE).unwrap().blob;

    let m = measure_region(|| {
        std::thread::scope(|scope| {
            for t in 0..n {
                let d = Arc::clone(&d);
                scope.spawn(move || {
                    let c = d.client();
                    let mut ctx = Ctx::start();
                    let data = payload(SEG, t as u64);
                    let base = region * t as u64;
                    for i in 0..OPS_PER_CLIENT {
                        c.write(&mut ctx, blob, base + i * SEG, &data).unwrap();
                    }
                });
            }
        });
    });
    let ops = (n as u64 * OPS_PER_CLIENT) as f64;
    Sample {
        clients: n,
        mib_s: ops * SEG as f64 / MB as f64 / m.secs,
        copied_per_op: m.bytes_copied as f64 / ops,
    }
}

/// One read phase: prefill a region, then `n` clients re-read segments.
fn run_read(n: usize, backend: BackendKind) -> Sample {
    let d = Arc::new(deployment(backend));
    let setup = d.client();
    let mut ctx = Ctx::start();
    let region = SEG * OPS_PER_CLIENT;
    let total = (region * n as u64).next_power_of_two();
    let blob = setup.alloc(&mut ctx, total, PAGE).unwrap().blob;
    for t in 0..n as u64 {
        let data = payload(SEG, t);
        for i in 0..OPS_PER_CLIENT {
            setup
                .write(&mut ctx, blob, region * t + i * SEG, &data)
                .unwrap();
        }
    }

    let m = measure_region(|| {
        std::thread::scope(|scope| {
            for t in 0..n {
                let d = Arc::clone(&d);
                scope.spawn(move || {
                    let c = d.client();
                    let mut ctx = Ctx::start();
                    let base = region * t as u64;
                    let mut out = vec![0u8; SEG as usize];
                    for i in 0..OPS_PER_CLIENT {
                        c.read_into(
                            &mut ctx,
                            blob,
                            None,
                            Segment::new(base + i * SEG, SEG),
                            &mut out,
                        )
                        .unwrap();
                    }
                });
            }
        });
    });
    let ops = (n as u64 * OPS_PER_CLIENT) as f64;
    Sample {
        clients: n,
        mib_s: ops * SEG as f64 / MB as f64 / m.secs,
        copied_per_op: m.bytes_copied as f64 / ops,
    }
}

/// The aligned single-page `read_buf` leg: must add **zero** copies on
/// either backend (the page is lent from the receive buffer, which the
/// mmap provider filled by gather-writing straight off its log
/// mapping).
fn run_read_buf_copies(backend: BackendKind) -> u64 {
    let d = deployment(backend);
    let c = d.client();
    let mut ctx = Ctx::start();
    let blob = c.alloc(&mut ctx, SEG, PAGE).unwrap().blob;
    c.write(&mut ctx, blob, 0, &payload(SEG, 9)).unwrap();
    let before = copymeter::snapshot();
    let (page, _) = c
        .read_buf(&mut ctx, blob, None, Segment::new(0, PAGE))
        .unwrap();
    assert_eq!(page.len() as u64, PAGE);
    before.bytes_since()
}

fn run_mode(backend: BackendKind) -> (Vec<Sample>, Vec<Sample>) {
    let writes: Vec<Sample> = CLIENTS.iter().map(|&n| run_write(n, backend)).collect();
    let reads: Vec<Sample> = CLIENTS.iter().map(|&n| run_read(n, backend)).collect();
    (writes, reads)
}

/// The invariant this PR's seam promised: exactly the sanctioned copy
/// per op, regardless of backend. Asserted here so the bench itself is
/// an acceptance test, not just a reporter.
fn assert_copy_invariants(name: &str, samples: &[Sample]) {
    for s in samples {
        assert!(
            (s.copied_per_op - SEG as f64).abs() < 1.0,
            "{name}@{} clients: copies/op {} != sanctioned {}",
            s.clients,
            s.copied_per_op,
            SEG
        );
    }
}

fn table(title: &str, memory: &[Sample], mmap: &[Sample]) -> Table {
    let memory_col = format!("{title} memory MiB/s");
    let mmap_col = format!("{title} mmap MiB/s");
    let mut t = Table::new(&[
        "clients",
        &memory_col,
        &mmap_col,
        "ratio",
        "copied/op memory",
        "copied/op mmap",
    ]);
    for (m, p) in memory.iter().zip(mmap) {
        t.row(&[
            m.clients.to_string(),
            format!("{:.1}", m.mib_s),
            format!("{:.1}", p.mib_s),
            format!("{:.2}x", p.mib_s / m.mib_s),
            format!("{:.0}", m.copied_per_op),
            format!("{:.0}", p.copied_per_op),
        ]);
    }
    t
}

fn json_series(samples: &[Sample]) -> String {
    let entries: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "{{\"clients\": {}, \"mib_s\": {:.2}, \"bytes_copied_per_op\": {:.0}}}",
                s.clients, s.mib_s, s.copied_per_op
            )
        })
        .collect();
    format!("[{}]", entries.join(", "))
}

fn main() {
    println!(
        "pr4 storage backend benchmark: page={PAGE} seg={SEG} ops/client={OPS_PER_CLIENT} \
         (tcp loopback)"
    );

    println!("\n-- backend: memory (provider heap, volatile)");
    let (w_mem, r_mem) = run_mode(BackendKind::Memory);
    println!("-- backend: mmap (append-only page log, persistent)");
    let (w_map, r_map) = run_mode(BackendKind::Mmap);

    for (name, samples) in [
        ("write/memory", &w_mem),
        ("write/mmap", &w_map),
        ("read/memory", &r_mem),
        ("read/mmap", &r_map),
    ] {
        assert_copy_invariants(name, samples);
    }
    let rb_mem = run_read_buf_copies(BackendKind::Memory);
    let rb_map = run_read_buf_copies(BackendKind::Mmap);
    assert_eq!(
        rb_map, 0,
        "aligned single-page read_buf on the mmap backend must add zero copies"
    );
    assert_eq!(rb_mem, 0, "…and the memory backend agrees");
    println!(
        "\ncopy invariants hold: {} copied/op both backends both directions, read_buf 0 extra",
        SEG
    );

    let wt = table("write", &w_mem, &w_map);
    let rt = table("read", &r_mem, &r_map);
    blobseer_bench::emit(
        "pr4_write",
        "PR4 large-page write, memory vs mmap backend",
        &wt,
    );
    blobseer_bench::emit(
        "pr4_read",
        "PR4 large-page read, memory vs mmap backend",
        &rt,
    );

    // Headline: the persistence tax on writes, and read parity, as
    // geomean ratios across client counts.
    let geo = |a: &[Sample], b: &[Sample]| -> f64 {
        let logs: Vec<f64> = a
            .iter()
            .zip(b)
            .map(|(x, y)| (y.mib_s / x.mib_s).ln())
            .collect();
        (logs.iter().sum::<f64>() / logs.len() as f64).exp()
    };
    let write_ratio = geo(&w_mem, &w_map);
    let read_ratio = geo(&r_mem, &r_map);
    println!(
        "\nmmap/memory throughput ratio (geomean): write {write_ratio:.3}, read {read_ratio:.3}"
    );

    let json = format!(
        "{{\n  \"bench\": \"pr4_backend\",\n  \"transport\": \"tcp-loopback\",\n  \"page_size\": {PAGE},\n  \"segment_bytes\": {SEG},\n  \"ops_per_client\": {OPS_PER_CLIENT},\n  \"providers\": {PROVIDERS},\n  \"write\": {{\"memory\": {}, \"mmap\": {}}},\n  \"read\": {{\"memory\": {}, \"mmap\": {}}},\n  \"read_buf\": {{\"memory\": {{\"bytes_copied_per_op\": {rb_mem}}}, \"mmap\": {{\"bytes_copied_per_op\": {rb_map}}}}},\n  \"mmap_write_ratio_geomean\": {write_ratio:.3},\n  \"mmap_read_ratio_geomean\": {read_ratio:.3}\n}}\n",
        json_series(&w_mem),
        json_series(&w_map),
        json_series(&r_mem),
        json_series(&r_map),
    );
    std::fs::write("BENCH_PR4.json", &json).expect("write BENCH_PR4.json");
    println!("(json written to BENCH_PR4.json)");
}
