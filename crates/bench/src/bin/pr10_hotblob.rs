//! PR 10 acceptance benchmark: grant-batched version assignment on one
//! **hot blob** — the last per-op lock, killed and gated.
//!
//! Every client hammers the *same* blob, so every write serializes on
//! that blob's `VersionAssign` critical section at the version manager.
//! Two series over 1–256 concurrent writers:
//!
//! * **hot_batched** — the PR 10 grant protocol: one leader acquires the
//!   assignment mutex once and assigns a contiguous run of versions for
//!   itself plus every writer queued behind it (followers ride the
//!   grant through a condvar, touching no lock the meter charges);
//! * **hot_per_op** — the ablation (`version_batched = false`): the
//!   pre-PR-10 discipline, one metered acquisition per write.
//!
//! Lock traffic is *measured* by `blobseer_util::lockmeter`, and the
//! simulated version manager charges `version_assign_ns` per metered
//! acquisition — virtual cost mirrors the meter exactly, so the
//! throughput columns (virtual-time MiB/s, the fig3c regime) show what
//! batching buys once assignment dominates. The critical section is
//! deliberately stressed (240 µs, ~3× the grid5000 calibration) to model
//! the paper's version manager under a metadata-heavy hot spot.
//!
//! **Asserted** (the bench is an acceptance test, not a reporter):
//!
//! * `version_assign_locks_per_op < 1.0` at every count ≥ 16 in the
//!   batched series — the headline CI gate;
//! * batched throughput ≥ 2× the per-op ablation at every count ≥ 64;
//! * zero serializing locks per op in both series (the control plane
//!   stays lock-free);
//! * the ablation meters ~1 acquisition per op (the baseline is real).
//!
//! Emits `BENCH_PR10.json` at the repo root; `bench_gate` then catches
//! regressions of the locks-per-op and copies-per-op columns against
//! the committed baseline.

use blobseer_bench::{measure_region, payload, KB, MB};
use blobseer_core::{Deployment, DeploymentConfig};
use blobseer_rpc::Ctx;
use blobseer_simnet::ServiceCosts;
use blobseer_util::lockmeter;
use blobseer_util::stats::Table;
use std::sync::Arc;
use std::time::Duration;

const PAGE: u64 = 8 * KB;
const BLOB: u64 = 512 * KB; // 64 pages — one hot blob, shallow tree
const OPS_PER_CLIENT: u64 = 32;
const PROVIDERS: usize = 40;
const CLIENTS: &[usize] = &[1, 4, 16, 64, 128, 256];

/// The grant window: how long a leader lingers (real time) so that
/// concurrent writers pile into its grant. Real sleep, zero virtual
/// cost — it exists so batching is deterministic even on a single-core
/// CI host, where the leader would otherwise outrun the queue.
const GRANT_WINDOW: Duration = Duration::from_millis(2);

/// Stressed assignment cost: the version-assignment critical section
/// (border-link computation + index update) under a metadata-heavy
/// blob, ~3× the grid5000 calibration. Batching amortizes exactly this.
const VERSION_ASSIGN_NS: u64 = 240_000;

fn costs() -> ServiceCosts {
    ServiceCosts {
        meta_store_ns: 1_000_000, // I/O latency: overlaps across writers
        meta_store_cpu_ns: 30_000,
        meta_fetch_ns: 20_000,
        page_store_ns: 50_000,
        page_fetch_ns: 50_000,
        version_assign_ns: VERSION_ASSIGN_NS,
        manager_query_ns: 10_000,
    }
}

struct Sample {
    clients: usize,
    /// Aggregate virtual-time throughput (the fig3c regime).
    mib_s: f64,
    copied_per_op: f64,
    ser_per_op: f64,
    va_per_op: f64,
}

fn deployment(batched: bool) -> Deployment {
    let mut cfg = DeploymentConfig::grid5000(PROVIDERS)
        .tune()
        .service_costs(costs())
        .version_batched(batched)
        .version_grant_window(GRANT_WINDOW)
        .build();
    cfg.provider_capacity = u64::MAX;
    Deployment::build(cfg)
}

/// Repetitions per (series, client count); the median rep by throughput
/// is kept. Grant grouping depends on real-time thread interleaving, so
/// the median filters scheduler flukes on shared CI hosts.
const REPS: usize = 3;

fn run_phase(n: usize, batched: bool) -> Sample {
    let mut reps: Vec<Sample> = (0..REPS).map(|_| run_phase_once(n, batched)).collect();
    reps.sort_by(|a, b| a.mib_s.total_cmp(&b.mib_s));
    reps.swap_remove(REPS / 2)
}

fn run_phase_once(n: usize, batched: bool) -> Sample {
    let d = Arc::new(deployment(batched));
    let setup = d.client();
    let mut ctx = Ctx::start();
    let blob = setup.alloc(&mut ctx, BLOB, PAGE).unwrap().blob;

    // Warm clients: geometry cached, roster loaded. Spawn cost is
    // startup, not the per-op assignment profile this sweep gates on.
    let clients: Vec<_> = (0..n)
        .map(|_| {
            let c = d.client();
            c.info(&mut ctx, blob).unwrap();
            c
        })
        .collect();

    // Every measured writer is causally after setup and starts together
    // at the cluster's virtual-time horizon.
    let base_vt = d.cluster.horizon();
    let locks = lockmeter::snapshot();
    let mut end_vts = vec![0u64; n];
    let m = measure_region(|| {
        std::thread::scope(|scope| {
            for ((t, c), end) in clients.into_iter().enumerate().zip(&mut end_vts) {
                scope.spawn(move || {
                    let mut ctx = Ctx::at(base_vt);
                    let data = payload(PAGE, t as u64);
                    for i in 0..OPS_PER_CLIENT {
                        // One page per op, all writers interleaving over
                        // the same 64-page blob: the hottest possible
                        // version-assignment workload.
                        let slot = (t as u64 * OPS_PER_CLIENT + i) % (BLOB / PAGE);
                        c.write(&mut ctx, blob, slot * PAGE, &data).unwrap();
                    }
                    *end = ctx.vt;
                });
            }
        });
    });
    let d_locks = locks.since();
    let ops = (n as u64 * OPS_PER_CLIENT) as f64;
    let virtual_secs = (end_vts.iter().copied().max().unwrap_or(base_vt) - base_vt) as f64 / 1e9;
    Sample {
        clients: n,
        mib_s: ops * PAGE as f64 / MB as f64 / virtual_secs,
        copied_per_op: m.bytes_copied as f64 / ops,
        ser_per_op: d_locks.serializing as f64 / ops,
        va_per_op: d_locks.version_assign as f64 / ops,
    }
}

fn at(samples: &[Sample], clients: usize) -> &Sample {
    samples
        .iter()
        .find(|s| s.clients == clients)
        .expect("client count in sweep")
}

fn table(batched: &[Sample], per_op: &[Sample]) -> Table {
    let mut t = Table::new(&[
        "clients",
        "batched MiB/s",
        "per-op MiB/s",
        "speedup",
        "va/op batched",
        "va/op per-op",
        "ser/op",
        "copied/op",
    ]);
    for (b, p) in batched.iter().zip(per_op) {
        t.row(&[
            b.clients.to_string(),
            format!("{:.1}", b.mib_s),
            format!("{:.1}", p.mib_s),
            format!("{:.2}x", b.mib_s / p.mib_s),
            format!("{:.3}", b.va_per_op),
            format!("{:.2}", p.va_per_op),
            format!("{:.2}", b.ser_per_op),
            format!("{:.0}", b.copied_per_op),
        ]);
    }
    t
}

fn json_series(samples: &[Sample]) -> String {
    let entries: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "{{\"clients\": {}, \"mib_s\": {:.2}, \"bytes_copied_per_op\": {:.0}, \"serializing_locks_per_op\": {:.2}, \"version_assign_locks_per_op\": {:.3}}}",
                s.clients, s.mib_s, s.copied_per_op, s.ser_per_op, s.va_per_op
            )
        })
        .collect();
    format!("[{}]", entries.join(", "))
}

fn main() {
    println!(
        "pr10 hot-blob grant batching: page={PAGE} blob={BLOB} ops/client={OPS_PER_CLIENT} \
         va_cost={VERSION_ASSIGN_NS}ns window={GRANT_WINDOW:?}"
    );

    println!("\n-- series: hot_batched (grant protocol)");
    let batched: Vec<Sample> = CLIENTS.iter().map(|&n| run_phase(n, true)).collect();
    println!("-- series: hot_per_op (ablation: one acquisition per write)");
    let per_op: Vec<Sample> = CLIENTS.iter().map(|&n| run_phase(n, false)).collect();

    // The acceptance asserts — the bench *is* the gate.
    for s in batched.iter().chain(&per_op) {
        assert!(
            s.ser_per_op < 0.01,
            "@{} clients: {} serializing locks/op on the lock-free plane",
            s.clients,
            s.ser_per_op
        );
    }
    for s in &per_op {
        assert!(
            (s.va_per_op - 1.0).abs() < 0.05,
            "ablation@{} clients: {} VersionAssign locks/op (expected exactly 1)",
            s.clients,
            s.va_per_op
        );
    }
    for s in batched.iter().filter(|s| s.clients >= 16) {
        assert!(
            s.va_per_op < 1.0,
            "batched@{} clients: {} VersionAssign locks/op — the last lock survived",
            s.clients,
            s.va_per_op
        );
    }
    for (b, p) in batched.iter().zip(&per_op).filter(|(b, _)| b.clients >= 64) {
        let ratio = b.mib_s / p.mib_s;
        assert!(
            ratio >= 2.0,
            "batched@{} clients: only {ratio:.2}x the per-op ablation (need >= 2x)",
            b.clients
        );
    }

    let t = table(&batched, &per_op);
    blobseer_bench::emit(
        "pr10_hotblob",
        "PR10 hot-blob write sweep, grant-batched vs per-op assignment",
        &t,
    );

    let b64 = at(&batched, 64);
    let p64 = at(&per_op, 64);
    let ratio64 = b64.mib_s / p64.mib_s;
    let va16 = at(&batched, 16).va_per_op;
    println!(
        "\nheadline: va/op@16 = {va16:.3} (< 1.0), batched@64 = {:.1} MiB/s = {ratio64:.2}x ablation ({:.1} MiB/s)",
        b64.mib_s, p64.mib_s
    );

    let json = format!(
        "{{\n  \"bench\": \"pr10_hotblob\",\n  \"page_size\": {PAGE},\n  \"blob_bytes\": {BLOB},\n  \"ops_per_client\": {OPS_PER_CLIENT},\n  \"providers\": {PROVIDERS},\n  \"version_assign_ns\": {VERSION_ASSIGN_NS},\n  \"grant_window_ms\": {},\n  \"write\": {{\"hot_batched\": {}, \"hot_per_op\": {}}},\n  \"write_16_batched_version_assign_locks_per_op\": {va16:.3},\n  \"write_64_batched_over_per_op\": {ratio64:.3}\n}}\n",
        GRANT_WINDOW.as_millis(),
        json_series(&batched),
        json_series(&per_op),
    );
    std::fs::write("BENCH_PR10.json", &json).expect("write BENCH_PR10.json");
    println!("(json written to BENCH_PR10.json)");
}
