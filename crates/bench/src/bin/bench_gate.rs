//! The CI bench-regression gate.
//!
//! ```text
//! bench_gate <baseline-dir> <fresh-dir> [--rel-tolerance PCT] [--abs-slack N]
//! ```
//!
//! Compares every `BENCH_*.json` in `<baseline-dir>` (the committed
//! baselines) against the file of the same name in `<fresh-dir>` (the
//! smoke run CI just produced). **Invariant columns** —
//! `bytes_copied_per_op` and every `*locks_per_op` — are hard: exceed
//! the baseline by more than the tolerance and the process exits 1,
//! failing the job. Throughput (`mib_s`) is advisory: printed, never
//! fatal (CI machines are noisy; copies and locks are deterministic).
//!
//! A fresh file missing for an existing baseline is reported and fails
//! the gate too — a bench that silently stopped emitting is not a
//! passing bench.

use blobseer_bench::gate::{compare, Tolerance};
use blobseer_bench::json::Json;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: bench_gate <baseline-dir> <fresh-dir> [--rel-tolerance PCT] [--abs-slack N]");
    std::process::exit(2);
}

fn load(path: &Path) -> Result<Json, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Json::parse(&src).map_err(|e| format!("{}: {e}", path.display()))
}

fn baseline_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| {
            eprintln!("bench_gate: cannot read {}: {e}", dir.display());
            std::process::exit(2);
        })
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            let name = path.file_name()?.to_str()?;
            (name.starts_with("BENCH_") && name.ends_with(".json")).then_some(path)
        })
        .collect();
    files.sort();
    files
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dirs = Vec::new();
    let mut tol = Tolerance::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--rel-tolerance" => {
                i += 1;
                let pct: f64 = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                tol.rel = pct / 100.0;
            }
            "--abs-slack" => {
                i += 1;
                tol.abs = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            flag if flag.starts_with("--") => usage(),
            dir => dirs.push(PathBuf::from(dir)),
        }
        i += 1;
    }
    let [baseline_dir, fresh_dir] = dirs.as_slice() else {
        usage()
    };

    let baselines = baseline_files(baseline_dir);
    if baselines.is_empty() {
        eprintln!(
            "bench_gate: no BENCH_*.json baselines under {}",
            baseline_dir.display()
        );
        return ExitCode::from(2);
    }

    let mut failed = false;
    let mut checked = 0usize;
    for baseline_path in &baselines {
        let name = baseline_path.file_name().unwrap().to_string_lossy();
        let fresh_path = fresh_dir.join(name.as_ref());
        let baseline = match load(baseline_path) {
            Ok(v) => v,
            Err(e) => {
                println!("FAIL {name}: unreadable baseline ({e})");
                failed = true;
                continue;
            }
        };
        if !fresh_path.exists() {
            println!("FAIL {name}: no fresh run at {}", fresh_path.display());
            failed = true;
            continue;
        }
        let fresh = match load(&fresh_path) {
            Ok(v) => v,
            Err(e) => {
                println!("FAIL {name}: unreadable fresh run ({e})");
                failed = true;
                continue;
            }
        };

        let report = compare(&baseline, &fresh, tol);
        checked += report.invariants_checked;
        if report.invariants_checked == 0 {
            println!("FAIL {name}: no invariant columns found to compare");
            failed = true;
            continue;
        }
        if report.violations.is_empty() && report.missing.is_empty() {
            println!(
                "ok   {name}: {} invariant values within tolerance (rel {:.0}%, abs {})",
                report.invariants_checked,
                tol.rel * 100.0,
                tol.abs
            );
        } else {
            failed = true;
            println!(
                "FAIL {name}: {} invariant regression(s), {} baseline invariant(s) missing from fresh run",
                report.violations.len(),
                report.missing.len()
            );
            for v in &report.violations {
                println!(
                    "     {}: baseline {:.0} -> fresh {:.0} ({:+.1}%)",
                    v.path,
                    v.baseline,
                    v.fresh,
                    (v.fresh / v.baseline.max(f64::MIN_POSITIVE) - 1.0) * 100.0
                );
            }
            for m in &report.missing {
                println!("     {m}: present in baseline, absent in fresh run");
            }
        }
        // Advisory: the worst throughput drop, for the log only.
        if let Some(worst) = report
            .advisories
            .iter()
            .filter(|a| a.baseline > 0.0)
            .min_by(|a, b| {
                (a.fresh / a.baseline)
                    .partial_cmp(&(b.fresh / b.baseline))
                    .unwrap()
            })
        {
            println!(
                "     (advisory) worst throughput vs baseline: {} {:.1} -> {:.1} MiB/s ({:+.1}%)",
                worst.path,
                worst.baseline,
                worst.fresh,
                (worst.fresh / worst.baseline - 1.0) * 100.0
            );
        }
    }

    println!(
        "bench_gate: {} invariant values across {} baseline file(s): {}",
        checked,
        baselines.len(),
        if failed { "FAIL" } else { "PASS" }
    );
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
