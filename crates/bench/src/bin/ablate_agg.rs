//! **Ablation: RPC aggregation** — the mechanism the paper credits for
//! Fig. 3(b)'s improvement with provider count ("our optimized RPC
//! mechanism, which aggregates requests for storage sent to the same
//! remote process").
//!
//! Repeats the Fig. 3(b) write sweep at 20 providers with aggregation ON
//! vs OFF, reporting metadata time and real message counts.

use blobseer_bench::*;
use blobseer_core::{Deployment, DeploymentConfig};
use blobseer_rpc::{AggregationPolicy, Ctx};
use blobseer_util::stats::{OnlineStats, Table};

fn run(policy: AggregationPolicy, chatty: bool) -> Vec<(u64, f64, u64)> {
    let mut cfg = DeploymentConfig::grid5000(20);
    cfg.aggregation = policy;
    if chatty {
        // A chattier network (grid multi-site / congested switch): higher
        // per-message cost and latency. Aggregation's win scales with
        // exactly these two knobs.
        cfg.cost.rpc_overhead_ns = 200_000;
        cfg.cost.latency_ns = 500_000;
    }
    let d = Deployment::build(cfg);
    let mut out = Vec::new();
    for (row, &seg_size) in fig3ab_segments().iter().enumerate() {
        let mut stats = OnlineStats::new();
        let mut msgs = 0u64;
        let iters = 4;
        for i in 0..iters {
            let client = d.client();
            let mut ctx = Ctx::at(d.cluster.horizon());
            let info = if row == 0 && i == 0 {
                client.alloc(&mut ctx, PAPER_BLOB, PAPER_PAGE).unwrap()
            } else {
                client.info(&mut ctx, blobseer_proto::BlobId(1)).unwrap()
            };
            let offset = (row as u64 * iters + i) * (16 * MB);
            client
                .write(
                    &mut ctx,
                    info.blob,
                    offset + (1 << 35),
                    &payload(PAPER_PAGE, 3),
                )
                .unwrap();
            let before = d.cluster.message_count();
            let (_, wstats) = client
                .write_with_stats(&mut ctx, info.blob, offset, &payload(seg_size, i))
                .unwrap();
            msgs = d.cluster.message_count() - before;
            stats.push(wstats.metadata_ns() as f64);
        }
        out.push((seg_size, stats.mean(), msgs));
    }
    out
}

fn main() {
    for (chatty, name, title) in [
        (
            false,
            "ablate_agg",
            "Ablation: RPC aggregation — Grid'5000 LAN costs",
        ),
        (
            true,
            "ablate_agg_wan",
            "Ablation: RPC aggregation — chatty network (multi-site)",
        ),
    ] {
        let on = run(AggregationPolicy::Batch, chatty);
        let off = run(AggregationPolicy::PerCall, chatty);
        let mut table = Table::new(&[
            "segment",
            "agg ON meta (s)",
            "agg OFF meta (s)",
            "speedup",
            "msgs ON",
            "msgs OFF",
        ]);
        for ((seg, t_on, m_on), (_, t_off, m_off)) in on.iter().zip(&off) {
            table.row(&[
                format!("{} KiB", seg / KB),
                secs(*t_on as u64),
                secs(*t_off as u64),
                format!("{:.2}x", t_off / t_on.max(1.0)),
                m_on.to_string(),
                m_off.to_string(),
            ]);
        }
        emit(name, title, &table);
    }
    println!(
        "shape checks: aggregation slashes message counts everywhere; its *time* win is \
         modest on the quiet LAN (provider store CPU dominates) and large when per-message \
         costs rise"
    );
}
