//! **Ablation: lock-free vs lock-based** — quantifies the paper's central
//! motivation ("enable the clients to access the data string as
//! concurrently as possible, without locking the string itself", §I).
//!
//! Wall-clock stress: `R` reader threads scan random segments while `W`
//! writer threads patch random pages, over three stores in the same
//! in-process regime: the versioned lock-free engine, a global-RwLock
//! string, and a per-page-RwLock string. Reported: aggregate reader and
//! writer throughput.

use blobseer_baseline::{ConcurrentBlob, GlobalLockStore, LockFreeStore, ShardedLockStore};
use blobseer_bench::*;
use blobseer_proto::Segment;
use blobseer_util::rng::rng_for;
use blobseer_util::stats::Table;
use rand::Rng;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const PAGE: u64 = 64 * KB;
const TOTAL: u64 = 64 * MB;
const READ_SEG: u64 = 8 * MB;
const WRITE_SEG: u64 = 4 * MB;
const RUN: Duration = Duration::from_millis(400);

struct Outcome {
    read_mbps: f64,
    write_mbps: f64,
    /// Worst single-operation latencies observed (µs).
    max_read_us: u64,
    max_write_us: u64,
}

fn stress(store: Arc<dyn ConcurrentBlob>, readers: usize, writers: usize) -> Outcome {
    // Seed the whole region so reads return real data.
    store.write(0, &payload(TOTAL, 1)).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let read_bytes = Arc::new(AtomicU64::new(0));
    let write_bytes = Arc::new(AtomicU64::new(0));
    let max_read_us = Arc::new(AtomicU64::new(0));
    let max_write_us = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();
    for r in 0..readers {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        let read_bytes = Arc::clone(&read_bytes);
        let max_read_us = Arc::clone(&max_read_us);
        handles.push(std::thread::spawn(move || {
            let mut rng = rng_for(17, r as u64);
            while !stop.load(Ordering::Relaxed) {
                let off = rng.gen_range(0..(TOTAL - READ_SEG) / PAGE) * PAGE;
                let t = Instant::now();
                let buf = store.read(None, Segment::new(off, READ_SEG)).unwrap();
                max_read_us.fetch_max(t.elapsed().as_micros() as u64, Ordering::Relaxed);
                read_bytes.fetch_add(buf.len() as u64, Ordering::Relaxed);
            }
        }));
    }
    for w in 0..writers {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        let write_bytes = Arc::clone(&write_bytes);
        let max_write_us = Arc::clone(&max_write_us);
        handles.push(std::thread::spawn(move || {
            let mut rng = rng_for(9_000, w as u64);
            let data = payload(WRITE_SEG, w as u64);
            while !stop.load(Ordering::Relaxed) {
                let off = rng.gen_range(0..(TOTAL - WRITE_SEG) / PAGE) * PAGE;
                let t = Instant::now();
                store.write(off, &data).unwrap();
                max_write_us.fetch_max(t.elapsed().as_micros() as u64, Ordering::Relaxed);
                write_bytes.fetch_add(WRITE_SEG, Ordering::Relaxed);
                // Writers pace themselves (telescope cadence), so the
                // comparison isolates interference rather than raw memcpy.
                std::thread::sleep(Duration::from_millis(2));
            }
        }));
    }

    let t0 = Instant::now();
    std::thread::sleep(RUN);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    let dt = t0.elapsed().as_secs_f64();
    Outcome {
        read_mbps: read_bytes.load(Ordering::Relaxed) as f64 / 1e6 / dt,
        write_mbps: write_bytes.load(Ordering::Relaxed) as f64 / 1e6 / dt,
        max_read_us: max_read_us.load(Ordering::Relaxed),
        max_write_us: max_write_us.load(Ordering::Relaxed),
    }
}

fn main() {
    let configs = [(4usize, 0usize), (4, 2), (8, 4)];
    let mut table = Table::new(&[
        "readers+writers",
        "store",
        "read MB/s",
        "write MB/s",
        "max read (µs)",
        "max write (µs)",
        "snapshots",
    ]);
    for &(r, w) in &configs {
        let stores: Vec<Arc<dyn ConcurrentBlob>> = vec![
            Arc::new(LockFreeStore::new(TOTAL, PAGE)),
            Arc::new(GlobalLockStore::new(TOTAL)),
            Arc::new(ShardedLockStore::new(TOTAL, PAGE)),
        ];
        for store in stores {
            let name = store.name();
            let o = stress(store, r, w);
            table.row(&[
                format!("{r}r+{w}w"),
                name.to_string(),
                format!("{:.0}", o.read_mbps),
                format!("{:.0}", o.write_mbps),
                o.max_read_us.to_string(),
                o.max_write_us.to_string(),
                if name == "blobseer-lockfree" {
                    "yes"
                } else {
                    "no"
                }
                .to_string(),
            ]);
            println!(
                "{r}r+{w}w {name}: read {:.0} MB/s (max {} µs), write {:.0} MB/s (max {} µs)",
                o.read_mbps, o.max_read_us, o.write_mbps, o.max_write_us
            );
        }
    }
    emit(
        "ablate_lock",
        "Ablation: lock-free vs lock-based stores (wall clock)",
        &table,
    );
    println!(
        "\nwhat to look for: under mixed load the lock-based stores show inflated worst-case \
         latencies (readers stall behind multi-MB write holds; writers starve behind reader \
         floods on the per-page store), while the versioned lock-free store keeps tail \
         latencies near its uncontended values — and is the only one able to serve stable \
         snapshots at all (its readers pin a version; the others read whatever mix is current)."
    );
}
