//! **Ablation: page size** — the paper's §V.A tradeoff: "there is a
//! tradeoff between striping and streaming. Dispersing data too fine
//! grained might not pay off because of RPC call overhead."
//!
//! Fixed 8 MiB accesses on 20 providers, page size swept 16 KiB → 1 MiB.
//! Small pages multiply per-page RPCs and metadata tree size; large pages
//! reduce dispersion (fewer providers touched per access).

use blobseer_bench::*;
use blobseer_core::{Deployment, DeploymentConfig};
use blobseer_rpc::Ctx;
use blobseer_util::stats::Table;

const ACCESS: u64 = 8 * MB;

fn main() {
    let mut table = Table::new(&[
        "page size",
        "write total (s)",
        "write meta (s)",
        "read total (s)",
        "read meta (s)",
        "tree nodes/write",
    ]);
    for page in [16 * KB, 64 * KB, 256 * KB, 1024 * KB] {
        let d = Deployment::build(DeploymentConfig::grid5000(20));
        let client = d.client();
        let mut ctx = Ctx::start();
        let info = client.alloc(&mut ctx, 1 << 36, page).unwrap();

        // Warm connections.
        client
            .write(&mut ctx, info.blob, 1 << 33, &payload(page, 1))
            .unwrap();

        let (_, wstats) = client
            .write_with_stats(&mut ctx, info.blob, 0, &payload(ACCESS, 2))
            .unwrap();
        let reader = d.client();
        let mut rctx = Ctx::at(d.cluster.horizon());
        let (_, _, rstats) = reader
            .read_with_stats(
                &mut rctx,
                info.blob,
                None,
                blobseer_proto::Segment::new(0, ACCESS),
            )
            .unwrap();

        table.row(&[
            format!("{} KiB", page / KB),
            secs(wstats.total_ns()),
            secs(wstats.metadata_ns()),
            secs(rstats.total_ns()),
            secs(rstats.metadata_ns()),
            wstats.nodes_built.to_string(),
        ]);
        println!(
            "page {} KiB: write {} s (meta {}), read {} s (meta {}), {} nodes",
            page / KB,
            secs(wstats.total_ns()),
            secs(wstats.metadata_ns()),
            secs(rstats.total_ns()),
            secs(rstats.metadata_ns()),
            wstats.nodes_built
        );
    }
    emit(
        "ablate_page",
        "Ablation: page-size sweep (8 MiB accesses, 20 providers)",
        &table,
    );
    println!("shape checks: metadata cost shrinks as pages grow; data path flattens");
}
