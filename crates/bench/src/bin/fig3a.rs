//! **Figure 3(a)** — Metadata overhead, single client: READS.
//!
//! "We measure the time it takes for metadata to be completely read for a
//! READ, for a 1 TB string, using 64 KB pages", segment sizes 64 KB →
//! 16 MB, with 10/20/40 nodes each hosting one data and one metadata
//! provider (paper §V.C).
//!
//! Expected shape: time grows with segment size; near-insensitive to the
//! provider count, *slightly worse* with more providers at small segments
//! (the client manages more connections).

use blobseer_bench::*;
use blobseer_rpc::Ctx;
use blobseer_util::stats::{OnlineStats, Table};

fn main() {
    let iters = 5;
    let mut table = Table::new(&[
        "segment",
        "10 providers (s)",
        "20 providers (s)",
        "40 providers (s)",
    ]);
    let mut rows: Vec<Vec<String>> = fig3ab_segments()
        .iter()
        .map(|s| vec![format!("{} KiB", s / KB)])
        .collect();

    for &providers in &fig3ab_providers() {
        let d = paper_deployment(providers);
        let writer = d.client();
        let mut wctx = Ctx::start();
        let info = writer.alloc(&mut wctx, PAPER_BLOB, PAPER_PAGE).unwrap();

        for (row, &seg_size) in fig3ab_segments().iter().enumerate() {
            // The segment must exist before it can be read; each (size,
            // iteration) pair gets its own region so caching effects on
            // the *data path* cannot leak between runs.
            let mut stats = OnlineStats::new();
            for i in 0..iters {
                let offset = (row as u64 * iters + i) * (16 * MB) + (1 << 30);
                writer
                    .write(&mut wctx, info.blob, offset, &payload(seg_size, i))
                    .unwrap();

                // Fresh client per measurement: cold connections and no
                // metadata cache — the paper's worst case. The reader is
                // causally after the setup write, so its clock starts at
                // the cluster's virtual-time horizon.
                let reader = d.client();
                let mut ctx = Ctx::at(d.cluster.horizon());
                let (_, _, rstats) = reader
                    .read_with_stats(
                        &mut ctx,
                        info.blob,
                        None,
                        blobseer_proto::Segment::new(offset, seg_size),
                    )
                    .unwrap();
                stats.push(rstats.metadata_ns() as f64);
            }
            rows[row].push(secs(stats.mean() as u64));
        }
    }

    for row in rows {
        table.row(&row);
    }
    emit(
        "fig3a",
        "Fig. 3(a): metadata overhead, single client — reads",
        &table,
    );
    println!("shape checks: rising with segment size; flat-to-slightly-rising with provider count");
}
