//! PR 2 acceptance benchmark: the lock-free control plane, before vs
//! after, swept past the old 64-client cliff.
//!
//! Runs the full distributed stack (zero-cost transport, zero-copy data
//! path — PR 1's regime) at 1–256 concurrent clients in two modes:
//!
//! * **serialized** — `lockmeter::set_serialized_control_plane(true)`:
//!   every `plan_write` funnels through one global mutex and every
//!   metadata-cache access through another, reproducing the pre-PR-2
//!   control plane (a `RwLock`-guarded provider table and a
//!   `Mutex<LruCache>`);
//! * **lockfree** — the PR 2 control plane: RCU roster snapshot,
//!   power-of-two-choices placement with CAS capacity reservations, and
//!   the sharded CLOCK metadata cache shared by every client.
//!
//! Lock traffic is *measured*, not asserted: the serializing-acquisitions
//! per-op column comes from `blobseer_util::lockmeter` and must read 0 in
//! lockfree mode (the version-assignment mutex is charged separately —
//! it is the paper's sanctioned serialization and appears in its own
//! column, ~1 per write).
//!
//! Emits tables per phase and `BENCH_PR2.json` at the repo root with the
//! acceptance numbers: write throughput at 64 clients vs the PR 1
//! baseline (583 MiB/s) and vs the 8-client peak.

use blobseer_bench::{measure_region, payload, MB};
use blobseer_core::{Deployment, DeploymentConfig};
use blobseer_proto::Segment;
use blobseer_rpc::Ctx;
use blobseer_util::lockmeter;
use blobseer_util::stats::Table;
use std::sync::Arc;

const PAGE: u64 = 256 * 1024;
const SEG_PAGES: u64 = 4; // 1 MiB per operation, as in pr1_zero_copy
const SEG: u64 = SEG_PAGES * PAGE;
const OPS_PER_CLIENT: u64 = 24;
const PROVIDERS: usize = 8;
const CLIENTS: &[usize] = &[1, 2, 4, 8, 16, 32, 64, 128, 256];
/// PR 1's zero-copy write throughput at 64 clients (BENCH_PR1.json) —
/// the cliff this PR flattens.
const PR1_WRITE_64_MIB_S: f64 = 583.46;

struct Sample {
    clients: usize,
    mib_s: f64,
    /// Serializing control-plane acquisitions per op (must be 0 after).
    ser_per_op: f64,
    /// Version-assignment (sanctioned) acquisitions per op.
    va_per_op: f64,
    /// Sharded exclusive acquisitions per op (cache insert/evict).
    sharded_per_op: f64,
}

fn deployment() -> Deployment {
    let mut cfg = DeploymentConfig::functional(PROVIDERS);
    cfg.provider_capacity = u64::MAX;
    cfg.cache_nodes = 1 << 18;
    let d = Deployment::build(cfg);
    d.manager.set_page_size_hint(PAGE);
    d
}

/// Repetitions per (mode, phase, client count); the median rep is kept.
/// Phases are short (hundreds of ms to seconds) and the host may be a
/// shared machine, so single shots confound CPU steal with contention;
/// the median filters both steal spikes and lucky bursts.
const REPS: usize = 3;

fn run_phase(n: usize, write: bool) -> Sample {
    let mut reps: Vec<Sample> = (0..REPS).map(|_| run_phase_once(n, write)).collect();
    reps.sort_by(|a, b| a.mib_s.total_cmp(&b.mib_s));
    reps.swap_remove(REPS / 2)
}

fn run_phase_once(n: usize, write: bool) -> Sample {
    let d = Arc::new(deployment());
    let setup = d.client();
    let mut ctx = Ctx::start();
    let region = SEG * OPS_PER_CLIENT;
    // One fixed-size blob for every client count, so per-op tree depth —
    // and with it metadata work — is identical across the sweep and the
    // curves measure *contention*, nothing else.
    let total = (region * CLIENTS.last().copied().unwrap() as u64).next_power_of_two();
    let blob = setup.alloc(&mut ctx, total, PAGE).unwrap().blob;
    if !write {
        for t in 0..n as u64 {
            let data = payload(SEG, t);
            for i in 0..OPS_PER_CLIENT {
                setup
                    .write(&mut ctx, blob, region * t + i * SEG, &data)
                    .unwrap();
            }
        }
    }
    // Steady state means warm clients: geometry cached, roster snapshot
    // loaded. Client spawn + first-open cost is startup, not the per-op
    // control plane this sweep measures.
    let clients: Vec<_> = (0..n)
        .map(|_| {
            let c = d.client();
            c.info(&mut ctx, blob).unwrap();
            c
        })
        .collect();

    let locks = lockmeter::snapshot();
    let m = measure_region(|| {
        std::thread::scope(|scope| {
            for (t, c) in clients.into_iter().enumerate() {
                scope.spawn(move || {
                    let mut ctx = Ctx::start();
                    let base = region * t as u64;
                    if write {
                        let data = payload(SEG, t as u64);
                        for i in 0..OPS_PER_CLIENT {
                            c.write(&mut ctx, blob, base + i * SEG, &data).unwrap();
                        }
                    } else {
                        let mut out = vec![0u8; SEG as usize];
                        for i in 0..OPS_PER_CLIENT {
                            c.read_into(
                                &mut ctx,
                                blob,
                                None,
                                Segment::new(base + i * SEG, SEG),
                                &mut out,
                            )
                            .unwrap();
                        }
                    }
                });
            }
        });
    });
    let d_locks = locks.since();
    let ops = (n as u64 * OPS_PER_CLIENT) as f64;
    Sample {
        clients: n,
        mib_s: ops * SEG as f64 / MB as f64 / m.secs,
        ser_per_op: d_locks.serializing as f64 / ops,
        va_per_op: d_locks.version_assign as f64 / ops,
        sharded_per_op: d_locks.sharded as f64 / ops,
    }
}

fn run_mode(serialized: bool) -> (Vec<Sample>, Vec<Sample>) {
    lockmeter::set_serialized_control_plane(serialized);
    let writes: Vec<Sample> = CLIENTS.iter().map(|&n| run_phase(n, true)).collect();
    let reads: Vec<Sample> = CLIENTS.iter().map(|&n| run_phase(n, false)).collect();
    lockmeter::set_serialized_control_plane(false);
    (writes, reads)
}

fn table(title: &str, before: &[Sample], after: &[Sample]) -> Table {
    let before_col = format!("{title} serialized MiB/s");
    let after_col = format!("{title} lockfree MiB/s");
    let mut t = Table::new(&[
        "clients",
        &before_col,
        &after_col,
        "speedup",
        "ser/op before",
        "ser/op after",
        "va/op after",
        "sharded/op after",
    ]);
    for (b, a) in before.iter().zip(after) {
        t.row(&[
            b.clients.to_string(),
            format!("{:.1}", b.mib_s),
            format!("{:.1}", a.mib_s),
            format!("{:.2}x", a.mib_s / b.mib_s),
            format!("{:.1}", b.ser_per_op),
            format!("{:.1}", a.ser_per_op),
            format!("{:.2}", a.va_per_op),
            format!("{:.1}", a.sharded_per_op),
        ]);
    }
    t
}

fn json_series(samples: &[Sample]) -> String {
    let entries: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "{{\"clients\": {}, \"mib_s\": {:.2}, \"serializing_locks_per_op\": {:.2}, \"version_assign_locks_per_op\": {:.2}, \"sharded_locks_per_op\": {:.2}}}",
                s.clients, s.mib_s, s.ser_per_op, s.va_per_op, s.sharded_per_op
            )
        })
        .collect();
    format!("[{}]", entries.join(", "))
}

fn at(samples: &[Sample], clients: usize) -> &Sample {
    samples
        .iter()
        .find(|s| s.clients == clients)
        .expect("client count in sweep")
}

fn main() {
    println!("pr2 lock-free control plane: page={PAGE} seg={SEG} ops/client={OPS_PER_CLIENT}");

    println!("\n-- mode: serialized control plane (the pre-PR-2 regime)");
    let (w_ser, r_ser) = run_mode(true);
    println!("-- mode: lock-free control plane");
    let (w_free, r_free) = run_mode(false);

    let wt = table("write", &w_ser, &w_free);
    let rt = table("read", &r_ser, &r_free);
    blobseer_bench::emit("pr2_write", "PR2 write sweep, serialized vs lock-free", &wt);
    blobseer_bench::emit("pr2_read", "PR2 read sweep, serialized vs lock-free", &rt);

    let w64 = at(&w_free, 64);
    let peak8 = at(&w_free, 8);
    let vs_pr1 = w64.mib_s / PR1_WRITE_64_MIB_S;
    let vs_peak = w64.mib_s / peak8.mib_s;
    println!(
        "\nwrite@64 lockfree: {:.1} MiB/s = {vs_pr1:.2}x the PR1 baseline ({PR1_WRITE_64_MIB_S} MiB/s), {:.0}% of the 8-client peak ({:.1} MiB/s)",
        w64.mib_s,
        vs_peak * 100.0,
        peak8.mib_s
    );
    println!(
        "serializing locks/op at 64 clients: {:.2} (serialized mode: {:.1})",
        w64.ser_per_op,
        at(&w_ser, 64).ser_per_op
    );

    let json = format!(
        "{{\n  \"bench\": \"pr2_lockfree\",\n  \"page_size\": {PAGE},\n  \"segment_bytes\": {SEG},\n  \"ops_per_client\": {OPS_PER_CLIENT},\n  \"providers\": {PROVIDERS},\n  \"cache_nodes\": {},\n  \"write\": {{\"serialized\": {}, \"lockfree\": {}}},\n  \"read\": {{\"serialized\": {}, \"lockfree\": {}}},\n  \"pr1_write_64_baseline_mib_s\": {PR1_WRITE_64_MIB_S},\n  \"write_64_lockfree_mib_s\": {:.2},\n  \"write_64_vs_pr1_baseline\": {vs_pr1:.3},\n  \"write_64_vs_8_client_peak\": {vs_peak:.3},\n  \"write_64_serializing_locks_per_op\": {:.2}\n}}\n",
        1 << 18,
        json_series(&w_ser),
        json_series(&w_free),
        json_series(&r_ser),
        json_series(&r_free),
        w64.mib_s,
        w64.ser_per_op,
    );
    std::fs::write("BENCH_PR2.json", &json).expect("write BENCH_PR2.json");
    println!("(json written to BENCH_PR2.json)");
}
