//! **Figure 3(b)** — Metadata overhead, single client: WRITES.
//!
//! Same sweep as Fig. 3(a) but measuring the metadata share of WRITEs.
//!
//! Expected shape: "using a larger number of metadata providers improves
//! the cost of writing the overall metadata ... explained by our
//! optimized RPC mechanism, which aggregates requests for storage sent to
//! the same remote process. This is more visible when writing larger
//! segments" (§V.C).

use blobseer_bench::*;
use blobseer_rpc::Ctx;
use blobseer_util::stats::{OnlineStats, Table};

fn main() {
    let iters = 5;
    let mut table = Table::new(&[
        "segment",
        "10 providers (s)",
        "20 providers (s)",
        "40 providers (s)",
    ]);
    let mut rows: Vec<Vec<String>> = fig3ab_segments()
        .iter()
        .map(|s| vec![format!("{} KiB", s / KB)])
        .collect();

    for &providers in &fig3ab_providers() {
        let d = paper_deployment(providers);

        for (row, &seg_size) in fig3ab_segments().iter().enumerate() {
            let mut stats = OnlineStats::new();
            for i in 0..iters {
                // Fresh client per measurement (cold connections), own
                // region per iteration; starts at the causal horizon.
                let client = d.client();
                let mut ctx = Ctx::at(d.cluster.horizon());
                let info = if i == 0 && row == 0 {
                    client.alloc(&mut ctx, PAPER_BLOB, PAPER_PAGE).unwrap()
                } else {
                    // Reuse the first blob of this deployment.
                    client.info(&mut ctx, blobseer_proto::BlobId(1)).unwrap()
                };
                let offset = (row as u64 * iters + i) * (16 * MB);
                // Warm the connection set with a 1-page write so that
                // connection setup (measured by fig3a's read side too)
                // does not dominate the metadata phase under test.
                client
                    .write(
                        &mut ctx,
                        info.blob,
                        offset + (1 << 35),
                        &payload(PAPER_PAGE, 9),
                    )
                    .unwrap();
                let (_, wstats) = client
                    .write_with_stats(&mut ctx, info.blob, offset, &payload(seg_size, i))
                    .unwrap();
                stats.push(wstats.metadata_ns() as f64);
            }
            rows[row].push(secs(stats.mean() as u64));
        }
    }

    for row in rows {
        table.row(&row);
    }
    emit(
        "fig3b",
        "Fig. 3(b): metadata overhead, single client — writes",
        &table,
    );
    println!("shape checks: rising with segment size; improving with provider count");
}
