//! Diagnostic probe for the fig3c collapse: per-phase breakdown of reads
//! under 1 vs N concurrent clients.

use blobseer_bench::*;
use blobseer_core::{Deployment, DeploymentConfig};
use blobseer_rpc::Ctx;
use std::sync::Arc;

const REGION: u64 = 256 * MB;
const SEG: u64 = 2 * MB;
const ITERS: u64 = 8;

fn run(n_clients: usize) {
    let d = Arc::new(Deployment::build(DeploymentConfig::grid5000(20)));
    let setup = d.client();
    let mut sctx = Ctx::start();
    let info = setup.alloc(&mut sctx, PAPER_BLOB, PAPER_PAGE).unwrap();
    prefill(&d, info.blob, 0, REGION, 8 * MB);
    let base = d.cluster.horizon();

    let handles: Vec<_> = (0..n_clients)
        .map(|k| {
            let d = Arc::clone(&d);
            let blob = info.blob;
            std::thread::spawn(move || {
                let client = d.client();
                let mut ctx = Ctx::at(base);
                // warm
                client
                    .read(
                        &mut ctx,
                        blob,
                        None,
                        disjoint_segment(0, REGION, SEG, k as u64 * ITERS),
                    )
                    .unwrap();
                let t0 = ctx.vt;
                let (mut lat, mut meta, mut data) = (0u64, 0u64, 0u64);
                for i in 0..ITERS {
                    let seg = disjoint_segment(0, REGION, SEG, k as u64 * ITERS + i);
                    let (_, _, st) = client.read_with_stats(&mut ctx, blob, None, seg).unwrap();
                    lat += st.latest_ns;
                    meta += st.meta_ns;
                    data += st.data_ns;
                }
                (ctx.vt - t0, lat, meta, data)
            })
        })
        .collect();
    for (i, h) in handles.into_iter().enumerate() {
        let (total, lat, meta, data) = h.join().unwrap();
        println!(
            "clients={n_clients} client#{i}: total={}ms latest={}ms meta={}ms data={}ms -> {:.1} MB/s",
            total / 1_000_000,
            lat / 1_000_000,
            meta / 1_000_000,
            data / 1_000_000,
            blobseer_util::stats::mbps(ITERS * SEG, total)
        );
    }
}

fn main() {
    run(1);
    run(2);
    run(8);
}
