//! PR 5 acceptance benchmark: the crash-consistent page log —
//! commit-mode sweep plus the compaction before/after — over the real
//! TCP transport on loopback, mmap backend.
//!
//! **Durability sweep**: the full distributed stack at 1–64 concurrent
//! clients writing large (256 KiB) pages, once per commit mode:
//!
//! * **buffered** — commit markers only (`fsync_on_commit = false`):
//!   an acknowledged append survives a process crash;
//! * **fsync** — `fsync_on_commit = true`: one `fdatasync` per *group*
//!   commit, so acknowledged appends also survive power loss. The gap
//!   between the two columns is the price of that promise, and group
//!   commit is what keeps it sane under concurrency.
//!
//! **Compaction leg**: write four versions, GC three (¾ of the log
//! goes dead), measure read throughput, compact every provider,
//! measure again. Asserted: compaction reclaims ≥ 90% of the dead
//! bytes; reported: post/pre read throughput (the swap must not cost
//! the read path — pages are served from the new generation's mapping
//! exactly like the old one's).
//!
//! The bench **asserts** its invariants: every sweep cell and both
//! read legs must meter exactly the one sanctioned 1 MiB copy per
//! 1 MiB operation, zero `Serializing` locks, and exactly the one
//! sanctioned `VersionAssign` acquisition per write — commit markers
//! and generation swaps add kernel writes, never copies or
//! control-plane locks. The CI gate (`bench_gate`) then catches
//! quieter drifts against the committed `BENCH_PR5.json`.

use blobseer_bench::{measure_region, payload, MB};
use blobseer_core::{BackendKind, Deployment, DeploymentConfig};
use blobseer_proto::Segment;
use blobseer_rpc::Ctx;
use blobseer_util::lockmeter;
use blobseer_util::stats::Table;
use std::sync::Arc;

const PAGE: u64 = 256 * 1024; // large pages: the copy-bound regime
const SEG_PAGES: u64 = 4; // 1 MiB per operation
const SEG: u64 = SEG_PAGES * PAGE;
const OPS_PER_CLIENT: u64 = 8;
const PROVIDERS: usize = 8;
const CLIENTS: &[usize] = &[1, 2, 4, 8, 16, 32, 64];

/// Compaction leg: 16 MiB region × 4 versions, read by 4 clients.
const COMPACT_REGION: u64 = 16 * MB;
const COMPACT_VERSIONS: u64 = 4;
const COMPACT_READERS: usize = 4;
const COMPACT_READ_OPS: u64 = 8;

struct Sample {
    clients: usize,
    mib_s: f64,
    copied_per_op: f64,
    ser_per_op: f64,
    va_per_op: f64,
}

fn deployment(fsync: bool) -> Deployment {
    let mut cfg = DeploymentConfig::functional_tcp(PROVIDERS)
        .tune()
        .backend(BackendKind::Mmap)
        .fsync_on_commit(fsync)
        .build();
    cfg.provider_capacity = u64::MAX; // mmap clamps to its log cap
    Deployment::build(cfg)
}

/// One write phase: `n` client threads, disjoint regions, over sockets,
/// appends committed in the given mode.
fn run_write(n: usize, fsync: bool) -> Sample {
    let d = Arc::new(deployment(fsync));
    let setup = d.client();
    let mut ctx = Ctx::start();
    let region = SEG * OPS_PER_CLIENT;
    let total = (region * n as u64).next_power_of_two();
    let blob = setup.alloc(&mut ctx, total, PAGE).unwrap().blob;

    // Steady state means warm clients: geometry cached, roster loaded.
    // Client spawn + first-open cost is startup, not the per-op lock
    // profile this sweep gates on.
    let clients: Vec<_> = (0..n)
        .map(|_| {
            let c = d.client();
            c.info(&mut ctx, blob).unwrap();
            c
        })
        .collect();

    let locks = lockmeter::snapshot();
    let m = measure_region(|| {
        std::thread::scope(|scope| {
            for (t, c) in clients.into_iter().enumerate() {
                scope.spawn(move || {
                    let mut ctx = Ctx::start();
                    let data = payload(SEG, t as u64);
                    let base = region * t as u64;
                    for i in 0..OPS_PER_CLIENT {
                        c.write(&mut ctx, blob, base + i * SEG, &data).unwrap();
                    }
                });
            }
        });
    });
    let d_locks = locks.since();
    let ops = (n as u64 * OPS_PER_CLIENT) as f64;
    Sample {
        clients: n,
        mib_s: ops * SEG as f64 / MB as f64 / m.secs,
        copied_per_op: m.bytes_copied as f64 / ops,
        ser_per_op: d_locks.serializing as f64 / ops,
        va_per_op: d_locks.version_assign as f64 / ops,
    }
}

/// The invariants the sweep promises, asserted so the bench is an
/// acceptance test, not just a reporter.
fn assert_invariants(name: &str, samples: &[Sample]) {
    for s in samples {
        assert!(
            (s.copied_per_op - SEG as f64).abs() < 1.0,
            "{name}@{} clients: copies/op {} != sanctioned {}",
            s.clients,
            s.copied_per_op,
            SEG
        );
        assert!(
            s.ser_per_op < 0.01,
            "{name}@{} clients: {} serializing locks/op on the lock-free plane",
            s.clients,
            s.ser_per_op
        );
        // At most one sanctioned acquisition per write: the PR 10 grant
        // protocol may batch concurrent assignments below 1, never above.
        assert!(
            s.va_per_op > 0.0 && s.va_per_op <= 1.01,
            "{name}@{} clients: {} VersionAssign locks/op (sanctioned: <= 1)",
            s.clients,
            s.va_per_op
        );
    }
}

struct ReadLeg {
    mib_s: f64,
    copied_per_op: f64,
}

/// Timed re-read of the latest version by `COMPACT_READERS` clients.
fn read_leg(d: &Arc<Deployment>, blob: blobseer_proto::BlobId) -> ReadLeg {
    let m = measure_region(|| {
        std::thread::scope(|scope| {
            for t in 0..COMPACT_READERS {
                let d = Arc::clone(d);
                scope.spawn(move || {
                    let c = d.client();
                    let mut ctx = Ctx::start();
                    let slots = COMPACT_REGION / SEG;
                    let mut out = vec![0u8; SEG as usize];
                    for i in 0..COMPACT_READ_OPS {
                        let off = ((t as u64 + i * COMPACT_READERS as u64) % slots) * SEG;
                        c.read_into(&mut ctx, blob, None, Segment::new(off, SEG), &mut out)
                            .unwrap();
                    }
                });
            }
        });
    });
    let ops = (COMPACT_READERS as u64 * COMPACT_READ_OPS) as f64;
    ReadLeg {
        mib_s: ops * SEG as f64 / MB as f64 / m.secs,
        copied_per_op: m.bytes_copied as f64 / ops,
    }
}

struct CompactionOutcome {
    dead_bytes: u64,
    reclaimed_bytes: u64,
    fraction: f64,
    pre: ReadLeg,
    post: ReadLeg,
}

/// Write → GC ¾ of the versions → read → compact → read.
fn run_compaction_leg() -> CompactionOutcome {
    let mut cfg = DeploymentConfig::functional_tcp(PROVIDERS)
        .tune()
        .backend(BackendKind::Mmap)
        .build();
    cfg.provider_capacity = u64::MAX;
    // The sweep measures the *explicit* before/after; disable the
    // automatic trigger so GC's removes don't compact under us.
    cfg.log.compact_dead_ratio = 0.0;
    let d = Arc::new(Deployment::build(cfg));
    let setup = d.client();
    let mut ctx = Ctx::start();
    let blob = setup.alloc(&mut ctx, COMPACT_REGION, PAGE).unwrap().blob;
    // Four full passes over the region (every chunk write is its own
    // version; the final pass alone covers the whole region).
    let mut last_v = 0;
    for pass in 0..COMPACT_VERSIONS {
        let data = payload(SEG, pass);
        let mut off = 0;
        while off < COMPACT_REGION {
            last_v = setup.write(&mut ctx, blob, off, &data).unwrap();
            off += SEG;
        }
    }
    // Collect everything below the newest version: the three
    // superseded passes — ¾ of the log — go dead.
    setup.gc(&mut ctx, blob, last_v).unwrap();

    let pre = read_leg(&d, blob);

    let mut dead_bytes = 0u64;
    let mut reclaimed_bytes = 0u64;
    for i in 0..PROVIDERS {
        let stats = d.storage[i].data().stats();
        dead_bytes += stats.dead_bytes;
        let report = d
            .compact_storage(i)
            .unwrap()
            .expect("mmap backend compacts");
        reclaimed_bytes += report.reclaimed_bytes;
    }
    let fraction = reclaimed_bytes as f64 / dead_bytes as f64;

    let post = read_leg(&d, blob);
    CompactionOutcome {
        dead_bytes,
        reclaimed_bytes,
        fraction,
        pre,
        post,
    }
}

fn table(buffered: &[Sample], fsync: &[Sample]) -> Table {
    let mut t = Table::new(&[
        "clients",
        "buffered MiB/s",
        "fsync MiB/s",
        "fsync cost",
        "copied/op",
        "ser/op",
        "va/op",
    ]);
    for (b, f) in buffered.iter().zip(fsync) {
        t.row(&[
            b.clients.to_string(),
            format!("{:.1}", b.mib_s),
            format!("{:.1}", f.mib_s),
            format!("{:.2}x", f.mib_s / b.mib_s),
            format!("{:.0}", b.copied_per_op),
            format!("{:.2}", b.ser_per_op),
            format!("{:.2}", b.va_per_op),
        ]);
    }
    t
}

fn json_series(samples: &[Sample]) -> String {
    let entries: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "{{\"clients\": {}, \"mib_s\": {:.2}, \"bytes_copied_per_op\": {:.0}, \"serializing_locks_per_op\": {:.2}, \"version_assign_locks_per_op\": {:.2}}}",
                s.clients, s.mib_s, s.copied_per_op, s.ser_per_op, s.va_per_op
            )
        })
        .collect();
    format!("[{}]", entries.join(", "))
}

fn main() {
    println!(
        "pr5 durability benchmark: page={PAGE} seg={SEG} ops/client={OPS_PER_CLIENT} \
         (tcp loopback, mmap backend)"
    );

    println!("\n-- commit mode: buffered (markers only)");
    let buffered: Vec<Sample> = CLIENTS.iter().map(|&n| run_write(n, false)).collect();
    println!("-- commit mode: fsync-on-commit (group-amortized fdatasync)");
    let fsync: Vec<Sample> = CLIENTS.iter().map(|&n| run_write(n, true)).collect();
    assert_invariants("write/buffered", &buffered);
    assert_invariants("write/fsync", &fsync);

    let wt = table(&buffered, &fsync);
    blobseer_bench::emit(
        "pr5_write",
        "PR5 large-page write, buffered vs fsync-on-commit",
        &wt,
    );

    println!("-- compaction: write 4 versions, gc 3, compact, re-read");
    let comp = run_compaction_leg();
    for (leg, r) in [("pre", &comp.pre), ("post", &comp.post)] {
        assert!(
            (r.copied_per_op - SEG as f64).abs() < 1.0,
            "read/{leg}-compaction: copies/op {} != sanctioned {}",
            r.copied_per_op,
            SEG
        );
    }
    assert!(
        comp.fraction >= 0.9,
        "compaction reclaimed only {:.1}% of {} dead bytes",
        comp.fraction * 100.0,
        comp.dead_bytes
    );
    let post_over_pre = comp.post.mib_s / comp.pre.mib_s;
    println!(
        "compaction: reclaimed {} of {} dead bytes ({:.0}%), read {:.1} -> {:.1} MiB/s ({:.2}x)",
        comp.reclaimed_bytes,
        comp.dead_bytes,
        comp.fraction * 100.0,
        comp.pre.mib_s,
        comp.post.mib_s,
        post_over_pre
    );

    // Headline: the fsync tax as a geomean over the sweep.
    let logs: Vec<f64> = buffered
        .iter()
        .zip(&fsync)
        .map(|(b, f)| (f.mib_s / b.mib_s).ln())
        .collect();
    let fsync_ratio = (logs.iter().sum::<f64>() / logs.len() as f64).exp();
    println!("\nfsync/buffered write throughput ratio (geomean): {fsync_ratio:.3}");

    let json = format!(
        "{{\n  \"bench\": \"pr5_durability\",\n  \"transport\": \"tcp-loopback\",\n  \"backend\": \"mmap\",\n  \"page_size\": {PAGE},\n  \"segment_bytes\": {SEG},\n  \"ops_per_client\": {OPS_PER_CLIENT},\n  \"providers\": {PROVIDERS},\n  \"write\": {{\"buffered\": {}, \"fsync\": {}}},\n  \"fsync_write_ratio_geomean\": {fsync_ratio:.3},\n  \"compaction\": {{\n    \"dead_bytes\": {},\n    \"reclaimed_bytes\": {},\n    \"dead_reclaimed_fraction\": {:.3},\n    \"read_pre\": {{\"mib_s\": {:.2}, \"bytes_copied_per_op\": {:.0}}},\n    \"read_post\": {{\"mib_s\": {:.2}, \"bytes_copied_per_op\": {:.0}}},\n    \"read_post_over_pre\": {post_over_pre:.3}\n  }}\n}}\n",
        json_series(&buffered),
        json_series(&fsync),
        comp.dead_bytes,
        comp.reclaimed_bytes,
        comp.fraction,
        comp.pre.mib_s,
        comp.pre.copied_per_op,
        comp.post.mib_s,
        comp.post.copied_per_op,
    );
    std::fs::write("BENCH_PR5.json", &json).expect("write BENCH_PR5.json");
    println!("(json written to BENCH_PR5.json)");
}
