//! **Application experiment** — the supernova survey of §I running on the
//! simulated Grid'5000 cluster: concurrent telescope writers + detector
//! readers, detection quality scored against injected ground truth, and
//! sustained virtual-time bandwidths reported.

use blobseer_bench::*;
use blobseer_core::{Deployment, DeploymentConfig};
use blobseer_rpc::Ctx;
use blobseer_sky::{
    score, DetectConfig, Detector, SimBackend, SkyBackend, SkyGeometry, SkyModel, SynthConfig,
    Telescope,
};
use blobseer_util::stats::Table;
use std::sync::Arc;

fn main() {
    // 4x4 tiles of 128x128 px, 10 epochs, 6 transients early enough to
    // classify; 20 storage nodes.
    let geom = SkyGeometry::new(4, 4, 128, 64 * 1024);
    let epochs = 10u32;
    let model = Arc::new(SkyModel::new(geom, SynthConfig::default(), 0x5147, 6, 4));
    let d = Arc::new(Deployment::build(DeploymentConfig::grid5000(20)));

    let setup = d.client();
    let mut sctx = Ctx::start();
    let info = setup
        .alloc(&mut sctx, geom.blob_size(epochs), geom.page_size)
        .unwrap();
    let blob = info.blob;

    // Two telescopes split the sky; they run as concurrent writer threads.
    let half = geom.tiles() / 2;
    let ingest_handles: Vec<_> = [(0u32, half), (half, geom.tiles() - half)]
        .into_iter()
        .map(|(first, count)| {
            let d = Arc::clone(&d);
            let model = Arc::clone(&model);
            std::thread::spawn(move || {
                let backend = Arc::new(SimBackend::new(d.client(), blob));
                let t = Telescope {
                    model: &model,
                    backend: backend.clone() as Arc<dyn SkyBackend>,
                };
                for e in 0..epochs {
                    t.capture_epoch_tiles(e, first, count).unwrap();
                }
                backend.vt()
            })
        })
        .collect();
    let ingest_vt = ingest_handles
        .into_iter()
        .map(|h| h.join().unwrap())
        .max()
        .unwrap();
    let total = geom.epoch_bytes() * epochs as u64;
    println!(
        "ingest: {} over {} epochs in {} virtual time ({:.1} MB/s/telescope)",
        blobseer_util::stats::fmt_bytes(total),
        epochs,
        blobseer_util::stats::fmt_ns(ingest_vt),
        blobseer_util::stats::mbps(total / 2, ingest_vt)
    );

    // Four detector clients split the sky and scan every epoch.
    let cfg = DetectConfig::default();
    let quarter = geom.tiles() / 4;
    let detect_base = d.cluster.horizon();
    let detect_handles: Vec<_> = (0..4u32)
        .map(|k| {
            let d = Arc::clone(&d);
            std::thread::spawn(move || {
                let backend = Arc::new(SimBackend::at(d.client(), blob, detect_base));
                let det = Detector {
                    geom,
                    config: cfg,
                    backend: backend.clone() as Arc<dyn SkyBackend>,
                };
                let mut cands = Vec::new();
                for e in 1..epochs {
                    cands.extend(det.scan_epoch_tiles(None, e, k * quarter, quarter).unwrap());
                }
                (cands, backend.vt())
            })
        })
        .collect();
    let mut candidates = Vec::new();
    let mut scan_vt = 0;
    for h in detect_handles {
        let (c, vt) = h.join().unwrap();
        candidates.extend(c);
        scan_vt = scan_vt.max(vt - detect_base);
    }
    let scanned = total * 2; // each tile read twice (reference + current)
    println!(
        "detection scan: {} read in {} virtual time ({:.1} MB/s/detector)",
        blobseer_util::stats::fmt_bytes(scanned),
        blobseer_util::stats::fmt_ns(scan_vt),
        blobseer_util::stats::mbps(scanned / 4, scan_vt)
    );

    let report = score(&model, &cfg, candidates);
    let mut table = Table::new(&["metric", "value"]);
    table.row(&["epochs".into(), epochs.to_string()]);
    table.row(&[
        "injected transients".into(),
        model.transients.len().to_string(),
    ]);
    table.row(&["candidates".into(), report.candidates.len().to_string()]);
    table.row(&["light curves".into(), report.curves.len().to_string()]);
    table.row(&[
        "classified supernovae".into(),
        report.supernovae.len().to_string(),
    ]);
    table.row(&["recovered".into(), report.recovered.to_string()]);
    table.row(&["missed".into(), report.missed.to_string()]);
    table.row(&["false positives".into(), report.false_positives.to_string()]);
    table.row(&["recall".into(), format!("{:.2}", report.recall())]);
    table.row(&["ingest vt".into(), blobseer_util::stats::fmt_ns(ingest_vt)]);
    table.row(&["scan vt".into(), blobseer_util::stats::fmt_ns(scan_vt)]);
    emit(
        "sky_e2e",
        "Application: supernova survey on the simulated cluster",
        &table,
    );
}
