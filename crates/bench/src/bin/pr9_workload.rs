//! PR 9 acceptance benchmark: production traffic shapes over the full
//! distributed stack.
//!
//! Three legs, all driven by the deterministic
//! [`workload`](blobseer_bench::workload) generator
//! (Zipf s = 1.0 popularity over the blob's pages, 90/10 read-mostly
//! mix):
//!
//! * **unloaded** (loopback TCP) — one closed-loop client over real
//!   sockets behind wall-clock admission gates; the hard-gate columns
//!   (copies/op, locks/op) plus real-wire latency percentiles;
//! * **storm** (simulated cluster, grid5000 cost model) — the same mix
//!   offered **open-loop at 10× the cluster's aggregate unloaded rate**
//!   against bounded per-provider admission gates running in
//!   *virtual-time* mode: each gate bounds the provider's projected
//!   virtual backlog (handler CPU + response NIC occupancy), the
//!   same next-free-register discipline the simulator uses for its
//!   resources. Arrivals fire at their scheduled virtual times, so the
//!   open-loop discipline is exact — lateness cannot hide in a
//!   saturated generator, and the admit/shed frontier is independent
//!   of the host's core count. Asserted, per the issue: every
//!   rejection is a typed `Overload` carrying a retry hint, nothing
//!   hangs (admitted + shed equals arrivals, bounded wall time), and
//!   the p99 of *admitted* reads stays within 5× the unloaded p99 —
//!   the bounded queue never turns into an unbounded buffer;
//! * **fan-out ablation** (simulated cluster) — eight closed-loop
//!   clients hammer one hot page with fan-out off vs on. Throughput is
//!   virtual-time makespan over the providers' CPU/NIC registers, so
//!   serving a hot page from three providers instead of one wins
//!   deterministically, not by wall-clock luck.
//!
//! Emits the paper-style table, `results/pr9_workload.csv`, and
//! `BENCH_PR9.json` for the CI gate (copies/op and locks/op hard,
//! `*_mib_s` and the `*_p50/p99/p999_ms` percentiles advisory).

use blobseer_bench::workload::{LatencyRecorder, LatencySummary, Mix, OpenLoop, Zipf};
use blobseer_bench::{measure_region, payload, prefill, MB};
use blobseer_core::{
    AdmissionMode, AdmissionOptions, BlobClient, Deployment, DeploymentConfig, FanOutOptions,
    RetryPolicy,
};
use blobseer_proto::{BlobError, BlobId, Segment};
use blobseer_rpc::Ctx;
use blobseer_simnet::CostModel;
use blobseer_util::lockmeter;
use blobseer_util::stats::Table;
use std::time::{Duration, Instant};

const PAGE: u64 = 4 * MB;
const PAGES: u64 = 64;
const TOTAL: u64 = PAGE * PAGES;
const PROVIDERS: usize = 4;

const ZIPF_S: f64 = 1.0;
const READ_FRACTION: f64 = 0.9;
const SEED: u64 = 0x51ab;

const UNLOADED_OPS: usize = 150;

const OVERLOAD_X: f64 = 10.0;
const STORM_ARRIVALS: usize = 4_000;
const STORM_CLIENTS: usize = 16;
/// Virtual backlog bound per provider gate: admitted work may queue at
/// most this long (virtual) behind earlier admitted work. Kept well
/// under the unloaded per-op latency so the 5× admitted-p99 bound holds
/// with headroom: admitted latency ≈ bound + own service (plus real
/// register queueing behind in-flight page transfers), sheds are
/// instant.
const MAX_BACKLOG_MS: u64 = 15;

const ABLATION_CLIENTS: usize = 8;
const ABLATION_OPS: u64 = 100;
const PROMOTE_AFTER: u64 = 16;
const MAX_REPLICAS: usize = 3;

fn fill(d: &Deployment) -> BlobId {
    let c = d.client();
    let mut ctx = Ctx::start();
    let blob = c.alloc(&mut ctx, TOTAL, PAGE).unwrap().blob;
    // Page-at-a-time: wide parallel setup bursts would trip the storm
    // gates before the storm even starts.
    prefill(d, blob, 0, TOTAL, PAGE);
    // Warm the shared metadata cache, one page per read, starting
    // causally after the prefill traffic: a clock behind the cluster
    // horizon would face the prefill's still-draining virtual backlog.
    let mut ctx = Ctx::at(d.cluster.horizon());
    for p in 0..PAGES {
        c.read(&mut ctx, blob, None, Segment::new(p * PAGE, PAGE))
            .unwrap();
    }
    blob
}

/// Pre-generate `n` deterministic arrivals: `(is_read, page offset)`.
fn arrivals(n: usize, seed: u64) -> Vec<(bool, u64)> {
    let mut zipf = Zipf::new(PAGES as usize, ZIPF_S, seed);
    let mut mix = Mix::new(READ_FRACTION, seed);
    (0..n)
        .map(|_| (mix.is_read(), zipf.sample() as u64 * PAGE))
        .collect()
}

struct TcpBaseline {
    mib_s: f64,
    copied_per_op: f64,
    ser_per_op: f64,
    va_per_op: f64,
    reads: LatencySummary,
}

/// One closed-loop client over loopback TCP behind default wall-mode
/// gates: the hard-gate copy/lock columns for the whole skewed mix, and
/// real-socket latency percentiles. The gated dispatch path (permit
/// held through response transmission) is on the serving path here even
/// though a single closed-loop client never sheds.
fn run_tcp_baseline() -> TcpBaseline {
    let d = Deployment::build(
        DeploymentConfig::functional_tcp(PROVIDERS)
            .tune()
            .cache_nodes(4096)
            .admission(AdmissionOptions::default())
            .build(),
    );
    let blob = fill(&d);
    let c = d.client();
    let mut ctx = Ctx::start();
    c.info(&mut ctx, blob).unwrap();
    let plan = arrivals(UNLOADED_OPS, SEED);
    let data = payload(PAGE, 9);
    let mut reads = LatencyRecorder::new();
    let locks = lockmeter::snapshot();
    let m = measure_region(|| {
        for &(is_read, off) in &plan {
            let t = Instant::now();
            if is_read {
                c.read(&mut ctx, blob, None, Segment::new(off, PAGE))
                    .unwrap();
                reads.record(t.elapsed());
            } else {
                c.write(&mut ctx, blob, off, &data).unwrap();
            }
        }
    });
    let d_locks = locks.since();
    let ops = UNLOADED_OPS as f64;
    TcpBaseline {
        mib_s: ops * PAGE as f64 / MB as f64 / m.secs,
        copied_per_op: m.bytes_copied as f64 / ops,
        ser_per_op: d_locks.serializing as f64 / ops,
        va_per_op: d_locks.version_assign as f64 / ops,
        reads: reads.summary(),
    }
}

struct Storm {
    unloaded_reads: LatencySummary,
    offered_per_s: f64,
    admitted: u64,
    shed: u64,
    elapsed: Duration,
    reads: LatencySummary,
}

/// The open-loop storm on the costed simulator. First a closed-loop
/// virtual-time baseline (one client, the 5× anchor), then the same mix
/// offered at 10× the cluster's aggregate unloaded service rate, every
/// arrival firing at its scheduled **virtual** time. Latencies are
/// virtual: completion clock minus scheduled arrival, so queueing shows
/// up exactly and host speed does not.
fn run_storm() -> Storm {
    let cost = CostModel::grid5000();
    // ns per KiB on the modelled NIC — the marginal KiB, envelope
    // excluded.
    let resp_ns_per_kib = cost.transfer_ns(2048) - cost.transfer_ns(1024);
    let d = Deployment::build(
        DeploymentConfig::grid5000(PROVIDERS)
            .tune()
            .cache_nodes(4096)
            // Fail fast: the storm counts raw admission decisions; the
            // default client policy would retry sheds into admissions
            // and hide the gate behavior this bench exists to measure.
            .retry(RetryPolicy::none())
            .admission(AdmissionOptions {
                mode: AdmissionMode::Virtual {
                    max_backlog_ns: MAX_BACKLOG_MS * 1_000_000,
                    resp_ns_per_kib,
                },
                ..AdmissionOptions::default()
            })
            .build(),
    );
    let blob = fill(&d);

    // Closed-loop virtual baseline from a quiet horizon: the fill
    // traffic has fully drained by then, so per-op deltas are clean.
    let c = d.client();
    let mut ctx = Ctx::at(d.cluster.horizon());
    c.info(&mut ctx, blob).unwrap();
    let plan = arrivals(UNLOADED_OPS, SEED);
    let data = payload(PAGE, 9);
    let mut base_reads = LatencyRecorder::new();
    let mut all = LatencyRecorder::new();
    for &(is_read, off) in &plan {
        let vt0 = ctx.vt;
        if is_read {
            c.read(&mut ctx, blob, None, Segment::new(off, PAGE))
                .unwrap();
        } else {
            c.write(&mut ctx, blob, off, &data).unwrap();
        }
        let dv = Duration::from_nanos(ctx.vt - vt0);
        if is_read {
            base_reads.record(dv);
        }
        all.record(dv);
    }
    let mean_op_s = (all.mean_ms() / 1e3).max(1e-9);

    // 10× the aggregate unloaded rate: one closed-loop client keeps one
    // provider busy, the cluster sustains ~PROVIDERS× that, and the
    // storm offers ten times *that* — overload on every provider (the
    // Zipf skew pushes the hottest one past 30× its share).
    let ol = OpenLoop {
        rate_per_s: OVERLOAD_X * PROVIDERS as f64 / mean_op_s,
    };
    let storm_plan = arrivals(STORM_ARRIVALS, SEED ^ 0xbeef);
    let base_vt = d.cluster.horizon();
    let clients: Vec<BlobClient> = (0..STORM_CLIENTS)
        .map(|_| {
            let c = d.client();
            let mut ctx = Ctx::at(base_vt);
            c.info(&mut ctx, blob).unwrap();
            c
        })
        .collect();

    // Drive arrivals strictly in schedule order, rotating across the
    // client fleet: the concurrency of the modelled clients lives in
    // the virtual clock (every op's clock starts at its scheduled
    // arrival whether or not earlier ops have resolved), not in host
    // threads. Racing OS threads would apply gate occupancy out of
    // arrival order and make the admit/shed frontier — and the
    // committed baseline — nondeterministic.
    let storm_data = payload(PAGE, 11);
    let t0 = Instant::now();
    let mut admitted = 0u64;
    let mut shed = 0u64;
    let mut reads = LatencyRecorder::new();
    for (i, &(is_read, off)) in storm_plan.iter().enumerate() {
        let due_vt = base_vt + ol.due(i).as_nanos() as u64;
        let mut ctx = Ctx::at(due_vt);
        let c = &clients[i % STORM_CLIENTS];
        let r = if is_read {
            c.read(&mut ctx, blob, None, Segment::new(off, PAGE))
                .map(|_| ())
        } else {
            c.write(&mut ctx, blob, off, &storm_data).map(|_| ())
        };
        match r {
            Ok(()) => {
                admitted += 1;
                if is_read {
                    reads.record(Duration::from_nanos(ctx.vt - due_vt));
                }
            }
            Err(BlobError::Overload { retry_after_hint }) => {
                assert!(retry_after_hint > 0, "shed must carry a backoff hint");
                shed += 1;
            }
            Err(other) => panic!("rejections must be typed Overload, got {other:?}"),
        }
    }
    Storm {
        unloaded_reads: base_reads.summary(),
        offered_per_s: ol.rate_per_s,
        admitted,
        shed,
        elapsed: t0.elapsed(),
        reads: reads.summary(),
    }
}

struct Ablation {
    mib_s: f64,
    copied_per_op: f64,
    ser_per_op: f64,
    reads: LatencySummary,
    promotions: u64,
}

/// Closed-loop hot-page hammering on the costed sim, fan-out off or on.
/// Throughput is virtual: ops × page over the growth of the cluster's
/// resource horizon — how long the providers' CPU/NIC registers were
/// actually busy — so one provider serving every hot read loses to
/// three deterministically, not by wall-clock luck.
fn run_ablation(fan_out: Option<FanOutOptions>) -> Ablation {
    let mut b = DeploymentConfig::grid5000(PROVIDERS)
        .tune()
        .cache_nodes(4096);
    if let Some(opts) = fan_out {
        b = b.fan_out(opts);
    }
    let d = Deployment::build(b.build());
    let blob = fill(&d);
    let expected_promotions = fan_out.map_or(0, |f| (f.max_replicas - 1) as u64);

    // Heat the page past several promotion thresholds before measuring,
    // so both cells run in their steady state. (A threshold crossing
    // whose placement plan lands on an existing holder skips that
    // round, hence the generous crossing budget.)
    let warm = d.client();
    let mut ctx = Ctx::start();
    for _ in 0..(4 * PROMOTE_AFTER * MAX_REPLICAS as u64) {
        warm.read(&mut ctx, blob, None, Segment::new(0, PAGE))
            .unwrap();
    }
    let promotions = d.heat.as_ref().map_or(0, |h| h.promotions());
    assert_eq!(
        promotions, expected_promotions,
        "warmup must promote the hot page to the replica cap"
    );

    let clients: Vec<BlobClient> = (0..ABLATION_CLIENTS)
        .map(|_| {
            let c = d.client();
            let mut ctx = Ctx::start();
            c.info(&mut ctx, blob).unwrap();
            c
        })
        .collect();
    let mut reads = LatencyRecorder::new();
    let horizon0 = d.cluster.horizon();
    let locks = lockmeter::snapshot();
    let m = measure_region(|| {
        std::thread::scope(|s| {
            let handles: Vec<_> = clients
                .iter()
                .map(|c| {
                    s.spawn(move || {
                        let mut ctx = Ctx::start();
                        let mut rec = LatencyRecorder::new();
                        for _ in 0..ABLATION_OPS {
                            let vt0 = ctx.vt;
                            c.read(&mut ctx, blob, None, Segment::new(0, PAGE)).unwrap();
                            rec.record(Duration::from_nanos(ctx.vt - vt0));
                        }
                        rec
                    })
                })
                .collect();
            for h in handles {
                reads.merge(&h.join().unwrap());
            }
        });
    });
    let d_locks = locks.since();
    let busy_secs = (d.cluster.horizon() - horizon0) as f64 / 1e9;
    let ops = (ABLATION_CLIENTS as u64 * ABLATION_OPS) as f64;
    Ablation {
        mib_s: ops * PAGE as f64 / MB as f64 / busy_secs.max(1e-9),
        copied_per_op: m.bytes_copied as f64 / ops,
        ser_per_op: d_locks.serializing as f64 / ops,
        reads: reads.summary(),
        promotions,
    }
}

fn main() {
    println!(
        "pr9 workload benchmark: Zipf s={ZIPF_S}, {:.0}% reads, {PAGES} pages × {} KiB, \
         {PROVIDERS} providers",
        READ_FRACTION * 100.0,
        PAGE / 1024
    );

    println!("-- unloaded baseline (tcp, closed loop, wall gates)");
    let base = run_tcp_baseline();
    println!(
        "  {:.1} MiB/s, read p50 {:.2} / p99 {:.2} / p999 {:.2} ms, {:.0} copied/op",
        base.mib_s, base.reads.p50_ms, base.reads.p99_ms, base.reads.p999_ms, base.copied_per_op
    );

    println!(
        "-- open-loop storm (sim, {OVERLOAD_X:.0}x aggregate rate, {STORM_ARRIVALS} arrivals, \
         {STORM_CLIENTS} modelled clients, virtual-time gates)"
    );
    let storm = run_storm();
    println!(
        "  unloaded read p50 {:.2} / p99 {:.2} virtual ms",
        storm.unloaded_reads.p50_ms, storm.unloaded_reads.p99_ms
    );
    println!(
        "  offered {:.0}/s (virtual) in {:?} wall: {} admitted, {} shed; \
         admitted read p99 {:.2} virtual ms",
        storm.offered_per_s, storm.elapsed, storm.admitted, storm.shed, storm.reads.p99_ms
    );

    // The issue's overload contract, asserted in-bench (the rpc-level
    // wall-clock twin lives in crates/rpc/tests/overload.rs).
    assert!(
        storm.elapsed < Duration::from_secs(60),
        "storm must resolve in bench time (zero hangs), took {:?}",
        storm.elapsed
    );
    assert_eq!(
        storm.admitted + storm.shed,
        STORM_ARRIVALS as u64,
        "every arrival is admitted or typed-shed — none vanish"
    );
    assert!(
        storm.shed > STORM_ARRIVALS as u64 / 4 && storm.admitted > 0,
        "10x offered load must both admit and shed (admitted {}, shed {})",
        storm.admitted,
        storm.shed
    );
    assert!(
        storm.reads.p99_ms <= 5.0 * storm.unloaded_reads.p99_ms,
        "admitted p99 {:.2} ms must stay within 5x unloaded p99 {:.2} ms",
        storm.reads.p99_ms,
        storm.unloaded_reads.p99_ms
    );

    println!("-- hot-page fan-out ablation (sim, {ABLATION_CLIENTS} closed-loop clients)");
    let off = run_ablation(None);
    println!(
        "  fan-out off: {:.1} virtual MiB/s, read p99 {:.2} virtual ms",
        off.mib_s, off.reads.p99_ms
    );
    let on = run_ablation(Some(FanOutOptions {
        promote_after_reads: PROMOTE_AFTER,
        max_replicas: MAX_REPLICAS,
    }));
    println!(
        "  fan-out on:  {:.1} virtual MiB/s, read p99 {:.2} virtual ms, {} promotions",
        on.mib_s, on.reads.p99_ms, on.promotions
    );
    let speedup = on.mib_s / off.mib_s.max(f64::MIN_POSITIVE);
    assert!(
        speedup > 1.2,
        "fan-out must measurably lift hot-read throughput \
         (on {:.1} vs off {:.1} virtual MiB/s, x{speedup:.2})",
        on.mib_s,
        off.mib_s
    );

    let mut table = Table::new(&[
        "phase", "clients", "MiB/s", "p50 ms", "p99 ms", "p999 ms", "admitted", "shed",
    ]);
    table.row(&[
        "tcp unloaded".into(),
        "1".into(),
        format!("{:.1}", base.mib_s),
        format!("{:.2}", base.reads.p50_ms),
        format!("{:.2}", base.reads.p99_ms),
        format!("{:.2}", base.reads.p999_ms),
        UNLOADED_OPS.to_string(),
        "0".into(),
    ]);
    table.row(&[
        "sim unloaded".into(),
        "1".into(),
        "-".into(),
        format!("{:.2}", storm.unloaded_reads.p50_ms),
        format!("{:.2}", storm.unloaded_reads.p99_ms),
        format!("{:.2}", storm.unloaded_reads.p999_ms),
        UNLOADED_OPS.to_string(),
        "0".into(),
    ]);
    table.row(&[
        "sim storm 10x".into(),
        STORM_CLIENTS.to_string(),
        "-".into(),
        format!("{:.2}", storm.reads.p50_ms),
        format!("{:.2}", storm.reads.p99_ms),
        format!("{:.2}", storm.reads.p999_ms),
        storm.admitted.to_string(),
        storm.shed.to_string(),
    ]);
    for (name, cell) in [("fanout off", &off), ("fanout on", &on)] {
        table.row(&[
            name.into(),
            ABLATION_CLIENTS.to_string(),
            format!("{:.1}", cell.mib_s),
            format!("{:.2}", cell.reads.p50_ms),
            format!("{:.2}", cell.reads.p99_ms),
            format!("{:.2}", cell.reads.p999_ms),
            (ABLATION_CLIENTS as u64 * ABLATION_OPS).to_string(),
            "0".into(),
        ]);
    }
    blobseer_bench::emit(
        "pr9_workload",
        "PR9 open-loop skewed workload: overload shedding + hot-page fan-out",
        &table,
    );

    let json = format!(
        "{{\n  \"bench\": \"pr9_workload\",\n  \"transport\": \"tcp-baseline + sim-storm + sim-ablation\",\n  \
         \"page_size\": {PAGE},\n  \"pages\": {PAGES},\n  \"zipf_s\": {ZIPF_S},\n  \
         \"read_fraction\": {READ_FRACTION},\n  \"providers\": {PROVIDERS},\n  \
         \"unloaded\": {{\"clients\": 1, \"mib_s\": {:.2}, \"bytes_copied_per_op\": {:.0}, \
         \"serializing_locks_per_op\": {:.2}, \"version_assign_locks_per_op\": {:.2}, \
         \"read_p50_ms\": {:.3}, \"read_p99_ms\": {:.3}, \"read_p999_ms\": {:.3}}},\n  \
         \"storm_unloaded\": {{\"clients\": 1, \"read_p50_ms\": {:.3}, \"read_p99_ms\": {:.3}, \
         \"read_p999_ms\": {:.3}}},\n  \
         \"storm\": {{\"workers\": {STORM_CLIENTS}, \"offered_over_unloaded\": {OVERLOAD_X}, \
         \"arrivals\": {STORM_ARRIVALS}, \"admitted\": {}, \"shed\": {}, \
         \"admitted_read_p50_ms\": {:.3}, \"admitted_read_p99_ms\": {:.3}, \
         \"admitted_read_p999_ms\": {:.3}}},\n  \
         \"fan_out_off\": {{\"clients\": {ABLATION_CLIENTS}, \"hot_read_mib_s\": {:.2}, \
         \"bytes_copied_per_op\": {:.0}, \"serializing_locks_per_op\": {:.2}, \
         \"read_p99_ms\": {:.3}}},\n  \
         \"fan_out_on\": {{\"clients\": {ABLATION_CLIENTS}, \"hot_read_mib_s\": {:.2}, \
         \"bytes_copied_per_op\": {:.0}, \"serializing_locks_per_op\": {:.2}, \
         \"read_p99_ms\": {:.3}, \"promotions\": {}}},\n  \
         \"fan_out_speedup\": {speedup:.3}\n}}\n",
        base.mib_s,
        base.copied_per_op,
        base.ser_per_op,
        base.va_per_op,
        base.reads.p50_ms,
        base.reads.p99_ms,
        base.reads.p999_ms,
        storm.unloaded_reads.p50_ms,
        storm.unloaded_reads.p99_ms,
        storm.unloaded_reads.p999_ms,
        storm.admitted,
        storm.shed,
        storm.reads.p50_ms,
        storm.reads.p99_ms,
        storm.reads.p999_ms,
        off.mib_s,
        off.copied_per_op,
        off.ser_per_op,
        off.reads.p99_ms,
        on.mib_s,
        on.copied_per_op,
        on.ser_per_op,
        on.reads.p99_ms,
        on.promotions,
    );
    std::fs::write("BENCH_PR9.json", &json).expect("write BENCH_PR9.json");
    println!("(json written to BENCH_PR9.json)");
}
