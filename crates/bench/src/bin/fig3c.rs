//! **Figure 3(c)** — Throughput under concurrency.
//!
//! "We measure the average bandwidth per client for READ (respectively
//! WRITE) requests when increasing the number of simultaneous readers
//! (respectively writers)": 20 storage nodes, clients on their own nodes,
//! each client looping over disjoint segments of a large prefilled region
//! (paper §V.D; sizes scaled down — see EXPERIMENTS.md — shapes are the
//! assertion, not absolutes).
//!
//! Expected shape: per-client bandwidth declines only slightly from 1 to
//! 20 clients; Read > Write; Read with cached metadata > Read.

use blobseer_bench::*;
use blobseer_core::{Deployment, DeploymentConfig};
use blobseer_proto::BlobId;
use blobseer_rpc::Ctx;
use blobseer_util::stats::{mbps, OnlineStats, Table};
use std::sync::Arc;

const STORAGE_NODES: usize = 20;
/// The paper's "1 GB interval of the data string".
const REGION: u64 = 1024 * MB;
const SEG: u64 = 2 * MB;
const ITERS: u64 = 16;

fn client_counts() -> Vec<usize> {
    vec![1, 2, 4, 8, 12, 16, 20]
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Read,
    Write,
    ReadCached,
}

fn run_mode(mode: Mode, n_clients: usize) -> f64 {
    let mut cfg = DeploymentConfig::grid5000(STORAGE_NODES);
    if mode == Mode::ReadCached {
        cfg.cache_nodes = 1 << 20; // the paper's cache size
    }
    let d = Arc::new(Deployment::build(cfg));

    // Allocate + prefill (reads need data; writers start on a blank
    // region of the same blob).
    let setup = d.client();
    let mut sctx = Ctx::start();
    let info = setup.alloc(&mut sctx, PAPER_BLOB, PAPER_PAGE).unwrap();
    let blob: BlobId = info.blob;
    if mode != Mode::Write {
        prefill(&d, blob, 0, REGION, 8 * MB);
    }

    // All measured clients are causally after the setup phase and start
    // together at the horizon.
    let base_vt = d.cluster.horizon();
    let handles: Vec<_> = (0..n_clients)
        .map(|k| {
            let d = Arc::clone(&d);
            std::thread::spawn(move || {
                let client = d.client();
                let mut ctx = Ctx::at(base_vt);
                // Warm-up round (connection setup), then measured loop.
                let warm = disjoint_segment(0, REGION, SEG, (k as u64) * ITERS);
                match mode {
                    Mode::Write => {
                        let data = payload(SEG, k as u64);
                        client.write(&mut ctx, blob, warm.offset, &data).unwrap();
                    }
                    _ => {
                        client.read(&mut ctx, blob, None, warm).unwrap();
                    }
                }
                let t0 = ctx.vt;
                for i in 0..ITERS {
                    let seg = disjoint_segment(0, REGION, SEG, (k as u64) * ITERS + i);
                    match mode {
                        Mode::Write => {
                            let data = payload(SEG, (k as u64) << 32 | i);
                            client.write(&mut ctx, blob, seg.offset, &data).unwrap();
                        }
                        _ => {
                            client.read(&mut ctx, blob, None, seg).unwrap();
                        }
                    }
                }
                mbps(ITERS * SEG, ctx.vt - t0)
            })
        })
        .collect();

    let mut stats = OnlineStats::new();
    for h in handles {
        stats.push(h.join().unwrap());
    }
    stats.mean()
}

fn main() {
    let mut table = Table::new(&[
        "clients",
        "Read (MB/s)",
        "Write (MB/s)",
        "Read cached (MB/s)",
    ]);
    for &n in &client_counts() {
        let read = run_mode(Mode::Read, n);
        let write = run_mode(Mode::Write, n);
        let cached = run_mode(Mode::ReadCached, n);
        table.row(&[
            n.to_string(),
            format!("{read:.1}"),
            format!("{write:.1}"),
            format!("{cached:.1}"),
        ]);
        println!(
            "clients={n}: read {read:.1} MB/s, write {write:.1} MB/s, cached {cached:.1} MB/s"
        );
    }
    emit(
        "fig3c",
        "Fig. 3(c): average bandwidth per client under concurrency",
        &table,
    );
    println!("shape checks: gentle decline with client count; Read > Write; cached Read > Read");
}
