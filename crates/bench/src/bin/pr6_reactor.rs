//! PR 6 acceptance benchmark: connection scaling — the event-driven
//! reactor vs the thread-per-connection ablation.
//!
//! **Connection sweep**: for each regime, hold N established idle
//! connections (a re-executed child process owns the client side, so
//! this process's fd budget and RSS are the *server's*) while
//! measuring, per cell:
//!
//! * server RSS growth per connection (the C10K headline: the reactor
//!   pays a slab entry, the ablation pays a thread stack);
//! * server thread count (fixed for the reactor, `O(connections)` for
//!   the ablation);
//! * accept-to-first-byte latency of a fresh connection landing on the
//!   already-loaded server (the accept path must not degrade under
//!   held connections);
//! * throughput of an active echo mix riding over the same server
//!   (idle connections must cost the data path nothing).
//!
//! The reactor sweeps to 10,000 connections; the ablation is **capped
//! at 4,000** — a thread per connection at 10k is exactly the regime
//! the reactor exists to retire, and the cap is logged, not silent.
//! Asserted: at the largest common cell the reactor's per-connection
//! memory is strictly below thread-per-connection, and its thread
//! count does not grow with connections.
//!
//! **Write-parity leg**: the full distributed stack over loopback TCP
//! (reactor serving) writing 1 MiB segments. Asserted and emitted as
//! hard gate columns: exactly the one sanctioned copy per operation,
//! zero `Serializing` locks, one `VersionAssign` per write — the
//! multiplexed envelope-v2 client and the readiness loop must not cost
//! the wire discipline anything. The CI gate (`bench_gate`) then
//! catches quieter drifts against the committed `BENCH_PR6.json`.

use blobseer_bench::{measure_region, payload, MB};
use blobseer_core::{Deployment, DeploymentConfig};
use blobseer_rpc::{
    parse_response, respond, Frame, ServerCtx, ServerMode, Service, TcpOptions, TcpTransport,
    Transport,
};
use blobseer_util::stats::Table;
use blobseer_util::{fdlimit, lockmeter};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Idle-connection cells per regime. The ablation stops at 4,000: one
/// OS thread per connection past that is the failure mode under study,
/// not a configuration anyone should run.
const REACTOR_CELLS: &[usize] = &[1_000, 4_000, 10_000];
const THREAD_CELLS: &[usize] = &[1_000, 4_000];
/// The largest cell both regimes run — where the memory comparison is
/// asserted.
const COMMON_CELL: usize = 4_000;

/// Fresh connections timed for accept-to-first-byte, per cell.
const PROBE_CONNS: usize = 32;
/// Active echo mix: concurrent in-process clients × calls each.
const ACTIVE_CLIENTS: usize = 8;
const ACTIVE_CALLS: u64 = 200;

/// Write-parity leg (mirrors the PR 5 shape, one cell).
const PAGE: u64 = 256 * 1024;
const SEG: u64 = 4 * PAGE; // 1 MiB per op
const WRITE_CLIENTS: usize = 8;
const OPS_PER_CLIENT: u64 = 4;
const PROVIDERS: usize = 4;

struct Echo;
impl Service for Echo {
    fn handle(&self, _ctx: &mut ServerCtx, frame: &Frame) -> Frame {
        respond(frame, |x: u64| Ok(x))
    }
}

fn proc_status(field: &str) -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").expect("procfs");
    status
        .lines()
        .find_map(|l| l.strip_prefix(field))
        .and_then(|v| v.split_whitespace().next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("{field} line in /proc/self/status"))
}

/// Resident set in bytes.
fn rss_bytes() -> u64 {
    proc_status("VmRSS:") * 1024
}

fn thread_count() -> u64 {
    proc_status("Threads:")
}

/// Child entry: dial `BLOBSEER_PR6_ADDR` `BLOBSEER_PR6_CONNS` times,
/// hold every connection idle, report READY, and keep holding until
/// stdin reaches EOF.
fn swarm(addr: &str, want: usize) {
    let _ = fdlimit::raise_soft_to_hard();
    let mut held: Vec<TcpStream> = Vec::with_capacity(want);
    let deadline = Instant::now() + Duration::from_secs(120);
    while held.len() < want {
        match TcpStream::connect(addr) {
            Ok(s) => held.push(s),
            Err(e) => {
                assert!(
                    Instant::now() < deadline,
                    "swarm stalled at {} conns: {e}",
                    held.len()
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
    println!("READY {}", held.len());
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
    drop(held);
}

struct Cell {
    connections: usize,
    rss_per_conn: f64,
    threads_idle_load: u64,
    accept_first_byte_us: f64,
    active_calls_per_s: f64,
}

/// One sweep cell: spawn the swarm, wait for every connection to be
/// established server-side, measure, release.
fn run_cell(mode: ServerMode, conns: usize) -> Cell {
    let t = Arc::new(TcpTransport::with_options(TcpOptions {
        server_mode: mode,
        ..TcpOptions::default()
    }));
    let client = t.add_node();
    let server = t.add_node();
    t.bind(server, Arc::new(Echo));
    let addr = t.addr(server).expect("bound server");

    // Warm the client mux (reader thread and all) before the RSS and
    // thread-count baselines.
    let (resp, _) = t
        .call(client, server, 0, Frame::from_msg(1, &1u64))
        .unwrap();
    assert_eq!(parse_response::<u64>(&resp).unwrap(), 1);
    std::thread::sleep(Duration::from_millis(100));
    let rss_before = rss_bytes();

    let exe = std::env::current_exe().expect("own binary");
    let mut child = std::process::Command::new(exe)
        .env("BLOBSEER_PR6_ADDR", addr.to_string())
        .env("BLOBSEER_PR6_CONNS", conns.to_string())
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn swarm");
    let mut child_out = BufReader::new(child.stdout.take().expect("child stdout"));
    let mut line = String::new();
    loop {
        line.clear();
        let n = child_out.read_line(&mut line).expect("child stdout line");
        assert!(n > 0, "swarm exited before READY");
        if line.contains("READY") {
            break;
        }
    }
    let deadline = Instant::now() + Duration::from_secs(60);
    while t.active_connections() < conns {
        assert!(
            Instant::now() < deadline,
            "only {}/{conns} connections established",
            t.active_connections()
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    let rss_load = rss_bytes();
    let threads_idle_load = thread_count();

    // Accept-to-first-byte: a fresh connection landing on the loaded
    // server, timed from connect() to the first response byte.
    let mut probe_us = Vec::with_capacity(PROBE_CONNS);
    for i in 0..PROBE_CONNS {
        let start = Instant::now();
        let mut s = TcpStream::connect(addr).expect("probe connect");
        let req = blobseer_rpc::encode_wire_frame(1, 0, &Frame::from_msg(1, &(i as u64)))
            .expect("encode probe");
        s.write_all(&req).expect("probe write");
        let (corr, _, frame) = blobseer_rpc::read_wire_frame(&mut s).expect("probe response");
        probe_us.push(start.elapsed().as_secs_f64() * 1e6);
        assert_eq!(corr, 1);
        assert_eq!(parse_response::<u64>(&frame).unwrap(), i as u64);
    }
    probe_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let accept_first_byte_us = probe_us[probe_us.len() / 2];

    // Active mix: multiplexed in-process clients echoing through the
    // same server while every idle connection stays parked.
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..ACTIVE_CLIENTS {
            let t = Arc::clone(&t);
            scope.spawn(move || {
                for i in 0..ACTIVE_CALLS {
                    let (resp, _) = t
                        .call(client, server, 0, Frame::from_msg(1, &i))
                        .expect("active echo under idle load");
                    assert_eq!(parse_response::<u64>(&resp).unwrap(), i);
                }
            });
        }
    });
    let active_calls_per_s =
        (ACTIVE_CLIENTS as u64 * ACTIVE_CALLS) as f64 / start.elapsed().as_secs_f64();

    // Release the swarm before the transport: the held connections
    // drain as EOFs, not as teardown races.
    drop(child.stdin.take());
    let status = child.wait().expect("reap swarm");
    assert!(status.success(), "swarm child failed: {status}");

    Cell {
        connections: conns,
        rss_per_conn: rss_load.saturating_sub(rss_before) as f64 / conns as f64,
        threads_idle_load,
        accept_first_byte_us,
        active_calls_per_s,
    }
}

fn run_sweep(mode: ServerMode, cells: &[usize], cap: usize) -> Vec<Cell> {
    cells
        .iter()
        .filter(|&&c| c <= cap)
        .map(|&c| {
            let cell = run_cell(mode, c);
            println!(
                "  {mode:?} @ {c}: {:.0} B/conn, {} threads, first-byte {:.0}us, {:.0} calls/s",
                cell.rss_per_conn,
                cell.threads_idle_load,
                cell.accept_first_byte_us,
                cell.active_calls_per_s
            );
            cell
        })
        .collect()
}

struct WriteParity {
    mib_s: f64,
    copied_per_op: f64,
    ser_per_op: f64,
    va_per_op: f64,
}

/// The distributed write path over the reactor transport: same copy and
/// lock promises PR 1–5 made, now under the readiness loop.
fn run_write_parity() -> WriteParity {
    let d = Arc::new(Deployment::build(DeploymentConfig::functional_tcp(
        PROVIDERS,
    )));
    let setup = d.client();
    let mut ctx = blobseer_rpc::Ctx::start();
    let region = SEG * OPS_PER_CLIENT;
    let total = (region * WRITE_CLIENTS as u64).next_power_of_two();
    let blob = setup.alloc(&mut ctx, total, PAGE).unwrap().blob;
    let clients: Vec<_> = (0..WRITE_CLIENTS)
        .map(|_| {
            let c = d.client();
            c.info(&mut ctx, blob).unwrap();
            c
        })
        .collect();

    let locks = lockmeter::snapshot();
    let m = measure_region(|| {
        std::thread::scope(|scope| {
            for (t, c) in clients.into_iter().enumerate() {
                scope.spawn(move || {
                    let mut ctx = blobseer_rpc::Ctx::start();
                    let data = payload(SEG, t as u64);
                    let base = region * t as u64;
                    for i in 0..OPS_PER_CLIENT {
                        c.write(&mut ctx, blob, base + i * SEG, &data).unwrap();
                    }
                });
            }
        });
    });
    let d_locks = locks.since();
    let ops = (WRITE_CLIENTS as u64 * OPS_PER_CLIENT) as f64;
    WriteParity {
        mib_s: ops * SEG as f64 / MB as f64 / m.secs,
        copied_per_op: m.bytes_copied as f64 / ops,
        ser_per_op: d_locks.serializing as f64 / ops,
        va_per_op: d_locks.version_assign as f64 / ops,
    }
}

fn json_cells(cells: &[Cell]) -> String {
    let entries: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "{{\"connections\": {}, \"rss_bytes_per_conn\": {:.0}, \"threads\": {}, \
                 \"accept_to_first_byte_us\": {:.1}, \"active_calls_per_s\": {:.0}}}",
                c.connections,
                c.rss_per_conn,
                c.threads_idle_load,
                c.accept_first_byte_us,
                c.active_calls_per_s
            )
        })
        .collect();
    format!("[{}]", entries.join(", "))
}

fn main() {
    // Swarm child?
    if let Ok(addr) = std::env::var("BLOBSEER_PR6_ADDR") {
        let want: usize = std::env::var("BLOBSEER_PR6_CONNS")
            .expect("conn count")
            .parse()
            .expect("numeric conn count");
        swarm(&addr, want);
        return;
    }

    let hard = fdlimit::raise_soft_to_hard().unwrap_or(1024);
    // The parent holds the server side of every swarm connection; leave
    // headroom for probes, the mux, and the harness itself.
    let cap = (hard as usize).saturating_sub(2_000);
    assert!(
        cap >= THREAD_CELLS[0],
        "fd hard limit {hard} too small for the connection sweep"
    );
    println!("pr6 reactor benchmark: connection sweep (fd budget {cap}) + write parity");
    if cap < *REACTOR_CELLS.last().unwrap() {
        println!("  NOTE: fd limit caps the sweep below the full 10k cell");
    }
    println!(
        "  NOTE: thread-per-connection sweeps only to {} by design (one OS thread per \
         connection past that is the regime under indictment)",
        THREAD_CELLS.last().unwrap()
    );

    println!("-- regime: reactor (event loops + dispatch pool)");
    let reactor = run_sweep(ServerMode::Reactor, REACTOR_CELLS, cap);
    println!("-- regime: thread-per-connection (ablation)");
    let thread = run_sweep(ServerMode::ThreadPerConn, THREAD_CELLS, cap);

    // The acceptance claims, asserted at the largest common cell.
    let r = reactor
        .iter()
        .find(|c| c.connections == COMMON_CELL)
        .expect("reactor common cell");
    let t = thread
        .iter()
        .find(|c| c.connections == COMMON_CELL)
        .expect("thread common cell");
    assert!(
        r.rss_per_conn < t.rss_per_conn,
        "reactor must hold a connection cheaper than a thread: {:.0} vs {:.0} B/conn",
        r.rss_per_conn,
        t.rss_per_conn
    );
    assert!(
        t.threads_idle_load as usize >= COMMON_CELL,
        "ablation sanity: a thread per connection ({} threads at {COMMON_CELL} conns)",
        t.threads_idle_load
    );
    let fixed = reactor.iter().map(|c| c.threads_idle_load).max().unwrap();
    assert!(
        fixed < 64,
        "reactor thread count must not scale with connections (saw {fixed})"
    );
    let mem_ratio = r.rss_per_conn / t.rss_per_conn.max(f64::MIN_POSITIVE);

    let mut table = Table::new(&[
        "regime",
        "conns",
        "B/conn",
        "threads",
        "first-byte us",
        "calls/s",
    ]);
    for (name, cells) in [("reactor", &reactor), ("thread", &thread)] {
        for c in cells {
            table.row(&[
                name.to_string(),
                c.connections.to_string(),
                format!("{:.0}", c.rss_per_conn),
                c.threads_idle_load.to_string(),
                format!("{:.0}", c.accept_first_byte_us),
                format!("{:.0}", c.active_calls_per_s),
            ]);
        }
    }
    blobseer_bench::emit(
        "pr6_sweep",
        "PR6 connection sweep, reactor vs thread-per-connection",
        &table,
    );

    println!("-- write parity over the reactor transport");
    let w = run_write_parity();
    assert!(
        (w.copied_per_op - SEG as f64).abs() < 1.0,
        "write parity: copies/op {} != sanctioned {SEG}",
        w.copied_per_op
    );
    assert!(
        w.ser_per_op < 0.01,
        "write parity: {} serializing locks/op on the lock-free plane",
        w.ser_per_op
    );
    // At most one sanctioned acquisition per write: the PR 10 grant
    // protocol may batch concurrent assignments below 1, never above.
    assert!(
        w.va_per_op > 0.0 && w.va_per_op <= 1.01,
        "write parity: {} VersionAssign locks/op (sanctioned: <= 1)",
        w.va_per_op
    );
    println!(
        "write parity: {:.1} MiB/s, {:.0} copied/op, {:.2} ser/op, {:.2} va/op",
        w.mib_s, w.copied_per_op, w.ser_per_op, w.va_per_op
    );

    let json = format!(
        "{{\n  \"bench\": \"pr6_reactor\",\n  \"transport\": \"tcp-loopback\",\n  \
         \"common_cell\": {COMMON_CELL},\n  \"sweep\": {{\"reactor\": {}, \"thread_per_conn\": {}}},\n  \
         \"reactor_over_thread_memory_ratio\": {mem_ratio:.3},\n  \
         \"write_parity\": {{\"segment_bytes\": {SEG}, \"clients\": {WRITE_CLIENTS}, \
         \"mib_s\": {:.2}, \"bytes_copied_per_op\": {:.0}, \"serializing_locks_per_op\": {:.2}, \
         \"version_assign_locks_per_op\": {:.2}}}\n}}\n",
        json_cells(&reactor),
        json_cells(&thread),
        w.mib_s,
        w.copied_per_op,
        w.ser_per_op,
        w.va_per_op,
    );
    std::fs::write("BENCH_PR6.json", &json).expect("write BENCH_PR6.json");
    println!("(json written to BENCH_PR6.json)");
}
