//! # blobseer-bench
//!
//! Benchmark harnesses regenerating every figure of the CLUSTER'08
//! evaluation (§V), plus ablations for the design choices DESIGN.md calls
//! out. Each figure has a dedicated binary that prints the paper-style
//! series and writes a CSV under `results/`:
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig3a` | Fig. 3(a): metadata read overhead vs segment size, {10,20,40} providers |
//! | `fig3b` | Fig. 3(b): metadata write overhead vs segment size, {10,20,40} providers |
//! | `fig3c` | Fig. 3(c): per-client bandwidth vs number of concurrent clients |
//! | `ablate_agg` | RPC aggregation on/off (explains Fig. 3(b)) |
//! | `ablate_lock` | lock-free vs global-lock vs per-page-lock under mixed load |
//! | `ablate_page` | page-size sweep (striping-vs-overhead tradeoff, §V.A) |
//! | `sky_e2e` | the supernova pipeline on the simulated cluster |
//!
//! PR-acceptance sweeps (`pr1_zero_copy`, `pr2_lockfree`, `pr3_tcp`,
//! `pr4_backend`, `pr5_durability`, `pr6_reactor`, `pr7_restart`,
//! `pr9_workload` — the [`workload`]-driven open-loop overload storm
//! and hot-page fan-out ablation, with p50/p99/p999 latency columns)
//! emit `BENCH_PR*.json` at the repo root; the
//! [`gate`] module (driven by the `bench_gate` binary) compares fresh
//! smoke runs against those committed baselines and hard-fails CI when
//! an invariant column — bytes-copied-per-op or locks-per-op —
//! regresses. Throughput stays advisory. [`json`] is the dependency-free
//! JSON reader behind it.
//!
//! Criterion micro-benches live in `benches/micro.rs`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod gate;
pub mod harness;
pub mod json;
pub mod workload;

pub use harness::*;
