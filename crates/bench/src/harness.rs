//! Shared harness utilities for the figure-regeneration binaries.

use blobseer_core::{Deployment, DeploymentConfig};
use blobseer_proto::Segment;
use blobseer_rpc::Ctx;
use blobseer_util::copymeter;
use blobseer_util::stats::Table;
use std::path::Path;
use std::time::Instant;

/// KiB.
pub const KB: u64 = 1024;
/// MiB.
pub const MB: u64 = 1024 * 1024;

/// The paper's blob configuration: 1 TB logical blob, 64 KB pages.
pub const PAPER_BLOB: u64 = 1 << 40;
/// The paper's page size.
pub const PAPER_PAGE: u64 = 64 * KB;

/// The paper's Fig. 3(a)/(b) segment sweep: 64 KB → 16 MB, ×4 steps.
pub fn fig3ab_segments() -> Vec<u64> {
    vec![64 * KB, 256 * KB, 1024 * KB, 4096 * KB, 16384 * KB]
}

/// The paper's provider counts for Fig. 3(a)/(b).
pub fn fig3ab_providers() -> Vec<usize> {
    vec![10, 20, 40]
}

/// Build the paper's deployment with `n` storage nodes.
pub fn paper_deployment(n: usize) -> Deployment {
    Deployment::build(DeploymentConfig::grid5000(n))
}

/// Write a table to stdout and to `results/<name>.csv`.
pub fn emit(name: &str, title: &str, table: &Table) {
    println!("\n== {title} ==\n");
    println!("{}", table.render());
    let dir = Path::new("results");
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join(format!("{name}.csv"));
    match std::fs::write(&path, table.to_csv()) {
        Ok(()) => println!("(csv written to {})", path.display()),
        Err(e) => println!("(csv write failed: {e})"),
    }
}

/// Format virtual nanoseconds as seconds with 4 decimals (the paper's
/// figures are in seconds).
pub fn secs(ns: u64) -> String {
    format!("{:.4}", ns as f64 / 1e9)
}

/// Disjoint segment walker: iteration `i` of a client gets segment
/// `[(base + i*size) % region, size)` aligned to `size` — "various
/// disjoint segments within a 1 GB interval" (§V.D).
pub fn disjoint_segment(region_off: u64, region_len: u64, seg_size: u64, i: u64) -> Segment {
    let slots = region_len / seg_size;
    let slot = i % slots;
    Segment::new(region_off + slot * seg_size, seg_size)
}

/// Deterministic payload for write workloads.
pub fn payload(size: u64, salt: u64) -> Vec<u8> {
    (0..size)
        .map(|i| ((i ^ salt).wrapping_mul(31) % 251) as u8)
        .collect()
}

/// Wall-clock + copy-meter measurement of one benchmark region.
#[derive(Clone, Copy, Debug)]
pub struct RegionMeasure {
    /// Wall-clock duration of the region, seconds.
    pub secs: f64,
    /// Payload bytes copied inside the region (process wide).
    pub bytes_copied: u64,
    /// Copy events inside the region (process wide).
    pub copy_events: u64,
}

/// Run `f` and measure wall-clock time plus payload-copy counters
/// (process-global: includes copies made by threads `f` spawns).
pub fn measure_region(f: impl FnOnce()) -> RegionMeasure {
    let copies = copymeter::snapshot();
    let start = Instant::now();
    f();
    RegionMeasure {
        secs: start.elapsed().as_secs_f64(),
        bytes_copied: copies.bytes_since(),
        copy_events: copies.events_since(),
    }
}

/// Pre-populate `region_len` bytes at `region_off` so reads have data,
/// using whole-region writes of `chunk` bytes.
pub fn prefill(
    d: &Deployment,
    blob: blobseer_proto::BlobId,
    region_off: u64,
    region_len: u64,
    chunk: u64,
) {
    let client = d.client();
    let mut ctx = Ctx::start();
    let data = payload(chunk, 7);
    let mut off = region_off;
    while off < region_off + region_len {
        client
            .write(&mut ctx, blob, off, &data)
            .expect("prefill write");
        off += chunk;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_sweep_matches_paper() {
        let s = fig3ab_segments();
        assert_eq!(s.first(), Some(&(64 * KB)));
        assert_eq!(s.last(), Some(&(16384 * KB)));
        for w in s.windows(2) {
            assert_eq!(w[1] / w[0], 4, "x4 steps like the paper's axis");
        }
    }

    #[test]
    fn disjoint_segments_do_not_overlap_within_region() {
        let region = 64 * MB;
        let size = 4 * MB;
        let mut seen = std::collections::HashSet::new();
        for i in 0..(region / size) {
            let s = disjoint_segment(0, region, size, i);
            assert!(s.end() <= region);
            assert!(seen.insert(s.offset), "offset reused too early");
        }
    }

    #[test]
    fn secs_format() {
        assert_eq!(secs(1_500_000_000), "1.5000");
        assert_eq!(secs(12_300_000), "0.0123");
    }
}
