//! A minimal JSON value and recursive-descent parser — just enough to
//! read the `BENCH_*.json` files the bench binaries emit (the offline
//! build has no serde). Objects preserve key order; numbers are `f64`;
//! string escapes cover the JSON basics (the bench emitters never
//! produce exotic ones).

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage is an error).
    pub fn parse(src: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The object fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// A parse failure with its byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.pos, self.msg)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { pos: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            b'-' | b'0'..=b'9' => self.number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(fields)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or '}'"));
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or ']'"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.bump().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => return Ok(out),
                b'\\' => match self.bump().ok_or_else(|| self.err("unterminated escape"))? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        if self.pos + 4 > self.bytes.len() {
                            return Err(self.err("truncated unicode escape"));
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                            .map_err(|_| self.err("bad unicode escape"))?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| self.err("bad unicode escape"))?;
                        self.pos += 4;
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(self.err("unknown escape")),
                },
                b => out.push(b as char),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bench_shaped_document() {
        let src = r#"{
  "bench": "pr4_backend",
  "page_size": 262144,
  "write": {"memory": [{"clients": 1, "mib_s": 1122.96, "bytes_copied_per_op": 1048576}]},
  "ok": true, "missing": null, "neg": -1.5e2
}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.get("bench").unwrap().as_str(), Some("pr4_backend"));
        assert_eq!(v.get("page_size").unwrap().as_f64(), Some(262144.0));
        let series = v.get("write").unwrap().get("memory").unwrap();
        let first = &series.as_arr().unwrap()[0];
        assert_eq!(
            first.get("bytes_copied_per_op").unwrap().as_f64(),
            Some(1048576.0)
        );
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("missing"), Some(&Json::Null));
        assert_eq!(v.get("neg").unwrap().as_f64(), Some(-150.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\": 1} x").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn parses_committed_baselines() {
        // The real committed baselines must parse (this is what the CI
        // gate reads).
        for name in [
            "BENCH_PR1.json",
            "BENCH_PR2.json",
            "BENCH_PR3.json",
            "BENCH_PR9.json",
        ] {
            let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(name);
            if let Ok(src) = std::fs::read_to_string(&path) {
                let v = Json::parse(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
                assert!(v.get("bench").is_some(), "{name} has a bench field");
            }
        }
    }

    #[test]
    fn string_escapes() {
        let v = Json::parse(r#""a\n\"b\"A""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\"b\"A"));
    }
}
