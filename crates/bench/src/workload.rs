//! Skewed **open-loop** workload generation with first-class latency
//! percentiles — the traffic shapes of §V run the way production
//! clients actually arrive.
//!
//! Three pieces, composable and all deterministic from a seed:
//!
//! * [`Zipf`] — Zipfian popularity over `n` items (blob pages, blobs,
//!   keys). At `s = 1.0` the head item draws ~`1/H(n)` of all traffic,
//!   which is what makes *hot-page* fan-out measurable at all.
//! * [`OpenLoop`] — an arrival schedule at a fixed offered rate.
//!   Unlike a closed loop (next request waits for the previous
//!   response), the schedule does not slow down when the server does;
//!   latency is measured **from the scheduled send time**, so a late
//!   generator charges the lateness to the server (coordinated-
//!   omission-corrected percentiles).
//! * [`Mix`] — the read-mostly operation mix, one Bernoulli draw per
//!   arrival.
//!
//! [`LatencyRecorder`] folds per-request latencies into the
//! p50/p99/p999 columns the `BENCH_PR9.json` schema exposes next to
//! copies/op and locks/op (the percentile columns are advisory in the
//! gate — wall-clock drifts with the host; the copy/lock columns stay
//! hard).

use blobseer_util::rng::splitmix64;
use blobseer_util::stats::Samples;
use std::time::Duration;

/// Zipfian sampler over ranks `0..n` (rank 0 hottest): rank `k` is
/// drawn with probability proportional to `1 / (k+1)^s`. Sampling is
/// one uniform draw + one binary search over the precomputed CDF.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
    state: u64,
}

impl Zipf {
    /// Build a sampler over `n ≥ 1` ranks with exponent `s ≥ 0`
    /// (`s = 0` is uniform; the paper-style skew is `s = 1.0`).
    pub fn new(n: usize, s: f64, seed: u64) -> Self {
        assert!(n >= 1, "zipf needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        for c in &mut cdf {
            *c /= acc;
        }
        Zipf {
            cdf,
            state: seed ^ 0x51ab_7be1_c0de_f00d,
        }
    }

    /// Draw one rank.
    pub fn sample(&mut self) -> usize {
        let u = uniform(&mut self.state);
        // partition_point: first rank whose CDF covers the draw.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// The probability mass of rank `k` (for reporting expected skew).
    pub fn mass(&self, k: usize) -> f64 {
        let lo = if k == 0 { 0.0 } else { self.cdf[k - 1] };
        self.cdf[k] - lo
    }
}

/// An open-loop arrival schedule: request `i` is *due* at
/// `i / rate_per_s` after the storm starts, whether or not earlier
/// requests have completed.
#[derive(Clone, Copy, Debug)]
pub struct OpenLoop {
    /// Offered load, requests per second.
    pub rate_per_s: f64,
}

impl OpenLoop {
    /// The scheduled send time of request `i`.
    pub fn due(&self, i: usize) -> Duration {
        Duration::from_secs_f64(i as f64 / self.rate_per_s)
    }

    /// The latency to record for request `i`: completion time measured
    /// on the storm clock, minus the scheduled send time. A generator
    /// running late does **not** forgive the server the wait
    /// (coordinated-omission correction).
    pub fn latency(&self, i: usize, completed_at: Duration) -> Duration {
        completed_at.saturating_sub(self.due(i))
    }
}

/// A read-mostly operation mix: one Bernoulli draw per arrival.
#[derive(Clone, Debug)]
pub struct Mix {
    read_fraction: f64,
    state: u64,
}

impl Mix {
    /// `read_fraction` in `[0, 1]`; the §V-style read-mostly mix is
    /// 0.9–0.95.
    pub fn new(read_fraction: f64, seed: u64) -> Self {
        Mix {
            read_fraction: read_fraction.clamp(0.0, 1.0),
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// True when arrival `i` should be a read.
    pub fn is_read(&mut self) -> bool {
        uniform(&mut self.state) < self.read_fraction
    }
}

/// Latency percentile summary, in milliseconds — the `*_p50_ms` /
/// `*_p99_ms` / `*_p999_ms` BENCH columns.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencySummary {
    /// Samples folded in.
    pub count: usize,
    /// Median, milliseconds.
    pub p50_ms: f64,
    /// 99th percentile, milliseconds.
    pub p99_ms: f64,
    /// 99.9th percentile, milliseconds.
    pub p999_ms: f64,
}

/// Accumulates per-request latencies and reports percentiles.
#[derive(Clone, Debug, Default)]
pub struct LatencyRecorder {
    samples: Samples,
}

impl LatencyRecorder {
    /// Empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one request latency.
    pub fn record(&mut self, latency: Duration) {
        self.samples.push(latency.as_secs_f64() * 1e3);
    }

    /// Fold another recorder in (merge per-worker recorders).
    pub fn merge(&mut self, other: &LatencyRecorder) {
        // Samples keeps raw data, so merging is re-pushing.
        for x in other.samples.iter() {
            self.samples.push(x);
        }
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean latency in milliseconds; zero when empty (capacity
    /// estimation for sizing an overload storm, not a headline stat).
    pub fn mean_ms(&self) -> f64 {
        self.samples.mean().unwrap_or(0.0)
    }

    /// The p50/p99/p999 summary; zeros when empty.
    pub fn summary(&mut self) -> LatencySummary {
        if self.samples.is_empty() {
            return LatencySummary::default();
        }
        LatencySummary {
            count: self.samples.len(),
            // lint: allow(panic-on-serving-path) — non-empty by the guard above
            p50_ms: self.samples.percentile(50.0).expect("non-empty"),
            p99_ms: self.samples.percentile(99.0).expect("non-empty"),
            p999_ms: self.samples.percentile(99.9).expect("non-empty"),
        }
    }
}

/// One uniform draw in `[0, 1)` from a splitmix64 stream.
fn uniform(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_head_dominates_at_s1() {
        let mut z = Zipf::new(64, 1.0, 42);
        let mut counts = vec![0u64; 64];
        for _ in 0..20_000 {
            counts[z.sample()] += 1;
        }
        // Rank 0 carries ~21% of the mass at n=64, s=1; the tail rank
        // carries ~0.3%. A loose factor-10 check is noise-proof.
        assert!(counts[0] > 10 * counts[63].max(1));
        // And the empirical head frequency tracks the analytic mass.
        let head = counts[0] as f64 / 20_000.0;
        assert!((head - z.mass(0)).abs() < 0.05, "head {head}");
    }

    #[test]
    fn zipf_s0_is_uniform() {
        let mut z = Zipf::new(16, 0.0, 7);
        let mut counts = vec![0u64; 16];
        for _ in 0..16_000 {
            counts[z.sample()] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 1000.0).abs() < 250.0, "uniform-ish: {counts:?}");
        }
    }

    #[test]
    fn zipf_is_deterministic_per_seed() {
        let mut a = Zipf::new(32, 1.0, 9);
        let mut b = Zipf::new(32, 1.0, 9);
        let sa: Vec<usize> = (0..100).map(|_| a.sample()).collect();
        let sb: Vec<usize> = (0..100).map(|_| b.sample()).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn open_loop_charges_lateness_to_the_server() {
        let ol = OpenLoop { rate_per_s: 1000.0 };
        assert_eq!(ol.due(10), Duration::from_millis(10));
        // Request 10 due at 10 ms, completed at 17 ms on the storm
        // clock → 7 ms latency even if it was *sent* late at 16 ms.
        assert_eq!(
            ol.latency(10, Duration::from_millis(17)),
            Duration::from_millis(7)
        );
        // Completed before due (never with a correct driver): clamps.
        assert_eq!(ol.latency(10, Duration::from_millis(3)), Duration::ZERO);
    }

    #[test]
    fn mix_tracks_read_fraction() {
        let mut m = Mix::new(0.9, 1234);
        let reads = (0..10_000).filter(|_| m.is_read()).count();
        assert!((8_700..=9_300).contains(&reads), "read-mostly: {reads}");
    }

    #[test]
    fn recorder_percentiles_order() {
        let mut r = LatencyRecorder::new();
        for i in 1..=1000u64 {
            r.record(Duration::from_micros(i * 100));
        }
        let s = r.summary();
        assert_eq!(s.count, 1000);
        assert!(s.p50_ms <= s.p99_ms && s.p99_ms <= s.p999_ms);
        assert!((s.p50_ms - 50.0).abs() < 2.0, "p50 {}", s.p50_ms);
        assert!(s.p999_ms > 99.0, "p999 {}", s.p999_ms);
    }
}
