//! The bench-regression gate: compare a fresh `BENCH_*.json` against
//! the committed baseline and fail on regressions of the **invariant
//! columns** — `bytes_copied_per_op` and every `*locks_per_op` — which
//! the data-path and lock-discipline work made deterministic promises
//! about. Throughput columns (`mib_s`) are advisory: CI machines are
//! noisy, copies and locks are not.
//!
//! Matching is structural: the two documents are walked in parallel;
//! objects pair by key, arrays of `{"clients": N, ...}` samples pair by
//! client count (so adding a sweep point never misaligns the
//! comparison), other arrays pair by index. A fresh value may be
//! *better* (lower) than baseline without limit; it may exceed baseline
//! by at most `rel_tolerance` relative plus `abs_slack` absolute.

use crate::json::Json;

/// Tolerances for invariant comparisons.
#[derive(Clone, Copy, Debug)]
pub struct Tolerance {
    /// Allowed relative excess over baseline (0.10 = +10%).
    pub rel: f64,
    /// Allowed absolute excess (covers zero baselines: a column whose
    /// baseline is exactly 0 — e.g. serializing locks per op on the
    /// lock-free plane — must stay ≈ 0).
    pub abs: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Self {
            rel: 0.10,
            abs: 0.5,
        }
    }
}

/// One invariant-column regression.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// Dotted path of the offending value.
    pub path: String,
    /// Committed baseline value.
    pub baseline: f64,
    /// Freshly measured value.
    pub fresh: f64,
}

/// One advisory throughput observation (fresh vs baseline `mib_s`).
#[derive(Clone, Debug)]
pub struct Advisory {
    /// Dotted path of the value.
    pub path: String,
    /// Committed baseline value.
    pub baseline: f64,
    /// Freshly measured value.
    pub fresh: f64,
}

/// Comparison report for one bench file.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Hard failures (invariant columns exceeded).
    pub violations: Vec<Violation>,
    /// Baseline paths holding invariant columns with **no counterpart**
    /// in the fresh run (dropped series, renamed key, missing sweep
    /// point). Hard failures too: a bench that stopped emitting the
    /// regressing column is not a passing bench.
    pub missing: Vec<String>,
    /// Advisory throughput deltas.
    pub advisories: Vec<Advisory>,
    /// Invariant values compared (sanity: 0 means the walk found none).
    pub invariants_checked: usize,
}

/// Is `key` an invariant column the gate hard-fails on?
pub fn is_invariant_key(key: &str) -> bool {
    key == "bytes_copied_per_op" || key.ends_with("locks_per_op")
}

/// Is `key` an advisory column? Throughput, plus the PR 9 latency
/// percentiles (`*_p50_ms` / `*_p99_ms` / `*_p999_ms`): wall-clock
/// measures drift with the host, so they are reported, not gated.
pub fn is_advisory_key(key: &str) -> bool {
    key == "mib_s"
        || key.ends_with("_mib_s")
        || key.ends_with("_p50_ms")
        || key.ends_with("_p99_ms")
        || key.ends_with("_p999_ms")
}

/// Compare `fresh` against `baseline`, collecting violations and
/// advisories.
pub fn compare(baseline: &Json, fresh: &Json, tol: Tolerance) -> Report {
    let mut report = Report::default();
    walk(baseline, fresh, String::new(), tol, &mut report);
    report
}

/// Record every invariant column under a baseline subtree the fresh
/// run no longer has — dropping the measurement must not pass the gate.
fn note_missing(baseline: &Json, path: &str, report: &mut Report) {
    match baseline {
        Json::Obj(fields) => {
            for (key, val) in fields {
                let sub = format!("{path}.{key}");
                if is_invariant_key(key) && val.as_f64().is_some() {
                    report.missing.push(sub);
                } else {
                    note_missing(val, &sub, report);
                }
            }
        }
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                note_missing(item, &format!("{path}[{i}]"), report);
            }
        }
        _ => {}
    }
}

fn walk(baseline: &Json, fresh: &Json, path: String, tol: Tolerance, report: &mut Report) {
    match (baseline, fresh) {
        (Json::Obj(b_fields), Json::Obj(_)) => {
            for (key, b_val) in b_fields {
                let Some(f_val) = fresh.get(key) else {
                    // The fresh run stopped emitting this column/series:
                    // any invariant underneath it is a hard failure, not
                    // a silent skip.
                    let sub = if path.is_empty() {
                        key.clone()
                    } else {
                        format!("{path}.{key}")
                    };
                    if is_invariant_key(key) && b_val.as_f64().is_some() {
                        report.missing.push(sub);
                    } else {
                        note_missing(b_val, &sub, report);
                    }
                    continue;
                };
                let sub = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}.{key}")
                };
                match (b_val.as_f64(), f_val.as_f64()) {
                    (Some(b), Some(f)) if is_invariant_key(key) => {
                        report.invariants_checked += 1;
                        if f > b * (1.0 + tol.rel) + tol.abs {
                            report.violations.push(Violation {
                                path: sub,
                                baseline: b,
                                fresh: f,
                            });
                        }
                    }
                    (Some(_), None) if is_invariant_key(key) => {
                        // The column exists but is no longer a number —
                        // the measurement is gone, not merely skipped.
                        report.missing.push(sub);
                    }
                    (Some(b), Some(f)) if is_advisory_key(key) => {
                        report.advisories.push(Advisory {
                            path: sub,
                            baseline: b,
                            fresh: f,
                        });
                    }
                    _ => walk(b_val, f_val, sub, tol, report),
                }
            }
        }
        (Json::Arr(b_items), Json::Arr(f_items)) => {
            for (i, b_item) in b_items.iter().enumerate() {
                // Pair sweep samples by client count when both sides
                // carry one; fall back to positional pairing.
                let f_item = match b_item.get("clients").and_then(Json::as_f64) {
                    Some(n) => f_items
                        .iter()
                        .find(|f| f.get("clients").and_then(Json::as_f64) == Some(n)),
                    None => f_items.get(i),
                };
                let label = match b_item.get("clients").and_then(Json::as_f64) {
                    Some(n) => format!("{path}[clients={n}]"),
                    None => format!("{path}[{i}]"),
                };
                let Some(f_item) = f_item else {
                    // A sweep point disappeared (e.g. the 64-client cell
                    // where the cliff shows): its invariants hard-fail.
                    note_missing(b_item, &label, report);
                    continue;
                };
                walk(b_item, f_item, label, tol, report);
            }
        }
        // A baseline container whose fresh counterpart changed type
        // (object -> null/string/…): every invariant underneath lost its
        // measurement — hard failures, not silent skips.
        (Json::Obj(_) | Json::Arr(_), _) => note_missing(baseline, &path, report),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(copied: u64, locks: f64, mib: f64) -> Json {
        Json::parse(&format!(
            r#"{{"bench": "t", "write": {{"gather": [
                 {{"clients": 1, "mib_s": {mib}, "bytes_copied_per_op": {copied},
                   "serializing_locks_per_op": {locks}}},
                 {{"clients": 64, "mib_s": {mib}, "bytes_copied_per_op": {copied},
                   "serializing_locks_per_op": {locks}}}]}}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn identical_documents_pass() {
        let b = doc(1048576, 0.0, 1000.0);
        let r = compare(&b, &b, Tolerance::default());
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.invariants_checked, 4);
        assert_eq!(r.advisories.len(), 2);
    }

    #[test]
    fn copies_regression_fails() {
        let b = doc(1048576, 0.0, 1000.0);
        let f = doc(2097152, 0.0, 1000.0); // the flatten regime: 2× copies
        let r = compare(&b, &f, Tolerance::default());
        assert_eq!(r.violations.len(), 2);
        assert!(r.violations[0].path.contains("bytes_copied_per_op"));
        assert_eq!(r.violations[0].baseline, 1048576.0);
        assert_eq!(r.violations[0].fresh, 2097152.0);
    }

    #[test]
    fn lock_regression_fails_even_from_zero_baseline() {
        let b = doc(1048576, 0.0, 1000.0);
        let f = doc(1048576, 21.0, 1000.0); // the serialized regime
        let r = compare(&b, &f, Tolerance::default());
        assert_eq!(r.violations.len(), 2);
        assert!(r.violations[0].path.ends_with("serializing_locks_per_op"));
    }

    #[test]
    fn throughput_drop_is_advisory_only() {
        let b = doc(1048576, 0.0, 1000.0);
        let f = doc(1048576, 0.0, 10.0); // 100× slower: noisy CI, not a failure
        let r = compare(&b, &f, Tolerance::default());
        assert!(r.violations.is_empty());
        assert!(r.advisories.iter().all(|a| a.fresh < a.baseline));
    }

    #[test]
    fn small_jitter_within_tolerance_passes() {
        let b = doc(1048576, 0.0, 1000.0);
        let f = doc(1048580, 0.0, 1000.0); // +4 bytes: metadata jitter
        let r = compare(&b, &f, Tolerance::default());
        assert!(r.violations.is_empty());
    }

    #[test]
    fn samples_pair_by_client_count_not_position() {
        let b = Json::parse(r#"{"s": [{"clients": 64, "bytes_copied_per_op": 100}]}"#).unwrap();
        let f = Json::parse(
            r#"{"s": [{"clients": 1, "bytes_copied_per_op": 900},
                      {"clients": 64, "bytes_copied_per_op": 100}]}"#,
        )
        .unwrap();
        let r = compare(&b, &f, Tolerance::default());
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.invariants_checked, 1);
    }

    #[test]
    fn dropped_series_is_a_hard_failure() {
        // A fresh run that stopped emitting the mmap series (where the
        // regression would show) must not pass by omission.
        let b = Json::parse(
            r#"{"read": {"mmap": [{"clients": 1, "bytes_copied_per_op": 100}]},
                "other": {"bytes_copied_per_op": 5}}"#,
        )
        .unwrap();
        let f = Json::parse(r#"{"other": {"bytes_copied_per_op": 5}}"#).unwrap();
        let r = compare(&b, &f, Tolerance::default());
        assert!(r.violations.is_empty());
        assert_eq!(r.missing.len(), 1, "{:?}", r.missing);
        assert!(r.missing[0].contains("read.mmap"));
    }

    #[test]
    fn dropped_sweep_point_is_a_hard_failure() {
        let b = Json::parse(
            r#"{"s": [{"clients": 1, "bytes_copied_per_op": 100},
                      {"clients": 64, "bytes_copied_per_op": 100}]}"#,
        )
        .unwrap();
        let f = Json::parse(r#"{"s": [{"clients": 1, "bytes_copied_per_op": 100}]}"#).unwrap();
        let r = compare(&b, &f, Tolerance::default());
        assert_eq!(r.missing.len(), 1);
        assert!(r.missing[0].contains("clients=64"));
    }

    #[test]
    fn dropped_single_invariant_key_is_a_hard_failure() {
        let b = Json::parse(r#"{"a": {"bytes_copied_per_op": 7, "mib_s": 1.0}}"#).unwrap();
        let f = Json::parse(r#"{"a": {"mib_s": 1.0}}"#).unwrap();
        let r = compare(&b, &f, Tolerance::default());
        assert_eq!(r.missing, vec!["a.bytes_copied_per_op".to_string()]);
    }

    #[test]
    fn type_changed_subtree_is_a_hard_failure() {
        // A fresh emitter that nulls out (or restructures) a series must
        // not pass: every invariant under the baseline subtree counts as
        // missing.
        let b = Json::parse(
            r#"{"write": {"mmap": [{"clients": 1, "bytes_copied_per_op": 100}]},
                "other": {"bytes_copied_per_op": 5}}"#,
        )
        .unwrap();
        let f = Json::parse(r#"{"write": null, "other": {"bytes_copied_per_op": 5}}"#).unwrap();
        let r = compare(&b, &f, Tolerance::default());
        assert_eq!(r.missing.len(), 1, "{:?}", r.missing);
        assert!(r.missing[0].contains("write.mmap"));
    }

    #[test]
    fn non_numeric_invariant_value_is_a_hard_failure() {
        let b = Json::parse(r#"{"a": {"bytes_copied_per_op": 7}}"#).unwrap();
        let f = Json::parse(r#"{"a": {"bytes_copied_per_op": "oops"}}"#).unwrap();
        let r = compare(&b, &f, Tolerance::default());
        assert_eq!(r.missing, vec!["a.bytes_copied_per_op".to_string()]);
    }

    #[test]
    fn better_than_baseline_is_fine() {
        let b = doc(2097152, 21.0, 100.0);
        let f = doc(1048576, 0.0, 1000.0);
        let r = compare(&b, &f, Tolerance::default());
        assert!(r.violations.is_empty());
    }
}
