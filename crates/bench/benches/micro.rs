//! Criterion micro-benchmarks for the core data structures and hot paths.
//!
//! These are not the paper's figures (see `src/bin/fig3*.rs` for those);
//! they guard the building blocks: interval map, segment-tree algebra,
//! codec, LRU, ring, version assignment, publish window, and the embedded
//! engine's read/write paths.

use blobseer_core::LocalEngine;
use blobseer_dht::Ring;
use blobseer_meta::write::{border_specs, borders_to_links, build_write_tree};
use blobseer_meta::{node_count_for_write, write_intervals};
use blobseer_proto::messages::WriteTicket;
use blobseer_proto::tree::{PageKey, PageLoc, TreeNode};
use blobseer_proto::{BlobId, Geometry, NodeId, ProviderId, Segment, Wire, WriteId};
use blobseer_provider::{ProviderManagerService, Strategy};
use blobseer_simnet::ServiceCosts;
use blobseer_util::{ClockCache, IntervalMap, LruCache};
use blobseer_version::{PublishWindow, VersionRegistry};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn bench_interval_map(c: &mut Criterion) {
    let mut g = c.benchmark_group("interval_map");
    g.bench_function("assign_1k_random", |b| {
        b.iter(|| {
            let mut m: IntervalMap<u64> = IntervalMap::new();
            let mut x = 12345u64;
            for i in 0..1000u64 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let start = x % (1 << 20);
                m.assign(start, start + 4096, i);
            }
            black_box(m.run_count())
        })
    });
    let mut m: IntervalMap<u64> = IntervalMap::new();
    let mut x = 999u64;
    for i in 0..10_000u64 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        let start = x % (1 << 24);
        m.assign(start, start + 8192, i);
    }
    g.bench_function("range_max_hot", |b| {
        b.iter(|| black_box(m.range_max(black_box(1 << 20), black_box(1 << 21))))
    });
    g.finish();
}

fn bench_tree_algebra(c: &mut Criterion) {
    // The paper's scale: 1 TB blob, 64 KB pages (2^24 leaves).
    let geom = Geometry::new(1 << 40, 1 << 16).unwrap();
    let seg16m = Segment::new(123 << 24, 16 << 20);
    let mut g = c.benchmark_group("tree_algebra");
    g.bench_function("write_intervals_16MiB@1TB", |b| {
        b.iter(|| black_box(write_intervals(&geom, &seg16m).len()))
    });
    g.bench_function("border_specs_16MiB@1TB", |b| {
        b.iter(|| black_box(border_specs(&geom, &seg16m).len()))
    });
    g.bench_function("node_count_16MiB@1TB", |b| {
        b.iter(|| black_box(node_count_for_write(&geom, &seg16m)))
    });
    g.bench_function("build_write_tree_16MiB@1TB", |b| {
        let blob = BlobId(1);
        let pages: Vec<PageLoc> = (0..256)
            .map(|i| PageLoc {
                key: PageKey {
                    blob,
                    write: WriteId(1),
                    index: (seg16m.offset >> 16) + i,
                },
                replicas: vec![ProviderId(0)],
            })
            .collect();
        let specs = border_specs(&geom, &seg16m);
        let ticket = WriteTicket {
            version: 1,
            borders: borders_to_links(&specs, |_| Some(0)),
        };
        b.iter(|| {
            black_box(
                build_write_tree(&geom, blob, &seg16m, &pages, &ticket)
                    .unwrap()
                    .len(),
            )
        })
    });
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    let node = TreeNode {
        key: blobseer_proto::NodeKey {
            blob: BlobId(3),
            version: 42,
            offset: 1 << 30,
            size: 1 << 20,
        },
        body: blobseer_proto::NodeBody::Leaf {
            page: PageLoc {
                key: PageKey {
                    blob: BlobId(3),
                    write: WriteId(7),
                    index: 999,
                },
                replicas: vec![ProviderId(1), ProviderId(2)],
            },
        },
    };
    let bytes = node.to_wire();
    let mut g = c.benchmark_group("codec");
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("encode_tree_node", |b| {
        b.iter(|| black_box(node.to_wire().len()))
    });
    g.bench_function("decode_tree_node", |b| {
        b.iter(|| black_box(TreeNode::from_wire(&bytes).unwrap()))
    });
    g.finish();
}

fn bench_lru(c: &mut Criterion) {
    let mut g = c.benchmark_group("lru");
    g.bench_function("hit_hot_key", |b| {
        let mut lru = LruCache::new(1 << 16);
        for i in 0..(1u64 << 16) {
            lru.insert(i, i);
        }
        b.iter(|| black_box(lru.get(&42).copied()))
    });
    g.bench_function("insert_evict_cycle", |b| {
        let mut lru = LruCache::new(1024);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(lru.insert(i, i))
        })
    });
    g.finish();
}

fn bench_provider_plan(c: &mut Criterion) {
    // The control-plane hot path this PR made lock-free: any regression
    // here shows up before it reaches the client sweep.
    let mut g = c.benchmark_group("provider_plan");
    for (name, strategy) in [
        ("plan_write_p2c_16pages@40", Strategy::PowerOfTwo),
        ("plan_write_least_loaded_16pages@40", Strategy::LeastLoaded),
    ] {
        g.bench_function(name, |b| {
            let m = ProviderManagerService::new(strategy, 7, ServiceCosts::zero());
            for i in 0..40 {
                m.register(ProviderId(i), u64::MAX / 2);
            }
            m.set_page_size_hint(64 * 1024);
            b.iter(|| black_box(m.plan_write(16, 2).unwrap().targets.len()))
        });
    }
    g.finish();
}

fn bench_meta_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("meta_cache");
    g.bench_function("clock_hit_hot_key", |b| {
        let cache: ClockCache<u64, u64> = ClockCache::new(1 << 16);
        for i in 0..(1u64 << 16) {
            cache.insert(i, i);
        }
        b.iter(|| black_box(cache.get(&42)))
    });
    g.bench_function("clock_insert_evict_cycle", |b| {
        let cache: ClockCache<u64, u64> = ClockCache::new(1024);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            cache.insert(i, i);
            black_box(i)
        })
    });
    g.finish();
}

fn bench_ring(c: &mut Criterion) {
    let members: Vec<NodeId> = (0..40).map(NodeId).collect();
    let ring = Ring::new(&members, 128, 2, 7);
    c.bench_function("ring_replicas", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(0x9e3779b97f4a7c15);
            black_box(ring.replicas(k))
        })
    });
}

fn bench_version_manager(c: &mut Criterion) {
    let mut g = c.benchmark_group("version_manager");
    g.bench_function("request_version_and_complete", |b| {
        let reg = VersionRegistry::default();
        let state = reg.create_blob(Geometry::new(1 << 40, 1 << 16).unwrap());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let seg = Segment::new(((i * 37) % 1024) << 16, 64 << 16);
            let t = state.request_version(WriteId(i), seg).unwrap();
            black_box(state.complete_write(t.version).unwrap())
        })
    });
    g.bench_function("publish_window_complete", |b| {
        let w = PublishWindow::new(1 << 16);
        let mut v = 0u64;
        b.iter(|| {
            v += 1;
            black_box(w.complete(v))
        })
    });
    g.finish();
}

fn bench_local_engine(c: &mut Criterion) {
    const PAGE: u64 = 64 * 1024;
    let mut g = c.benchmark_group("local_engine");
    g.throughput(Throughput::Bytes(4 * PAGE));
    g.bench_function("write_4_pages", |b| {
        let e = LocalEngine::new();
        let blob = e.alloc(1 << 34, PAGE).unwrap();
        let data = vec![7u8; (4 * PAGE) as usize];
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let off = ((i * 13) % 1000) * 4 * PAGE;
            black_box(e.write(blob, off, &data).unwrap())
        })
    });
    g.bench_function("read_4_pages", |b| {
        let e = LocalEngine::new();
        let blob = e.alloc(1 << 30, PAGE).unwrap();
        let data = vec![7u8; (64 * PAGE) as usize];
        e.write(blob, 0, &data).unwrap();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let off = ((i * 7) % 16) * 4 * PAGE;
            black_box(
                e.read(blob, Some(1), Segment::new(off, 4 * PAGE))
                    .unwrap()
                    .0
                    .len(),
            )
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(30);
    targets =
        bench_interval_map,
        bench_tree_algebra,
        bench_codec,
        bench_lru,
        bench_meta_cache,
        bench_provider_plan,
        bench_ring,
        bench_version_manager,
        bench_local_engine
}
criterion_main!(benches);
