//! Property tests: the segment-tree engine against a flat snapshot model.
//!
//! This is the paper's core correctness claim — "all READ operations on
//! the same version v and same offset and size will yield the same
//! substring ... obtained by successively applying the first v patches to
//! the initial string" (global serializability, §II) — checked over random
//! write sequences.

use blobseer_meta::ReferenceStore;
use blobseer_proto::{Geometry, Segment};
use proptest::prelude::*;

const PAGE: u64 = 256;
const PAGES: u64 = 16;
const TOTAL: u64 = PAGE * PAGES;

/// Flat model: a snapshot of the whole string per version.
struct FlatModel {
    snapshots: Vec<Vec<u8>>,
}

impl FlatModel {
    fn new() -> Self {
        Self {
            snapshots: vec![vec![0u8; TOTAL as usize]],
        }
    }

    fn write(&mut self, seg: Segment, data: &[u8]) {
        let mut next = self.snapshots.last().unwrap().clone();
        next[seg.offset as usize..seg.end() as usize].copy_from_slice(data);
        self.snapshots.push(next);
    }

    fn read(&self, v: u64, seg: Segment) -> &[u8] {
        &self.snapshots[v as usize][seg.offset as usize..seg.end() as usize]
    }
}

fn aligned_write_strategy() -> impl Strategy<Value = (Segment, u8)> {
    (0..PAGES, 1..=PAGES, any::<u8>()).prop_map(|(start, len, fill)| {
        let start = start.min(PAGES - 1);
        let len = len.min(PAGES - start);
        (Segment::new(start * PAGE, len * PAGE), fill)
    })
}

fn unaligned_seg_strategy() -> impl Strategy<Value = Segment> {
    (0..TOTAL, 1..TOTAL).prop_map(|(off, len)| {
        let off = off.min(TOTAL - 1);
        let len = len.min(TOTAL - off);
        Segment::new(off, len)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_version_matches_flat_model(
        writes in proptest::collection::vec(aligned_write_strategy(), 1..24),
        reads in proptest::collection::vec((0usize..24, unaligned_seg_strategy()), 1..32),
    ) {
        let geom = Geometry::new(TOTAL, PAGE).unwrap();
        let mut store = ReferenceStore::new(geom);
        let mut model = FlatModel::new();

        for (i, (seg, fill)) in writes.iter().enumerate() {
            // Distinct fill pattern per write so aliasing bugs can't hide.
            let data: Vec<u8> = (0..seg.size).map(|j| fill.wrapping_add(j as u8).wrapping_add(i as u8)).collect();
            let v = store.write(*seg, &data).unwrap();
            model.write(*seg, &data);
            prop_assert_eq!(v, (i + 1) as u64, "versions must be dense");
        }

        // Full-blob check of every version (snapshot isolation).
        for v in 0..=writes.len() as u64 {
            let got = store.read(v, Segment::new(0, TOTAL)).unwrap();
            prop_assert_eq!(&got[..], model.read(v, Segment::new(0, TOTAL)));
        }

        // Random fine-grain (possibly unaligned) reads at random versions.
        for (vi, seg) in reads {
            let v = (vi as u64) % (writes.len() as u64 + 1);
            let got = store.read(v, seg).unwrap();
            prop_assert_eq!(&got[..], model.read(v, seg));
        }
    }

    #[test]
    fn unaligned_writes_match_flat_model(
        writes in proptest::collection::vec((unaligned_seg_strategy(), any::<u8>()), 1..16),
    ) {
        let geom = Geometry::new(TOTAL, PAGE).unwrap();
        let mut store = ReferenceStore::new(geom);
        let mut model = FlatModel::new();
        for (seg, fill) in &writes {
            let data = vec![*fill; seg.size as usize];
            store.write_unaligned(*seg, &data).unwrap();
            // The RMW write enlarges the physical segment, but the logical
            // effect on the latest snapshot is exactly the user's patch.
            let mut next = model.snapshots.last().unwrap().clone();
            next[seg.offset as usize..seg.end() as usize].copy_from_slice(&data);
            model.snapshots.push(next);
        }
        let latest = store.latest();
        let got = store.read(latest, Segment::new(0, TOTAL)).unwrap();
        prop_assert_eq!(&got[..], model.snapshots.last().unwrap().as_slice());
    }

    #[test]
    fn gc_preserves_kept_versions(
        writes in proptest::collection::vec(aligned_write_strategy(), 2..16),
        keep_quantile in 0.0f64..=1.0,
    ) {
        let geom = Geometry::new(TOTAL, PAGE).unwrap();
        let mut store = ReferenceStore::new(geom);
        let mut model = FlatModel::new();
        for (i, (seg, fill)) in writes.iter().enumerate() {
            let data: Vec<u8> = (0..seg.size).map(|j| fill.wrapping_add(j as u8).wrapping_add(i as u8)).collect();
            store.write(*seg, &data).unwrap();
            model.write(*seg, &data);
        }
        let latest = store.latest();
        let keep_from = 1 + ((latest - 1) as f64 * keep_quantile) as u64;
        store.gc(keep_from);
        // Every kept version must read back exactly.
        for v in keep_from..=latest {
            let got = store.read(v, Segment::new(0, TOTAL)).unwrap();
            prop_assert_eq!(&got[..], model.read(v, Segment::new(0, TOTAL)), "version {}", v);
        }
    }

    #[test]
    fn structural_sharing_node_count_is_exact(
        writes in proptest::collection::vec(aligned_write_strategy(), 1..16),
    ) {
        // The number of stored nodes must equal the sum over writes of the
        // analytic per-write node count — i.e., perfect sharing, zero
        // duplication (keys are (version, interval): unique per write).
        let geom = Geometry::new(TOTAL, PAGE).unwrap();
        let mut store = ReferenceStore::new(geom);
        let mut expected = 0u64;
        for (seg, fill) in &writes {
            let data = vec![*fill; seg.size as usize];
            store.write(*seg, &data).unwrap();
            expected += blobseer_meta::node_count_for_write(&geom, seg);
        }
        prop_assert_eq!(store.node_count() as u64, expected);
    }
}
