//! READ-side traversal (paper §III.B, §IV.A).
//!
//! Reads descend the segment tree of the requested version from the root,
//! visiting only nodes whose interval intersects the requested segment.
//! Because the client must *fetch* a node before it can descend, the
//! traversal is an interactive loop: this module provides the pure step
//! function [`expand`], and the client drives it level by level with
//! batched metadata fetches (one parallel round trip per tree level, as in
//! the paper).

use blobseer_proto::tree::{NodeBody, NodeKey, PageLoc};
use blobseer_proto::{BlobError, BlobId, Geometry, PageBuf, Segment, Version};
use blobseer_util::copymeter;

/// One step outcome of the traversal.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Visit {
    /// Fetch this node next (an inner child intersecting the read).
    Descend(NodeKey),
    /// This byte range of the read is all zeros (version-0 subtree —
    /// storage was never allocated; paper: "the system allocates on
    /// write").
    Zeros(Segment),
    /// A leaf was reached: bytes `blob_range` of the blob come from
    /// `page`, at page-internal offset `blob_range.offset % page_size`.
    Page {
        /// Locator of the page holding the data.
        page: PageLoc,
        /// The byte range (clipped to the read segment) this page serves.
        blob_range: Segment,
    },
}

/// Key of the tree root for `(blob, version)`.
pub fn root_key(geom: &Geometry, blob: BlobId, version: Version) -> NodeKey {
    NodeKey {
        blob,
        version,
        offset: 0,
        size: geom.total_size,
    }
}

/// Expand one fetched node: classify every child (or the node itself, for
/// leaves) against the read segment.
///
/// Returns an error if the node shape is inconsistent with the geometry —
/// that would indicate metadata corruption.
pub fn expand(
    geom: &Geometry,
    key: &NodeKey,
    body: &NodeBody,
    read_seg: &Segment,
) -> Result<Vec<Visit>, BlobError> {
    let iv = key.segment();
    if !iv.intersects(read_seg) {
        return Err(BlobError::Internal("expanded node does not intersect read"));
    }
    match body {
        NodeBody::Leaf { page } => {
            if iv.size != geom.page_size {
                return Err(BlobError::Internal("leaf at non-page interval"));
            }
            let blob_range = iv
                .intersection(read_seg)
                .ok_or(BlobError::Internal("leaf intersection empty"))?;
            Ok(vec![Visit::Page {
                page: page.clone(),
                blob_range,
            }])
        }
        NodeBody::Inner {
            left_version,
            right_version,
        } => {
            if iv.size <= geom.page_size {
                return Err(BlobError::Internal("inner node at page interval"));
            }
            let mut out = Vec::with_capacity(2);
            let half = iv.size / 2;
            let halves = [
                (Segment::new(iv.offset, half), *left_version, true),
                (Segment::new(iv.offset + half, half), *right_version, false),
            ];
            for (child, cv, is_left) in halves {
                let Some(overlap) = child.intersection(read_seg) else {
                    continue;
                };
                if cv == 0 {
                    out.push(Visit::Zeros(overlap));
                } else {
                    let ck = if is_left {
                        key.left_child(cv)
                    } else {
                        key.right_child(cv)
                    };
                    out.push(Visit::Descend(ck));
                }
            }
            Ok(out)
        }
    }
}

/// Assemble a read buffer from leaf hits and zero ranges.
///
/// This is the **single** copy of page bytes on the read path: each
/// fetched page (shared, refcounted) is copied exactly once into a
/// buffer covering exactly `read_seg`.
pub fn assemble_read(
    geom: &Geometry,
    read_seg: &Segment,
    zeros: &[Segment],
    pages: &[(PageLoc, Segment, PageBuf)],
) -> Result<Vec<u8>, BlobError> {
    // vec![0; n] zero-allocates lazily; no extra fill pass needed.
    let mut buf = vec![0u8; read_seg.size as usize];
    assemble_pieces(geom, read_seg, zeros, pages, &mut buf)?;
    Ok(buf)
}

/// Scatter-assemble a read directly into a caller-provided buffer of
/// exactly `read_seg.size` bytes. The buffer is cleared first, so
/// ranges not covered by a page or an explicit zero range read as
/// zeros — never as the buffer's previous contents.
pub fn assemble_read_into(
    geom: &Geometry,
    read_seg: &Segment,
    zeros: &[Segment],
    pages: &[(PageLoc, Segment, PageBuf)],
    buf: &mut [u8],
) -> Result<(), BlobError> {
    if buf.len() as u64 != read_seg.size {
        return Err(BlobError::Internal("assembly buffer size mismatch"));
    }
    // A caller-provided buffer may hold stale bytes, and nothing
    // guarantees the pieces tile the whole segment (corrupt metadata
    // validates containment, not coverage): clear everything up front
    // so uncovered ranges can never leak old contents as blob data.
    buf.fill(0);
    assemble_pieces(geom, read_seg, zeros, pages, buf)
}

/// Shared assembly core over an already-zeroed destination.
fn assemble_pieces(
    geom: &Geometry,
    read_seg: &Segment,
    zeros: &[Segment],
    pages: &[(PageLoc, Segment, PageBuf)],
    buf: &mut [u8],
) -> Result<(), BlobError> {
    // Zero ranges need no action (the buffer is pre-zeroed) but are
    // validated.
    for z in zeros {
        if !read_seg.contains(z) {
            return Err(BlobError::Internal("zero range outside read"));
        }
    }
    for (_loc, blob_range, data) in pages {
        if !read_seg.contains(blob_range) {
            return Err(BlobError::Internal("page range outside read"));
        }
        if data.len() as u64 != geom.page_size {
            return Err(BlobError::Internal("short page"));
        }
        let in_page = (blob_range.offset % geom.page_size) as usize;
        let dst = (blob_range.offset - read_seg.offset) as usize;
        let len = blob_range.size as usize;
        buf[dst..dst + len].copy_from_slice(&data[in_page..in_page + len]);
        copymeter::record_copy(len);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_proto::tree::PageKey;
    use blobseer_proto::{ProviderId, WriteId};

    fn geom() -> Geometry {
        Geometry::new(4096, 1024).unwrap()
    }

    fn loc(i: u64) -> PageLoc {
        PageLoc {
            key: PageKey {
                blob: BlobId(1),
                write: WriteId(1),
                index: i,
            },
            replicas: vec![ProviderId(0)],
        }
    }

    #[test]
    fn root_key_shape() {
        let k = root_key(&geom(), BlobId(5), 3);
        assert_eq!(
            k,
            NodeKey {
                blob: BlobId(5),
                version: 3,
                offset: 0,
                size: 4096
            }
        );
    }

    #[test]
    fn expand_inner_mixed_children() {
        let g = geom();
        let key = root_key(&g, BlobId(1), 2);
        let body = NodeBody::Inner {
            left_version: 2,
            right_version: 0,
        };
        // Read the whole blob: left half descends at v2, right half zeros.
        let visits = expand(&g, &key, &body, &g.full_segment()).unwrap();
        assert_eq!(
            visits,
            vec![
                Visit::Descend(NodeKey {
                    blob: BlobId(1),
                    version: 2,
                    offset: 0,
                    size: 2048
                }),
                Visit::Zeros(Segment::new(2048, 2048)),
            ]
        );
    }

    #[test]
    fn expand_prunes_non_intersecting_children() {
        let g = geom();
        let key = root_key(&g, BlobId(1), 1);
        let body = NodeBody::Inner {
            left_version: 1,
            right_version: 1,
        };
        // Read only page 3: left child pruned.
        let visits = expand(&g, &key, &body, &Segment::new(3072, 1024)).unwrap();
        assert_eq!(
            visits,
            vec![Visit::Descend(NodeKey {
                blob: BlobId(1),
                version: 1,
                offset: 2048,
                size: 2048
            })]
        );
    }

    #[test]
    fn expand_leaf_clips_to_read() {
        let g = geom();
        let key = NodeKey {
            blob: BlobId(1),
            version: 1,
            offset: 1024,
            size: 1024,
        };
        let body = NodeBody::Leaf { page: loc(1) };
        // Unaligned read [1500, 1800).
        let visits = expand(&g, &key, &body, &Segment::new(1500, 300)).unwrap();
        assert_eq!(
            visits,
            vec![Visit::Page {
                page: loc(1),
                blob_range: Segment::new(1500, 300)
            }]
        );
    }

    #[test]
    fn expand_detects_corrupt_shapes() {
        let g = geom();
        // Leaf body at an inner interval.
        let key = NodeKey {
            blob: BlobId(1),
            version: 1,
            offset: 0,
            size: 2048,
        };
        assert!(expand(
            &g,
            &key,
            &NodeBody::Leaf { page: loc(0) },
            &g.full_segment()
        )
        .is_err());
        // Inner body at a leaf interval.
        let key = NodeKey {
            blob: BlobId(1),
            version: 1,
            offset: 0,
            size: 1024,
        };
        let body = NodeBody::Inner {
            left_version: 1,
            right_version: 1,
        };
        assert!(expand(&g, &key, &body, &g.full_segment()).is_err());
        // Node that does not intersect the read at all.
        let key = NodeKey {
            blob: BlobId(1),
            version: 1,
            offset: 0,
            size: 1024,
        };
        assert!(expand(
            &g,
            &key,
            &NodeBody::Leaf { page: loc(0) },
            &Segment::new(2048, 512)
        )
        .is_err());
    }

    #[test]
    fn assemble_copies_and_zero_fills() {
        let g = geom();
        let read = Segment::new(512, 2048); // spans pages 0..3 partially
        let page1 = PageBuf::from_vec(vec![7u8; 1024]);
        let buf = assemble_read(
            &g,
            &read,
            &[Segment::new(512, 512)], // tail of page 0 is zeros
            &[
                (loc(1), Segment::new(1024, 1024), page1), // full page 1
                (
                    loc(2),
                    Segment::new(2048, 512),
                    PageBuf::from_vec(vec![9u8; 1024]),
                ),
            ],
        )
        .unwrap();
        assert_eq!(buf.len(), 2048);
        assert!(buf[..512].iter().all(|&b| b == 0));
        assert!(buf[512..1536].iter().all(|&b| b == 7));
        assert!(buf[1536..].iter().all(|&b| b == 9));
    }

    #[test]
    fn assemble_rejects_out_of_range_pieces() {
        let g = geom();
        let read = Segment::new(0, 1024);
        assert!(assemble_read(&g, &read, &[Segment::new(1024, 10)], &[]).is_err());
        let short_page = PageBuf::from_vec(vec![1u8; 10]);
        assert!(
            assemble_read(&g, &read, &[], &[(loc(0), Segment::new(0, 10), short_page)]).is_err()
        );
    }
}
