//! Interval arithmetic of the segment tree.
//!
//! All functions operate on *byte* intervals; a tree interval is always a
//! power-of-two multiple of the page size, and its offset is a multiple of
//! its size (the tree is perfectly aligned).

use blobseer_proto::{Geometry, Segment};

/// True if `(offset, size)` is a valid tree interval for `geom`: size is a
/// power-of-two multiple of the page size, offset is size-aligned, and the
/// interval is in bounds.
pub fn is_tree_interval(geom: &Geometry, offset: u64, size: u64) -> bool {
    size >= geom.page_size
        && size <= geom.total_size
        && (size / geom.page_size).is_power_of_two()
        && size.is_power_of_two()
        && offset.is_multiple_of(size)
        && offset + size <= geom.total_size
}

/// Enumerate every tree interval intersecting `seg`, parents before
/// children (pre-order). This is exactly the node set a WRITE of `seg`
/// must create (paper §III.C: "A node is visited only if its covered
/// interval intersects the segment").
///
/// Complexity: `O(pages_in_seg + tree_height)`.
pub fn write_intervals(geom: &Geometry, seg: &Segment) -> Vec<Segment> {
    let mut out = Vec::new();
    if seg.is_empty() {
        return out;
    }
    let mut stack = vec![geom.full_segment()];
    while let Some(iv) = stack.pop() {
        if !iv.intersects(seg) {
            continue;
        }
        out.push(iv);
        if iv.size > geom.page_size {
            let half = iv.size / 2;
            // Push right first so the left child pops first (pre-order).
            stack.push(Segment::new(iv.offset + half, half));
            stack.push(Segment::new(iv.offset, half));
        }
    }
    out
}

/// Number of nodes [`write_intervals`] would return, computed in
/// `O(tree_height)` — used by benches and capacity planning.
pub fn node_count_for_write(geom: &Geometry, seg: &Segment) -> u64 {
    if seg.is_empty() {
        return 0;
    }
    // At each tree level, the intersecting intervals form a contiguous run;
    // count them level by level from the root down.
    let mut count = 0u64;
    let mut size = geom.total_size;
    loop {
        let first = seg.offset / size;
        let last = (seg.end() - 1) / size;
        count += last - first + 1;
        if size == geom.page_size {
            break;
        }
        size /= 2;
    }
    count
}

/// The page-aligned envelope of `seg` (smallest aligned segment containing
/// it).
pub fn align_to_pages(geom: &Geometry, seg: &Segment) -> Segment {
    if seg.is_empty() {
        return *seg;
    }
    let start = seg.offset - seg.offset % geom.page_size;
    let end = seg.end().div_ceil(geom.page_size) * geom.page_size;
    Segment::new(start, end - start)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom_4_pages() -> Geometry {
        // 4 pages of 1 KiB, as in the paper's Figure 2.
        Geometry::new(4096, 1024).unwrap()
    }

    #[test]
    fn tree_interval_predicate() {
        let g = geom_4_pages();
        assert!(is_tree_interval(&g, 0, 4096));
        assert!(is_tree_interval(&g, 0, 2048));
        assert!(is_tree_interval(&g, 2048, 2048));
        assert!(is_tree_interval(&g, 1024, 1024));
        assert!(!is_tree_interval(&g, 1024, 2048), "offset not size-aligned");
        assert!(!is_tree_interval(&g, 0, 512), "smaller than a page");
        assert!(
            !is_tree_interval(&g, 0, 3072),
            "not a power-of-two multiple"
        );
        assert!(!is_tree_interval(&g, 4096, 1024), "out of bounds");
    }

    #[test]
    fn write_intervals_full_blob() {
        let g = geom_4_pages();
        let ivs = write_intervals(&g, &g.full_segment());
        // Full tree on 4 leaves: 7 nodes.
        assert_eq!(ivs.len(), 7);
        assert_eq!(ivs[0], Segment::new(0, 4096), "root first (pre-order)");
        // Every interval is a valid tree interval.
        for iv in &ivs {
            assert!(is_tree_interval(&g, iv.offset, iv.size));
        }
    }

    #[test]
    fn write_intervals_single_page() {
        let g = geom_4_pages();
        // Page 1, the paper's Figure 2(b) "version 2" write.
        let ivs = write_intervals(&g, &Segment::new(1024, 1024));
        assert_eq!(
            ivs,
            vec![
                Segment::new(0, 4096),    // A
                Segment::new(0, 2048),    // B
                Segment::new(1024, 1024), // E (leaf)
            ]
        );
    }

    #[test]
    fn write_intervals_figure2_example_read_set() {
        // Paper Figure 2(a): "the set of nodes explored for segment [1,2]
        // is (0,4),(0,2),(2,2),(1,1),(2,1)" — in pages.
        let g = geom_4_pages();
        let ivs = write_intervals(&g, &Segment::new(1024, 2048));
        let as_pages: Vec<(u64, u64)> = ivs
            .iter()
            .map(|s| (s.offset / 1024, s.size / 1024))
            .collect();
        assert_eq!(as_pages.len(), 5);
        for expected in [(0, 4), (0, 2), (2, 2), (1, 1), (2, 1)] {
            assert!(as_pages.contains(&expected), "missing {expected:?}");
        }
    }

    #[test]
    fn node_count_matches_enumeration() {
        let g = Geometry::new(1 << 20, 4096).unwrap(); // 256 pages
        for (off, len) in [
            (0u64, 4096u64),
            (0, 1 << 20),
            (4096 * 3, 4096 * 5),
            (4096 * 255, 4096),
            (4096 * 100, 4096 * 56),
        ] {
            let seg = Segment::new(off, len);
            assert_eq!(
                node_count_for_write(&g, &seg),
                write_intervals(&g, &seg).len() as u64,
                "mismatch for {seg:?}"
            );
        }
        assert_eq!(node_count_for_write(&g, &Segment::new(0, 0)), 0);
    }

    #[test]
    fn node_count_paper_scale() {
        // 1 TB blob, 64 KB pages, 16 MB write: 256 leaves.
        let g = Geometry::new(1 << 40, 1 << 16).unwrap();
        let seg = Segment::new(0, 16 << 20);
        // Aligned power-of-two write at offset 0: one node per level above
        // the leaves' subtree + full subtree of 511 nodes... just sanity
        // bounds: between 2*256 and 2*256 + 2*24 nodes.
        let n = node_count_for_write(&g, &seg);
        assert!((511..=511 + 2 * 24).contains(&n), "n = {n}");
    }

    #[test]
    fn alignment_envelope() {
        let g = geom_4_pages();
        assert_eq!(
            align_to_pages(&g, &Segment::new(100, 50)),
            Segment::new(0, 1024)
        );
        assert_eq!(
            align_to_pages(&g, &Segment::new(1000, 100)),
            Segment::new(0, 2048)
        );
        assert_eq!(
            align_to_pages(&g, &Segment::new(1024, 1024)),
            Segment::new(1024, 1024)
        );
        let empty = Segment::new(10, 0);
        assert_eq!(align_to_pages(&g, &empty), empty);
    }
}
