//! WRITE-side tree construction: border nodes and weaving (paper §III.C,
//! §IV.C).
//!
//! A WRITE of segment `seg` producing version `v` creates a new node for
//! every tree interval intersecting `seg`. Children of those nodes that
//! *also* intersect `seg` are version-`v` nodes created by the same write;
//! children that do not are the **missing halves of border nodes** and must
//! link to the newest older version that wrote them — the
//! [`BorderLink`]s precomputed by the
//! version manager, which is what lets concurrent writers weave in complete
//! isolation.

use crate::shape::write_intervals;
use blobseer_proto::messages::{BorderLink, WriteTicket};
use blobseer_proto::tree::{NodeBody, NodeKey, PageLoc, TreeNode};
use blobseer_proto::{BlobError, BlobId, Geometry, Segment, Version};
use blobseer_util::FxHashMap;

/// A border node of a write: the tree interval and which child half the
/// write does not cover. Exactly one half is always missing (a node whose
/// both halves intersect the write is interior, not border).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BorderSpec {
    /// The border node's interval.
    pub interval: Segment,
    /// True if the *left* child is the missing (uncovered) half.
    pub missing_left: bool,
}

impl BorderSpec {
    /// The missing child's interval.
    pub fn missing_child(&self) -> Segment {
        let half = self.interval.size / 2;
        if self.missing_left {
            Segment::new(self.interval.offset, half)
        } else {
            Segment::new(self.interval.offset + half, half)
        }
    }
}

/// Enumerate the border nodes of a write of `seg` in `O(tree_height)`.
///
/// Walks only partially-covered intervals: a fully-covered subtree cannot
/// contain border nodes, and an untouched subtree is not created at all.
pub fn border_specs(geom: &Geometry, seg: &Segment) -> Vec<BorderSpec> {
    let mut out = Vec::new();
    if seg.is_empty() {
        return out;
    }
    let mut stack = vec![geom.full_segment()];
    while let Some(iv) = stack.pop() {
        if iv.size == geom.page_size || seg.contains(&iv) || !iv.intersects(seg) {
            continue;
        }
        let half = iv.size / 2;
        let left = Segment::new(iv.offset, half);
        let right = Segment::new(iv.offset + half, half);
        let li = left.intersects(seg);
        let ri = right.intersects(seg);
        debug_assert!(li || ri, "visited node must intersect the write");
        if !li {
            out.push(BorderSpec {
                interval: iv,
                missing_left: true,
            });
        } else if !ri {
            out.push(BorderSpec {
                interval: iv,
                missing_left: false,
            });
        }
        // Only partially-covered children can host further border nodes.
        if li && !seg.contains(&left) {
            stack.push(left);
        }
        if ri && !seg.contains(&right) {
            stack.push(right);
        }
    }
    out
}

/// Build the complete batch of new tree nodes for a write.
///
/// * `pages` — the page locators, one per written page in ascending page
///   order (produced from the provider manager's
///   [`WritePlan`](blobseer_proto::messages::WritePlan)).
/// * `ticket` — the version manager's answer carrying the assigned version
///   and the border links.
///
/// Returns the nodes in pre-order (root first). Fails if the ticket's
/// border links do not cover every border node of `seg` — that would mean
/// the version manager and client disagree on geometry.
pub fn build_write_tree(
    geom: &Geometry,
    blob: BlobId,
    seg: &Segment,
    pages: &[PageLoc],
    ticket: &WriteTicket,
) -> Result<Vec<TreeNode>, BlobError> {
    let v = ticket.version;
    let first_page = geom.page_of(seg.offset);
    let expected_pages = geom.pages_touching(seg).count();
    if pages.len() as u64 != expected_pages {
        return Err(BlobError::Internal("page locator count mismatch"));
    }

    let borders: FxHashMap<(u64, u64), &BorderLink> = ticket
        .borders
        .iter()
        .map(|b| ((b.offset, b.size), b))
        .collect();

    let mut nodes = Vec::with_capacity(write_intervals(geom, seg).len());
    for iv in write_intervals(geom, seg) {
        let key = NodeKey {
            blob,
            version: v,
            offset: iv.offset,
            size: iv.size,
        };
        let body = if iv.size == geom.page_size {
            let idx = geom.page_of(iv.offset) - first_page;
            NodeBody::Leaf {
                page: pages[idx as usize].clone(),
            }
        } else {
            let half = iv.size / 2;
            let left = Segment::new(iv.offset, half);
            let right = Segment::new(iv.offset + half, half);
            let link = borders.get(&(iv.offset, iv.size));
            let left_version = if left.intersects(seg) {
                v
            } else {
                link.and_then(|b| b.left)
                    .ok_or(BlobError::Internal("missing left border link"))?
            };
            let right_version = if right.intersects(seg) {
                v
            } else {
                link.and_then(|b| b.right)
                    .ok_or(BlobError::Internal("missing right border link"))?
            };
            NodeBody::Inner {
                left_version,
                right_version,
            }
        };
        nodes.push(TreeNode { key, body });
    }
    Ok(nodes)
}

/// Convert border specs plus a `latest intersecting writer` oracle into
/// wire [`BorderLink`]s. The oracle is the version manager's version index
/// (`IntervalMap::range_max`); `None` means nothing wrote the interval yet,
/// which links to the implicit all-zero version 0.
pub fn borders_to_links(
    specs: &[BorderSpec],
    mut latest_writer: impl FnMut(Segment) -> Option<Version>,
) -> Vec<BorderLink> {
    specs
        .iter()
        .map(|spec| {
            let child = spec.missing_child();
            let w = latest_writer(child).unwrap_or(0);
            BorderLink {
                offset: spec.interval.offset,
                size: spec.interval.size,
                left: spec.missing_left.then_some(w),
                right: (!spec.missing_left).then_some(w),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_proto::tree::PageKey;
    use blobseer_proto::{ProviderId, WriteId};

    fn geom_4_pages() -> Geometry {
        Geometry::new(4096, 1024).unwrap()
    }

    fn loc(i: u64) -> PageLoc {
        PageLoc {
            key: PageKey {
                blob: BlobId(1),
                write: WriteId(9),
                index: i,
            },
            replicas: vec![ProviderId(0)],
        }
    }

    #[test]
    fn border_specs_full_write_has_none() {
        let g = geom_4_pages();
        assert!(border_specs(&g, &g.full_segment()).is_empty());
        assert!(border_specs(&g, &Segment::new(0, 0)).is_empty());
    }

    #[test]
    fn border_specs_single_page() {
        // Write page 1 (paper Figure 2(b), version 2 = grey).
        let g = geom_4_pages();
        let mut specs = border_specs(&g, &Segment::new(1024, 1024));
        specs.sort_by_key(|s| s.interval.size);
        assert_eq!(
            specs,
            vec![
                // B2 misses its left child (page 0).
                BorderSpec {
                    interval: Segment::new(0, 2048),
                    missing_left: true
                },
                // A2 misses its right child ([2048, 4096)).
                BorderSpec {
                    interval: Segment::new(0, 4096),
                    missing_left: false
                },
            ]
        );
        assert_eq!(specs[0].missing_child(), Segment::new(0, 1024));
        assert_eq!(specs[1].missing_child(), Segment::new(2048, 2048));
    }

    #[test]
    fn border_specs_middle_straddling_write() {
        // Write pages 1-2: the root has both halves intersecting (no
        // border at the root), each half is partially covered.
        let g = geom_4_pages();
        let mut specs = border_specs(&g, &Segment::new(1024, 2048));
        specs.sort_by_key(|s| s.interval.offset);
        assert_eq!(
            specs,
            vec![
                BorderSpec {
                    interval: Segment::new(0, 2048),
                    missing_left: true
                },
                BorderSpec {
                    interval: Segment::new(2048, 2048),
                    missing_left: false
                },
            ]
        );
    }

    #[test]
    fn border_count_is_logarithmic() {
        let g = Geometry::new(1 << 30, 4096).unwrap(); // 2^18 pages
        let seg = Segment::new(4096 * 12345, 4096 * 1000);
        let specs = border_specs(&g, &seg);
        assert!(
            specs.len() as u32 <= 2 * g.tree_height(),
            "{} borders for height {}",
            specs.len(),
            g.tree_height()
        );
    }

    #[test]
    fn weaving_matches_paper_figure2() {
        let g = geom_4_pages();
        let blob = BlobId(1);

        // Version 1 (white): full write — no borders.
        let t1 = WriteTicket {
            version: 1,
            borders: vec![],
        };
        let full = g.full_segment();
        let n1 = build_write_tree(&g, blob, &full, &[loc(0), loc(1), loc(2), loc(3)], &t1).unwrap();
        assert_eq!(n1.len(), 7);
        // Root's children are both version 1.
        assert_eq!(
            n1[0].body,
            NodeBody::Inner {
                left_version: 1,
                right_version: 1
            }
        );

        // Version 2 (grey) writes page 1. The paper: "the missing left
        // child of B2 is set to D1 and the missing right child of A2 is
        // set to C1".
        let seg2 = Segment::new(1024, 1024);
        let specs = border_specs(&g, &seg2);
        let links = borders_to_links(&specs, |_child| Some(1));
        let t2 = WriteTicket {
            version: 2,
            borders: links,
        };
        let n2 = build_write_tree(&g, blob, &seg2, &[loc(1)], &t2).unwrap();
        assert_eq!(n2.len(), 3);
        let a2 = n2.iter().find(|n| n.key.size == 4096).unwrap();
        let b2 = n2.iter().find(|n| n.key.size == 2048).unwrap();
        let e2 = n2.iter().find(|n| n.key.size == 1024).unwrap();
        assert_eq!(
            a2.body,
            NodeBody::Inner {
                left_version: 2,
                right_version: 1
            }
        );
        assert_eq!(
            b2.body,
            NodeBody::Inner {
                left_version: 1,
                right_version: 2
            }
        );
        assert!(matches!(e2.body, NodeBody::Leaf { .. }));

        // Version 3 (black) writes page 2: "setting the right child of C3
        // to G1 and the left child of A3 to B2".
        let seg3 = Segment::new(2048, 1024);
        let specs = border_specs(&g, &seg3);
        let links = borders_to_links(&specs, |child| {
            // Version index after v1 (full) and v2 (page 1):
            // page 3 → 1; [0,2048) → 2 (v2 intersects).
            if child.offset == 3072 {
                Some(1)
            } else {
                Some(2)
            }
        });
        let t3 = WriteTicket {
            version: 3,
            borders: links,
        };
        let n3 = build_write_tree(&g, blob, &seg3, &[loc(2)], &t3).unwrap();
        let a3 = n3.iter().find(|n| n.key.size == 4096).unwrap();
        let c3 = n3.iter().find(|n| n.key.size == 2048).unwrap();
        assert_eq!(
            a3.body,
            NodeBody::Inner {
                left_version: 2,
                right_version: 3
            }
        );
        assert_eq!(
            c3.body,
            NodeBody::Inner {
                left_version: 3,
                right_version: 1
            }
        );
    }

    #[test]
    fn first_write_links_to_zero_version() {
        // Writing page 0 of a fresh blob: every missing half links to the
        // implicit all-zero version 0.
        let g = geom_4_pages();
        let seg = Segment::new(0, 1024);
        let specs = border_specs(&g, &seg);
        let links = borders_to_links(&specs, |_child| None);
        let t = WriteTicket {
            version: 1,
            borders: links,
        };
        let nodes = build_write_tree(&g, BlobId(1), &seg, &[loc(0)], &t).unwrap();
        let root = nodes.iter().find(|n| n.key.size == 4096).unwrap();
        assert_eq!(
            root.body,
            NodeBody::Inner {
                left_version: 1,
                right_version: 0
            }
        );
        let b = nodes.iter().find(|n| n.key.size == 2048).unwrap();
        assert_eq!(
            b.body,
            NodeBody::Inner {
                left_version: 1,
                right_version: 0
            }
        );
    }

    #[test]
    fn build_rejects_wrong_page_count() {
        let g = geom_4_pages();
        let t = WriteTicket {
            version: 1,
            borders: vec![],
        };
        let err = build_write_tree(&g, BlobId(1), &g.full_segment(), &[loc(0)], &t);
        assert!(err.is_err());
    }

    #[test]
    fn build_rejects_missing_border_link() {
        let g = geom_4_pages();
        // Write page 1 but hand an empty ticket.
        let t = WriteTicket {
            version: 2,
            borders: vec![],
        };
        let err = build_write_tree(&g, BlobId(1), &Segment::new(1024, 1024), &[loc(1)], &t);
        assert!(err.is_err());
    }

    #[test]
    fn single_page_blob_write() {
        // Degenerate geometry: the root is the only (leaf) node.
        let g = Geometry::new(1024, 1024).unwrap();
        let t = WriteTicket {
            version: 1,
            borders: vec![],
        };
        let nodes = build_write_tree(&g, BlobId(1), &g.full_segment(), &[loc(0)], &t).unwrap();
        assert_eq!(nodes.len(), 1);
        assert!(matches!(nodes[0].body, NodeBody::Leaf { .. }));
    }
}
