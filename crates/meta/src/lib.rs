//! # blobseer-meta
//!
//! Pure algorithms over the **distributed segment tree** metadata scheme of
//! the paper (§III.C): no I/O, no locks — every function here is a
//! deterministic computation over intervals, so the whole core of the
//! paper's contribution is property-testable in isolation.
//!
//! The tree, per blob version, is a full binary tree over the blob's byte
//! space: the root covers `[0, total_size)`, children halve their parent's
//! interval, leaves cover exactly one page. A node is identified by
//! `(blob, version, offset, size)` ([`blobseer_proto::NodeKey`]) and inner
//! nodes store the *versions* of their children — weaving a new version's
//! partial tree into history is nothing more than recording an older
//! version number for an untouched half.
//!
//! Modules:
//! * [`shape`] — interval arithmetic: which tree intervals intersect a
//!   segment, expected node counts, alignment helpers.
//! * [`mod@write`] — what a WRITE must build: the new node set, the border
//!   nodes, and [`write::build_write_tree`] which assembles the final
//!   [`TreeNode`](blobseer_proto::tree::TreeNode) batch from a
//!   [`WriteTicket`](blobseer_proto::messages::WriteTicket).
//! * [`read`] — the step function of the READ traversal
//!   ([`read::expand`]), which the client drives level by level with
//!   batched metadata fetches.
//! * [`mod@reference`] — a single-process in-memory reference implementation
//!   of the whole blob engine built on the pure algorithms; used as the
//!   correctness oracle by tests across the workspace and usable as an
//!   embedded (non-distributed) mode of the library.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod read;
pub mod reference;
pub mod shape;
pub mod write;

pub use read::{expand, root_key, Visit};
pub use reference::ReferenceStore;
pub use shape::{node_count_for_write, write_intervals};
pub use write::{border_specs, build_write_tree, BorderSpec};
