//! A single-process, in-memory reference implementation of the blob
//! engine, built directly on the pure tree algorithms.
//!
//! This serves three purposes:
//!
//! 1. **Correctness oracle** — property tests across the workspace compare
//!    the distributed implementation against this one and against a flat
//!    reference string.
//! 2. **Embedded mode** — users who want BlobSeer's versioned-snapshot
//!    semantics without a cluster can use it directly.
//! 3. **Executable specification** — the write/read cycle here is the
//!    paper's protocol with every network hop replaced by a map access,
//!    which makes the algorithmic story easy to follow.
//!
//! It is intentionally not thread-safe; the distributed engine in
//! `blobseer-core` is where concurrency lives.

use crate::read::{assemble_read, expand, root_key, Visit};
use crate::write::{border_specs, borders_to_links, build_write_tree};
use blobseer_proto::messages::WriteTicket;
use blobseer_proto::tree::{NodeBody, NodeKey, PageKey, PageLoc};
use blobseer_proto::{BlobError, BlobId, Geometry, ProviderId, Segment, Version, WriteId};
use blobseer_util::{FxHashMap, IntervalMap, PageBuf};

/// In-memory reference blob store (single blob, single thread).
pub struct ReferenceStore {
    geom: Geometry,
    blob: BlobId,
    nodes: FxHashMap<NodeKey, NodeBody>,
    pages: FxHashMap<PageKey, PageBuf>,
    index: IntervalMap<Version>,
    /// `history[v - 1]` = segment written by version `v`.
    history: Vec<Segment>,
    next_write: u64,
}

impl ReferenceStore {
    /// Create an empty store (everything reads as zeros at version 0).
    pub fn new(geom: Geometry) -> Self {
        Self {
            geom,
            blob: BlobId(1),
            nodes: FxHashMap::default(),
            pages: FxHashMap::default(),
            index: IntervalMap::new(),
            history: Vec::new(),
            next_write: 1,
        }
    }

    /// The blob's geometry.
    pub fn geometry(&self) -> Geometry {
        self.geom
    }

    /// Latest published version (0 = pristine all-zero blob).
    pub fn latest(&self) -> Version {
        self.history.len() as Version
    }

    /// Number of stored tree nodes (for sharing/GC assertions).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of stored pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// The segment written by version `v` (if `1 <= v <= latest`).
    pub fn written_segment(&self, v: Version) -> Option<Segment> {
        (v >= 1)
            .then(|| self.history.get(v as usize - 1).copied())
            .flatten()
    }

    /// `WRITE(id, buffer, offset, size)` — page-aligned fast path.
    ///
    /// Returns the new version number, exactly like the paper's `vw`.
    pub fn write(&mut self, seg: Segment, data: &[u8]) -> Result<Version, BlobError> {
        let pages = self.geom.validate_aligned(&seg)?;
        if data.len() as u64 != seg.size {
            return Err(BlobError::BadSegment {
                segment: seg,
                reason: "buffer size mismatch",
            });
        }
        // Phase 1 (paper §III.B): store the pages under a fresh write id.
        let write_id = WriteId(self.next_write);
        self.next_write += 1;
        // One copy of the caller's buffer; every page is an O(1) slice of
        // that single allocation.
        let buf = PageBuf::copy_from_slice(data);
        let mut locs = Vec::with_capacity(pages.count() as usize);
        for (i, page_idx) in pages.iter().enumerate() {
            let key = PageKey {
                blob: self.blob,
                write: write_id,
                index: page_idx,
            };
            let start = i * self.geom.page_size as usize;
            let end = start + self.geom.page_size as usize;
            self.pages.insert(key, buf.slice(start..end));
            locs.push(PageLoc {
                key,
                replicas: vec![ProviderId(0)],
            });
        }
        // Phase 2: version assignment + border links (the version manager's
        // role, played here by the local version index).
        let version = self.latest() + 1;
        let specs = border_specs(&self.geom, &seg);
        let links = borders_to_links(&specs, |child| {
            self.index.range_max(child.offset, child.end())
        });
        let ticket = WriteTicket {
            version,
            borders: links,
        };
        // Phase 3: build and store the metadata tree.
        let nodes = build_write_tree(&self.geom, self.blob, &seg, &locs, &ticket)?;
        for n in nodes {
            self.nodes.insert(n.key, n.body);
        }
        // Phase 4: publish.
        self.index.assign(seg.offset, seg.end(), version);
        self.history.push(seg);
        Ok(version)
    }

    /// `WRITE` for arbitrary (unaligned) segments: read-modify-write of the
    /// boundary pages against the latest published version.
    pub fn write_unaligned(&mut self, seg: Segment, data: &[u8]) -> Result<Version, BlobError> {
        self.geom.validate_bounds(&seg)?;
        if data.len() as u64 != seg.size {
            return Err(BlobError::BadSegment {
                segment: seg,
                reason: "buffer size mismatch",
            });
        }
        let envelope = crate::shape::align_to_pages(&self.geom, &seg);
        if envelope == seg {
            return self.write(seg, data);
        }
        let mut buf = self.read(self.latest(), envelope)?;
        let start = (seg.offset - envelope.offset) as usize;
        // lint: allow(unmetered-copy) — single-process reference oracle; the
        // distributed engine is the metered data path
        buf[start..start + data.len()].copy_from_slice(data);
        self.write(envelope, &buf)
    }

    /// `READ(id, v, buffer, offset, size)` — returns the bytes of segment
    /// `seg` at version `v`. Unaligned segments are allowed (the traversal
    /// clips at leaves).
    pub fn read(&self, v: Version, seg: Segment) -> Result<Vec<u8>, BlobError> {
        self.geom.validate_bounds(&seg)?;
        if v > self.latest() {
            return Err(BlobError::VersionNotPublished {
                requested: v,
                latest: self.latest(),
            });
        }
        if v == 0 {
            return Ok(vec![0u8; seg.size as usize]);
        }
        let mut frontier = vec![root_key(&self.geom, self.blob, v)];
        let mut zeros = Vec::new();
        let mut hits = Vec::new();
        while let Some(key) = frontier.pop() {
            let body = self.nodes.get(&key).ok_or(BlobError::MissingMetadata {
                blob: key.blob,
                version: key.version,
            })?;
            for visit in expand(&self.geom, &key, body, &seg)? {
                match visit {
                    Visit::Descend(k) => frontier.push(k),
                    Visit::Zeros(z) => zeros.push(z),
                    Visit::Page { page, blob_range } => {
                        let data = self
                            .pages
                            .get(&page.key)
                            .ok_or(BlobError::MissingPage {
                                tried: page.replicas.clone(),
                            })?
                            .clone();
                        hits.push((page, blob_range, data));
                    }
                }
            }
        }
        assemble_read(&self.geom, &seg, &zeros, &hits)
    }

    /// Garbage-collect: drop everything unreachable from versions
    /// `>= keep_from`. Returns `(nodes_removed, pages_removed)`.
    ///
    /// Rule (DESIGN.md §3): node `(I, w)` with `w < keep_from` is garbage
    /// iff some write in `(w, keep_from]` intersects `I` — equivalently
    /// `range_max(index at keep_from, I) > w`, where the index-at-K is
    /// reconstructed from history.
    pub fn gc(&mut self, keep_from: Version) -> (usize, usize) {
        let keep_from = keep_from.min(self.latest());
        if keep_from <= 1 {
            return (0, 0);
        }
        // Version index truncated at keep_from.
        let mut at_k: IntervalMap<Version> = IntervalMap::new();
        for (i, seg) in self.history.iter().enumerate().take(keep_from as usize) {
            at_k.assign(seg.offset, seg.end(), (i + 1) as Version);
        }
        let mut dead_nodes = Vec::new();
        for key in self.nodes.keys() {
            if key.version >= keep_from {
                continue;
            }
            if at_k
                .range_max(key.offset, key.offset + key.size)
                .unwrap_or(0)
                > key.version
            {
                dead_nodes.push(*key);
            }
        }
        // A page is dead iff its leaf is dead; collect page keys from dead
        // leaves before removing nodes.
        let mut dead_pages = Vec::new();
        for key in &dead_nodes {
            if key.size == self.geom.page_size {
                if let Some(NodeBody::Leaf { page }) = self.nodes.get(key) {
                    dead_pages.push(page.key);
                }
            }
        }
        for key in &dead_nodes {
            self.nodes.remove(key);
        }
        for pk in &dead_pages {
            self.pages.remove(pk);
        }
        (dead_nodes.len(), dead_pages.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> Geometry {
        Geometry::new(8192, 1024).unwrap() // 8 pages
    }

    fn seg(offset: u64, size: u64) -> Segment {
        Segment::new(offset, size)
    }

    #[test]
    fn fresh_blob_reads_zeros() {
        let store = ReferenceStore::new(geom());
        assert_eq!(store.latest(), 0);
        let buf = store.read(0, seg(0, 8192)).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn read_unpublished_version_fails() {
        let store = ReferenceStore::new(geom());
        let err = store.read(1, seg(0, 1024)).unwrap_err();
        assert!(matches!(
            err,
            BlobError::VersionNotPublished {
                requested: 1,
                latest: 0
            }
        ));
    }

    #[test]
    fn write_then_read_back() {
        let mut store = ReferenceStore::new(geom());
        let data = vec![0xabu8; 2048];
        let v = store.write(seg(1024, 2048), &data).unwrap();
        assert_eq!(v, 1);
        assert_eq!(store.read(1, seg(1024, 2048)).unwrap(), data);
        // Rest of the blob is still zeros.
        assert!(store.read(1, seg(0, 1024)).unwrap().iter().all(|&b| b == 0));
        assert!(store
            .read(1, seg(4096, 4096))
            .unwrap()
            .iter()
            .all(|&b| b == 0));
    }

    #[test]
    fn versions_are_snapshots() {
        let mut store = ReferenceStore::new(geom());
        store.write(seg(0, 1024), &[1u8; 1024]).unwrap();
        store.write(seg(0, 1024), &[2u8; 1024]).unwrap();
        store.write(seg(1024, 1024), &[3u8; 1024]).unwrap();
        // v1 still shows the original write.
        assert_eq!(store.read(1, seg(0, 1024)).unwrap(), vec![1u8; 1024]);
        assert_eq!(store.read(2, seg(0, 1024)).unwrap(), vec![2u8; 1024]);
        // v3 = v2's page 0 + new page 1.
        assert_eq!(store.read(3, seg(0, 1024)).unwrap(), vec![2u8; 1024]);
        assert_eq!(store.read(3, seg(1024, 1024)).unwrap(), vec![3u8; 1024]);
        // v2's page 1 is still zeros.
        assert_eq!(store.read(2, seg(1024, 1024)).unwrap(), vec![0u8; 1024]);
    }

    #[test]
    fn unaligned_reads() {
        let mut store = ReferenceStore::new(geom());
        let data: Vec<u8> = (0..2048u32).map(|i| (i % 251) as u8).collect();
        store.write(seg(1024, 2048), &data).unwrap();
        let got = store.read(1, seg(1500, 1000)).unwrap();
        assert_eq!(&got[..], &data[476..1476]);
        // Straddling written and zero space.
        let got = store.read(1, seg(3000, 500)).unwrap();
        assert_eq!(&got[..72], &data[1976..]);
        assert!(got[72..].iter().all(|&b| b == 0));
    }

    #[test]
    fn unaligned_write_rmw() {
        let mut store = ReferenceStore::new(geom());
        store.write(seg(0, 2048), &[7u8; 2048]).unwrap();
        let v = store.write_unaligned(seg(100, 50), &[9u8; 50]).unwrap();
        assert_eq!(v, 2);
        let buf = store.read(2, seg(0, 2048)).unwrap();
        assert!(buf[..100].iter().all(|&b| b == 7));
        assert!(buf[100..150].iter().all(|&b| b == 9));
        assert!(buf[150..].iter().all(|&b| b == 7));
        // v1 untouched.
        assert!(store.read(1, seg(0, 2048)).unwrap().iter().all(|&b| b == 7));
    }

    #[test]
    fn rejects_bad_segments() {
        let mut store = ReferenceStore::new(geom());
        assert!(store.write(seg(100, 1024), &[0u8; 1024]).is_err());
        assert!(store.write(seg(0, 100), &[0u8; 100]).is_err());
        assert!(store.write(seg(0, 1024), &[0u8; 512]).is_err());
        assert!(store.read(0, seg(8192, 1)).is_err());
    }

    #[test]
    fn structural_sharing_bounds_node_growth() {
        let mut store = ReferenceStore::new(geom());
        store.write(seg(0, 8192), &[1u8; 8192]).unwrap();
        let full_tree = store.node_count(); // 15 nodes for 8 leaves
        assert_eq!(full_tree, 15);
        store.write(seg(0, 1024), &[2u8; 1024]).unwrap();
        // One-page write adds height+1 = 4 nodes, not a whole tree.
        assert_eq!(store.node_count(), full_tree + 4);
    }

    #[test]
    fn gc_removes_only_unreachable() {
        let mut store = ReferenceStore::new(geom());
        store.write(seg(0, 8192), &[1u8; 8192]).unwrap(); // v1
        store.write(seg(0, 1024), &[2u8; 1024]).unwrap(); // v2
        store.write(seg(0, 1024), &[3u8; 1024]).unwrap(); // v3
        let before_pages = store.page_count();
        // Keep v3 and later: v2's page-0 chain and v1's page-0 leaf die;
        // v1's pages 1..8 survive (still visible from v3).
        let (nodes_gone, pages_gone) = store.gc(3);
        assert!(nodes_gone > 0);
        assert_eq!(pages_gone, 2, "page 0 of v1 and of v2");
        assert_eq!(store.page_count(), before_pages - 2);
        // v3 still fully readable.
        assert_eq!(store.read(3, seg(0, 1024)).unwrap(), vec![3u8; 1024]);
        assert_eq!(store.read(3, seg(1024, 7168)).unwrap(), vec![1u8; 7168]);
        // v1/v2 are now (legitimately) partially collected; reading page 0
        // at v2 must fail with missing metadata.
        assert!(store.read(2, seg(0, 1024)).is_err());
    }

    #[test]
    fn gc_noop_cases() {
        let mut store = ReferenceStore::new(geom());
        assert_eq!(store.gc(5), (0, 0), "empty store");
        store.write(seg(0, 1024), &[1u8; 1024]).unwrap();
        assert_eq!(store.gc(1), (0, 0), "keep everything");
        // keep_from beyond latest clamps.
        let (n, p) = store.gc(99);
        assert_eq!((n, p), (0, 0));
    }

    #[test]
    fn single_page_blob() {
        let mut store = ReferenceStore::new(Geometry::new(1024, 1024).unwrap());
        store.write(seg(0, 1024), &[5u8; 1024]).unwrap();
        assert_eq!(store.read(1, seg(0, 1024)).unwrap(), vec![5u8; 1024]);
        store.write(seg(0, 1024), &[6u8; 1024]).unwrap();
        assert_eq!(store.read(1, seg(0, 1024)).unwrap(), vec![5u8; 1024]);
        assert_eq!(store.read(2, seg(0, 1024)).unwrap(), vec![6u8; 1024]);
    }
}
