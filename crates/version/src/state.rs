//! Per-blob version-manager state and the blob registry.
//!
//! The **only** serialization point of the whole system (paper §III.B:
//! "the only serialization occurs when interacting with the version
//! manager ... reduced to simply requiring a version number") is the
//! assignment mutex behind [`BlobState::request_version`]: a critical
//! section of `O(log n)` interval-map queries — microseconds — never
//! across I/O. Everything else (completion, publication, latest-version
//! reads, history access) is atomics only.
//!
//! ## The grant protocol (ticket batching)
//!
//! Since PR 10 that mutex is amortized with the same leader/follower
//! discipline the record log's group commit proved: writers that arrive
//! while an assignment is in progress park on a **grant queue** instead
//! of contending, and the queue's *leader* — the one writer that found
//! the queue idle — takes the assignment mutex once and hands a
//! **contiguous run of versions** to itself plus everyone queued behind
//! it. Followers ride the grant through a condvar and never touch the
//! assignment mutex at all. Total order per blob is untouched: every
//! ticket still comes out of the one `next_version` counter under the
//! one mutex, in queue order; only *who pays for the acquisition*
//! changes. An optional [`RegistryConfig::grant_window`] lets a leader
//! linger (exactly like the record log's `group_commit_window`) so
//! concurrent writers can join the grant deterministically.
//!
//! Lockmeter accounting rule: **a grant charges one `VersionAssign`
//! acquisition for the whole group** — the leader records it, followers
//! record nothing — so under a hot-blob storm the steady-state
//! `version_assign_locks_per_op` drops to `grants / ops ≈ 1/group`,
//! strictly below 1.0 under contention and exactly 1.0 for a solo
//! writer (a leader-of-one). The bench gate holds the system to that.

use crate::history::ConcurrentHistory;
use crate::publish::{PublishWindow, DEFAULT_WINDOW};
use blobseer_meta::write::{border_specs, borders_to_links};
use blobseer_meta::write_intervals;
use blobseer_proto::messages::{BlobInfo, GcPlan, WriteTicket};
use blobseer_proto::tree::PageKey;
use blobseer_proto::{BlobError, BlobId, Geometry, Segment, Version, WriteId};
use blobseer_util::{IntervalMap, ShardedMap};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How a [`VersionRegistry`] assigns versions and allocates blob ids.
///
/// `shard`/`shards` make one registry a member of a sharded version
/// manager: shard `s` of `S` allocates exactly the blob ids congruent
/// to `s` modulo `S` (with `id % S == 0` owned by shard 0, ids starting
/// at 1), so clients can route any blob id to its owning shard with one
/// modulo and no directory. The default single-shard config reproduces
/// the classic id sequence `1, 2, 3, …` bit for bit.
#[derive(Clone, Copy, Debug)]
pub struct RegistryConfig {
    /// In-flight (assigned but unpublished) write capacity per blob.
    pub window: usize,
    /// Batch version assignment through the grant protocol (the
    /// default). `false` is the per-op ablation: every writer acquires
    /// the assignment mutex itself, the pre-PR-10 behaviour.
    pub batched: bool,
    /// How long a grant leader lingers before assigning, so concurrent
    /// writers can join its grant (the assignment-queue analogue of the
    /// record log's `group_commit_window`). Zero (the default) still
    /// batches naturally: whoever queued while the leader held the
    /// assignment mutex rides the next drain.
    pub grant_window: Duration,
    /// This registry's shard index, `< shards`.
    pub shard: u32,
    /// Total shard count of the version manager (1 = unsharded).
    pub shards: u32,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        Self {
            window: DEFAULT_WINDOW,
            batched: true,
            grant_window: Duration::ZERO,
            shard: 0,
            shards: 1,
        }
    }
}

/// What the version manager remembers about one assigned write.
#[derive(Clone, Debug)]
pub struct WriteRecord {
    /// The (page-aligned) segment the write patched.
    pub seg: Segment,
    /// The write id under which its pages were stored.
    pub write: WriteId,
    completed: Arc<AtomicBool>,
}

impl WriteRecord {
    /// True once the write reported completion.
    pub fn is_completed(&self) -> bool {
        self.completed.load(Ordering::Acquire)
    }
}

/// Guarded by the assignment mutex.
struct AssignState {
    /// Next version to hand out (versions start at 1).
    next_version: Version,
    /// Latest writer per byte range — answers border-link queries.
    index: IntervalMap<Version>,
}

/// The outcome of one version request under the grant protocol: the
/// ticket, plus the accounting the RPC layer needs to charge simulated
/// cost where the work actually happened.
#[derive(Clone, Debug)]
pub struct VersionGrant {
    /// The assigned version + precomputed border links.
    pub ticket: WriteTicket,
    /// Assignment-mutex acquisitions *this call* performed: `0` for a
    /// follower that rode a leader's grant, `>= 1` for the leader (one
    /// per queue drain it served). Mirrors the lockmeter exactly.
    pub acquired: u32,
    /// Size of the grant group this call's ticket was assigned in
    /// (`1` for a leader-of-one, i.e. an uncontended request).
    pub group: u32,
}

/// One parked follower in the grant queue.
struct GrantCell {
    write: WriteId,
    seg: Segment,
    slot: Mutex<GrantSlot>,
    ready: Condvar,
}

/// Filled by the leader, consumed by the parked follower.
struct GrantSlot {
    done: Option<Result<WriteTicket, BlobError>>,
    group: u32,
}

impl GrantCell {
    fn new(write: WriteId, seg: Segment) -> Self {
        Self {
            write,
            seg,
            // lint: allow(unmetered-lock) — grant-protocol plumbing: a parked
            // follower's handoff slot; the one metered acquisition for the whole
            // grant is recorded by its leader (see lead_grants)
            slot: Mutex::new(GrantSlot {
                done: None,
                group: 0,
            }),
            ready: Condvar::new(),
        }
    }
}

/// The grant queue: writers that arrive while another writer is leading
/// park here; the `leading` flag is the record log's `committing`
/// discipline (cleared only under this lock after an empty-queue check,
/// so a parked cell can never be stranded).
struct GrantQueue {
    pending: Vec<Arc<GrantCell>>,
    leading: bool,
}

/// All version-manager state for one blob.
pub struct BlobState {
    /// The blob id.
    pub blob: BlobId,
    /// The blob's geometry.
    pub geom: Geometry,
    assign: Mutex<AssignState>,
    grants: Mutex<GrantQueue>,
    batched: bool,
    grant_window: Duration,
    window: PublishWindow,
    history: ConcurrentHistory<WriteRecord>,
    /// Lowest version whose metadata may still exist (raised by GC).
    gc_floor: AtomicU64,
}

impl BlobState {
    /// Fresh blob state with default grant batching (no grant window).
    pub fn new(blob: BlobId, geom: Geometry, window: usize) -> Self {
        Self::with_grants(blob, geom, window, true, Duration::ZERO)
    }

    /// Fresh blob state with explicit grant-protocol knobs.
    pub fn with_grants(
        blob: BlobId,
        geom: Geometry,
        window: usize,
        batched: bool,
        grant_window: Duration,
    ) -> Self {
        Self {
            blob,
            geom,
            // lint: allow(unmetered-lock) — the paper-sanctioned VersionAssign mutex
            // under the PR 10 grant discipline: one metered acquisition (charged via
            // record_version_assign by the grant leader) assigns a contiguous run of
            // versions for the leader plus every queued follower — 1 lock for N ops
            assign: Mutex::new(AssignState {
                next_version: 1,
                index: IntervalMap::new(),
            }),
            // lint: allow(unmetered-lock) — grant-protocol plumbing, not a
            // serialization point of the data model: held for queue push/take only,
            // never across the assignment critical section or I/O; the assignment
            // work itself is metered per grant via record_version_assign
            grants: Mutex::new(GrantQueue {
                pending: Vec::new(),
                leading: false,
            }),
            batched,
            grant_window,
            window: PublishWindow::new(window),
            history: ConcurrentHistory::new(),
            gc_floor: AtomicU64::new(1),
        }
    }

    /// Latest published version (atomic load).
    pub fn latest(&self) -> Version {
        self.window.latest()
    }

    /// Blob descriptor.
    pub fn info(&self) -> BlobInfo {
        BlobInfo {
            blob: self.blob,
            total_size: self.geom.total_size,
            page_size: self.geom.page_size,
            latest: self.latest(),
        }
    }

    /// The record for version `v`, if assigned.
    pub fn record(&self, v: Version) -> Option<WriteRecord> {
        self.history.get(v)
    }

    /// Assign a version number and precompute border links (paper §IV.C).
    ///
    /// The ticket lets the writer weave its metadata **in complete
    /// isolation** with respect to other writers, even when lower versions
    /// are still being written: the version index is updated at
    /// *assignment* time, so a later writer's links already account for
    /// every in-flight earlier write.
    pub fn request_version(&self, write: WriteId, seg: Segment) -> Result<WriteTicket, BlobError> {
        self.request_version_grant(write, seg).map(|g| g.ticket)
    }

    /// [`request_version`](Self::request_version) with grant accounting:
    /// besides the ticket, reports how many assignment-mutex acquisitions
    /// this call performed (`0` for a follower) and how large its grant
    /// group was, so the RPC layer can charge simulated cost exactly
    /// where the lock meter charged real cost.
    pub fn request_version_grant(
        &self,
        write: WriteId,
        seg: Segment,
    ) -> Result<VersionGrant, BlobError> {
        self.geom.validate_aligned(&seg)?;
        if !self.batched {
            // Per-op ablation: every writer pays its own acquisition —
            // the pre-PR-10 behaviour, kept measurable for the bench.
            blobseer_util::lockmeter::record_version_assign();
            let ticket = {
                let mut st = self.assign.lock();
                self.assign_locked(&mut st, &seg)?
            };
            self.record_assignment(write, seg, ticket.version);
            return Ok(VersionGrant {
                ticket,
                acquired: 1,
                group: 1,
            });
        }
        let cell = {
            // lint: allow(unmetered-lock) — grant-queue push/leader election only;
            // the assignment work is metered once per grant by the leader
            let mut q = self.grants.lock();
            if q.leading {
                let cell = Arc::new(GrantCell::new(write, seg));
                q.pending.push(Arc::clone(&cell));
                Some(cell)
            } else {
                q.leading = true;
                None
            }
        };
        match cell {
            Some(cell) => {
                // Follower: the leader assigns our version inside its
                // grant and hands the ticket through the condvar. We
                // never touch the assignment mutex.
                // lint: allow(unmetered-lock) — parked follower's own handoff slot;
                // the grant's one metered acquisition is the leader's
                let mut slot = cell.slot.lock();
                while slot.done.is_none() {
                    cell.ready.wait(&mut slot);
                }
                let group = slot.group;
                // lint: allow(panic-on-serving-path) — the wait loop above exits
                // only once `done` is `Some`, so the take can never observe `None`
                let ticket = slot.done.take().expect("slot filled before notify")?;
                Ok(VersionGrant {
                    ticket,
                    acquired: 0,
                    group,
                })
            }
            None => self.lead_grants(write, seg),
        }
    }

    /// Grant leader: optionally linger so concurrent writers can join,
    /// then drain the queue in rounds — **one metered assignment-mutex
    /// acquisition per drain** grants a contiguous run of versions to
    /// every queued writer (plus the leader's own request in the first
    /// round). Leadership is released only under the queue lock after an
    /// empty-queue check, so a parked cell can never be stranded.
    fn lead_grants(&self, write: WriteId, seg: Segment) -> Result<VersionGrant, BlobError> {
        if !self.grant_window.is_zero() {
            std::thread::sleep(self.grant_window);
        }
        let mut own: Option<(Result<WriteTicket, BlobError>, u32)> = None;
        let mut acquired: u32 = 0;
        loop {
            let batch: Vec<Arc<GrantCell>> = {
                // lint: allow(unmetered-lock) — grant-queue drain/leadership release
                // only; the assignment below is metered once per drain
                let mut q = self.grants.lock();
                if own.is_some() && q.pending.is_empty() {
                    q.leading = false;
                    break;
                }
                std::mem::take(&mut q.pending)
            };
            let serve_own = own.is_none();
            let group = u32::try_from(batch.len()).unwrap_or(u32::MAX) + u32::from(serve_own);
            // The one VersionAssign charge for this whole grant group.
            blobseer_util::lockmeter::record_version_assign();
            acquired += 1;
            let mut granted: Vec<Result<WriteTicket, BlobError>> = Vec::with_capacity(batch.len());
            {
                let mut st = self.assign.lock();
                if serve_own {
                    own = Some((self.assign_locked(&mut st, &seg), group));
                }
                for cell in &batch {
                    granted.push(self.assign_locked(&mut st, &cell.seg));
                }
            }
            // Outside the assignment mutex: record history for every
            // granted ticket, then wake the followers.
            if serve_own {
                if let Some((Ok(t), _)) = &own {
                    self.record_assignment(write, seg, t.version);
                }
            }
            for (cell, result) in batch.iter().zip(granted) {
                if let Ok(t) = &result {
                    self.record_assignment(cell.write, cell.seg, t.version);
                }
                // lint: allow(unmetered-lock) — follower handoff slot fill + notify;
                // the grant's one metered acquisition happened above
                let mut slot = cell.slot.lock();
                slot.group = group;
                slot.done = Some(result);
                cell.ready.notify_one();
            }
        }
        // lint: allow(panic-on-serving-path) — the loop cannot break until `own`
        // is `Some` (the first drain always serves the leader's own request)
        let (result, group) = own.expect("leader served its own request");
        Ok(VersionGrant {
            ticket: result?,
            acquired,
            group,
        })
    }

    /// The assignment critical section for one writer: `O(log n)`
    /// interval-map queries, never across I/O.
    fn assign_locked(&self, st: &mut AssignState, seg: &Segment) -> Result<WriteTicket, BlobError> {
        let v = st.next_version;
        if self.window.would_overflow(v) {
            return Err(BlobError::Internal("too many in-flight writes"));
        }
        let specs = border_specs(&self.geom, seg);
        let links = borders_to_links(&specs, |child| {
            st.index.range_max(child.offset, child.end())
        });
        st.index.assign(seg.offset, seg.end(), v);
        st.next_version += 1;
        Ok(WriteTicket {
            version: v,
            borders: links,
        })
    }

    fn record_assignment(&self, write: WriteId, seg: Segment, version: Version) {
        let rec = WriteRecord {
            seg,
            write,
            completed: Arc::new(AtomicBool::new(false)),
        };
        let fresh = self.history.set(version, rec);
        debug_assert!(fresh, "version numbers are unique");
    }

    /// A writer reports success; publication advances over the contiguous
    /// completed prefix. Returns the latest published version.
    pub fn complete_write(&self, v: Version) -> Result<Version, BlobError> {
        let rec = self
            .history
            .get(v)
            .ok_or(BlobError::Internal("completion for unassigned version"))?;
        if rec.completed.swap(true, Ordering::AcqRel) {
            return Err(BlobError::Internal("duplicate completion"));
        }
        Ok(self.window.complete(v))
    }

    /// Block until version `v` is published (test/QoS helper).
    pub fn wait_published(&self, v: Version) {
        self.window.wait_published(v);
    }

    /// Compute the GC plan discarding versions below `keep_from`
    /// (clamped to the published watermark). See DESIGN.md §3 for the
    /// reachability rule. Raises the GC floor so subsequent plans do not
    /// re-report the same nodes.
    pub fn gc_plan(&self, keep_from: Version) -> GcPlan {
        let published = self.latest();
        let keep_from = keep_from.min(published).max(1);
        let floor = self.gc_floor.load(Ordering::Acquire);
        if keep_from <= floor {
            return GcPlan::default();
        }
        // Rebuild the version index as of `keep_from`.
        let mut at_k: IntervalMap<Version> = IntervalMap::new();
        self.history.for_each_up_to(keep_from, |v, rec| {
            at_k.assign(rec.seg.offset, rec.seg.end(), v);
        });
        let mut plan = GcPlan::default();
        self.history.for_each_up_to(keep_from - 1, |v, rec| {
            if v < floor {
                return;
            }
            for iv in write_intervals(&self.geom, &rec.seg) {
                let superseded = at_k.range_max(iv.offset, iv.end()).unwrap_or(0) > v;
                if !superseded {
                    continue;
                }
                plan.dead_nodes.push(blobseer_proto::NodeKey {
                    blob: self.blob,
                    version: v,
                    offset: iv.offset,
                    size: iv.size,
                });
                if iv.size == self.geom.page_size {
                    let key = PageKey {
                        blob: self.blob,
                        write: rec.write,
                        index: iv.offset / self.geom.page_size,
                    };
                    // Replica locations are resolved by the GC executor
                    // from the dead leaf nodes before removal.
                    plan.dead_pages.push((key, Vec::new()));
                }
            }
        });
        self.gc_floor.store(keep_from, Ordering::Release);
        plan
    }
}

/// The version manager's blob table: `ALLOC` creates entries, everything
/// else looks them up. Lookups are sharded reads; creation is rare.
pub struct VersionRegistry {
    blobs: ShardedMap<BlobId, Arc<BlobState>>,
    /// Ordinal of the next blob *this shard* allocates (1-based); the
    /// public id is derived from it through the residue-class mapping.
    next_blob: AtomicU64,
    config: RegistryConfig,
}

impl Default for VersionRegistry {
    fn default() -> Self {
        Self::new(DEFAULT_WINDOW)
    }
}

impl VersionRegistry {
    /// Create an unsharded registry whose blobs allow `window` in-flight
    /// writes, with default grant batching.
    pub fn new(window: usize) -> Self {
        Self::with_config(RegistryConfig {
            window,
            ..RegistryConfig::default()
        })
    }

    /// Create a registry under an explicit [`RegistryConfig`].
    pub fn with_config(config: RegistryConfig) -> Self {
        assert!(config.shards >= 1, "shard count must be at least 1");
        assert!(config.shard < config.shards, "shard index out of range");
        Self {
            blobs: ShardedMap::with_shards(16),
            next_blob: AtomicU64::new(1),
            config,
        }
    }

    /// The configuration this registry runs under.
    pub fn config(&self) -> RegistryConfig {
        self.config
    }

    /// Smallest blob id this shard owns: residue `shard` modulo `shards`,
    /// with ids starting at 1 (so residue 0 starts at `shards` itself).
    fn id_base(&self) -> u64 {
        if self.config.shard == 0 {
            u64::from(self.config.shards)
        } else {
            u64::from(self.config.shard)
        }
    }

    /// The public blob id of this shard's `n`-th allocation (1-based).
    fn id_of(&self, n: u64) -> BlobId {
        BlobId((n - 1) * u64::from(self.config.shards) + self.id_base())
    }

    fn fresh_state(&self, id: BlobId, geom: Geometry) -> Arc<BlobState> {
        Arc::new(BlobState::with_grants(
            id,
            geom,
            self.config.window,
            self.config.batched,
            self.config.grant_window,
        ))
    }

    /// `ALLOC`: create a blob, returning its globally unique id. Shard
    /// `s` of `S` hands out exactly the ids congruent to `s` modulo `S`,
    /// so two shards can never collide; the single-shard sequence is the
    /// classic `1, 2, 3, …`.
    pub fn create_blob(&self, geom: Geometry) -> Arc<BlobState> {
        let n = self.next_blob.fetch_add(1, Ordering::Relaxed);
        let id = self.id_of(n);
        let state = self.fresh_state(id, geom);
        self.blobs.insert(id, Arc::clone(&state));
        state
    }

    /// Recreate a blob under a known id (snapshot restore). The id
    /// allocator is advanced past it so future `create_blob` calls never
    /// collide. The id must belong to this shard's residue class.
    pub fn create_blob_with_id(&self, id: BlobId, geom: Geometry) -> Arc<BlobState> {
        let shards = u64::from(self.config.shards);
        debug_assert_eq!(
            id.0 % shards,
            u64::from(self.config.shard) % shards,
            "blob id {id:?} does not belong to shard {}/{shards}",
            self.config.shard
        );
        let n = (id.0 - self.id_base()) / shards + 1;
        self.next_blob.fetch_max(n + 1, Ordering::Relaxed);
        let state = self.fresh_state(id, geom);
        self.blobs.insert(id, Arc::clone(&state));
        state
    }

    /// Snapshot of every blob state (ordered by id, for deterministic
    /// serialization).
    pub fn states(&self) -> Vec<Arc<BlobState>> {
        let mut out: Vec<Arc<BlobState>> = Vec::new();
        for id in self.blobs.keys() {
            if let Some(s) = self.blobs.get_cloned(&id) {
                out.push(s);
            }
        }
        out.sort_by_key(|s| s.blob);
        out
    }

    /// Look up a blob.
    pub fn get(&self, blob: BlobId) -> Result<Arc<BlobState>, BlobError> {
        self.blobs
            .get_cloned(&blob)
            .ok_or(BlobError::UnknownBlob(blob))
    }

    /// Number of registered blobs.
    pub fn len(&self) -> usize {
        self.blobs.len()
    }

    /// True when no blob was allocated yet.
    pub fn is_empty(&self) -> bool {
        self.blobs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> Geometry {
        Geometry::new(8192, 1024).unwrap()
    }

    fn seg(o: u64, s: u64) -> Segment {
        Segment::new(o, s)
    }

    #[test]
    fn alloc_assign_complete_publish() {
        let reg = VersionRegistry::default();
        let b = reg.create_blob(geom());
        assert_eq!(b.latest(), 0);
        let t = b.request_version(WriteId(1), seg(0, 1024)).unwrap();
        assert_eq!(t.version, 1);
        assert_eq!(b.latest(), 0, "not published until complete");
        assert_eq!(b.complete_write(1).unwrap(), 1);
        assert_eq!(b.latest(), 1);
        assert_eq!(b.info().latest, 1);
    }

    #[test]
    fn out_of_order_publication() {
        let reg = VersionRegistry::default();
        let b = reg.create_blob(geom());
        let t1 = b.request_version(WriteId(1), seg(0, 1024)).unwrap();
        let t2 = b.request_version(WriteId(2), seg(1024, 1024)).unwrap();
        assert_eq!((t1.version, t2.version), (1, 2));
        // v2 completes first: nothing published (serializability).
        assert_eq!(b.complete_write(2).unwrap(), 0);
        assert_eq!(b.latest(), 0);
        assert_eq!(b.complete_write(1).unwrap(), 2);
        assert_eq!(b.latest(), 2);
    }

    #[test]
    fn border_links_see_in_flight_writes() {
        // Writer 1 (v1, whole blob) has NOT completed when writer 2 asks
        // for its ticket — yet v2's links must point at v1 (paper §IV.C:
        // "even when the previous version is being written concurrently").
        let reg = VersionRegistry::default();
        let b = reg.create_blob(geom());
        let _t1 = b.request_version(WriteId(1), seg(0, 8192)).unwrap();
        let t2 = b.request_version(WriteId(2), seg(0, 1024)).unwrap();
        assert_eq!(t2.version, 2);
        // All missing halves must link to version 1, not 0.
        for link in &t2.borders {
            let linked = link.left.or(link.right).unwrap();
            assert_eq!(linked, 1, "border {link:?} must link to in-flight v1");
        }
    }

    #[test]
    fn first_write_links_to_zero() {
        let reg = VersionRegistry::default();
        let b = reg.create_blob(geom());
        let t = b.request_version(WriteId(1), seg(0, 1024)).unwrap();
        for link in &t.borders {
            assert_eq!(link.left.or(link.right).unwrap(), 0);
        }
    }

    #[test]
    fn rejects_bad_segments_and_duplicates() {
        let reg = VersionRegistry::default();
        let b = reg.create_blob(geom());
        assert!(b.request_version(WriteId(1), seg(100, 1024)).is_err());
        assert!(b.request_version(WriteId(1), seg(0, 0)).is_err());
        let t = b.request_version(WriteId(1), seg(0, 1024)).unwrap();
        b.complete_write(t.version).unwrap();
        assert!(b.complete_write(t.version).is_err(), "duplicate completion");
        assert!(b.complete_write(99).is_err(), "unassigned version");
    }

    #[test]
    fn unknown_blob_lookup() {
        let reg = VersionRegistry::default();
        assert!(reg.get(BlobId(42)).is_err());
        assert!(reg.is_empty());
        let b = reg.create_blob(geom());
        assert_eq!(reg.get(b.blob).unwrap().blob, b.blob);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn window_overflow_is_refused() {
        let reg = VersionRegistry::new(4);
        let b = reg.create_blob(geom());
        for i in 0..4 {
            b.request_version(WriteId(i), seg(0, 1024)).unwrap();
        }
        // 5th in-flight write exceeds the window.
        assert!(b.request_version(WriteId(9), seg(0, 1024)).is_err());
        // Completing v1 frees space.
        b.complete_write(1).unwrap();
        assert!(b.request_version(WriteId(10), seg(0, 1024)).is_ok());
    }

    #[test]
    fn gc_plan_marks_superseded_chains() {
        let reg = VersionRegistry::default();
        let b = reg.create_blob(geom());
        // v1 writes everything; v2 and v3 rewrite page 0.
        for (w, s) in [(1u64, seg(0, 8192)), (2, seg(0, 1024)), (3, seg(0, 1024))] {
            let t = b.request_version(WriteId(w), s).unwrap();
            b.complete_write(t.version).unwrap();
        }
        let plan = b.gc_plan(3);
        // Dead pages: page 0 of v1 (write 1) and of v2 (write 2).
        assert_eq!(plan.dead_pages.len(), 2);
        let dead_writes: Vec<u64> = plan.dead_pages.iter().map(|(k, _)| k.write.0).collect();
        assert!(dead_writes.contains(&1) && dead_writes.contains(&2));
        // v1's interior nodes along page-0 path die too; its right-side
        // subtree survives.
        assert!(plan.dead_nodes.iter().all(|k| k.version < 3));
        assert!(
            !plan
                .dead_nodes
                .iter()
                .any(|k| k.offset >= 1024 && k.size == 1024),
            "no surviving leaf outside page 0 may be collected"
        );
        // Second plan with the same floor returns nothing new.
        assert!(b.gc_plan(3).dead_nodes.is_empty());
    }

    #[test]
    fn gc_plan_clamps_to_published() {
        let reg = VersionRegistry::default();
        let b = reg.create_blob(geom());
        let t = b.request_version(WriteId(1), seg(0, 1024)).unwrap();
        // Not completed yet: nothing may be planned.
        let plan = b.gc_plan(10);
        assert!(plan.dead_nodes.is_empty());
        b.complete_write(t.version).unwrap();
    }

    #[test]
    fn solo_writer_is_a_leader_of_one() {
        let reg = VersionRegistry::default();
        let b = reg.create_blob(geom());
        let before = blobseer_util::lockmeter::thread_snapshot();
        let g = b.request_version_grant(WriteId(1), seg(0, 1024)).unwrap();
        assert_eq!(g.ticket.version, 1);
        assert_eq!(g.acquired, 1, "uncontended request pays one acquisition");
        assert_eq!(g.group, 1);
        assert_eq!(before.since().version_assign, 1);
    }

    #[test]
    fn per_op_ablation_charges_every_writer() {
        let reg = VersionRegistry::with_config(RegistryConfig {
            batched: false,
            ..RegistryConfig::default()
        });
        let b = reg.create_blob(geom());
        let before = blobseer_util::lockmeter::thread_snapshot();
        for i in 1..=8u64 {
            let g = b.request_version_grant(WriteId(i), seg(0, 1024)).unwrap();
            assert_eq!((g.acquired, g.group), (1, 1));
            assert_eq!(g.ticket.version, i);
        }
        assert_eq!(before.since().version_assign, 8);
    }

    #[test]
    fn hot_blob_grants_batch_with_dense_total_order() {
        const WRITERS: u64 = 16;
        let reg = VersionRegistry::with_config(RegistryConfig {
            grant_window: Duration::from_millis(25),
            ..RegistryConfig::default()
        });
        let b = reg.create_blob(geom());
        let barrier = std::sync::Barrier::new(WRITERS as usize);
        let grants: Vec<(VersionGrant, u64)> = std::thread::scope(|s| {
            let handles: Vec<_> = (1..=WRITERS)
                .map(|w| {
                    let b = &b;
                    let barrier = &barrier;
                    s.spawn(move || {
                        let before = blobseer_util::lockmeter::thread_snapshot();
                        barrier.wait();
                        let g = b.request_version_grant(WriteId(w), seg(0, 1024)).unwrap();
                        (g, before.since().version_assign)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Dense total order: every version 1..=16 assigned exactly once.
        let mut versions: Vec<Version> = grants.iter().map(|(g, _)| g.ticket.version).collect();
        versions.sort_unstable();
        assert_eq!(versions, (1..=WRITERS).collect::<Vec<_>>());
        // Each thread's lockmeter delta matches its reported `acquired`.
        for (g, metered) in &grants {
            assert_eq!(u64::from(g.acquired), *metered);
        }
        // The whole storm was served by strictly fewer acquisitions than
        // ops — the batched-assignment invariant the bench gate holds.
        let total: u64 = grants.iter().map(|(g, _)| u64::from(g.acquired)).sum();
        assert!(
            (1..WRITERS).contains(&total),
            "16 writers must share grants (total acquisitions = {total})"
        );
        // History is complete: every version has its writer's record.
        for (g, _) in &grants {
            assert!(b.record(g.ticket.version).is_some());
        }
    }

    #[test]
    fn grant_overflow_fails_only_the_excess_cells() {
        // Window of 2, four concurrent writers: exactly two tickets may
        // be granted regardless of how the grant groups form.
        let reg = VersionRegistry::with_config(RegistryConfig {
            window: 2,
            grant_window: Duration::from_millis(10),
            ..RegistryConfig::default()
        });
        let b = reg.create_blob(geom());
        let barrier = std::sync::Barrier::new(4);
        let results: Vec<Result<WriteTicket, BlobError>> = std::thread::scope(|s| {
            let handles: Vec<_> = (1..=4u64)
                .map(|w| {
                    let b = &b;
                    let barrier = &barrier;
                    s.spawn(move || {
                        barrier.wait();
                        b.request_version(WriteId(w), seg(0, 1024))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut ok: Vec<Version> = results
            .iter()
            .filter_map(|r| r.as_ref().ok().map(|t| t.version))
            .collect();
        ok.sort_unstable();
        assert_eq!(ok, vec![1, 2], "exactly the window may be in flight");
        assert_eq!(results.iter().filter(|r| r.is_err()).count(), 2);
    }

    #[test]
    fn sharded_registries_allocate_disjoint_residue_classes() {
        let shards: Vec<VersionRegistry> = (0..4)
            .map(|s| {
                VersionRegistry::with_config(RegistryConfig {
                    shard: s,
                    shards: 4,
                    ..RegistryConfig::default()
                })
            })
            .collect();
        for (s, reg) in shards.iter().enumerate() {
            for _ in 0..3 {
                let b = reg.create_blob(geom());
                // Every id routes back to its shard with one modulo.
                assert_eq!(b.blob.0 % 4, s as u64);
                assert!(b.blob.0 >= 1);
            }
        }
        // Shard 1 produced 1, 5, 9; shard 0 produced 4, 8, 12.
        let ids = |s: usize| {
            let mut v: Vec<u64> = shards[s].states().iter().map(|b| b.blob.0).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(ids(0), vec![4, 8, 12]);
        assert_eq!(ids(1), vec![1, 5, 9]);
        assert_eq!(ids(3), vec![3, 7, 11]);
    }

    #[test]
    fn create_with_id_advances_the_sharded_allocator() {
        let reg = VersionRegistry::with_config(RegistryConfig {
            shard: 2,
            shards: 4,
            ..RegistryConfig::default()
        });
        // Restore blobs 2 and 10 (this shard's 1st and 3rd allocations).
        reg.create_blob_with_id(BlobId(10), geom());
        reg.create_blob_with_id(BlobId(2), geom());
        // A fresh allocation must skip past 10 → 14.
        let b = reg.create_blob(geom());
        assert_eq!(b.blob.0, 14);
    }

    #[test]
    fn single_shard_ids_are_the_classic_sequence() {
        let reg = VersionRegistry::default();
        assert_eq!(reg.create_blob(geom()).blob.0, 1);
        assert_eq!(reg.create_blob(geom()).blob.0, 2);
        reg.create_blob_with_id(BlobId(7), geom());
        assert_eq!(reg.create_blob(geom()).blob.0, 8);
    }
}
