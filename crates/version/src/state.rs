//! Per-blob version-manager state and the blob registry.
//!
//! The **only** serialization point of the whole system (paper §III.B:
//! "the only serialization occurs when interacting with the version
//! manager ... reduced to simply requiring a version number") is the
//! assignment mutex in [`BlobState::request_version`]: a critical section
//! of `O(log n)` interval-map queries — microseconds — executed once per
//! WRITE, never across I/O. Everything else (completion, publication,
//! latest-version reads, history access) is atomics only.

use crate::history::ConcurrentHistory;
use crate::publish::{PublishWindow, DEFAULT_WINDOW};
use blobseer_meta::write::{border_specs, borders_to_links};
use blobseer_meta::write_intervals;
use blobseer_proto::messages::{BlobInfo, GcPlan, WriteTicket};
use blobseer_proto::tree::PageKey;
use blobseer_proto::{BlobError, BlobId, Geometry, Segment, Version, WriteId};
use blobseer_util::{IntervalMap, ShardedMap};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// What the version manager remembers about one assigned write.
#[derive(Clone, Debug)]
pub struct WriteRecord {
    /// The (page-aligned) segment the write patched.
    pub seg: Segment,
    /// The write id under which its pages were stored.
    pub write: WriteId,
    completed: Arc<AtomicBool>,
}

impl WriteRecord {
    /// True once the write reported completion.
    pub fn is_completed(&self) -> bool {
        self.completed.load(Ordering::Acquire)
    }
}

/// Guarded by the assignment mutex.
struct AssignState {
    /// Next version to hand out (versions start at 1).
    next_version: Version,
    /// Latest writer per byte range — answers border-link queries.
    index: IntervalMap<Version>,
}

/// All version-manager state for one blob.
pub struct BlobState {
    /// The blob id.
    pub blob: BlobId,
    /// The blob's geometry.
    pub geom: Geometry,
    assign: Mutex<AssignState>,
    window: PublishWindow,
    history: ConcurrentHistory<WriteRecord>,
    /// Lowest version whose metadata may still exist (raised by GC).
    gc_floor: AtomicU64,
}

impl BlobState {
    /// Fresh blob state.
    pub fn new(blob: BlobId, geom: Geometry, window: usize) -> Self {
        Self {
            blob,
            geom,
            // lint: allow(unmetered-lock) — the paper-sanctioned VersionAssign mutex;
            // charged via record_version_assign at every acquisition in request_version
            assign: Mutex::new(AssignState {
                next_version: 1,
                index: IntervalMap::new(),
            }),
            window: PublishWindow::new(window),
            history: ConcurrentHistory::new(),
            gc_floor: AtomicU64::new(1),
        }
    }

    /// Latest published version (atomic load).
    pub fn latest(&self) -> Version {
        self.window.latest()
    }

    /// Blob descriptor.
    pub fn info(&self) -> BlobInfo {
        BlobInfo {
            blob: self.blob,
            total_size: self.geom.total_size,
            page_size: self.geom.page_size,
            latest: self.latest(),
        }
    }

    /// The record for version `v`, if assigned.
    pub fn record(&self, v: Version) -> Option<WriteRecord> {
        self.history.get(v)
    }

    /// Assign a version number and precompute border links (paper §IV.C).
    ///
    /// The ticket lets the writer weave its metadata **in complete
    /// isolation** with respect to other writers, even when lower versions
    /// are still being written: the version index is updated at
    /// *assignment* time, so a later writer's links already account for
    /// every in-flight earlier write.
    pub fn request_version(&self, write: WriteId, seg: Segment) -> Result<WriteTicket, BlobError> {
        self.geom.validate_aligned(&seg)?;
        let (version, links) = {
            // The paper-sanctioned serialization point: charged to the
            // lock meter under its own class so the tier-1 suite can
            // assert a WRITE takes exactly this lock and nothing else.
            blobseer_util::lockmeter::record_version_assign();
            let mut st = self.assign.lock();
            let v = st.next_version;
            if self.window.would_overflow(v) {
                return Err(BlobError::Internal("too many in-flight writes"));
            }
            let specs = border_specs(&self.geom, &seg);
            let links = borders_to_links(&specs, |child| {
                st.index.range_max(child.offset, child.end())
            });
            st.index.assign(seg.offset, seg.end(), v);
            st.next_version += 1;
            (v, links)
        };
        let rec = WriteRecord {
            seg,
            write,
            completed: Arc::new(AtomicBool::new(false)),
        };
        let fresh = self.history.set(version, rec);
        debug_assert!(fresh, "version numbers are unique");
        Ok(WriteTicket {
            version,
            borders: links,
        })
    }

    /// A writer reports success; publication advances over the contiguous
    /// completed prefix. Returns the latest published version.
    pub fn complete_write(&self, v: Version) -> Result<Version, BlobError> {
        let rec = self
            .history
            .get(v)
            .ok_or(BlobError::Internal("completion for unassigned version"))?;
        if rec.completed.swap(true, Ordering::AcqRel) {
            return Err(BlobError::Internal("duplicate completion"));
        }
        Ok(self.window.complete(v))
    }

    /// Block until version `v` is published (test/QoS helper).
    pub fn wait_published(&self, v: Version) {
        self.window.wait_published(v);
    }

    /// Compute the GC plan discarding versions below `keep_from`
    /// (clamped to the published watermark). See DESIGN.md §3 for the
    /// reachability rule. Raises the GC floor so subsequent plans do not
    /// re-report the same nodes.
    pub fn gc_plan(&self, keep_from: Version) -> GcPlan {
        let published = self.latest();
        let keep_from = keep_from.min(published).max(1);
        let floor = self.gc_floor.load(Ordering::Acquire);
        if keep_from <= floor {
            return GcPlan::default();
        }
        // Rebuild the version index as of `keep_from`.
        let mut at_k: IntervalMap<Version> = IntervalMap::new();
        self.history.for_each_up_to(keep_from, |v, rec| {
            at_k.assign(rec.seg.offset, rec.seg.end(), v);
        });
        let mut plan = GcPlan::default();
        self.history.for_each_up_to(keep_from - 1, |v, rec| {
            if v < floor {
                return;
            }
            for iv in write_intervals(&self.geom, &rec.seg) {
                let superseded = at_k.range_max(iv.offset, iv.end()).unwrap_or(0) > v;
                if !superseded {
                    continue;
                }
                plan.dead_nodes.push(blobseer_proto::NodeKey {
                    blob: self.blob,
                    version: v,
                    offset: iv.offset,
                    size: iv.size,
                });
                if iv.size == self.geom.page_size {
                    let key = PageKey {
                        blob: self.blob,
                        write: rec.write,
                        index: iv.offset / self.geom.page_size,
                    };
                    // Replica locations are resolved by the GC executor
                    // from the dead leaf nodes before removal.
                    plan.dead_pages.push((key, Vec::new()));
                }
            }
        });
        self.gc_floor.store(keep_from, Ordering::Release);
        plan
    }
}

/// The version manager's blob table: `ALLOC` creates entries, everything
/// else looks them up. Lookups are sharded reads; creation is rare.
pub struct VersionRegistry {
    blobs: ShardedMap<BlobId, Arc<BlobState>>,
    next_blob: AtomicU64,
    window: usize,
}

impl Default for VersionRegistry {
    fn default() -> Self {
        Self::new(DEFAULT_WINDOW)
    }
}

impl VersionRegistry {
    /// Create a registry whose blobs allow `window` in-flight writes.
    pub fn new(window: usize) -> Self {
        Self {
            blobs: ShardedMap::with_shards(16),
            next_blob: AtomicU64::new(1),
            window,
        }
    }

    /// `ALLOC`: create a blob, returning its globally unique id.
    pub fn create_blob(&self, geom: Geometry) -> Arc<BlobState> {
        let id = BlobId(self.next_blob.fetch_add(1, Ordering::Relaxed));
        let state = Arc::new(BlobState::new(id, geom, self.window));
        self.blobs.insert(id, Arc::clone(&state));
        state
    }

    /// Recreate a blob under a known id (snapshot restore). The id
    /// allocator is advanced past it so future `create_blob` calls never
    /// collide.
    pub fn create_blob_with_id(&self, id: BlobId, geom: Geometry) -> Arc<BlobState> {
        self.next_blob.fetch_max(id.0 + 1, Ordering::Relaxed);
        let state = Arc::new(BlobState::new(id, geom, self.window));
        self.blobs.insert(id, Arc::clone(&state));
        state
    }

    /// Snapshot of every blob state (ordered by id, for deterministic
    /// serialization).
    pub fn states(&self) -> Vec<Arc<BlobState>> {
        let mut out: Vec<Arc<BlobState>> = Vec::new();
        for id in self.blobs.keys() {
            if let Some(s) = self.blobs.get_cloned(&id) {
                out.push(s);
            }
        }
        out.sort_by_key(|s| s.blob);
        out
    }

    /// Look up a blob.
    pub fn get(&self, blob: BlobId) -> Result<Arc<BlobState>, BlobError> {
        self.blobs
            .get_cloned(&blob)
            .ok_or(BlobError::UnknownBlob(blob))
    }

    /// Number of registered blobs.
    pub fn len(&self) -> usize {
        self.blobs.len()
    }

    /// True when no blob was allocated yet.
    pub fn is_empty(&self) -> bool {
        self.blobs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> Geometry {
        Geometry::new(8192, 1024).unwrap()
    }

    fn seg(o: u64, s: u64) -> Segment {
        Segment::new(o, s)
    }

    #[test]
    fn alloc_assign_complete_publish() {
        let reg = VersionRegistry::default();
        let b = reg.create_blob(geom());
        assert_eq!(b.latest(), 0);
        let t = b.request_version(WriteId(1), seg(0, 1024)).unwrap();
        assert_eq!(t.version, 1);
        assert_eq!(b.latest(), 0, "not published until complete");
        assert_eq!(b.complete_write(1).unwrap(), 1);
        assert_eq!(b.latest(), 1);
        assert_eq!(b.info().latest, 1);
    }

    #[test]
    fn out_of_order_publication() {
        let reg = VersionRegistry::default();
        let b = reg.create_blob(geom());
        let t1 = b.request_version(WriteId(1), seg(0, 1024)).unwrap();
        let t2 = b.request_version(WriteId(2), seg(1024, 1024)).unwrap();
        assert_eq!((t1.version, t2.version), (1, 2));
        // v2 completes first: nothing published (serializability).
        assert_eq!(b.complete_write(2).unwrap(), 0);
        assert_eq!(b.latest(), 0);
        assert_eq!(b.complete_write(1).unwrap(), 2);
        assert_eq!(b.latest(), 2);
    }

    #[test]
    fn border_links_see_in_flight_writes() {
        // Writer 1 (v1, whole blob) has NOT completed when writer 2 asks
        // for its ticket — yet v2's links must point at v1 (paper §IV.C:
        // "even when the previous version is being written concurrently").
        let reg = VersionRegistry::default();
        let b = reg.create_blob(geom());
        let _t1 = b.request_version(WriteId(1), seg(0, 8192)).unwrap();
        let t2 = b.request_version(WriteId(2), seg(0, 1024)).unwrap();
        assert_eq!(t2.version, 2);
        // All missing halves must link to version 1, not 0.
        for link in &t2.borders {
            let linked = link.left.or(link.right).unwrap();
            assert_eq!(linked, 1, "border {link:?} must link to in-flight v1");
        }
    }

    #[test]
    fn first_write_links_to_zero() {
        let reg = VersionRegistry::default();
        let b = reg.create_blob(geom());
        let t = b.request_version(WriteId(1), seg(0, 1024)).unwrap();
        for link in &t.borders {
            assert_eq!(link.left.or(link.right).unwrap(), 0);
        }
    }

    #[test]
    fn rejects_bad_segments_and_duplicates() {
        let reg = VersionRegistry::default();
        let b = reg.create_blob(geom());
        assert!(b.request_version(WriteId(1), seg(100, 1024)).is_err());
        assert!(b.request_version(WriteId(1), seg(0, 0)).is_err());
        let t = b.request_version(WriteId(1), seg(0, 1024)).unwrap();
        b.complete_write(t.version).unwrap();
        assert!(b.complete_write(t.version).is_err(), "duplicate completion");
        assert!(b.complete_write(99).is_err(), "unassigned version");
    }

    #[test]
    fn unknown_blob_lookup() {
        let reg = VersionRegistry::default();
        assert!(reg.get(BlobId(42)).is_err());
        assert!(reg.is_empty());
        let b = reg.create_blob(geom());
        assert_eq!(reg.get(b.blob).unwrap().blob, b.blob);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn window_overflow_is_refused() {
        let reg = VersionRegistry::new(4);
        let b = reg.create_blob(geom());
        for i in 0..4 {
            b.request_version(WriteId(i), seg(0, 1024)).unwrap();
        }
        // 5th in-flight write exceeds the window.
        assert!(b.request_version(WriteId(9), seg(0, 1024)).is_err());
        // Completing v1 frees space.
        b.complete_write(1).unwrap();
        assert!(b.request_version(WriteId(10), seg(0, 1024)).is_ok());
    }

    #[test]
    fn gc_plan_marks_superseded_chains() {
        let reg = VersionRegistry::default();
        let b = reg.create_blob(geom());
        // v1 writes everything; v2 and v3 rewrite page 0.
        for (w, s) in [(1u64, seg(0, 8192)), (2, seg(0, 1024)), (3, seg(0, 1024))] {
            let t = b.request_version(WriteId(w), s).unwrap();
            b.complete_write(t.version).unwrap();
        }
        let plan = b.gc_plan(3);
        // Dead pages: page 0 of v1 (write 1) and of v2 (write 2).
        assert_eq!(plan.dead_pages.len(), 2);
        let dead_writes: Vec<u64> = plan.dead_pages.iter().map(|(k, _)| k.write.0).collect();
        assert!(dead_writes.contains(&1) && dead_writes.contains(&2));
        // v1's interior nodes along page-0 path die too; its right-side
        // subtree survives.
        assert!(plan.dead_nodes.iter().all(|k| k.version < 3));
        assert!(
            !plan
                .dead_nodes
                .iter()
                .any(|k| k.offset >= 1024 && k.size == 1024),
            "no surviving leaf outside page 0 may be collected"
        );
        // Second plan with the same floor returns nothing new.
        assert!(b.gc_plan(3).dead_nodes.is_empty());
    }

    #[test]
    fn gc_plan_clamps_to_published() {
        let reg = VersionRegistry::default();
        let b = reg.create_blob(geom());
        let t = b.request_version(WriteId(1), seg(0, 1024)).unwrap();
        // Not completed yet: nothing may be planned.
        let plan = b.gc_plan(10);
        assert!(plan.dead_nodes.is_empty());
        b.complete_write(t.version).unwrap();
    }
}
