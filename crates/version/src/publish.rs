//! The lock-free publish window (paper §II liveness + §III.B step 7).
//!
//! WRITE completions arrive in arbitrary order (writers proceed fully in
//! parallel after version assignment), but a version may only become
//! visible when **all lower versions are complete** — that is what makes
//! the snapshots globally serializable. This module tracks completion in a
//! fixed ring of atomic flags and advances the published watermark with
//! CAS; no mutex is ever taken on this path.

use blobseer_util::sync::SpinWait;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

const SLOT_EMPTY: u8 = 0;
const SLOT_COMPLETE: u8 = 1;

/// Default maximum number of in-flight (assigned but unpublished) writes.
pub const DEFAULT_WINDOW: usize = 1 << 14;

/// Tracks which versions completed and what the latest published version
/// is.
pub struct PublishWindow {
    /// `published` = highest `v` such that every version `<= v` completed.
    published: AtomicU64,
    /// Ring of completion flags; slot `v % len` belongs to version `v`
    /// while `v - published <= len`.
    slots: Box<[AtomicU8]>,
}

impl PublishWindow {
    /// Create with the given in-flight capacity (rounded up to a power of
    /// two).
    pub fn new(window: usize) -> Self {
        let n = window.max(2).next_power_of_two();
        Self {
            published: AtomicU64::new(0),
            slots: (0..n).map(|_| AtomicU8::new(SLOT_EMPTY)).collect(),
        }
    }

    /// In-flight capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Latest published version.
    pub fn latest(&self) -> u64 {
        self.published.load(Ordering::Acquire)
    }

    /// True if assigning `v` now would exceed the window (the caller — the
    /// assignment path — should refuse or retry).
    pub fn would_overflow(&self, v: u64) -> bool {
        v > self.latest() + self.slots.len() as u64
    }

    #[inline]
    fn slot(&self, v: u64) -> &AtomicU8 {
        &self.slots[(v as usize) & (self.slots.len() - 1)]
    }

    /// Mark version `v` complete and advance the watermark as far as the
    /// contiguous prefix reaches. Returns the published version after this
    /// call (which may already include later completions by other
    /// threads).
    ///
    /// Lock-free: completers race on the watermark CAS; whoever wins the
    /// `p -> p+1` step owns clearing slot `p+1` for ring reuse.
    pub fn complete(&self, v: u64) -> u64 {
        debug_assert!(v >= 1);
        debug_assert!(
            !self.would_overflow(v),
            "version {v} outside publish window (published {})",
            self.latest()
        );
        self.slot(v).store(SLOT_COMPLETE, Ordering::Release);
        self.advance()
    }

    /// Try to advance the watermark over every contiguous completed
    /// version. Safe to call from any thread at any time.
    pub fn advance(&self) -> u64 {
        loop {
            let p = self.published.load(Ordering::Acquire);
            let next = p + 1;
            if self.slot(next).load(Ordering::Acquire) != SLOT_COMPLETE {
                return p;
            }
            if self
                .published
                .compare_exchange(p, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // We own the transition past `next`: release its slot for
                // version `next + len`.
                self.slot(next).store(SLOT_EMPTY, Ordering::Release);
            }
            // On CAS failure another thread advanced; re-check from the new
            // watermark either way.
        }
    }

    /// Spin until `v` is published (used by tests and by read-your-write
    /// helpers). Bounded by overall system liveness: every assigned
    /// version eventually completes.
    pub fn wait_published(&self, v: u64) {
        let mut spin = SpinWait::new();
        while self.latest() < v {
            spin.spin();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn in_order_completion() {
        let w = PublishWindow::new(8);
        assert_eq!(w.latest(), 0);
        assert_eq!(w.complete(1), 1);
        assert_eq!(w.complete(2), 2);
        assert_eq!(w.complete(3), 3);
    }

    #[test]
    fn out_of_order_completion_holds_watermark() {
        let w = PublishWindow::new(8);
        assert_eq!(w.complete(2), 0, "v1 missing, nothing published");
        assert_eq!(w.complete(3), 0);
        assert_eq!(w.complete(1), 3, "v1 unlocks the whole prefix");
    }

    #[test]
    fn watermark_is_monotonic_under_races() {
        for _ in 0..20 {
            let w = Arc::new(PublishWindow::new(1 << 10));
            let n = 400u64;
            let ts: Vec<_> = (0..4)
                .map(|t| {
                    let w = Arc::clone(&w);
                    thread::spawn(move || {
                        // Each thread completes an interleaved subset.
                        let mut vs: Vec<u64> = (1..=n).filter(|v| v % 4 == t).collect();
                        // Scramble order within the thread.
                        vs.reverse();
                        for v in vs {
                            w.complete(v);
                        }
                    })
                })
                .collect();
            for t in ts {
                t.join().unwrap();
            }
            assert_eq!(w.advance(), n);
            assert_eq!(w.latest(), n);
        }
    }

    #[test]
    fn ring_reuse_across_window_wraps() {
        let w = PublishWindow::new(4); // tiny ring
        for v in 1..=100u64 {
            assert_eq!(w.complete(v), v, "in-order completion wraps cleanly");
        }
        assert_eq!(w.latest(), 100);
    }

    #[test]
    fn overflow_detection() {
        let w = PublishWindow::new(4);
        assert!(!w.would_overflow(4));
        assert!(w.would_overflow(5));
        w.complete(1);
        assert!(!w.would_overflow(5));
    }

    #[test]
    fn wait_published_returns_when_reached() {
        let w = Arc::new(PublishWindow::new(16));
        let w2 = Arc::clone(&w);
        let h = thread::spawn(move || {
            w2.wait_published(3);
            w2.latest()
        });
        thread::sleep(std::time::Duration::from_millis(5));
        w.complete(2);
        w.complete(1);
        w.complete(3);
        assert!(h.join().unwrap() >= 3);
    }
}
