//! # blobseer-version
//!
//! The version manager's core logic, factored out of any service/transport
//! so it can be tested (and stress-tested) directly:
//!
//! * [`history`] — append-only concurrent history of write records with
//!   wait-capable slots;
//! * [`publish`] — the lock-free publish window: out-of-order completions,
//!   CAS-advanced watermark, global serializability of snapshots;
//! * [`state`] — per-blob assignment state (the system's single, tiny
//!   serialization point) and the blob registry;
//! * [`wal`] — the write-ahead journal making "acknowledged means
//!   recoverable" hold for blob creation and version publication across
//!   whole-cluster cold restarts.
//!
//! The paper's concurrency claims map onto this crate as follows: version
//! assignment is `Mutex`-guarded for a few microseconds (§III.B concedes
//! this single serialization), publication and reads of the latest version
//! are pure atomics, and the border-link precomputation (§IV.C) happens
//! inside the assignment critical section against the version index, which
//! is what lets any number of concurrent writers weave metadata without
//! ever observing each other.
//!
//! ## PR 10: the grant protocol kills the last per-op lock
//!
//! Since PR 10 even the sanctioned assignment mutex is no longer paid
//! per write. Writers that collide on a hot blob form a **grant group**:
//! one leader acquires the mutex once and assigns a contiguous run of
//! versions to the whole group ([`state::BlobState::request_version_grant`]),
//! and the WAL flushes the group's publish records as one batch under
//! one commit marker ([`wal::VersionLog::record_publish_grouped`]). The
//! steady-state `version_assign_locks_per_op` therefore drops to
//! `1/group` under contention — the CI bench gate holds it below 1.0 at
//! 16+ concurrent writers. For horizontal scale across *distinct* blobs,
//! the registry itself shards by blob id residue
//! ([`state::RegistryConfig::shards`]): shard `s` of `S` allocates and
//! serves exactly the ids `≡ s (mod S)`, so any client can route with
//! one modulo and each shard journals/replays independently.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod history;
pub mod publish;
pub mod recovery;
pub mod state;
pub mod wal;

pub use history::ConcurrentHistory;
pub use publish::{PublishWindow, DEFAULT_WINDOW};
pub use recovery::{restore, restore_with, snapshot, BlobSnapshot};
pub use state::{BlobState, RegistryConfig, VersionGrant, VersionRegistry, WriteRecord};
pub use wal::{PublishEntry, VersionLog};
