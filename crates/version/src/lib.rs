//! # blobseer-version
//!
//! The version manager's core logic, factored out of any service/transport
//! so it can be tested (and stress-tested) directly:
//!
//! * [`history`] — append-only concurrent history of write records with
//!   wait-capable slots;
//! * [`publish`] — the lock-free publish window: out-of-order completions,
//!   CAS-advanced watermark, global serializability of snapshots;
//! * [`state`] — per-blob assignment state (the system's single, tiny
//!   serialization point) and the blob registry;
//! * [`wal`] — the write-ahead journal making "acknowledged means
//!   recoverable" hold for blob creation and version publication across
//!   whole-cluster cold restarts.
//!
//! The paper's concurrency claims map onto this crate as follows: version
//! assignment is `Mutex`-guarded for a few microseconds (§III.B concedes
//! this single serialization), publication and reads of the latest version
//! are pure atomics, and the border-link precomputation (§IV.C) happens
//! inside the assignment critical section against the version index, which
//! is what lets any number of concurrent writers weave metadata without
//! ever observing each other.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod history;
pub mod publish;
pub mod recovery;
pub mod state;
pub mod wal;

pub use history::ConcurrentHistory;
pub use publish::{PublishWindow, DEFAULT_WINDOW};
pub use recovery::{restore, snapshot, BlobSnapshot};
pub use state::{BlobState, VersionRegistry, WriteRecord};
pub use wal::VersionLog;
