//! The version manager's durability seam: an incremental write-ahead
//! log over the shared record-then-commit engine
//! ([`blobseer_util::recordlog`]), closing the paper's §VI gap ("the
//! version manager ... currently a single point of failure") for cold
//! restarts.
//!
//! ## Log format
//!
//! One generation file `version.g<N>.log` of 48-byte-header records:
//!
//! * **snapshot** (`BSVRSNAP`): payload is a [`crate::recovery`]
//!   snapshot of the whole registry. At most one per generation, always
//!   first — written by the checkpoint-on-open rewrite.
//! * **create** (`BSVRCRE1`): `a` = blob id, `b` = total size, `c` =
//!   page size; no payload. Appended *before* the blob id is
//!   acknowledged to the client.
//! * **publish** (`BSVRPUB1`): `a` = blob id, `b` = version, `c` =
//!   write id; payload = 16 LE bytes `(offset, size)` of the patched
//!   segment. Appended **before** the version becomes observable
//!   (write-ahead): a reader that ever saw `latest >= v` is guaranteed
//!   to see `v` again after a crash.
//! * group-commit markers / tombstones as defined by the engine.
//!
//! ## Crash model and replay
//!
//! `SIGKILL` at any byte offset. Replay surfaces the committed prefix:
//! the snapshot (if any) seeds the registry, creates re-register blobs,
//! and publishes are re-applied **per blob in contiguous version order**
//! from the published watermark up. A gap (version assigned to a writer
//! that never completed — its publish record is absent) ends the
//! contiguous prefix; later buffered publishes are dropped, exactly
//! like in-flight writes in a [`crate::recovery`] failover. Because a
//! write-ahead publish may be committed yet never acknowledged, those
//! dropped version numbers will be handed out again — which is why
//! [`VersionLog::open`] always **checkpoints**: it rewrites the log to
//! a single snapshot of the surfaced state, so stale publish records
//! can never resurface under a reused version number, and replaying
//! twice is identical to replaying once.
//!
//! Committed-but-undecodable bytes are a typed
//! [`BlobError::Recovery`] carrying file + offset, never a panic.

use crate::recovery::{restore_with, snapshot};
use crate::state::{RegistryConfig, VersionRegistry};
use blobseer_proto::{BlobError, BlobId, Geometry, Segment, Version, WriteId};
use blobseer_util::recordlog::{LogError, OwnedRecord, Record, RecordLog, RecordLogOptions};
use parking_lot::{Condvar, Mutex};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

/// Magic of a blob-create record ("BSVRCRE1").
pub const VERSION_CREATE_MAGIC: u64 = 0x4253_5652_4352_4531;

/// Magic of a publish record ("BSVRPUB1").
pub const VERSION_PUBLISH_MAGIC: u64 = 0x4253_5652_5055_4231;

/// Magic of a registry-snapshot record ("BSVRSNAP").
pub const VERSION_SNAPSHOT_MAGIC: u64 = 0x4253_5652_534e_4150;

/// Map an engine error onto the typed recovery error.
fn log_err(path: &Path, e: LogError) -> BlobError {
    BlobError::Recovery {
        file: path.display().to_string(),
        offset: 0,
        detail: match e {
            LogError::Io(op) => op,
            LogError::Poisoned => "version log poisoned",
            LogError::CommitFailed => "version log commit failed",
        },
    }
}

/// One publish to journal: `(blob, version, write, segment)`.
#[derive(Clone, Copy, Debug)]
pub struct PublishEntry {
    /// The blob the write patched.
    pub blob: BlobId,
    /// The version being published.
    pub version: Version,
    /// The write id its pages were stored under.
    pub write: WriteId,
    /// The patched segment.
    pub seg: Segment,
}

/// One parked publisher in the WAL's grant-batching queue.
struct PublishCell {
    entry: PublishEntry,
    slot: Mutex<Option<Result<(), BlobError>>>,
    done: Condvar,
}

/// The publish combiner queue (same leading-flag discipline as the
/// version grant queue in [`crate::state`]).
struct PublishQueue {
    pending: Vec<Arc<PublishCell>>,
    leading: bool,
}

/// The version manager's write-ahead journal. See the module docs for
/// the record format and replay rules.
pub struct VersionLog {
    log: RecordLog,
    /// Combine concurrent publish appends into one `BSVRPUB1` batch
    /// under one commit marker (off in the per-op ablation).
    batched: bool,
    publishers: Mutex<PublishQueue>,
}

impl std::fmt::Debug for VersionLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VersionLog")
            .field("log", &self.log)
            .field("batched", &self.batched)
            .finish_non_exhaustive()
    }
}

impl VersionLog {
    /// [`open_with`](Self::open_with) under a default-config registry
    /// with the given publish `window`.
    pub fn open(
        dir: &Path,
        opts: RecordLogOptions,
        window: usize,
    ) -> Result<(Self, VersionRegistry), BlobError> {
        Self::open_with(
            dir,
            opts,
            RegistryConfig {
                window,
                ..RegistryConfig::default()
            },
        )
    }

    /// Open (or create) the journal under `dir`, replay it into a fresh
    /// [`VersionRegistry`] under `config` (one shard of a sharded
    /// version manager replays only its own journal), then checkpoint:
    /// the on-disk log is rewritten to a single snapshot of the surfaced
    /// state (making replay idempotent and version-number reuse safe —
    /// see module docs).
    pub fn open_with(
        dir: &Path,
        opts: RecordLogOptions,
        config: RegistryConfig,
    ) -> Result<(Self, VersionRegistry), BlobError> {
        let (mut log, records) =
            RecordLog::open(dir, "version", opts).map_err(|e| log_err(dir, e))?;
        let registry = replay(&log, &records, config)?;
        // Checkpoint-on-open: collapse history to one snapshot record.
        let snap = snapshot(&registry);
        log.rewrite(&[Record {
            magic: VERSION_SNAPSHOT_MAGIC,
            a: 0,
            b: 0,
            c: 0,
            payload: &snap,
        }])
        .map_err(|e| log_err(dir, e))?;
        Ok((
            Self {
                log,
                batched: config.batched,
                // lint: allow(unmetered-lock) — publish-combiner plumbing: held
                // for queue push/take only, never across the append or fsync;
                // the durable append itself is the engine's metered seam
                publishers: Mutex::new(PublishQueue {
                    pending: Vec::new(),
                    leading: false,
                }),
            },
            registry,
        ))
    }

    /// Journal a blob creation. Must return before the blob id is
    /// acknowledged.
    pub fn record_create(&self, blob: BlobId, geom: &Geometry) -> Result<(), BlobError> {
        self.log
            .append(Record {
                magic: VERSION_CREATE_MAGIC,
                a: blob.0,
                b: geom.total_size,
                c: geom.page_size,
                payload: &[],
            })
            .map_err(|e| log_err(self.log.path(), e))
    }

    /// Journal a publication (write-ahead: call **before** the version
    /// becomes observable via `complete_write`).
    pub fn record_publish(
        &self,
        blob: BlobId,
        version: Version,
        write: WriteId,
        seg: &Segment,
    ) -> Result<(), BlobError> {
        self.record_publish_batch(&[PublishEntry {
            blob,
            version,
            write,
            seg: *seg,
        }])
    }

    /// Journal a batch of publications contiguously under **one** commit
    /// marker (one optional fsync): the durability half of a version
    /// grant. All-or-nothing — on error no entry is durable, so no
    /// member of the grant may be acknowledged.
    pub fn record_publish_batch(&self, entries: &[PublishEntry]) -> Result<(), BlobError> {
        if entries.is_empty() {
            return Ok(());
        }
        let payloads: Vec<[u8; 16]> = entries
            .iter()
            .map(|e| {
                let mut p = [0u8; 16];
                p[..8].copy_from_slice(&e.seg.offset.to_le_bytes());
                p[8..].copy_from_slice(&e.seg.size.to_le_bytes());
                p
            })
            .collect();
        let records: Vec<Record<'_>> = entries
            .iter()
            .zip(&payloads)
            .map(|(e, p)| Record {
                magic: VERSION_PUBLISH_MAGIC,
                a: e.blob.0,
                b: e.version,
                c: e.write.0,
                payload: p,
            })
            .collect();
        self.log
            .append_batch(&records)
            .map_err(|e| log_err(self.log.path(), e))
    }

    /// Journal one publication through the **publish combiner**: callers
    /// that arrive while another append is in flight park on a queue,
    /// and the leader flushes the whole group as one
    /// [`record_publish_batch`](Self::record_publish_batch) — one commit
    /// marker, one fsync, for N publications. The durability guarantee
    /// is unchanged: this returns only once a commit marker covers the
    /// caller's record (or with the batch's error, in which case nothing
    /// in the batch is durable and no member may ack). With batching
    /// disabled (the per-op ablation) this is plain
    /// [`record_publish`](Self::record_publish).
    pub fn record_publish_grouped(
        &self,
        blob: BlobId,
        version: Version,
        write: WriteId,
        seg: &Segment,
    ) -> Result<(), BlobError> {
        let entry = PublishEntry {
            blob,
            version,
            write,
            seg: *seg,
        };
        if !self.batched {
            return self.record_publish_batch(&[entry]);
        }
        let cell = {
            // lint: allow(unmetered-lock) — publish-combiner queue push/leader
            // election only, never held across the durable append
            let mut q = self.publishers.lock();
            if q.leading {
                let cell = Arc::new(PublishCell {
                    entry,
                    // lint: allow(unmetered-lock) — parked publisher's handoff
                    // slot; the durable work is metered at the engine's seam
                    slot: Mutex::new(None),
                    done: Condvar::new(),
                });
                q.pending.push(Arc::clone(&cell));
                Some(cell)
            } else {
                q.leading = true;
                None
            }
        };
        if let Some(cell) = cell {
            // lint: allow(unmetered-lock) — parked publisher's own handoff slot;
            // the durable work is the leader's single batched append
            let mut slot = cell.slot.lock();
            while slot.is_none() {
                cell.done.wait(&mut slot);
            }
            // lint: allow(panic-on-serving-path) — the wait loop above exits only
            // once the slot is `Some`, so the take can never observe `None`
            return slot.take().expect("slot filled before notify");
        }
        // Leader: flush rounds of (own entry + everyone queued) until
        // the queue drains; release leadership only under the queue lock
        // after an empty check, so no parked cell is stranded.
        let mut own: Option<Result<(), BlobError>> = None;
        loop {
            let batch: Vec<Arc<PublishCell>> = {
                // lint: allow(unmetered-lock) — combiner-queue drain/leadership
                // release only, never held across the durable append
                let mut q = self.publishers.lock();
                if own.is_some() && q.pending.is_empty() {
                    q.leading = false;
                    break;
                }
                std::mem::take(&mut q.pending)
            };
            let mut entries: Vec<PublishEntry> = Vec::with_capacity(batch.len() + 1);
            if own.is_none() {
                entries.push(entry);
            }
            entries.extend(batch.iter().map(|c| c.entry));
            let result = self.record_publish_batch(&entries);
            if own.is_none() {
                own = Some(result.clone());
            }
            for cell in &batch {
                // lint: allow(unmetered-lock) — publisher handoff slot fill +
                // notify; the durable work was the one batched append above
                let mut slot = cell.slot.lock();
                *slot = Some(result.clone());
                cell.done.notify_one();
            }
        }
        // lint: allow(panic-on-serving-path) — the loop cannot break until `own`
        // is `Some` (the first flush always covers the leader's own entry)
        own.expect("leader flushed its own entry")
    }

    /// Journal size in bytes.
    pub fn log_bytes(&self) -> u64 {
        self.log.log_bytes()
    }
}

/// Replay committed records into a fresh registry. Publishes are
/// buffered per blob and applied as a contiguous version prefix; gaps
/// (never-acknowledged in-flight writes) drop the tail.
fn replay(
    log: &RecordLog,
    records: &[OwnedRecord],
    config: RegistryConfig,
) -> Result<VersionRegistry, BlobError> {
    let recovery = |offset: u64, detail: &'static str| BlobError::Recovery {
        file: log.path().display().to_string(),
        offset,
        detail,
    };
    let mut registry = VersionRegistry::with_config(config);
    // blob -> version -> (write, segment), sorted by version.
    let mut pending: BTreeMap<u64, BTreeMap<u64, (u64, Segment)>> = BTreeMap::new();
    for rec in records {
        match rec.magic {
            VERSION_SNAPSHOT_MAGIC => {
                // A snapshot resets everything before it.
                registry = restore_with(&rec.payload, config)
                    .map_err(|_| recovery(rec.offset, "undecodable registry snapshot"))?;
                pending.clear();
            }
            VERSION_CREATE_MAGIC => {
                let geom = Geometry::new(rec.b, rec.c)
                    .map_err(|_| recovery(rec.offset, "invalid geometry in create record"))?;
                if registry.get(BlobId(rec.a)).is_err() {
                    registry.create_blob_with_id(BlobId(rec.a), geom);
                }
            }
            VERSION_PUBLISH_MAGIC => {
                if rec.payload.len() != 16 {
                    return Err(recovery(rec.offset, "malformed publish payload"));
                }
                // lint: allow(panic-on-serving-path) — payload length was checked
                // to be exactly 16 just above
                let offset = u64::from_le_bytes(rec.payload[..8].try_into().unwrap());
                // lint: allow(panic-on-serving-path) — same 16-byte check as above
                let size = u64::from_le_bytes(rec.payload[8..].try_into().unwrap());
                // Creates are logged before their id escapes, so a
                // committed publish for an unknown blob is corruption.
                registry
                    .get(BlobId(rec.a))
                    .map_err(|_| recovery(rec.offset, "publish for unknown blob"))?;
                pending
                    .entry(rec.a)
                    .or_default()
                    .insert(rec.b, (rec.c, Segment::new(offset, size)));
            }
            _ => return Err(recovery(rec.offset, "unknown version record magic")),
        }
    }
    for (blob, versions) in pending {
        let state = registry.get(BlobId(blob))?;
        let mut next = state.latest() + 1;
        while let Some((write, seg)) = versions.get(&next) {
            let ticket = state.request_version(WriteId(*write), *seg)?;
            debug_assert_eq!(ticket.version, next);
            state.complete_write(ticket.version)?;
            next += 1;
        }
        // Anything past the first gap was write-ahead-logged but never
        // observable: dropped, like in-flight writes in a failover.
    }
    Ok(registry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::publish::DEFAULT_WINDOW;
    use blobseer_util::recordlog::{encode_header, payload_digest, write_at, COMMIT_MAGIC};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "verwal-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn geom() -> Geometry {
        Geometry::new(8192, 1024).unwrap()
    }

    fn opts() -> RecordLogOptions {
        RecordLogOptions::default()
    }

    /// Drive one create + n publishes through the durable protocol the
    /// way the service does: log create, then per write log publish
    /// before completing.
    fn publish_n(dir: &Path, n: u64) -> BlobId {
        let (wal, registry) = VersionLog::open(dir, opts(), DEFAULT_WINDOW).unwrap();
        let state = registry.create_blob(geom());
        wal.record_create(state.blob, &state.geom).unwrap();
        for w in 1..=n {
            let t = state
                .request_version(WriteId(w), Segment::new(0, 1024))
                .unwrap();
            wal.record_publish(state.blob, t.version, WriteId(w), &Segment::new(0, 1024))
                .unwrap();
            state.complete_write(t.version).unwrap();
        }
        state.blob
    }

    #[test]
    fn creates_and_publishes_replay() {
        let dir = tmp_dir("replay");
        let blob = publish_n(&dir, 3);
        let (_, reg) = VersionLog::open(&dir, opts(), DEFAULT_WINDOW).unwrap();
        let b = reg.get(blob).unwrap();
        assert_eq!(b.latest(), 3);
        assert_eq!(b.record(2).unwrap().write, WriteId(2));
        assert_eq!(b.geom, geom());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_is_idempotent_restart_twice_equals_once() {
        let dir = tmp_dir("idem");
        let blob = publish_n(&dir, 5);
        let (_, reg1) = VersionLog::open(&dir, opts(), DEFAULT_WINDOW).unwrap();
        // Second restart must surface the identical registry (the
        // checkpoint made the first restart's state canonical).
        let (_, reg2) = VersionLog::open(&dir, opts(), DEFAULT_WINDOW).unwrap();
        for reg in [&reg1, &reg2] {
            let b = reg.get(blob).unwrap();
            assert_eq!(b.latest(), 5);
        }
        assert_eq!(snapshot(&reg1), snapshot(&reg2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gap_in_publishes_drops_tail_like_in_flight_writes() {
        let dir = tmp_dir("gap");
        {
            let (wal, registry) = VersionLog::open(&dir, opts(), DEFAULT_WINDOW).unwrap();
            let state = registry.create_blob(geom());
            wal.record_create(state.blob, &state.geom).unwrap();
            // v1 published; v2 assigned but its publish never logged
            // (writer died); v3 write-ahead-logged but crash before the
            // in-memory complete => gap at 2 must drop 3.
            for w in [1u64, 2, 3] {
                let t = state
                    .request_version(WriteId(w), Segment::new(0, 1024))
                    .unwrap();
                if w != 2 {
                    wal.record_publish(state.blob, t.version, WriteId(w), &Segment::new(0, 1024))
                        .unwrap();
                }
                if w == 1 {
                    state.complete_write(t.version).unwrap();
                }
            }
        }
        let (_, reg) = VersionLog::open(&dir, opts(), DEFAULT_WINDOW).unwrap();
        let b = reg.states().pop().unwrap();
        assert_eq!(b.latest(), 1, "v3 is unreachable past the v2 gap");
        // The dropped version numbers are handed out afresh...
        let t = b
            .request_version(WriteId(9), Segment::new(0, 1024))
            .unwrap();
        assert_eq!(t.version, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reused_version_numbers_cannot_resurrect_stale_publishes() {
        // The checkpoint-on-open guarantee: after a gap dropped v2/v3,
        // a *new* v2 published post-restart wins over the stale logged
        // v3 even across another restart.
        let dir = tmp_dir("reuse");
        let blob;
        {
            let (wal, registry) = VersionLog::open(&dir, opts(), DEFAULT_WINDOW).unwrap();
            let state = registry.create_blob(geom());
            blob = state.blob;
            wal.record_create(state.blob, &state.geom).unwrap();
            for w in [1u64, 2, 3] {
                let t = state
                    .request_version(WriteId(w), Segment::new(0, 1024))
                    .unwrap();
                if w != 2 {
                    wal.record_publish(state.blob, t.version, WriteId(w), &Segment::new(0, 1024))
                        .unwrap();
                }
                if w == 1 {
                    state.complete_write(t.version).unwrap();
                }
            }
        }
        {
            let (wal, reg) = VersionLog::open(&dir, opts(), DEFAULT_WINDOW).unwrap();
            let b = reg.get(blob).unwrap();
            assert_eq!(b.latest(), 1);
            let t = b
                .request_version(WriteId(77), Segment::new(1024, 1024))
                .unwrap();
            assert_eq!(t.version, 2);
            wal.record_publish(blob, 2, WriteId(77), &Segment::new(1024, 1024))
                .unwrap();
            b.complete_write(2).unwrap();
        }
        let (_, reg) = VersionLog::open(&dir, opts(), DEFAULT_WINDOW).unwrap();
        let b = reg.get(blob).unwrap();
        assert_eq!(b.latest(), 2);
        let rec = b.record(2).unwrap();
        assert_eq!(rec.write, WriteId(77), "stale write-3 publish must not win");
        assert_eq!(rec.seg, Segment::new(1024, 1024));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_then_crash_before_marker_falls_back() {
        // A checkpoint rewrite that reached the new generation file but
        // died before its commit marker: the snapshot record is torn
        // tail, replay surfaces an empty registry — and the *next* open
        // checkpoints cleanly on top.
        let dir = tmp_dir("tornsnap");
        std::fs::create_dir_all(&dir).unwrap();
        let reg = VersionRegistry::default();
        let b = reg.create_blob(geom());
        let t = b
            .request_version(WriteId(1), Segment::new(0, 1024))
            .unwrap();
        b.complete_write(t.version).unwrap();
        let snap = snapshot(&reg);
        let path = dir.join("version.g0.log");
        let file = std::fs::File::create(&path).unwrap();
        let header = encode_header(
            VERSION_SNAPSHOT_MAGIC,
            0,
            0,
            0,
            snap.len() as u64,
            payload_digest(&snap),
        );
        write_at(&file, &header, 0).unwrap();
        write_at(&file, &snap, 48).unwrap();
        // No commit marker: the record is not durable.
        drop(file);
        let (_, recovered) = VersionLog::open(&dir, opts(), DEFAULT_WINDOW).unwrap();
        assert!(recovered.is_empty(), "uncommitted snapshot must not replay");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn marker_without_snapshot_is_plain_incremental_log() {
        // A generation holding only committed create/publish records
        // (no snapshot at all) replays fine: the snapshot record is an
        // optimization, not a requirement.
        let dir = tmp_dir("nosnap");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("version.g0.log");
        let file = std::fs::File::create(&path).unwrap();
        let mut off = 0u64;
        let mut put = |magic: u64, a: u64, b: u64, c: u64, payload: &[u8]| {
            let h = encode_header(
                magic,
                a,
                b,
                c,
                payload.len() as u64,
                payload_digest(payload),
            );
            write_at(&file, &h, off).unwrap();
            write_at(&file, payload, off + 48).unwrap();
            off += 48 + payload.len() as u64;
        };
        put(VERSION_CREATE_MAGIC, 7, 8192, 1024, &[]);
        let mut seg = [0u8; 16];
        seg[..8].copy_from_slice(&0u64.to_le_bytes());
        seg[8..].copy_from_slice(&1024u64.to_le_bytes());
        put(VERSION_PUBLISH_MAGIC, 7, 1, 42, &seg);
        // Commit marker covering everything: seq 0 from offset 0
        // (markers carry digest 0, not the empty-payload digest).
        let marker = encode_header(COMMIT_MAGIC, 0, 0, 0, 0, 0);
        write_at(&file, &marker, off).unwrap();
        drop(file);
        let (_, reg) = VersionLog::open(&dir, opts(), DEFAULT_WINDOW).unwrap();
        let b = reg.get(BlobId(7)).unwrap();
        assert_eq!(b.latest(), 1);
        assert_eq!(b.record(1).unwrap().write, WriteId(42));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interleaved_concurrent_publishers_replay_completely() {
        // Many writers interleaving create/publish appends from
        // threads, all acknowledged: every version must survive.
        let dir = tmp_dir("interleave");
        let blob;
        {
            let (wal, registry) = VersionLog::open(&dir, opts(), DEFAULT_WINDOW).unwrap();
            let state = registry.create_blob(geom());
            blob = state.blob;
            wal.record_create(state.blob, &state.geom).unwrap();
            let state = &state;
            let wal = &wal;
            std::thread::scope(|s| {
                for w in 1..=16u64 {
                    s.spawn(move || {
                        let t = state
                            .request_version(WriteId(w), Segment::new(0, 1024))
                            .unwrap();
                        wal.record_publish(
                            state.blob,
                            t.version,
                            WriteId(w),
                            &Segment::new(0, 1024),
                        )
                        .unwrap();
                        state.complete_write(t.version).unwrap();
                    });
                }
            });
            assert_eq!(state.latest(), 16);
        }
        let (_, reg) = VersionLog::open(&dir, opts(), DEFAULT_WINDOW).unwrap();
        assert_eq!(reg.get(blob).unwrap().latest(), 16);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batched_publishes_replay_like_singles() {
        let dir = tmp_dir("batch");
        let blob;
        {
            let (wal, registry) = VersionLog::open(&dir, opts(), DEFAULT_WINDOW).unwrap();
            let state = registry.create_blob(geom());
            blob = state.blob;
            wal.record_create(state.blob, &state.geom).unwrap();
            let entries: Vec<PublishEntry> = (1..=4u64)
                .map(|w| {
                    let t = state
                        .request_version(WriteId(w), Segment::new(0, 1024))
                        .unwrap();
                    PublishEntry {
                        blob: state.blob,
                        version: t.version,
                        write: WriteId(w),
                        seg: Segment::new(0, 1024),
                    }
                })
                .collect();
            // One grant, one WAL batch, one commit marker.
            wal.record_publish_batch(&entries).unwrap();
            for e in &entries {
                state.complete_write(e.version).unwrap();
            }
        }
        let (_, reg) = VersionLog::open(&dir, opts(), DEFAULT_WINDOW).unwrap();
        let b = reg.get(blob).unwrap();
        assert_eq!(b.latest(), 4);
        for v in 1..=4u64 {
            assert_eq!(b.record(v).unwrap().write, WriteId(v));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn leader_crash_between_grant_and_wal_commit_acks_nothing() {
        // A grant leader assigned versions 1..=3 and appended their
        // BSVRPUB1 batch, but the process died before the batch's commit
        // marker reached disk. No follower may have acked — and indeed
        // replay must surface none of the batch.
        let dir = tmp_dir("grantcrash");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("version.g0.log");
        let file = std::fs::File::create(&path).unwrap();
        let mut off = 0u64;
        let mut put = |magic: u64, a: u64, b: u64, c: u64, payload: &[u8], commit: bool| {
            let digest = if commit { 0 } else { payload_digest(payload) };
            let h = encode_header(magic, a, b, c, payload.len() as u64, digest);
            write_at(&file, &h, off).unwrap();
            write_at(&file, payload, off + 48).unwrap();
            off += 48 + payload.len() as u64;
        };
        put(VERSION_CREATE_MAGIC, 7, 8192, 1024, &[], false);
        // Marker: the create is durable (the blob id was acknowledged).
        put(COMMIT_MAGIC, 0, 0, 0, &[], true);
        let mut seg = [0u8; 16];
        seg[8..].copy_from_slice(&1024u64.to_le_bytes());
        for v in 1..=3u64 {
            put(VERSION_PUBLISH_MAGIC, 7, v, 40 + v, &seg, false);
        }
        // Crash: no commit marker for the publish batch.
        drop(file);
        let (_, reg) = VersionLog::open(&dir, opts(), DEFAULT_WINDOW).unwrap();
        let b = reg.get(BlobId(7)).unwrap();
        assert_eq!(b.latest(), 0, "uncommitted grant batch must not replay");
        assert!(b.record(1).is_none());
        // The whole version run is handed out afresh.
        let t = b
            .request_version(WriteId(9), Segment::new(0, 1024))
            .unwrap();
        assert_eq!(t.version, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn grant_spanning_restart_drops_the_unused_ticket_tail() {
        // A grant handed out versions 1..=4; only v1 and v2 published
        // (write-ahead + ack) before the whole cluster restarted. The
        // unused tail of the ticket run (v3, v4) must not resurrect —
        // the same gap-drop rule as in-flight writes, extended to grant
        // runs — and the recovered shard reuses the numbers.
        let dir = tmp_dir("grantspan");
        let blob;
        {
            let (wal, registry) = VersionLog::open(&dir, opts(), DEFAULT_WINDOW).unwrap();
            let state = registry.create_blob(geom());
            blob = state.blob;
            wal.record_create(state.blob, &state.geom).unwrap();
            // The grant: four tickets assigned in one batch.
            let tickets: Vec<u64> = (1..=4u64)
                .map(|w| {
                    state
                        .request_version(WriteId(w), Segment::new(0, 1024))
                        .unwrap()
                        .version
                })
                .collect();
            assert_eq!(tickets, vec![1, 2, 3, 4]);
            // Only the first two writers got to the publish step.
            wal.record_publish_batch(&[
                PublishEntry {
                    blob,
                    version: 1,
                    write: WriteId(1),
                    seg: Segment::new(0, 1024),
                },
                PublishEntry {
                    blob,
                    version: 2,
                    write: WriteId(2),
                    seg: Segment::new(0, 1024),
                },
            ])
            .unwrap();
            state.complete_write(1).unwrap();
            state.complete_write(2).unwrap();
        }
        let (_, reg) = VersionLog::open(&dir, opts(), DEFAULT_WINDOW).unwrap();
        let b = reg.get(blob).unwrap();
        assert_eq!(b.latest(), 2, "acked prefix survives");
        assert!(b.record(3).is_none(), "unused ticket tail dropped");
        let t = b
            .request_version(WriteId(9), Segment::new(0, 1024))
            .unwrap();
        assert_eq!(t.version, 3, "dropped run is reissued");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn grouped_publish_combines_concurrent_callers() {
        let dir = tmp_dir("grouped");
        let blob;
        {
            let (wal, registry) = VersionLog::open(&dir, opts(), DEFAULT_WINDOW).unwrap();
            let state = registry.create_blob(geom());
            blob = state.blob;
            wal.record_create(state.blob, &state.geom).unwrap();
            let state = &state;
            let wal = &wal;
            std::thread::scope(|s| {
                for w in 1..=16u64 {
                    s.spawn(move || {
                        let t = state
                            .request_version(WriteId(w), Segment::new(0, 1024))
                            .unwrap();
                        wal.record_publish_grouped(
                            state.blob,
                            t.version,
                            WriteId(w),
                            &Segment::new(0, 1024),
                        )
                        .unwrap();
                        state.complete_write(t.version).unwrap();
                    });
                }
            });
            assert_eq!(state.latest(), 16);
        }
        let (_, reg) = VersionLog::open(&dir, opts(), DEFAULT_WINDOW).unwrap();
        assert_eq!(reg.get(blob).unwrap().latest(), 16);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_journal_replays_under_its_own_config() {
        // Shard 1 of 2 journals its residue-class blobs and replays them
        // under the same config: ids and state round-trip, and fresh
        // allocations stay in the shard's class.
        let cfg = RegistryConfig {
            shard: 1,
            shards: 2,
            ..RegistryConfig::default()
        };
        let dir = tmp_dir("shardwal");
        let ids: Vec<u64>;
        {
            let (wal, registry) = VersionLog::open_with(&dir, opts(), cfg).unwrap();
            ids = (0..3)
                .map(|_| {
                    let b = registry.create_blob(geom());
                    wal.record_create(b.blob, &b.geom).unwrap();
                    let t = b
                        .request_version(WriteId(1), Segment::new(0, 1024))
                        .unwrap();
                    wal.record_publish(b.blob, t.version, WriteId(1), &Segment::new(0, 1024))
                        .unwrap();
                    b.complete_write(t.version).unwrap();
                    b.blob.0
                })
                .collect();
            assert_eq!(ids, vec![1, 3, 5]);
        }
        let (_, reg) = VersionLog::open_with(&dir, opts(), cfg).unwrap();
        for id in &ids {
            assert_eq!(reg.get(BlobId(*id)).unwrap().latest(), 1);
        }
        assert_eq!(reg.create_blob(geom()).blob.0, 7);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn committed_garbage_is_typed_error_not_panic() {
        let dir = tmp_dir("garbage");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("version.g0.log");
        let file = std::fs::File::create(&path).unwrap();
        let payload = b"bogus";
        let h = encode_header(
            0xDEAD_BEEF,
            0,
            0,
            0,
            payload.len() as u64,
            payload_digest(payload),
        );
        write_at(&file, &h, 0).unwrap();
        write_at(&file, payload, 48).unwrap();
        let m = encode_header(COMMIT_MAGIC, 0, 0, 0, 0, 0);
        write_at(&file, &m, 48 + payload.len() as u64).unwrap();
        drop(file);
        let err = match VersionLog::open(&dir, opts(), DEFAULT_WINDOW) {
            Err(e) => e,
            Ok(_) => panic!("committed garbage must not replay"),
        };
        assert!(
            matches!(err, BlobError::Recovery { offset: 0, .. }),
            "got {err:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
