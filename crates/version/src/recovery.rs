//! Version-manager snapshot & recovery (paper §VI: "we plan to also
//! include fault-tolerance mechanisms for the entities that currently
//! represent single points of failure (version manager, provider
//! manager)").
//!
//! The version manager's durable state is tiny: per blob, the geometry
//! and the history of published writes (segment + write id per version).
//! Everything else (the version index, the publish watermark) is
//! recomputable. A [`snapshot`] serializes exactly that; [`restore`]
//! rebuilds a registry whose observable behaviour — latest version,
//! border links for the next write, GC plans — is identical.
//!
//! In-flight (assigned but unpublished) writes at snapshot time are *not*
//! included: on a real failover they would never complete (their clients
//! retry against the recovered manager), which is safe precisely because
//! unpublished versions were never readable.
//!
//! Since PR 7 this module is the *checkpoint half* of the version
//! manager's durability story: [`crate::wal::VersionLog`] journals
//! creates and publishes write-ahead (incremental records), and on
//! every open it replays then collapses the whole journal into a
//! single [`snapshot`] record — snapshot + incremental log, the
//! classic pairing. [`restore`] is what replay bootstraps from.

use crate::state::{RegistryConfig, VersionRegistry};
use blobseer_proto::wire::{Reader, Wire, WireBuf};
use blobseer_proto::{BlobError, CodecError, Geometry, Segment, Version, WriteId};

/// Serialized form of one blob's durable state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlobSnapshot {
    /// Blob id.
    pub blob: u64,
    /// Geometry.
    pub total_size: u64,
    /// Geometry.
    pub page_size: u64,
    /// Published writes in version order: `(write_id, offset, size)`.
    pub writes: Vec<(u64, u64, u64)>,
}

impl Wire for BlobSnapshot {
    fn encode(&self, out: &mut WireBuf) {
        self.blob.encode(out);
        self.total_size.encode(out);
        self.page_size.encode(out);
        self.writes.encode(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            blob: u64::decode(r)?,
            total_size: u64::decode(r)?,
            page_size: u64::decode(r)?,
            writes: Vec::decode(r)?,
        })
    }
}

/// Magic + version prefix of the snapshot format.
const MAGIC: u32 = 0xB10B_5EE5;
const FORMAT: u32 = 1;

/// Serialize the durable state of every blob (published prefix only).
pub fn snapshot(registry: &VersionRegistry) -> Vec<u8> {
    let mut blobs = Vec::new();
    for state in registry.states() {
        let published = state.latest();
        let mut writes = Vec::with_capacity(published as usize);
        for v in 1..=published {
            // Published versions always have a record.
            if let Some(rec) = state.record(v) {
                writes.push((rec.write.0, rec.seg.offset, rec.seg.size));
            }
        }
        blobs.push(BlobSnapshot {
            blob: state.blob.0,
            total_size: state.geom.total_size,
            page_size: state.geom.page_size,
            writes,
        });
    }
    let mut out = WireBuf::new();
    MAGIC.encode(&mut out);
    FORMAT.encode(&mut out);
    blobs.encode(&mut out);
    out.finish().to_vec()
}

/// Rebuild a registry from a snapshot.
///
/// The restored registry reproduces: blob ids, geometries, the published
/// watermark, the version index (hence border links for subsequent
/// writes), and GC planning state.
pub fn restore(bytes: &[u8], window: usize) -> Result<VersionRegistry, BlobError> {
    restore_with(
        bytes,
        RegistryConfig {
            window,
            ..RegistryConfig::default()
        },
    )
}

/// [`restore`] into a registry under an explicit [`RegistryConfig`]
/// (shard membership, grant batching, publish window).
pub fn restore_with(bytes: &[u8], config: RegistryConfig) -> Result<VersionRegistry, BlobError> {
    let mut r = Reader::new(bytes);
    let magic = u32::decode(&mut r).map_err(BlobError::Codec)?;
    if magic != MAGIC {
        return Err(BlobError::Internal("not a version-manager snapshot"));
    }
    let format = u32::decode(&mut r).map_err(BlobError::Codec)?;
    if format != FORMAT {
        return Err(BlobError::Internal("unsupported snapshot format"));
    }
    let blobs: Vec<BlobSnapshot> = Vec::decode(&mut r).map_err(BlobError::Codec)?;
    r.finish().map_err(BlobError::Codec)?;

    let registry = VersionRegistry::with_config(config);
    for b in blobs {
        let geom = Geometry::new(b.total_size, b.page_size)?;
        let state = registry.create_blob_with_id(blobseer_proto::BlobId(b.blob), geom);
        // Replay the published history through the normal protocol: each
        // write is assigned and completed in order, which reconstructs the
        // version index and the watermark exactly.
        for (expect_v, (write, offset, size)) in b.writes.iter().enumerate() {
            let ticket = state.request_version(WriteId(*write), Segment::new(*offset, *size))?;
            debug_assert_eq!(ticket.version, expect_v as Version + 1);
            state.complete_write(ticket.version)?;
        }
    }
    Ok(registry)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> Geometry {
        Geometry::new(8192, 1024).unwrap()
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let reg = VersionRegistry::default();
        let b = reg.create_blob(geom());
        for (w, s) in [(1u64, (0u64, 8192u64)), (2, (0, 1024)), (3, (2048, 2048))] {
            let t = b
                .request_version(WriteId(w), Segment::new(s.0, s.1))
                .unwrap();
            b.complete_write(t.version).unwrap();
        }
        let bytes = snapshot(&reg);
        let restored = restore(&bytes, 1 << 10).unwrap();
        let rb = restored.get(b.blob).unwrap();
        assert_eq!(rb.latest(), 3);
        assert_eq!(rb.geom, b.geom);

        // Border links for the next write must match on both registries.
        let t_orig = b
            .request_version(WriteId(9), Segment::new(1024, 1024))
            .unwrap();
        let t_rest = rb
            .request_version(WriteId(9), Segment::new(1024, 1024))
            .unwrap();
        assert_eq!(t_orig.version, t_rest.version);
        assert_eq!(t_orig.borders, t_rest.borders);
    }

    #[test]
    fn in_flight_writes_are_dropped() {
        let reg = VersionRegistry::default();
        let b = reg.create_blob(geom());
        let t1 = b
            .request_version(WriteId(1), Segment::new(0, 1024))
            .unwrap();
        b.complete_write(t1.version).unwrap();
        // v2 assigned but never completed.
        let _t2 = b
            .request_version(WriteId(2), Segment::new(1024, 1024))
            .unwrap();

        let restored = restore(&snapshot(&reg), 1 << 10).unwrap();
        let rb = restored.get(b.blob).unwrap();
        assert_eq!(rb.latest(), 1, "unpublished writes do not survive failover");
        // The recovered manager hands out version 2 afresh.
        let t = rb
            .request_version(WriteId(3), Segment::new(0, 1024))
            .unwrap();
        assert_eq!(t.version, 2);
    }

    #[test]
    fn multiple_blobs_and_ids_survive() {
        let reg = VersionRegistry::default();
        let b1 = reg.create_blob(geom());
        let b2 = reg.create_blob(Geometry::new(4096, 512).unwrap());
        let t = b2
            .request_version(WriteId(5), Segment::new(0, 512))
            .unwrap();
        b2.complete_write(t.version).unwrap();

        let restored = restore(&snapshot(&reg), 1 << 10).unwrap();
        assert_eq!(restored.len(), 2);
        assert_eq!(restored.get(b1.blob).unwrap().latest(), 0);
        assert_eq!(restored.get(b2.blob).unwrap().latest(), 1);
        assert_eq!(restored.get(b2.blob).unwrap().geom.page_size, 512);
        // New blob allocation continues past the restored ids.
        let b3 = restored.create_blob(geom());
        assert!(b3.blob > b2.blob);
    }

    #[test]
    fn gc_plans_match_after_restore() {
        let reg = VersionRegistry::default();
        let b = reg.create_blob(geom());
        for (w, s) in [(1u64, (0u64, 8192u64)), (2, (0, 1024)), (3, (0, 1024))] {
            let t = b
                .request_version(WriteId(w), Segment::new(s.0, s.1))
                .unwrap();
            b.complete_write(t.version).unwrap();
        }
        let bytes = snapshot(&reg);
        let plan_orig = b.gc_plan(3);
        let restored = restore(&bytes, 1 << 10).unwrap();
        let plan_rest = restored.get(b.blob).unwrap().gc_plan(3);
        let mut a = plan_orig.dead_nodes.clone();
        let mut c = plan_rest.dead_nodes.clone();
        a.sort_by_key(|k| (k.version, k.offset, k.size));
        c.sort_by_key(|k| (k.version, k.offset, k.size));
        assert_eq!(a, c);
    }

    #[test]
    fn corrupt_snapshots_rejected() {
        assert!(restore(b"garbage", 16).is_err());
        let reg = VersionRegistry::default();
        reg.create_blob(geom());
        let mut bytes = snapshot(&reg);
        bytes[0] ^= 0xFF;
        assert!(restore(&bytes, 16).is_err());
        let mut bytes2 = snapshot(&reg);
        let n = bytes2.len();
        bytes2.truncate(n - 1);
        assert!(restore(&bytes2, 16).is_err());
    }
}
