//! Append-only concurrent history of write records.
//!
//! `history[v]` is filled exactly once, by whichever thread was assigned
//! version `v`, and may be awaited by any thread that needs it (readers of
//! border links, the GC planner, recovery). Slots publish through
//! [`OnceSlot`] — an acquire load on the fast path — and the chunk table
//! grows under a short write lock taken only once per `CHUNK` versions.

use blobseer_util::sync::OnceSlot;
use parking_lot::RwLock;
use std::sync::Arc;

/// Slots per chunk; chosen so chunk-table growth is rare and a chunk
/// (1024 slots) stays comfortably cache-resident.
const CHUNK: usize = 1024;

struct Chunk<T> {
    slots: Vec<OnceSlot<T>>,
}

impl<T> Chunk<T> {
    fn new() -> Self {
        Self {
            slots: (0..CHUNK).map(|_| OnceSlot::new()).collect(),
        }
    }
}

/// A concurrent, append-only, wait-capable vector indexed by version
/// number (1-based; version 0 is the implicit initial snapshot and has no
/// record).
pub struct ConcurrentHistory<T> {
    chunks: RwLock<Vec<Arc<Chunk<T>>>>,
}

impl<T> Default for ConcurrentHistory<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ConcurrentHistory<T> {
    /// Empty history.
    pub fn new() -> Self {
        Self {
            // lint: allow(unmetered-lock) — chunk spine: reads are uncontended probes
            // of an append-only Vec, writes amortize to once per CHUNK versions
            chunks: RwLock::new(Vec::new()),
        }
    }

    fn chunk_for(&self, v: u64) -> Arc<Chunk<T>> {
        debug_assert!(v >= 1, "version 0 has no history record");
        let idx = ((v - 1) as usize) / CHUNK;
        {
            // lint: allow(unmetered-lock) — chunk-spine probe, see field note in `new`
            let g = self.chunks.read();
            if let Some(c) = g.get(idx) {
                return Arc::clone(c);
            }
        }
        // lint: allow(unmetered-lock) — chunk growth amortizes to once per CHUNK
        // versions; never on the per-op steady-state path
        let mut g = self.chunks.write();
        while g.len() <= idx {
            g.push(Arc::new(Chunk::new()));
        }
        Arc::clone(&g[idx])
    }

    fn slot_index(v: u64) -> usize {
        ((v - 1) as usize) % CHUNK
    }

    /// Record the entry for version `v`. Returns `false` if already set
    /// (which would indicate a duplicate assignment — a protocol bug).
    pub fn set(&self, v: u64, value: T) -> bool {
        let chunk = self.chunk_for(v);
        chunk.slots[Self::slot_index(v)].set(value)
    }

    /// Non-blocking read of version `v`'s record.
    pub fn get(&self, v: u64) -> Option<T>
    where
        T: Clone,
    {
        if v == 0 {
            return None;
        }
        let idx = ((v - 1) as usize) / CHUNK;
        let chunk = {
            // lint: allow(unmetered-lock) — chunk-spine probe, see field note in `new`
            let g = self.chunks.read();
            g.get(idx).cloned()?
        };
        chunk.slots[Self::slot_index(v)].try_get().cloned()
    }

    /// Blocking read: waits for the record of version `v` to be published.
    /// Only call for versions that have definitely been assigned.
    pub fn wait(&self, v: u64) -> T
    where
        T: Clone,
    {
        let chunk = self.chunk_for(v);
        chunk.slots[Self::slot_index(v)].wait().clone()
    }

    /// Iterate over set records in `[1, up_to]`, in version order, calling
    /// `f(v, &record)` — skips unset slots (in-flight assignments).
    pub fn for_each_up_to(&self, up_to: u64, mut f: impl FnMut(u64, &T)) {
        // lint: allow(unmetered-lock) — chunk-spine probe (replay/GC walker), see `new`
        let chunks: Vec<Arc<Chunk<T>>> = self.chunks.read().clone();
        for v in 1..=up_to {
            let ci = ((v - 1) as usize) / CHUNK;
            let Some(chunk) = chunks.get(ci) else { break };
            if let Some(rec) = chunk.slots[Self::slot_index(v)].try_get() {
                f(v, rec);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn set_and_get() {
        let h: ConcurrentHistory<u64> = ConcurrentHistory::new();
        assert_eq!(h.get(1), None);
        assert!(h.set(1, 100));
        assert!(!h.set(1, 200), "duplicate set rejected");
        assert_eq!(h.get(1), Some(100));
        assert_eq!(h.get(0), None, "version 0 has no record");
    }

    #[test]
    fn sparse_high_versions() {
        let h: ConcurrentHistory<String> = ConcurrentHistory::new();
        assert!(h.set(5000, "far".into()));
        assert_eq!(h.get(5000), Some("far".into()));
        assert_eq!(h.get(4999), None);
        assert_eq!(h.get(1), None);
    }

    #[test]
    fn wait_blocks_until_set() {
        let h: Arc<ConcurrentHistory<u32>> = Arc::new(ConcurrentHistory::new());
        let h2 = Arc::clone(&h);
        let waiter = thread::spawn(move || h2.wait(3));
        thread::sleep(std::time::Duration::from_millis(10));
        h.set(3, 42);
        assert_eq!(waiter.join().unwrap(), 42);
    }

    #[test]
    fn for_each_skips_unset() {
        let h: ConcurrentHistory<u64> = ConcurrentHistory::new();
        h.set(1, 10);
        h.set(3, 30);
        let mut seen = Vec::new();
        h.for_each_up_to(5, |v, r| seen.push((v, *r)));
        assert_eq!(seen, vec![(1, 10), (3, 30)]);
    }

    #[test]
    fn concurrent_disjoint_sets() {
        let h: Arc<ConcurrentHistory<u64>> = Arc::new(ConcurrentHistory::new());
        let ts: Vec<_> = (0..8u64)
            .map(|t| {
                let h = Arc::clone(&h);
                thread::spawn(move || {
                    for i in 0..500u64 {
                        let v = t * 500 + i + 1;
                        assert!(h.set(v, v * 10));
                    }
                })
            })
            .collect();
        for t in ts {
            t.join().unwrap();
        }
        for v in 1..=4000u64 {
            assert_eq!(h.get(v), Some(v * 10));
        }
    }

    #[test]
    fn chunk_boundaries() {
        let h: ConcurrentHistory<u64> = ConcurrentHistory::new();
        for v in [1u64, 1024, 1025, 2048, 2049] {
            assert!(h.set(v, v));
            assert_eq!(h.get(v), Some(v));
        }
    }
}
