//! The paper's §IV claims, exercised with real threads.
//!
//! A miniature engine is assembled from the version-manager core plus
//! shared-memory node/page stores (standing in for the DHT and the data
//! providers). Many writer threads run the full WRITE protocol with no
//! synchronization between them; readers run concurrently against
//! published versions. Afterwards every published version must equal the
//! prefix-application of patches in version order — the global
//! serializability property of §II.

use blobseer_meta::read::{assemble_read, expand, root_key, Visit};
use blobseer_meta::write::build_write_tree;
use blobseer_proto::tree::{NodeBody, NodeKey, PageKey, PageLoc};
use blobseer_proto::{BlobId, Geometry, ProviderId, Segment, WriteId};
use blobseer_util::rng::rng_for;
use blobseer_util::{PageBuf, ShardedMap};
use blobseer_version::VersionRegistry;
use rand::Rng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

const PAGE: u64 = 512;
const PAGES: u64 = 32;
const TOTAL: u64 = PAGE * PAGES;

/// Shared-memory stand-ins for the distributed stores.
struct MiniCluster {
    registry: VersionRegistry,
    nodes: ShardedMap<NodeKey, NodeBody>,
    pages: ShardedMap<PageKey, PageBuf>,
    next_write: AtomicU64,
}

impl MiniCluster {
    fn new() -> (Arc<Self>, BlobId) {
        let c = Arc::new(Self {
            registry: VersionRegistry::default(),
            nodes: ShardedMap::with_shards(64),
            pages: ShardedMap::with_shards(64),
            next_write: AtomicU64::new(1),
        });
        let geom = Geometry::new(TOTAL, PAGE).unwrap();
        let blob = c.registry.create_blob(geom).blob;
        (c, blob)
    }

    /// The full WRITE protocol of §III.B, as one client would run it.
    fn write(&self, blob: BlobId, seg: Segment, data: &[u8]) -> u64 {
        let state = self.registry.get(blob).unwrap();
        let geom = state.geom;
        // 1. "contact the provider manager": fresh write id.
        let wid = WriteId(self.next_write.fetch_add(1, Ordering::Relaxed));
        // 2. store pages in parallel (here: loop — contention is modelled
        //    by the sharded store).
        let first = geom.page_of(seg.offset);
        let mut locs = Vec::new();
        for (i, page) in geom.pages_touching(&seg).iter().enumerate() {
            let key = PageKey {
                blob,
                write: wid,
                index: page,
            };
            let start = i * PAGE as usize;
            self.pages.insert(
                key,
                PageBuf::copy_from_slice(&data[start..start + PAGE as usize]),
            );
            locs.push(PageLoc {
                key,
                replicas: vec![ProviderId(0)],
            });
            let _ = first;
        }
        // 3. version + border links from the version manager.
        let ticket = state.request_version(wid, seg).unwrap();
        // 4. build metadata in isolation; store it.
        let nodes = build_write_tree(&geom, blob, &seg, &locs, &ticket).unwrap();
        for n in nodes {
            self.nodes.insert(n.key, n.body);
        }
        // 5. report success.
        state.complete_write(ticket.version).unwrap();
        ticket.version
    }

    /// READ at a published version.
    fn read(&self, blob: BlobId, v: u64, seg: Segment) -> Vec<u8> {
        let state = self.registry.get(blob).unwrap();
        let geom = state.geom;
        assert!(v <= state.latest(), "read of unpublished version");
        if v == 0 {
            return vec![0; seg.size as usize];
        }
        let mut frontier = vec![root_key(&geom, blob, v)];
        let mut zeros = Vec::new();
        let mut hits = Vec::new();
        while let Some(key) = frontier.pop() {
            let body = self
                .nodes
                .get_cloned(&key)
                .expect("published metadata present");
            for visit in expand(&geom, &key, &body, &seg).unwrap() {
                match visit {
                    Visit::Descend(k) => frontier.push(k),
                    Visit::Zeros(z) => zeros.push(z),
                    Visit::Page { page, blob_range } => {
                        let data = self.pages.get_cloned(&page.key).expect("page present");
                        hits.push((page, blob_range, data));
                    }
                }
            }
        }
        assemble_read(&geom, &seg, &zeros, &hits).unwrap()
    }
}

fn random_aligned_seg(rng: &mut impl Rng) -> Segment {
    let start = rng.gen_range(0..PAGES);
    let len = rng.gen_range(1..=(PAGES - start).min(8));
    Segment::new(start * PAGE, len * PAGE)
}

fn fill_for(version_hint: u64, seg: Segment) -> Vec<u8> {
    // Content depends only on (version_hint, seg) so validators can
    // recompute it; vary per byte to catch offset bugs.
    (0..seg.size)
        .map(|i| {
            (version_hint as u8)
                .wrapping_mul(31)
                .wrapping_add((seg.offset + i) as u8)
        })
        .collect()
}

#[test]
fn concurrent_writers_serialize_globally() {
    let (cluster, blob) = MiniCluster::new();
    let writers = 8;
    let writes_per = 25;

    let handles: Vec<_> = (0..writers)
        .map(|t| {
            let c = Arc::clone(&cluster);
            thread::spawn(move || {
                let mut rng = rng_for(0xb10b, t as u64);
                let mut produced = Vec::new();
                for _ in 0..writes_per {
                    let seg = random_aligned_seg(&mut rng);
                    let wid_hint = rng.gen::<u64>();
                    let data = fill_for(wid_hint, seg);
                    let v = c.write(blob, seg, &data);
                    produced.push((v, seg, wid_hint));
                }
                produced
            })
        })
        .collect();

    let mut by_version: Vec<(u64, Segment, u64)> = Vec::new();
    for h in handles {
        by_version.extend(h.join().unwrap());
    }
    by_version.sort_by_key(|(v, _, _)| *v);

    let state = cluster.registry.get(blob).unwrap();
    let total_writes = (writers * writes_per) as u64;
    assert_eq!(state.latest(), total_writes, "all writes published");
    // Versions are dense 1..=N with no duplicates.
    for (i, (v, _, _)) in by_version.iter().enumerate() {
        assert_eq!(*v, i as u64 + 1);
    }

    // Reconstruct the model by applying patches in version order, checking
    // a sample of versions (every one would be O(n^2) bytes; fine here).
    let mut model = vec![0u8; TOTAL as usize];
    for (v, seg, hint) in &by_version {
        let data = fill_for(*hint, *seg);
        model[seg.offset as usize..seg.end() as usize].copy_from_slice(&data);
        let got = cluster.read(blob, *v, Segment::new(0, TOTAL));
        assert_eq!(got, model, "version {v} must equal prefix application");
    }
}

#[test]
fn readers_run_against_concurrent_writers() {
    // Read-write concurrency (§IV.B): readers pin a published version and
    // must see an immutable snapshot while writers keep publishing.
    let (cluster, blob) = MiniCluster::new();

    // Seed version 1: known fill.
    let full = Segment::new(0, TOTAL);
    let seed = fill_for(1, full);
    assert_eq!(cluster.write(blob, full, &seed), 1);

    let stop = Arc::new(AtomicU64::new(0));
    let writer = {
        let c = Arc::clone(&cluster);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut rng = rng_for(7, 1);
            while stop.load(Ordering::Relaxed) == 0 {
                let seg = random_aligned_seg(&mut rng);
                let data = fill_for(rng.gen(), seg);
                c.write(blob, seg, &data);
            }
        })
    };

    let readers: Vec<_> = (0..4)
        .map(|t| {
            let c = Arc::clone(&cluster);
            thread::spawn(move || {
                let mut rng = rng_for(9, t);
                for _ in 0..200 {
                    // Always read version 1: must equal the seed forever.
                    let start = rng.gen_range(0..PAGES) * PAGE;
                    let len = (TOTAL - start).min(4 * PAGE);
                    let seg = Segment::new(start, len);
                    let got = c.read(blob, 1, seg);
                    assert_eq!(
                        &got[..],
                        &fill_for(1, Segment::new(0, TOTAL))
                            [start as usize..(start + len) as usize],
                        "snapshot 1 must be immutable under concurrent writes"
                    );
                }
            })
        })
        .collect();

    for r in readers {
        r.join().unwrap();
    }
    stop.store(1, Ordering::Relaxed);
    writer.join().unwrap();
}

#[test]
fn per_blob_isolation() {
    // Writes to different blobs never interfere (independent version
    // sequences and stores).
    let (cluster, blob_a) = MiniCluster::new();
    let geom = Geometry::new(TOTAL, PAGE).unwrap();
    let blob_b = cluster.registry.create_blob(geom).blob;

    let c1 = Arc::clone(&cluster);
    let c2 = Arc::clone(&cluster);
    let t1 = thread::spawn(move || {
        for i in 0..50u64 {
            let seg = Segment::new((i % PAGES) * PAGE, PAGE);
            c1.write(blob_a, seg, &vec![0xAA; PAGE as usize]);
        }
    });
    let t2 = thread::spawn(move || {
        for i in 0..50u64 {
            let seg = Segment::new((i % PAGES) * PAGE, PAGE);
            c2.write(blob_b, seg, &vec![0xBB; PAGE as usize]);
        }
    });
    t1.join().unwrap();
    t2.join().unwrap();

    let sa = cluster.registry.get(blob_a).unwrap();
    let sb = cluster.registry.get(blob_b).unwrap();
    assert_eq!(sa.latest(), 50);
    assert_eq!(sb.latest(), 50);
    let a = cluster.read(blob_a, 50, Segment::new(0, PAGE));
    let b = cluster.read(blob_b, 50, Segment::new(0, PAGE));
    assert!(a.iter().all(|&x| x == 0xAA));
    assert!(b.iter().all(|&x| x == 0xBB));
}
