//! The `wire::set_zero_copy` ablation toggle, exercised in a dedicated
//! test binary: the switch is process global, so it must not share a
//! process with tests asserting zero-copy behaviour.

use blobseer_proto::wire::{set_zero_copy, Wire};
use blobseer_proto::PageBuf;
use blobseer_util::copymeter;

#[test]
fn zero_copy_toggle_forces_copies_and_restores() {
    // Copy mode: every hop copies, and the meters show it.
    set_zero_copy(false);
    let page = PageBuf::from_vec(vec![7u8; 8192]);
    let before = copymeter::thread_snapshot();
    let chain = page.to_chain();
    assert_eq!(
        chain.segment_count(),
        1,
        "copy mode folds payloads into the tail"
    );
    assert!(
        before.bytes_since() >= 8192,
        "copy mode must copy on encode"
    );
    let decoded = PageBuf::from_chain(&chain).unwrap();
    assert!(
        before.bytes_since() >= 2 * 8192,
        "copy mode must copy on decode"
    );
    assert!(!decoded.same_allocation(&page));
    assert_eq!(decoded, page);

    // Back to zero-copy: sharing resumes.
    set_zero_copy(true);
    let before = copymeter::thread_snapshot();
    let chain = page.to_chain();
    let decoded = PageBuf::from_chain(&chain).unwrap();
    assert_eq!(before.bytes_since(), 0);
    assert!(decoded.same_allocation(&page));
}
