//! The `wire::set_zero_copy` ablation toggle, exercised through the RAII
//! guard that serializes it against every other toggle-sensitive test in
//! the process (the switch is process global; `cargo test` runs tests on
//! parallel threads).

use blobseer_proto::wire::{zero_copy, zero_copy_ablation, Wire};
use blobseer_proto::PageBuf;
use blobseer_util::copymeter;

#[test]
fn zero_copy_toggle_forces_copies_and_restores() {
    let page = PageBuf::from_vec(vec![7u8; 8192]);
    {
        // Copy mode: every hop copies, and the meters show it.
        let _ablation = zero_copy_ablation(false);
        let before = copymeter::thread_snapshot();
        let chain = page.to_chain();
        assert_eq!(
            chain.segment_count(),
            1,
            "copy mode folds payloads into the tail"
        );
        assert!(
            before.bytes_since() >= 8192,
            "copy mode must copy on encode"
        );
        let decoded = PageBuf::from_chain(&chain).unwrap();
        assert!(
            before.bytes_since() >= 2 * 8192,
            "copy mode must copy on decode"
        );
        assert!(!decoded.same_allocation(&page));
        assert_eq!(decoded, page);
    }

    // Guard dropped: zero-copy sharing resumes.
    assert!(zero_copy(), "guard must restore the default regime");
    let before = copymeter::thread_snapshot();
    let chain = page.to_chain();
    let decoded = PageBuf::from_chain(&chain).unwrap();
    assert_eq!(before.bytes_since(), 0);
    assert!(decoded.same_allocation(&page));
}
