//! Property tests for the wire codec: arbitrary-value round trips and
//! robustness of the decoder against corrupted bytes.

use blobseer_proto::messages::*;
use blobseer_proto::tree::{NodeBody, NodeKey, PageKey, PageLoc, TreeNode};
use blobseer_proto::PageBuf;
use blobseer_proto::{BlobId, ProviderId, Wire, WriteId};
use proptest::prelude::*;

fn arb_node_key() -> impl Strategy<Value = NodeKey> {
    (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(b, v, o, s)| NodeKey {
        blob: BlobId(b),
        version: v,
        offset: o,
        size: s,
    })
}

fn arb_page_loc() -> impl Strategy<Value = PageLoc> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        proptest::collection::vec(any::<u32>(), 0..4),
    )
        .prop_map(|(b, w, i, reps)| PageLoc {
            key: PageKey {
                blob: BlobId(b),
                write: WriteId(w),
                index: i,
            },
            replicas: reps.into_iter().map(ProviderId).collect(),
        })
}

fn arb_tree_node() -> impl Strategy<Value = TreeNode> {
    (
        arb_node_key(),
        prop_oneof![
            (any::<u64>(), any::<u64>()).prop_map(|(l, r)| NodeBody::Inner {
                left_version: l,
                right_version: r
            }),
            arb_page_loc().prop_map(|page| NodeBody::Leaf { page }),
        ],
    )
        .prop_map(|(key, body)| TreeNode { key, body })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn tree_nodes_roundtrip(node in arb_tree_node()) {
        prop_assert_eq!(TreeNode::from_wire(&node.to_wire()).unwrap(), node);
    }

    #[test]
    fn batches_roundtrip(nodes in proptest::collection::vec(arb_tree_node(), 0..20)) {
        let msg = MetaPutBatch { nodes };
        prop_assert_eq!(MetaPutBatch::from_wire(&msg.to_wire()).unwrap(), msg);
    }

    #[test]
    fn tickets_roundtrip(
        version in any::<u64>(),
        borders in proptest::collection::vec(
            (any::<u64>(), any::<u64>(), any::<bool>(), proptest::option::of(any::<u64>())),
            0..32
        )
    ) {
        let borders: Vec<BorderLink> = borders
            .into_iter()
            .map(|(offset, size, left_side, v)| BorderLink {
                offset,
                size,
                left: if left_side { v } else { None },
                right: if left_side { None } else { v },
            })
            .collect();
        let t = WriteTicket { version, borders };
        prop_assert_eq!(WriteTicket::from_wire(&t.to_wire()).unwrap(), t);
    }

    #[test]
    fn pages_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let msg = PutPage {
            key: PageKey { blob: BlobId(1), write: WriteId(2), index: 3 },
            data: PageBuf::from_vec(data),
        };
        prop_assert_eq!(PutPage::from_wire(&msg.to_wire()).unwrap(), msg);
        // The zero-copy chain path must agree with the flat path.
        prop_assert_eq!(PutPage::from_chain(&msg.to_chain()).unwrap(), msg);
    }

    #[test]
    fn sliced_pages_roundtrip_shared(
        backing in proptest::collection::vec(any::<u8>(), 1..6000),
        start_frac in 0u64..1000,
        len_frac in 0u64..1000,
    ) {
        // A page that is an arbitrary sub-slice of a larger allocation
        // (the client splitting a write buffer) must round-trip through
        // the codec, and large slices must come back shared, not copied.
        let backing = PageBuf::from_vec(backing);
        let start = (start_frac as usize * backing.len() / 1000).min(backing.len());
        let len = (len_frac as usize * (backing.len() - start) / 1000).min(backing.len() - start);
        let page = backing.slice(start..start + len);
        let msg = PutPage {
            key: PageKey { blob: BlobId(9), write: WriteId(9), index: 0 },
            data: page.clone(),
        };
        let chain = msg.to_chain();
        let back = PutPage::from_chain(&chain).unwrap();
        prop_assert_eq!(&back, &msg);
        if len >= blobseer_proto::wire::SHARE_THRESHOLD {
            prop_assert!(
                back.data.same_allocation(&backing),
                "large payloads must be lent by refcount"
            );
        }
        // Flat (socket-style) bytes decode to the same value too.
        prop_assert_eq!(PutPage::from_wire(&chain.to_vec()).unwrap(), msg);
    }

    #[test]
    fn truncation_never_panics(node in arb_tree_node(), cut in 0usize..64) {
        // Decoding any prefix must fail cleanly, never panic or loop.
        let bytes = node.to_wire();
        let cut = cut.min(bytes.len());
        let prefix = &bytes[..bytes.len() - cut];
        let _ = TreeNode::from_wire(prefix); // Ok(_) only when cut == 0
        if cut > 0 {
            prop_assert!(TreeNode::from_wire(prefix).is_err());
        }
    }

    #[test]
    fn bit_flips_never_panic(node in arb_tree_node(), pos in any::<prop::sample::Index>(), bit in 0u8..8) {
        // A single flipped bit must at worst produce a decode error or a
        // different (valid) value — never a panic or huge allocation.
        let mut bytes = node.to_wire();
        let i = pos.index(bytes.len());
        bytes[i] ^= 1 << bit;
        let _ = TreeNode::from_wire(&bytes);
    }

    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = TreeNode::from_wire(&bytes);
        let _ = WriteTicket::from_wire(&bytes);
        let _ = MetaGetBatchResp::from_wire(&bytes);
        let _ = GcPlan::from_wire(&bytes);
        let _ = WritePlan::from_wire(&bytes);
    }
}
