//! Error types shared across the workspace.

use crate::geometry::Segment;
use crate::ids::{BlobId, ProviderId, Version};
use std::fmt;

/// Errors surfaced by the public blob API (`ALLOC` / `READ` / `WRITE`).
///
/// # Error taxonomy
///
/// Every variant names one failure domain; serving paths must preserve
/// the variant they received (in particular, [`BlobError::Overload`]
/// must never be demoted to [`BlobError::Unreachable`] — the static
/// lint rule `overload-erasure` enforces this on serving code).
///
/// | Variant | Domain | Retryable? |
/// |---|---|---|
/// | [`UnknownBlob`](BlobError::UnknownBlob) | caller asked about a blob the version manager never allocated | no |
/// | [`BadSegment`](BlobError::BadSegment) | request geometry invalid (misaligned / out of bounds) | no |
/// | [`VersionNotPublished`](BlobError::VersionNotPublished) | snapshot isolation: the requested version is not published yet | later, after publish |
/// | [`MissingMetadata`](BlobError::MissingMetadata) | metadata tree node absent (corruption or GC raced the reader) | no |
/// | [`MissingPage`](BlobError::MissingPage) | no replica could serve the page | no |
/// | [`Unreachable`](BlobError::Unreachable) | connectivity: peer dead, refused, timed out | yes (idempotent ops) |
/// | [`Overload`](BlobError::Overload) | admission control shed the request; capacity exists but is busy | yes — honor `retry_after_hint` |
/// | [`Codec`](BlobError::Codec) | wire bytes undecodable | no |
/// | [`Recovery`](BlobError::Recovery) | committed durable state failed to replay | no |
/// | [`Internal`](BlobError::Internal) | invariant violation surfaced as an error | no |
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlobError {
    /// The blob id is not known to the version manager.
    UnknownBlob(BlobId),
    /// A segment was rejected by geometry validation.
    BadSegment {
        /// The offending segment.
        segment: Segment,
        /// Human-readable reason (misalignment, out of bounds, ...).
        reason: &'static str,
    },
    /// `READ` asked for a version that has not been published yet — the
    /// paper specifies the read **fails** in this case.
    VersionNotPublished {
        /// Requested version.
        requested: Version,
        /// Latest published version at the time of the request.
        latest: Version,
    },
    /// A required metadata tree node was missing from the metadata
    /// provider (metadata corruption or GC raced the reader).
    MissingMetadata {
        /// Blob the node belongs to.
        blob: BlobId,
        /// Version of the missing node.
        version: Version,
    },
    /// A page could not be fetched from any replica.
    MissingPage {
        /// Providers that were tried.
        tried: Vec<ProviderId>,
    },
    /// The remote node is dead or unreachable (fault injection).
    Unreachable(&'static str),
    /// The request was **shed by admission control**: the node is alive
    /// but its bounded admission queue is full (or the connection slot
    /// table overflowed). Unlike [`Unreachable`](BlobError::Unreachable)
    /// this is a *typed, deliberate* rejection — the caller should back
    /// off and retry after roughly `retry_after_hint` milliseconds of
    /// virtual time. Serving paths must never rewrite this variant into
    /// `Unreachable` (lint rule `overload-erasure`).
    Overload {
        /// Server-suggested backoff before retrying, in milliseconds
        /// (derived from queue occupancy; 0 = retry at the caller's
        /// discretion).
        retry_after_hint: u64,
    },
    /// Codec failure on a wire message.
    Codec(CodecError),
    /// A durable log could not be opened or replayed: the on-disk bytes
    /// under `file` are unusable at `offset`. Replay of a *torn tail*
    /// (crash mid-append) is not an error — recovery stops at the last
    /// commit marker; this variant means a **committed** record failed
    /// to decode, or the log file itself could not be read — state that
    /// was acknowledged and should have been recoverable.
    Recovery {
        /// The log file (or directory) that failed to recover.
        file: String,
        /// Byte offset of the offending record (0 when the failure is
        /// file-level, e.g. the open itself failed).
        offset: u64,
        /// What went wrong.
        detail: &'static str,
    },
    /// Catch-all for internal invariant violations surfaced as errors.
    Internal(&'static str),
}

impl fmt::Display for BlobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlobError::UnknownBlob(b) => write!(f, "unknown blob {b}"),
            BlobError::BadSegment { segment, reason } => {
                write!(f, "bad segment {segment:?}: {reason}")
            }
            BlobError::VersionNotPublished { requested, latest } => write!(
                f,
                "version {requested} not published (latest published is {latest})"
            ),
            BlobError::MissingMetadata { blob, version } => {
                write!(f, "missing metadata for blob {blob} version {version}")
            }
            BlobError::MissingPage { tried } => {
                write!(f, "page unavailable on all {} replica(s)", tried.len())
            }
            BlobError::Unreachable(who) => write!(f, "{who} unreachable"),
            BlobError::Overload { retry_after_hint } => {
                write!(f, "overloaded: retry after {retry_after_hint} ms")
            }
            BlobError::Codec(e) => write!(f, "codec error: {e}"),
            BlobError::Recovery {
                file,
                offset,
                detail,
            } => {
                write!(f, "recovery failed in {file} at offset {offset}: {detail}")
            }
            BlobError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl BlobError {
    /// True when retrying the *same* request may succeed: connectivity
    /// failures ([`Unreachable`](BlobError::Unreachable)) and typed
    /// admission sheds ([`Overload`](BlobError::Overload)). Callers must
    /// additionally ensure the operation is idempotent before retrying.
    pub fn is_retryable(&self) -> bool {
        matches!(self, BlobError::Unreachable(_) | BlobError::Overload { .. })
    }

    /// The server-suggested backoff in milliseconds, when the error
    /// carries one ([`Overload`](BlobError::Overload)).
    pub fn retry_after_hint_ms(&self) -> Option<u64> {
        match self {
            BlobError::Overload { retry_after_hint } => Some(*retry_after_hint),
            _ => None,
        }
    }
}

impl std::error::Error for BlobError {}

impl From<CodecError> for BlobError {
    fn from(e: CodecError) -> Self {
        BlobError::Codec(e)
    }
}

/// Errors produced by the binary wire codec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes remained than the decoder needed.
    UnexpectedEof {
        /// Bytes the decoder asked for.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// An enum discriminant byte had no corresponding variant.
    BadTag {
        /// The unknown tag value.
        tag: u8,
        /// The type being decoded.
        ty: &'static str,
    },
    /// A declared length prefix exceeded the sanity limit.
    LengthOverflow {
        /// The declared length.
        declared: u64,
    },
    /// Bytes remained after a complete top-level decode.
    TrailingBytes {
        /// How many bytes were left over.
        remaining: usize,
    },
    /// A UTF-8 string field contained invalid UTF-8.
    BadUtf8,
    /// A multiplexed response carried a correlation id with no call
    /// waiting on it — the stream framing can no longer be trusted.
    StrayCorrelation {
        /// The unmatched correlation id.
        corr: u64,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { needed, remaining } => {
                write!(f, "unexpected EOF: needed {needed} bytes, had {remaining}")
            }
            CodecError::BadTag { tag, ty } => write!(f, "bad tag {tag} for {ty}"),
            CodecError::LengthOverflow { declared } => {
                write!(f, "length prefix {declared} exceeds sanity limit")
            }
            CodecError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after decode")
            }
            CodecError::BadUtf8 => write!(f, "invalid UTF-8 in string field"),
            CodecError::StrayCorrelation { corr } => {
                write!(f, "response for unknown correlation id {corr}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = BlobError::VersionNotPublished {
            requested: 9,
            latest: 4,
        };
        let s = e.to_string();
        assert!(s.contains('9') && s.contains('4'));

        let e = BlobError::BadSegment {
            segment: Segment { offset: 1, size: 2 },
            reason: "unaligned",
        };
        assert!(e.to_string().contains("unaligned"));

        let c = CodecError::UnexpectedEof {
            needed: 8,
            remaining: 3,
        };
        assert!(c.to_string().contains('8'));
    }

    #[test]
    fn codec_error_converts() {
        let b: BlobError = CodecError::BadUtf8.into();
        assert!(matches!(b, BlobError::Codec(CodecError::BadUtf8)));
    }
}
