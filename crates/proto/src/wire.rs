//! The binary wire codec.
//!
//! The original system serialized RPC arguments with Boost.Serialization;
//! we use a hand-written little-endian format: fixed-width integers,
//! `u32` length prefixes, one tag byte for enums. Every message type in
//! [`crate::messages`] implements [`Wire`]; the RPC layer frames encoded
//! messages on the (simulated) wire, so message *sizes* — which drive the
//! bandwidth model — are faithful to what a real deployment would send.

use crate::error::CodecError;
use bytes::Bytes;

/// Sanity cap on any single length prefix (1 GiB) — prevents a corrupt
/// length from causing an absurd allocation.
pub const MAX_LEN: u64 = 1 << 30;

/// A cursor over a byte slice with checked reads.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consume exactly `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof { needed: n, remaining: self.remaining() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Error unless the buffer was fully consumed.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            Err(CodecError::TrailingBytes { remaining: self.remaining() })
        } else {
            Ok(())
        }
    }
}

/// Types that can be encoded to / decoded from the wire format.
pub trait Wire: Sized {
    /// Append the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decode a value, advancing the reader.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;

    /// Encode into a fresh buffer.
    fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_hint());
        self.encode(&mut out);
        out
    }

    /// Decode from a complete buffer, requiring full consumption.
    fn from_wire(buf: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(buf);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }

    /// Optional capacity hint for `to_wire`.
    fn wire_hint(&self) -> usize {
        16
    }
}

macro_rules! wire_int {
    ($ty:ty, $n:expr) => {
        impl Wire for $ty {
            #[inline]
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }

            #[inline]
            fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                let b = r.take($n)?;
                Ok(<$ty>::from_le_bytes(b.try_into().unwrap()))
            }

            fn wire_hint(&self) -> usize {
                $n
            }
        }
    };
}

wire_int!(u8, 1);
wire_int!(u16, 2);
wire_int!(u32, 4);
wire_int!(u64, 8);
wire_int!(i64, 8);

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(CodecError::BadTag { tag, ty: "bool" }),
        }
    }
}

fn decode_len(r: &mut Reader<'_>) -> Result<usize, CodecError> {
    let n = u32::decode(r)? as u64;
    if n > MAX_LEN {
        return Err(CodecError::LengthOverflow { declared: n });
    }
    Ok(n as usize)
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for item in self {
            item.encode(out);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let n = decode_len(r)?;
        // Guard against hostile prefixes: cap the pre-allocation.
        let mut v = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            v.push(T::decode(r)?);
        }
        Ok(v)
    }

    fn wire_hint(&self) -> usize {
        4 + self.iter().map(Wire::wire_hint).sum::<usize>()
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take(1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(CodecError::BadTag { tag, ty: "Option" }),
        }
    }
}

impl Wire for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        out.extend_from_slice(self.as_bytes());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let n = decode_len(r)?;
        let b = r.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| CodecError::BadUtf8)
    }

    fn wire_hint(&self) -> usize {
        4 + self.len()
    }
}

impl Wire for Bytes {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        out.extend_from_slice(self);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let n = decode_len(r)?;
        let b = r.take(n)?;
        Ok(Bytes::copy_from_slice(b))
    }

    fn wire_hint(&self) -> usize {
        4 + self.len()
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }

    fn wire_hint(&self) -> usize {
        self.0.wire_hint() + self.1.wire_hint()
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }

    fn wire_hint(&self) -> usize {
        self.0.wire_hint() + self.1.wire_hint() + self.2.wire_hint()
    }
}

impl Wire for () {
    fn encode(&self, _out: &mut Vec<u8>) {}

    fn decode(_r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(())
    }

    fn wire_hint(&self) -> usize {
        0
    }
}

/// Derive-like helper: implement `Wire` for a struct by field order.
#[macro_export]
macro_rules! wire_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::wire::Wire for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                $( self.$field.encode(out); )+
            }

            fn decode(r: &mut $crate::wire::Reader<'_>) -> Result<Self, $crate::error::CodecError> {
                Ok(Self { $( $field: $crate::wire::Wire::decode(r)?, )+ })
            }

            fn wire_hint(&self) -> usize {
                0 $( + self.$field.wire_hint() )+
            }
        }
    };
}

/// Implement `Wire` for an id newtype wrapping a `Wire` integer.
#[macro_export]
macro_rules! wire_newtype {
    ($ty:ty) => {
        impl $crate::wire::Wire for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                self.0.encode(out);
            }

            fn decode(r: &mut $crate::wire::Reader<'_>) -> Result<Self, $crate::error::CodecError> {
                Ok(Self($crate::wire::Wire::decode(r)?))
            }

            fn wire_hint(&self) -> usize {
                self.0.wire_hint()
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_wire();
        let back = T::from_wire(&bytes).expect("decode");
        assert_eq!(v, back);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(0xdeadu16);
        roundtrip(0xdead_beefu32);
        roundtrip(u64::MAX);
        roundtrip(-42i64);
        roundtrip(true);
        roundtrip(false);
    }

    #[test]
    fn container_roundtrips() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip(Some(7u64));
        roundtrip(Option::<u64>::None);
        roundtrip("hello blobseer".to_string());
        roundtrip(String::new());
        roundtrip(Bytes::from_static(b"page data"));
        roundtrip((1u32, 2u64));
        roundtrip(vec![(1u64, Bytes::from_static(b"x"))]);
    }

    #[test]
    fn eof_detected() {
        let bytes = 0xdead_beefu32.to_wire();
        assert!(matches!(
            u64::from_wire(&bytes),
            Err(CodecError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut bytes = 1u32.to_wire();
        bytes.push(0);
        assert!(matches!(
            u32::from_wire(&bytes),
            Err(CodecError::TrailingBytes { remaining: 1 })
        ));
    }

    #[test]
    fn bad_bool_tag() {
        assert!(matches!(
            bool::from_wire(&[7]),
            Err(CodecError::BadTag { tag: 7, ty: "bool" })
        ));
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        // Declared length of u32::MAX elements must not allocate.
        let mut bytes = Vec::new();
        (u32::MAX).encode(&mut bytes);
        assert!(matches!(
            Vec::<u64>::from_wire(&bytes),
            Err(CodecError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn truncated_vec_fails_cleanly() {
        let mut bytes = Vec::new();
        3u32.encode(&mut bytes); // declares 3 elements
        1u64.encode(&mut bytes); // provides 1
        assert!(matches!(
            Vec::<u64>::from_wire(&bytes),
            Err(CodecError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut bytes = Vec::new();
        2u32.encode(&mut bytes);
        bytes.extend_from_slice(&[0xff, 0xfe]);
        assert!(matches!(String::from_wire(&bytes), Err(CodecError::BadUtf8)));
    }

    #[test]
    fn wire_hint_close_to_actual() {
        let v = vec![1u64, 2, 3];
        assert_eq!(v.wire_hint(), v.to_wire().len());
        let s = "abcd".to_string();
        assert_eq!(s.wire_hint(), s.to_wire().len());
    }
}
