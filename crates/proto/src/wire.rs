//! The binary wire codec, with a zero-copy payload path.
//!
//! The original system serialized RPC arguments with Boost.Serialization;
//! we use a hand-written little-endian format: fixed-width integers,
//! `u32` length prefixes, one tag byte for enums. Every message type in
//! [`crate::messages`] implements [`Wire`].
//!
//! # Copy discipline
//!
//! Encoding appends to a [`WireBuf`] — an iovec-style builder that keeps
//! small header fields in a contiguous tail but attaches page-sized
//! [`PageBuf`] payloads as *shared segments* (a refcount bump, no copy).
//! The finished message is a [`ByteChain`]: an ordered list of shared
//! segments whose concatenation is the wire encoding. A real network
//! transport would gather-write the chain (`writev`); the in-process and
//! simulated transports hand the chain to the receiver as-is.
//!
//! Decoding reads from a [`Reader`] over any of: a plain `&[u8]` (the
//! "bytes arrived from a socket" case), a [`PageBuf`] (a received frame
//! whose sub-slices can be lent out by refcount), or a [`ByteChain`]
//! (in-process delivery). [`Reader::take_buf`] returns payload bytes as
//! a `PageBuf` **borrowed from the source by refcount** whenever the
//! source supports it; only the plain-slice source has to copy.
//!
//! The message *sizes* on the (simulated) wire are unchanged by all of
//! this: [`ByteChain::len`] is exactly the number of bytes a socket
//! would carry, which is what drives the bandwidth cost model.

use crate::error::CodecError;
use blobseer_util::{copymeter, PageBuf};
use std::sync::atomic::{AtomicBool, Ordering};

/// Sanity cap on any single length prefix (1 GiB) — prevents a corrupt
/// length from causing an absurd allocation.
pub const MAX_LEN: u64 = 1 << 30;

/// Payloads at or above this size are attached to frames as shared
/// segments; smaller ones are cheaper to copy into the contiguous tail
/// than to track as separate segments.
pub const SHARE_THRESHOLD: usize = 512;

/// Cap on tail pre-allocation in [`WireBuf::with_capacity`]: message
/// `wire_hint`s include shared-payload bytes that never touch the
/// tail, and pre-allocating for them would strand a payload-sized
/// buffer on every frame.
const MAX_TAIL_HINT: usize = 1024;

/// Global switch for the zero-copy payload path. On (the default),
/// page payloads move through encode/decode by refcount. Off, every
/// payload is copied at each hop — the seed's behaviour, kept as a
/// runtime toggle so `bench/pr1` can measure the difference honestly.
static ZERO_COPY: AtomicBool = AtomicBool::new(true);

/// Enable or disable the zero-copy payload path (benchmarks only).
pub fn set_zero_copy(enabled: bool) {
    ZERO_COPY.store(enabled, Ordering::Relaxed);
}

/// Whether the zero-copy payload path is enabled.
pub fn zero_copy() -> bool {
    ZERO_COPY.load(Ordering::Relaxed)
}

/// RAII handle for a copy-regime ablation in tests: holds the exclusive
/// side of the shared ablation lock (`blobseer_util::testsync`) and
/// restores the previous toggle value on drop, so a panicking test
/// cannot leave the process in the seed's copy regime.
pub struct ZeroCopyAblation {
    prev: bool,
    _lock: blobseer_util::testsync::AblationWriteGuard,
}

/// Flip the zero-copy toggle for the guard's lifetime, serialized
/// against every other test that touches or observes the process-global
/// ablation toggles.
pub fn zero_copy_ablation(enabled: bool) -> ZeroCopyAblation {
    let lock = blobseer_util::testsync::ablation_exclusive();
    let prev = zero_copy();
    // lint: allow(unguarded-ablation) — this IS the RAII guard; the exclusive
    // testsync lock is held and `prev` restores on drop
    set_zero_copy(enabled);
    ZeroCopyAblation { prev, _lock: lock }
}

impl Drop for ZeroCopyAblation {
    fn drop(&mut self) {
        // lint: allow(unguarded-ablation) — guard drop restoring the saved value
        set_zero_copy(self.prev);
    }
}

// ---------------------------------------------------------------------------
// ByteChain
// ---------------------------------------------------------------------------

/// An ordered list of shared byte segments whose concatenation is one
/// wire-format byte string. Cloning is O(segments); no payload moves.
#[derive(Clone, Default)]
pub struct ByteChain {
    chunks: Vec<PageBuf>,
    len: usize,
}

impl ByteChain {
    /// An empty chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total byte length (what a socket would carry).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the chain carries no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of segments (white-box metric for sharing assertions).
    pub fn segment_count(&self) -> usize {
        self.chunks.len()
    }

    /// The segments.
    pub fn segments(&self) -> &[PageBuf] {
        &self.chunks
    }

    /// Append a segment (refcount bump). Empty segments are dropped.
    pub fn push(&mut self, seg: PageBuf) {
        if !seg.is_empty() {
            self.len += seg.len();
            self.chunks.push(seg);
        }
    }

    /// Flatten into one contiguous vector (copies; metered).
    pub fn to_vec(&self) -> Vec<u8> {
        copymeter::record_copy(self.len);
        let mut out = Vec::with_capacity(self.len);
        for c in &self.chunks {
            out.extend_from_slice(c);
        }
        out
    }

    /// Flatten into one contiguous [`PageBuf`]. O(1) when the chain is a
    /// single segment; copies (metered) otherwise.
    pub fn to_buf(&self) -> PageBuf {
        match self.chunks.len() {
            0 => PageBuf::new(),
            1 => self.chunks[0].clone(),
            // lint: allow(unmetered-copy) — delegates to to_vec, which records the copy
            _ => PageBuf::from_vec(self.to_vec()),
        }
    }

    /// Borrow the chain as a `writev`-shaped slice list, prefixed by
    /// `prefix` (a frame/length header) when non-empty. This is how a
    /// real socket transport gather-writes a frame straight from the
    /// shared segments — no flatten, no payload copy.
    pub fn as_io_slices<'a>(&'a self, prefix: &'a [u8]) -> Vec<std::io::IoSlice<'a>> {
        let mut out = Vec::with_capacity(self.chunks.len() + 1);
        if !prefix.is_empty() {
            out.push(std::io::IoSlice::new(prefix));
        }
        for c in &self.chunks {
            out.push(std::io::IoSlice::new(c.as_slice()));
        }
        out
    }

    /// O(segments) sub-chain `[start, start + len)` sharing every
    /// overlapped segment by refcount.
    ///
    /// # Panics
    /// If the range exceeds the chain.
    pub fn subchain(&self, start: usize, len: usize) -> ByteChain {
        assert!(start + len <= self.len, "subchain out of range");
        let mut out = ByteChain::new();
        if len == 0 {
            return out;
        }
        let mut pos = 0usize;
        let (mut want_start, mut want_len) = (start, len);
        for c in &self.chunks {
            let clen = c.len();
            if want_start >= pos + clen {
                pos += clen;
                continue;
            }
            let begin = want_start - pos;
            let take = (clen - begin).min(want_len);
            out.push(c.slice(begin..begin + take));
            want_len -= take;
            if want_len == 0 {
                break;
            }
            want_start = pos + clen;
            pos += clen;
        }
        debug_assert_eq!(out.len(), len);
        out
    }
}

impl From<Vec<u8>> for ByteChain {
    fn from(v: Vec<u8>) -> Self {
        let mut c = ByteChain::new();
        c.push(PageBuf::from_vec(v));
        c
    }
}

impl From<PageBuf> for ByteChain {
    fn from(b: PageBuf) -> Self {
        let mut c = ByteChain::new();
        c.push(b);
        c
    }
}

impl PartialEq for ByteChain {
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len {
            return false;
        }
        // Compare without flattening: walk both segment lists.
        let mut a = self.chunks.iter().flat_map(|c| c.iter());
        let mut b = other.chunks.iter().flat_map(|c| c.iter());
        loop {
            match (a.next(), b.next()) {
                (None, None) => return true,
                (x, y) if x == y => continue,
                _ => return false,
            }
        }
    }
}

impl Eq for ByteChain {}

impl std::fmt::Debug for ByteChain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ByteChain({} bytes, {} segs)",
            self.len,
            self.chunks.len()
        )
    }
}

// ---------------------------------------------------------------------------
// WireBuf
// ---------------------------------------------------------------------------

/// Encode-side builder: a contiguous tail for small fields plus shared
/// segments for page payloads.
///
/// A builder can be **poisoned**: when a length prefix would not fit its
/// wire representation (see [`WireBuf::put_len_prefix`]), the error is
/// recorded instead of silently wrapping the length. Checked consumers
/// ([`WireBuf::finish_checked`], [`Wire::try_to_chain`]) surface it;
/// [`WireBuf::finish`] debug-asserts it never reaches an unchecked path.
#[derive(Default)]
pub struct WireBuf {
    chain: ByteChain,
    tail: Vec<u8>,
    poison: Option<CodecError>,
}

impl WireBuf {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty builder with a tail capacity hint.
    ///
    /// The hint is clamped: the tail only ever holds header-scale
    /// fields, because payloads at or above [`SHARE_THRESHOLD`] are
    /// attached as shared segments. Passing a payload-inclusive
    /// `wire_hint()` here must not allocate (and then strand) a
    /// payload-sized tail.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            chain: ByteChain::new(),
            tail: Vec::with_capacity(n.min(MAX_TAIL_HINT)),
            poison: None,
        }
    }

    /// Bytes appended so far.
    pub fn len(&self) -> usize {
        self.chain.len() + self.tail.len()
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append one byte.
    #[inline]
    pub fn push(&mut self, b: u8) {
        self.tail.push(b);
    }

    /// Append a small byte slice (copied into the contiguous tail).
    #[inline]
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        // lint: allow(unmetered-copy) — builder tail holds header/control bytes;
        // payload pages ride PageBuf segments un-copied
        self.tail.extend_from_slice(s);
    }

    /// Append a `u32` length prefix, **checked**: a length above
    /// [`MAX_LEN`] (which subsumes `u32` overflow — the seed's silent
    /// wrap for ≥ 4 GiB bodies) poisons the builder instead of encoding
    /// a corrupt prefix. The cap mirrors [`decode_len`], so anything
    /// this encoder emits, the decoder accepts.
    pub fn put_len_prefix(&mut self, len: usize) {
        if len as u64 > MAX_LEN {
            self.poison(CodecError::LengthOverflow {
                declared: len as u64,
            });
            // Encode the poison sentinel so the buffer's framing stays
            // self-consistent for debug inspection; checked consumers
            // never let these bytes out.
            self.tail.extend_from_slice(&u32::MAX.to_le_bytes());
        } else {
            // lint: allow(truncating-cast) — guarded: the branch above bounds
            // len ≤ MAX_LEN (1 GiB), far below u32::MAX
            self.tail.extend_from_slice(&(len as u32).to_le_bytes());
        }
    }

    /// Record an encode-side error. The first poison wins.
    pub fn poison(&mut self, e: CodecError) {
        if self.poison.is_none() {
            self.poison = Some(e);
        }
    }

    /// The recorded encode-side error, if any.
    pub fn poisoned(&self) -> Option<CodecError> {
        self.poison
    }

    fn flush_tail(&mut self) {
        if !self.tail.is_empty() {
            let tail = std::mem::take(&mut self.tail);
            self.chain.push(PageBuf::from_vec(tail));
        }
    }

    /// Append a payload buffer. Large buffers are attached as shared
    /// segments (no copy); sub-threshold ones fold into the contiguous
    /// tail — a structural move of header-scale bytes, not counted as a
    /// payload copy. With the zero-copy path disabled, every payload is
    /// copied here and the copy is metered.
    pub fn put_shared(&mut self, buf: &PageBuf) {
        if buf.len() >= SHARE_THRESHOLD && zero_copy() {
            self.flush_tail();
            self.chain.push(buf.clone());
        } else {
            if !zero_copy() {
                copymeter::record_copy(buf.len());
            }
            self.tail.extend_from_slice(buf);
        }
    }

    /// Append a whole chain, preserving the sharing of its segments.
    pub fn put_chain(&mut self, chain: &ByteChain) {
        for seg in chain.segments() {
            self.put_shared(seg);
        }
    }

    /// Finish, yielding the encoded chain.
    ///
    /// Unchecked path: poisoning is a debug assertion here because every
    /// encoder that can legally produce an oversized length prefix
    /// (frame bodies, socket envelopes) goes through
    /// [`WireBuf::finish_checked`] / [`Wire::try_to_chain`].
    pub fn finish(mut self) -> ByteChain {
        debug_assert!(
            self.poison.is_none(),
            "poisoned WireBuf reached an unchecked finish: {:?}",
            self.poison
        );
        self.flush_tail();
        self.chain
    }

    /// Finish, surfacing any encode-side error instead of yielding a
    /// chain with a corrupt length prefix.
    pub fn finish_checked(mut self) -> Result<ByteChain, CodecError> {
        if let Some(e) = self.poison.take() {
            return Err(e);
        }
        self.flush_tail();
        Ok(self.chain)
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

enum Source<'a> {
    /// Borrowed plain bytes (network receive path, tests).
    Slice(&'a [u8]),
    /// A shared buffer whose sub-slices can be lent by refcount.
    Buf(&'a PageBuf),
    /// An in-process chain; payload segments are lent by refcount.
    Chain {
        chain: &'a ByteChain,
        /// Index of the chunk holding the next byte.
        chunk: usize,
        /// Offset of the next byte within that chunk.
        off: usize,
    },
}

/// A cursor with checked reads over a slice, buffer, or chain.
pub struct Reader<'a> {
    src: Source<'a>,
    /// Bytes consumed so far.
    pos: usize,
    /// Total bytes in the source.
    total: usize,
}

impl<'a> Reader<'a> {
    /// Read from plain bytes.
    pub fn new(buf: &'a [u8]) -> Self {
        Self {
            src: Source::Slice(buf),
            pos: 0,
            total: buf.len(),
        }
    }

    /// Read from a shared buffer; `take_buf` lends sub-slices by
    /// refcount.
    pub fn from_buf(buf: &'a PageBuf) -> Self {
        Self {
            src: Source::Buf(buf),
            pos: 0,
            total: buf.len(),
        }
    }

    /// Read from a chain; `take_buf` lends whole-segment ranges by
    /// refcount.
    pub fn from_chain(chain: &'a ByteChain) -> Self {
        Self {
            src: Source::Chain {
                chain,
                chunk: 0,
                off: 0,
            },
            pos: 0,
            total: chain.len(),
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.total - self.pos
    }

    /// Consume exactly `n` bytes, borrowing them from the source.
    ///
    /// On a chain source the bytes must lie within one segment — true by
    /// construction for every message this codec encodes, because
    /// fixed-width fields are always written to a contiguous tail.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        match &mut self.src {
            Source::Slice(buf) => {
                let s = &buf[self.pos..self.pos + n];
                self.pos += n;
                Ok(s)
            }
            Source::Buf(buf) => {
                let s = &buf.as_slice()[self.pos..self.pos + n];
                self.pos += n;
                Ok(s)
            }
            Source::Chain { chain, chunk, off } => {
                if n == 0 {
                    return Ok(&[]);
                }
                // Copy the long-lived chain reference out of the cursor so
                // the returned slice borrows `'a`, not this `&mut self`.
                let chain: &'a ByteChain = chain;
                // Skip to the chunk holding the next byte.
                while *chunk < chain.segments().len() && *off >= chain.segments()[*chunk].len() {
                    *chunk += 1;
                    *off = 0;
                }
                let seg = &chain.segments()[*chunk];
                let avail = seg.len() - *off;
                if avail < n {
                    // A fixed-width field straddling a segment boundary
                    // means the bytes were not produced by this encoder;
                    // refuse cleanly rather than stitching.
                    return Err(CodecError::UnexpectedEof {
                        needed: n,
                        remaining: avail,
                    });
                }
                let s = &seg.as_slice()[*off..*off + n];
                *off += n;
                self.pos += n;
                Ok(s)
            }
        }
    }

    /// Consume exactly `n` payload bytes as a [`PageBuf`].
    ///
    /// Zero-copy (a refcount bump on the source allocation) for buffer
    /// sources always, and for chain sources when the range lies within
    /// one segment — which is how every payload this codec encodes is
    /// laid out. Falls back to a metered copy otherwise (plain-slice
    /// sources, straddling ranges, or zero-copy disabled).
    pub fn take_buf(&mut self, n: usize) -> Result<PageBuf, CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        if n == 0 {
            return Ok(PageBuf::new());
        }
        let share = zero_copy() && n >= SHARE_THRESHOLD;
        let pos = self.pos;
        match &mut self.src {
            Source::Slice(buf) => {
                let out = PageBuf::copy_from_slice(&buf[pos..pos + n]);
                self.pos += n;
                Ok(out)
            }
            Source::Buf(buf) => {
                let out = if share {
                    buf.slice(pos..pos + n)
                } else {
                    PageBuf::copy_from_slice(&buf.as_slice()[pos..pos + n])
                };
                self.pos += n;
                Ok(out)
            }
            Source::Chain { chain, chunk, off } => {
                while *chunk < chain.segments().len() && *off >= chain.segments()[*chunk].len() {
                    *chunk += 1;
                    *off = 0;
                }
                let seg = &chain.segments()[*chunk];
                if share && seg.len() - *off >= n {
                    let out = seg.slice(*off..*off + n);
                    *off += n;
                    self.pos += n;
                    Ok(out)
                } else {
                    // Straddles segments (or sharing disabled): stitch.
                    let mut v = Vec::with_capacity(n);
                    let mut left = n;
                    while left > 0 {
                        while *off >= chain.segments()[*chunk].len() {
                            *chunk += 1;
                            *off = 0;
                        }
                        let seg = &chain.segments()[*chunk];
                        let take = (seg.len() - *off).min(left);
                        // lint: allow(unmetered-copy) — metered once for the whole
                        // gather below via record_copy(n)
                        v.extend_from_slice(&seg.as_slice()[*off..*off + take]);
                        *off += take;
                        left -= take;
                    }
                    self.pos += n;
                    copymeter::record_copy(n);
                    Ok(PageBuf::from_vec(v))
                }
            }
        }
    }

    /// Consume exactly `n` bytes as a sub-chain, sharing the source's
    /// segments by refcount (used for nested frame bodies).
    pub fn take_chain(&mut self, n: usize) -> Result<ByteChain, CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let pos = self.pos;
        match &mut self.src {
            Source::Slice(buf) => {
                let out = ByteChain::from(PageBuf::copy_from_slice(&buf[pos..pos + n]));
                self.pos += n;
                Ok(out)
            }
            Source::Buf(buf) => {
                let out = ByteChain::from(buf.slice(pos..pos + n));
                self.pos += n;
                Ok(out)
            }
            Source::Chain { chain, chunk, off } => {
                // `self.pos` already tracks the absolute chain offset.
                let out = chain.subchain(pos, n);
                // Advance the cursor by n.
                let mut left = n;
                while left > 0 {
                    while *off >= chain.segments()[*chunk].len() {
                        *chunk += 1;
                        *off = 0;
                    }
                    let seg_left = chain.segments()[*chunk].len() - *off;
                    let step = seg_left.min(left);
                    *off += step;
                    left -= step;
                }
                self.pos += n;
                Ok(out)
            }
        }
    }

    /// Error unless the source was fully consumed.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            Err(CodecError::TrailingBytes {
                remaining: self.remaining(),
            })
        } else {
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------------
// Wire trait
// ---------------------------------------------------------------------------

/// Types that can be encoded to / decoded from the wire format.
pub trait Wire: Sized {
    /// Append the encoding of `self` to `out`.
    fn encode(&self, out: &mut WireBuf);

    /// Decode a value, advancing the reader.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;

    /// Encode into a segment chain (payloads shared, not copied).
    fn to_chain(&self) -> ByteChain {
        let mut out = WireBuf::with_capacity(self.wire_hint());
        self.encode(&mut out);
        out.finish()
    }

    /// Encode into a segment chain, surfacing an encode-side length
    /// overflow ([`WireBuf::put_len_prefix`]) instead of silently
    /// emitting a corrupt prefix. Use this wherever the value being
    /// encoded can carry an attacker- or workload-sized body (frame
    /// batching, socket transports).
    fn try_to_chain(&self) -> Result<ByteChain, CodecError> {
        let mut out = WireBuf::with_capacity(self.wire_hint());
        self.encode(&mut out);
        out.finish_checked()
    }

    /// Encode into one contiguous buffer (flattens; payload copies are
    /// metered). Prefer [`Wire::to_chain`] on hot paths.
    fn to_wire(&self) -> Vec<u8> {
        let chain = self.to_chain();
        match chain.segments() {
            // Single owned segment: the chain's vector *is* the wire
            // encoding of a payload-free message; avoid double-counting
            // a copy for the common tiny-message case.
            // lint: allow(unmetered-copy) — payload-free tiny-message flatten;
            // multi-segment chains go through the metered to_vec below
            [only] => only.as_slice().to_vec(),
            // lint: allow(unmetered-copy) — Chain::to_vec records the copy internally
            _ => chain.to_vec(),
        }
    }

    /// Decode from a complete byte slice, requiring full consumption.
    fn from_wire(buf: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(buf);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }

    /// Decode from a complete shared buffer (payloads lent by refcount).
    fn from_buf(buf: &PageBuf) -> Result<Self, CodecError> {
        let mut r = Reader::from_buf(buf);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }

    /// Decode from a complete chain (payload segments lent by refcount).
    fn from_chain(chain: &ByteChain) -> Result<Self, CodecError> {
        let mut r = Reader::from_chain(chain);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }

    /// Optional capacity hint for encoding.
    fn wire_hint(&self) -> usize {
        16
    }
}

macro_rules! wire_int {
    ($ty:ty, $n:expr) => {
        impl Wire for $ty {
            #[inline]
            fn encode(&self, out: &mut WireBuf) {
                out.extend_from_slice(&self.to_le_bytes());
            }

            #[inline]
            fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                let b = r.take($n)?;
                // lint: allow(panic-on-serving-path) — take($n) returned exactly
                // $n bytes; the conversion cannot fail
                Ok(<$ty>::from_le_bytes(b.try_into().unwrap()))
            }

            fn wire_hint(&self) -> usize {
                $n
            }
        }
    };
}

wire_int!(u8, 1);
wire_int!(u16, 2);
wire_int!(u32, 4);
wire_int!(u64, 8);
wire_int!(i64, 8);

impl Wire for bool {
    fn encode(&self, out: &mut WireBuf) {
        out.push(*self as u8);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(CodecError::BadTag { tag, ty: "bool" }),
        }
    }
}

/// Decode a `u32` length prefix, rejecting anything above [`MAX_LEN`]
/// before a single byte is allocated for it. Public so framing layers
/// (RPC frames, socket envelopes) apply the same sanity cap as the
/// built-in container decoders.
pub fn decode_len(r: &mut Reader<'_>) -> Result<usize, CodecError> {
    let n = u32::decode(r)? as u64;
    if n > MAX_LEN {
        return Err(CodecError::LengthOverflow { declared: n });
    }
    Ok(n as usize)
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut WireBuf) {
        out.put_len_prefix(self.len());
        for item in self {
            item.encode(out);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let n = decode_len(r)?;
        // Guard against hostile prefixes: cap the pre-allocation.
        let mut v = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            v.push(T::decode(r)?);
        }
        Ok(v)
    }

    fn wire_hint(&self) -> usize {
        4 + self.iter().map(Wire::wire_hint).sum::<usize>()
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut WireBuf) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take(1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(CodecError::BadTag { tag, ty: "Option" }),
        }
    }
}

impl Wire for String {
    fn encode(&self, out: &mut WireBuf) {
        out.put_len_prefix(self.len());
        // lint: allow(unmetered-copy) — message field strings (names/paths), not payload
        out.extend_from_slice(self.as_bytes());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let n = decode_len(r)?;
        let b = r.take(n)?;
        // lint: allow(unmetered-copy) — message field strings (names/paths), not payload
        String::from_utf8(b.to_vec()).map_err(|_| CodecError::BadUtf8)
    }

    fn wire_hint(&self) -> usize {
        4 + self.len()
    }
}

/// Length-prefixed payload bytes: the zero-copy carrier. Encoding
/// attaches the buffer as a shared segment; decoding lends a sub-slice
/// of the source by refcount.
impl Wire for PageBuf {
    fn encode(&self, out: &mut WireBuf) {
        out.put_len_prefix(self.len());
        out.put_shared(self);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let n = decode_len(r)?;
        r.take_buf(n)
    }

    fn wire_hint(&self) -> usize {
        4 + self.len()
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, out: &mut WireBuf) {
        self.0.encode(out);
        self.1.encode(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }

    fn wire_hint(&self) -> usize {
        self.0.wire_hint() + self.1.wire_hint()
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, out: &mut WireBuf) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }

    fn wire_hint(&self) -> usize {
        self.0.wire_hint() + self.1.wire_hint() + self.2.wire_hint()
    }
}

impl Wire for () {
    fn encode(&self, _out: &mut WireBuf) {}

    fn decode(_r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(())
    }

    fn wire_hint(&self) -> usize {
        0
    }
}

/// Derive-like helper: implement `Wire` for a struct by field order.
#[macro_export]
macro_rules! wire_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::wire::Wire for $ty {
            fn encode(&self, out: &mut $crate::wire::WireBuf) {
                $( self.$field.encode(out); )+
            }

            fn decode(r: &mut $crate::wire::Reader<'_>) -> Result<Self, $crate::error::CodecError> {
                Ok(Self { $( $field: $crate::wire::Wire::decode(r)?, )+ })
            }

            fn wire_hint(&self) -> usize {
                0 $( + self.$field.wire_hint() )+
            }
        }
    };
}

/// Implement `Wire` for an id newtype wrapping a `Wire` integer.
#[macro_export]
macro_rules! wire_newtype {
    ($ty:ty) => {
        impl $crate::wire::Wire for $ty {
            fn encode(&self, out: &mut $crate::wire::WireBuf) {
                self.0.encode(out);
            }

            fn decode(r: &mut $crate::wire::Reader<'_>) -> Result<Self, $crate::error::CodecError> {
                Ok(Self($crate::wire::Wire::decode(r)?))
            }

            fn wire_hint(&self) -> usize {
                self.0.wire_hint()
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_wire();
        let back = T::from_wire(&bytes).expect("decode");
        assert_eq!(v, back);
        // The chain path must agree with the flat path.
        let chain = v.to_chain();
        assert_eq!(chain.to_vec(), bytes);
        let back = T::from_chain(&chain).expect("chain decode");
        assert_eq!(v, back);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(0xdeadu16);
        roundtrip(0xdead_beefu32);
        roundtrip(u64::MAX);
        roundtrip(-42i64);
        roundtrip(true);
        roundtrip(false);
    }

    #[test]
    fn container_roundtrips() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip(Some(7u64));
        roundtrip(Option::<u64>::None);
        roundtrip("hello blobseer".to_string());
        roundtrip(String::new());
        roundtrip(PageBuf::copy_from_slice(b"page data"));
        roundtrip(PageBuf::from_vec(vec![9u8; 4096]));
        roundtrip((1u32, 2u64));
        roundtrip(vec![(1u64, PageBuf::copy_from_slice(b"x"))]);
    }

    #[test]
    fn large_payload_encodes_without_copy() {
        let page = PageBuf::from_vec(vec![7u8; 8192]);
        let before = copymeter::thread_snapshot();
        let chain = page.to_chain();
        assert_eq!(before.bytes_since(), 0, "encode must not copy the payload");
        assert_eq!(chain.len(), 4 + 8192);
        assert_eq!(chain.segment_count(), 2, "length prefix + shared payload");
        assert!(chain.segments()[1].same_allocation(&page));

        // Chain decode lends the payload back by refcount.
        let decoded = PageBuf::from_chain(&chain).unwrap();
        assert_eq!(
            before.bytes_since(),
            0,
            "chain decode must not copy the payload"
        );
        assert!(decoded.same_allocation(&page));
    }

    #[test]
    fn buf_decode_shares_with_received_frame() {
        // The "contiguous bytes arrived" case: decoding a payload from a
        // PageBuf source lends a sub-slice of the receive buffer.
        let page = PageBuf::from_vec(vec![3u8; 2048]);
        let wire = PageBuf::from_vec(page.to_wire());
        let before = copymeter::thread_snapshot();
        let decoded = PageBuf::from_buf(&wire).unwrap();
        assert_eq!(before.bytes_since(), 0, "from_buf must slice, not copy");
        assert!(decoded.same_allocation(&wire));
        assert_eq!(decoded, page);
    }

    #[test]
    fn small_payloads_fold_into_tail() {
        let small = PageBuf::copy_from_slice(b"tiny");
        let chain = small.to_chain();
        assert_eq!(
            chain.segment_count(),
            1,
            "sub-threshold payloads stay contiguous"
        );
    }

    // The `set_zero_copy` ablation toggle is process global, so its test
    // lives in its own test binary: `tests/copy_mode.rs`.

    #[test]
    fn subchain_slices_across_segments() {
        let mut chain = ByteChain::new();
        chain.push(PageBuf::from_vec((0..10u8).collect()));
        chain.push(PageBuf::from_vec((10..20u8).collect()));
        chain.push(PageBuf::from_vec((20..30u8).collect()));
        assert_eq!(chain.len(), 30);
        let sub = chain.subchain(5, 20);
        assert_eq!(sub.to_vec(), (5..25u8).collect::<Vec<_>>());
        assert_eq!(chain.subchain(0, 0).len(), 0);
        assert_eq!(chain.subchain(29, 1).to_vec(), vec![29]);
    }

    #[test]
    fn eof_detected() {
        let bytes = 0xdead_beefu32.to_wire();
        assert!(matches!(
            u64::from_wire(&bytes),
            Err(CodecError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut bytes = 1u32.to_wire();
        bytes.push(0);
        assert!(matches!(
            u32::from_wire(&bytes),
            Err(CodecError::TrailingBytes { remaining: 1 })
        ));
    }

    #[test]
    fn bad_bool_tag() {
        assert!(matches!(
            bool::from_wire(&[7]),
            Err(CodecError::BadTag { tag: 7, ty: "bool" })
        ));
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        // Declared length of u32::MAX elements must not allocate.
        let mut bytes = Vec::new();
        {
            let mut wb = WireBuf::new();
            (u32::MAX).encode(&mut wb);
            bytes.extend_from_slice(&wb.finish().to_vec());
        }
        assert!(matches!(
            Vec::<u64>::from_wire(&bytes),
            Err(CodecError::LengthOverflow { .. })
        ));
        // Same for a payload length prefix.
        assert!(matches!(
            PageBuf::from_wire(&bytes),
            Err(CodecError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn truncated_vec_fails_cleanly() {
        let mut wb = WireBuf::new();
        3u32.encode(&mut wb); // declares 3 elements
        1u64.encode(&mut wb); // provides 1
        let bytes = wb.finish().to_vec();
        assert!(matches!(
            Vec::<u64>::from_wire(&bytes),
            Err(CodecError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut wb = WireBuf::new();
        2u32.encode(&mut wb);
        wb.extend_from_slice(&[0xff, 0xfe]);
        let bytes = wb.finish().to_vec();
        assert!(matches!(
            String::from_wire(&bytes),
            Err(CodecError::BadUtf8)
        ));
    }

    #[test]
    fn oversized_len_prefix_poisons_instead_of_wrapping() {
        let mut wb = WireBuf::new();
        wb.put_len_prefix((MAX_LEN + 1) as usize);
        assert!(matches!(
            wb.poisoned(),
            Some(CodecError::LengthOverflow { declared }) if declared == MAX_LEN + 1
        ));
        assert!(matches!(
            wb.finish_checked(),
            Err(CodecError::LengthOverflow { .. })
        ));
        // In-range prefixes stay on the fast path.
        let mut wb = WireBuf::new();
        wb.put_len_prefix(7);
        assert!(wb.poisoned().is_none());
        assert_eq!(wb.finish_checked().unwrap().to_vec(), 7u32.to_le_bytes());
    }

    #[test]
    fn try_to_chain_matches_to_chain_for_legal_values() {
        let v = vec![1u64, 2, 3];
        assert_eq!(v.try_to_chain().unwrap().to_vec(), v.to_chain().to_vec());
    }

    #[test]
    fn io_slices_cover_the_chain_with_prefix_first() {
        let mut chain = ByteChain::new();
        chain.push(PageBuf::from_vec(vec![1u8; 600]));
        chain.push(PageBuf::from_vec(vec![2u8; 700]));
        let head = [9u8; 4];
        let slices = chain.as_io_slices(&head);
        assert_eq!(slices.len(), 3, "prefix + one slice per segment");
        let total: usize = slices.iter().map(|s| s.len()).sum();
        assert_eq!(total, 4 + chain.len());
        assert_eq!(&slices[0][..], &head);
        assert_eq!(slices[1].len(), 600);
        // No prefix: segments only.
        assert_eq!(chain.as_io_slices(&[]).len(), 2);
    }

    #[test]
    fn wire_hint_close_to_actual() {
        let v = vec![1u64, 2, 3];
        assert_eq!(v.wire_hint(), v.to_wire().len());
        let s = "abcd".to_string();
        assert_eq!(s.wire_hint(), s.to_wire().len());
        let p = PageBuf::from_vec(vec![0u8; 600]);
        assert_eq!(p.wire_hint(), p.to_chain().len());
    }
}
