//! Identifier newtypes.
//!
//! Everything is a small `Copy` integer wrapper so ids can be used as map
//! keys and wire fields with zero overhead while staying type-distinct.

use std::fmt;

/// Snapshot version number of a blob.
///
/// Versions are **dense successive integers starting at 0**; version 0 is,
/// by the paper's convention, the all-zero string, and version `v` is the
/// string obtained by applying the first `v` patches in order.
pub type Version = u64;

/// The all-zero initial version.
pub const ZERO_VERSION: Version = 0;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $inner:ty) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub $inner);

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                Self(v)
            }
        }
    };
}

id_newtype!(
    /// Globally unique identifier of a blob, issued by `ALLOC`.
    BlobId,
    u64
);

id_newtype!(
    /// A physical node in the (simulated) cluster. Every actor — client,
    /// provider, manager — lives on some node.
    NodeId,
    u32
);

id_newtype!(
    /// A data provider process. In the paper's deployments one provider
    /// runs per node, so the id wraps the hosting node id.
    ProviderId,
    u32
);

id_newtype!(
    /// Unique identifier of one WRITE operation, issued by the provider
    /// manager *before* the version number exists (pages are written first;
    /// the version is assigned afterwards by the version manager).
    WriteId,
    u64
);

impl ProviderId {
    /// The node hosting this provider.
    pub fn node(self) -> NodeId {
        NodeId(self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newtypes_are_distinct_and_printable() {
        let b = BlobId(7);
        assert_eq!(format!("{b}"), "7");
        assert_eq!(format!("{b:?}"), "BlobId(7)");
        assert_eq!(BlobId::from(7), b);
        assert!(BlobId(1) < BlobId(2));
    }

    #[test]
    fn provider_to_node() {
        assert_eq!(ProviderId(9).node(), NodeId(9));
    }
}
