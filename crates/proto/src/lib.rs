//! # blobseer-proto
//!
//! The shared vocabulary of the system: identifiers, blob geometry and
//! segment algebra, metadata-tree node types, the binary wire codec, and
//! every RPC message exchanged between the five kinds of actors of the
//! paper (clients, data providers, provider manager, metadata providers,
//! version manager).
//!
//! This crate is deliberately free of I/O and concurrency so that every
//! other crate can depend on it without layering cycles.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod geometry;
pub mod ids;
pub mod messages;
pub mod tree;
pub mod wire;

pub use blobseer_util::PageBuf;
pub use error::{BlobError, CodecError};
pub use geometry::{Geometry, PageRange, Segment};
pub use ids::{BlobId, NodeId, ProviderId, Version, WriteId, ZERO_VERSION};
pub use tree::{NodeBody, NodeKey, PageKey, PageLoc, TreeNode};
pub use wire::{ByteChain, Reader, Wire, WireBuf};
