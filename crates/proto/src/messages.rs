//! RPC message vocabulary for every service in the system.
//!
//! Four services exist (paper §III.A): **data provider**, **provider
//! manager**, **metadata provider** (DHT node) and **version manager**.
//! Method ids are stable `u16`s namespaced per service; request/response
//! bodies are [`Wire`] structs. The RPC layer frames `(method, seq, body)`
//! triples and batches them per destination.

use crate::error::{BlobError, CodecError};
use crate::geometry::{Geometry, Segment};
use crate::ids::{BlobId, ProviderId, Version, WriteId};
use crate::tree::{NodeKey, PageKey, TreeNode};
use crate::wire::{Reader, Wire, WireBuf};
use crate::wire_struct;
use blobseer_util::PageBuf;

// ---------------------------------------------------------------------------
// Method ids
// ---------------------------------------------------------------------------

/// Method identifiers, namespaced by service in the high byte.
pub mod method {
    /// Data provider: store a page.
    pub const PUT_PAGE: u16 = 0x0101;
    /// Data provider: fetch a page.
    pub const GET_PAGE: u16 = 0x0102;
    /// Data provider: drop a page (GC).
    pub const REMOVE_PAGE: u16 = 0x0103;
    /// Data provider: report memory usage.
    pub const PROVIDER_STATS: u16 = 0x0104;

    /// Provider manager: a provider joins the system.
    pub const REGISTER_PROVIDER: u16 = 0x0201;
    /// Provider manager: periodic load report.
    pub const HEARTBEAT: u16 = 0x0202;
    /// Provider manager: plan a write (issue write id + target providers).
    pub const PLAN_WRITE: u16 = 0x0203;
    /// Provider manager: list registered providers.
    pub const LIST_PROVIDERS: u16 = 0x0204;

    /// Metadata provider (DHT): store one tree node.
    pub const META_PUT: u16 = 0x0301;
    /// Metadata provider (DHT): fetch one tree node.
    pub const META_GET: u16 = 0x0302;
    /// Metadata provider (DHT): store a batch of tree nodes.
    pub const META_PUT_BATCH: u16 = 0x0303;
    /// Metadata provider (DHT): fetch a batch of tree nodes.
    pub const META_GET_BATCH: u16 = 0x0304;
    /// Metadata provider (DHT): remove nodes (GC).
    pub const META_REMOVE_BATCH: u16 = 0x0305;

    /// Version manager: create a blob (ALLOC).
    pub const CREATE_BLOB: u16 = 0x0401;
    /// Version manager: blob geometry + latest published version.
    pub const GET_BLOB: u16 = 0x0402;
    /// Version manager: latest published version only.
    pub const GET_LATEST: u16 = 0x0403;
    /// Version manager: assign a version + border links to a write.
    pub const REQUEST_VERSION: u16 = 0x0404;
    /// Version manager: a write finished storing its metadata.
    pub const COMPLETE_WRITE: u16 = 0x0405;
    /// Version manager: compute a garbage-collection plan.
    pub const GC_PLAN: u16 = 0x0406;
}

// ---------------------------------------------------------------------------
// Data provider messages
// ---------------------------------------------------------------------------

/// Store one page of data.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PutPage {
    /// Storage key.
    pub key: PageKey,
    /// Page contents (exactly `page_size` bytes); cheap-clone and
    /// shared by refcount through framing, batching and storage.
    pub data: PageBuf,
}
wire_struct!(PutPage { key, data });

/// Fetch one page by key.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GetPage {
    /// Storage key.
    pub key: PageKey,
}
wire_struct!(GetPage { key });

/// Remove one page (garbage collection).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RemovePage {
    /// Storage key.
    pub key: PageKey,
}
wire_struct!(RemovePage { key });

/// Data provider memory usage report.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ProviderStats {
    /// Pages currently stored.
    pub pages: u64,
    /// Logical bytes currently stored (what clients asked the provider
    /// to retain; two keys sharing one allocation count twice).
    pub bytes: u64,
    /// Heap-resident backing bytes (the in-memory backend's allocation
    /// footprint; freed by removes).
    pub heap_bytes: u64,
    /// Mapped-file backing bytes (the persistent backend's page log —
    /// record headers and commit markers included — counting exactly
    /// one generation: the serving one, even while a compaction window
    /// briefly has two files on disk).
    pub mapped_bytes: u64,
    /// Log bytes owed to removed or superseded records: what the next
    /// compaction will reclaim. Always 0 for backends that free
    /// eagerly.
    pub dead_bytes: u64,
}

impl ProviderStats {
    /// Bytes that count against the provider's registered capacity: the
    /// heap footprint plus the append-only log footprint. This — not the
    /// logical `bytes` — is what the provider manager folds into its
    /// `reported` load, so capacity reservations stay truthful for a
    /// backend whose log retains removed pages.
    pub fn reserved_bytes(&self) -> u64 {
        self.heap_bytes + self.mapped_bytes
    }
}

wire_struct!(ProviderStats {
    pages,
    bytes,
    heap_bytes,
    mapped_bytes,
    dead_bytes
});

// ---------------------------------------------------------------------------
// Provider manager messages
// ---------------------------------------------------------------------------

/// A data provider announces itself (paper: "on entering the system, each
/// data provider registers with the provider manager").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RegisterProvider {
    /// The provider's id.
    pub provider: ProviderId,
    /// Capacity in bytes it is willing to store.
    pub capacity: u64,
}
wire_struct!(RegisterProvider { provider, capacity });

/// Periodic load report used by the least-loaded allocation strategy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Heartbeat {
    /// Reporting provider.
    pub provider: ProviderId,
    /// Current usage.
    pub stats: ProviderStats,
}
wire_struct!(Heartbeat { provider, stats });

/// Ask the provider manager to plan a write of `pages` pages.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PlanWrite {
    /// Blob being written.
    pub blob: BlobId,
    /// Number of pages the client will store.
    pub pages: u64,
    /// Desired number of replicas per page (1 = no replication).
    pub replication: u32,
}
wire_struct!(PlanWrite {
    blob,
    pages,
    replication
});

/// The provider manager's answer: a fresh write id and, for each page, the
/// providers that should store its replicas.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WritePlan {
    /// Unique id for this WRITE operation.
    pub write: WriteId,
    /// `pages × replication` provider assignments, page-major.
    pub targets: Vec<Vec<ProviderId>>,
}
wire_struct!(WritePlan { write, targets });

// ---------------------------------------------------------------------------
// Metadata provider (DHT) messages
// ---------------------------------------------------------------------------

/// Store one tree node.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MetaPut {
    /// The node (key + body).
    pub node: TreeNode,
}
wire_struct!(MetaPut { node });

/// Fetch one tree node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MetaGet {
    /// Node identity.
    pub key: NodeKey,
}
wire_struct!(MetaGet { key });

/// Store a batch of tree nodes (one aggregated RPC — paper §V.A).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MetaPutBatch {
    /// Nodes to store.
    pub nodes: Vec<TreeNode>,
}
wire_struct!(MetaPutBatch { nodes });

/// Fetch a batch of tree nodes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MetaGetBatch {
    /// Keys to fetch.
    pub keys: Vec<NodeKey>,
}
wire_struct!(MetaGetBatch { keys });

/// Batch response: bodies in key order (`None` = not found).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MetaGetBatchResp {
    /// One entry per requested key.
    pub nodes: Vec<Option<TreeNode>>,
}
wire_struct!(MetaGetBatchResp { nodes });

/// Remove a batch of tree nodes (GC).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MetaRemoveBatch {
    /// Keys to remove.
    pub keys: Vec<NodeKey>,
}
wire_struct!(MetaRemoveBatch { keys });

// ---------------------------------------------------------------------------
// Version manager messages
// ---------------------------------------------------------------------------

/// `ALLOC`: create a blob with the given geometry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CreateBlob {
    /// Total logical size (power of two).
    pub total_size: u64,
    /// Page size (power of two).
    pub page_size: u64,
}
wire_struct!(CreateBlob {
    total_size,
    page_size
});

/// Blob descriptor returned by `GET_BLOB`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BlobInfo {
    /// The blob id.
    pub blob: BlobId,
    /// Its geometry.
    pub total_size: u64,
    /// Page size.
    pub page_size: u64,
    /// Latest published version.
    pub latest: Version,
}
wire_struct!(BlobInfo {
    blob,
    total_size,
    page_size,
    latest
});

impl BlobInfo {
    /// The geometry as a typed value.
    pub fn geometry(&self) -> Geometry {
        Geometry {
            total_size: self.total_size,
            page_size: self.page_size,
        }
    }
}

/// Ask for the latest published version of a blob.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GetLatest {
    /// The blob.
    pub blob: BlobId,
}
wire_struct!(GetLatest { blob });

/// A writer that has stored its pages asks for its version number
/// (paper §III.B step 4).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RequestVersion {
    /// Blob being written.
    pub blob: BlobId,
    /// The write id under which the pages were stored (issued by the
    /// provider manager); recorded so GC can later name dead pages.
    pub write: WriteId,
    /// Byte offset of the written segment (page aligned).
    pub offset: u64,
    /// Byte size of the written segment (page aligned).
    pub size: u64,
}
wire_struct!(RequestVersion {
    blob,
    write,
    offset,
    size
});

impl RequestVersion {
    /// The written segment.
    pub fn segment(&self) -> Segment {
        Segment::new(self.offset, self.size)
    }
}

/// One precomputed border link (paper §IV.C): at border-node interval
/// `(offset, size)` of the new tree, the child half that the write does
/// not cover must link to an older version.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BorderLink {
    /// Border node interval offset.
    pub offset: u64,
    /// Border node interval size.
    pub size: u64,
    /// Version for the *left* child if it is the missing half.
    pub left: Option<Version>,
    /// Version for the *right* child if it is the missing half.
    pub right: Option<Version>,
}
wire_struct!(BorderLink {
    offset,
    size,
    left,
    right
});

/// The version manager's answer to [`RequestVersion`]: the assigned
/// version and every border link the writer needs to weave its subtree in
/// complete isolation from concurrent writers.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WriteTicket {
    /// Version assigned to this write.
    pub version: Version,
    /// Precomputed links for all border nodes.
    pub borders: Vec<BorderLink>,
}
wire_struct!(WriteTicket { version, borders });

/// A writer reports that all its metadata is stored (paper §III.B step 7).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CompleteWrite {
    /// The blob.
    pub blob: BlobId,
    /// The version assigned earlier.
    pub version: Version,
}
wire_struct!(CompleteWrite { blob, version });

/// Response to [`CompleteWrite`]: the latest version published after this
/// completion was folded in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PublishState {
    /// Latest published version.
    pub latest: Version,
}
wire_struct!(PublishState { latest });

/// Ask the version manager to plan a GC that discards all versions below
/// `keep_from` (paper §VI future work, implemented here).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GcRequest {
    /// The blob.
    pub blob: BlobId,
    /// Lowest version to keep.
    pub keep_from: Version,
}
wire_struct!(GcRequest { blob, keep_from });

/// The GC plan: everything unreachable from versions `>= keep_from`.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct GcPlan {
    /// Dead tree nodes, to be removed from the metadata providers.
    pub dead_nodes: Vec<NodeKey>,
    /// Dead pages with the providers holding them.
    pub dead_pages: Vec<(PageKey, Vec<ProviderId>)>,
}
wire_struct!(GcPlan {
    dead_nodes,
    dead_pages
});

// ---------------------------------------------------------------------------
// Wire impls for cross-cutting types
// ---------------------------------------------------------------------------

impl Wire for Segment {
    fn encode(&self, out: &mut WireBuf) {
        self.offset.encode(out);
        self.size.encode(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Segment {
            offset: u64::decode(r)?,
            size: u64::decode(r)?,
        })
    }

    fn wire_hint(&self) -> usize {
        16
    }
}

impl Wire for BlobError {
    fn encode(&self, out: &mut WireBuf) {
        match self {
            BlobError::UnknownBlob(b) => {
                out.push(0);
                b.encode(out);
            }
            BlobError::BadSegment { segment, reason } => {
                out.push(1);
                segment.encode(out);
                reason.to_string().encode(out);
            }
            BlobError::VersionNotPublished { requested, latest } => {
                out.push(2);
                requested.encode(out);
                latest.encode(out);
            }
            BlobError::MissingMetadata { blob, version } => {
                out.push(3);
                blob.encode(out);
                version.encode(out);
            }
            BlobError::MissingPage { tried } => {
                out.push(4);
                tried.encode(out);
            }
            BlobError::Unreachable(who) => {
                out.push(5);
                who.to_string().encode(out);
            }
            BlobError::Codec(_) => {
                out.push(6);
            }
            BlobError::Internal(msg) => {
                out.push(7);
                msg.to_string().encode(out);
            }
            BlobError::Recovery {
                file,
                offset,
                detail,
            } => {
                out.push(8);
                file.encode(out);
                offset.encode(out);
                detail.to_string().encode(out);
            }
            BlobError::Overload { retry_after_hint } => {
                out.push(9);
                retry_after_hint.encode(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        // `&'static str` reasons cannot round-trip through the wire; decode
        // into leaked or canned strings. Reasons are diagnostics only.
        fn intern(s: String) -> &'static str {
            Box::leak(s.into_boxed_str())
        }
        match r.take(1)?[0] {
            0 => Ok(BlobError::UnknownBlob(BlobId::decode(r)?)),
            1 => Ok(BlobError::BadSegment {
                segment: Segment::decode(r)?,
                reason: intern(String::decode(r)?),
            }),
            2 => Ok(BlobError::VersionNotPublished {
                requested: Version::decode(r)?,
                latest: Version::decode(r)?,
            }),
            3 => Ok(BlobError::MissingMetadata {
                blob: BlobId::decode(r)?,
                version: Version::decode(r)?,
            }),
            4 => Ok(BlobError::MissingPage {
                tried: Vec::decode(r)?,
            }),
            5 => Ok(BlobError::Unreachable(intern(String::decode(r)?))),
            6 => Ok(BlobError::Internal("remote codec error")),
            7 => Ok(BlobError::Internal(intern(String::decode(r)?))),
            8 => Ok(BlobError::Recovery {
                file: String::decode(r)?,
                offset: u64::decode(r)?,
                detail: intern(String::decode(r)?),
            }),
            9 => Ok(BlobError::Overload {
                retry_after_hint: u64::decode(r)?,
            }),
            tag => Err(CodecError::BadTag {
                tag,
                ty: "BlobError",
            }),
        }
    }
}

/// A wire-encodable `Result` used as the body of every RPC response.
impl<T: Wire> Wire for Result<T, BlobError> {
    fn encode(&self, out: &mut WireBuf) {
        match self {
            Ok(v) => {
                out.push(0);
                v.encode(out);
            }
            Err(e) => {
                out.push(1);
                e.encode(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take(1)?[0] {
            0 => Ok(Ok(T::decode(r)?)),
            1 => Ok(Err(BlobError::decode(r)?)),
            tag => Err(CodecError::BadTag { tag, ty: "Result" }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::NodeBody;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        assert_eq!(T::from_wire(&v.to_wire()).unwrap(), v);
    }

    #[test]
    fn provider_messages_roundtrip() {
        roundtrip(PutPage {
            key: PageKey {
                blob: BlobId(1),
                write: WriteId(2),
                index: 3,
            },
            data: PageBuf::from_vec(vec![7u8; 128]),
        });
        roundtrip(GetPage {
            key: PageKey {
                blob: BlobId(1),
                write: WriteId(2),
                index: 3,
            },
        });
        roundtrip(ProviderStats {
            pages: 10,
            bytes: 655360,
            heap_bytes: 655360,
            mapped_bytes: 1 << 20,
            dead_bytes: 4096,
        });
    }

    #[test]
    fn manager_messages_roundtrip() {
        roundtrip(RegisterProvider {
            provider: ProviderId(4),
            capacity: 1 << 30,
        });
        roundtrip(PlanWrite {
            blob: BlobId(1),
            pages: 256,
            replication: 2,
        });
        roundtrip(WritePlan {
            write: WriteId(77),
            targets: vec![vec![ProviderId(1), ProviderId(2)], vec![ProviderId(3)]],
        });
    }

    #[test]
    fn meta_messages_roundtrip() {
        let node = TreeNode {
            key: NodeKey {
                blob: BlobId(1),
                version: 4,
                offset: 0,
                size: 1 << 20,
            },
            body: NodeBody::Inner {
                left_version: 4,
                right_version: 2,
            },
        };
        roundtrip(MetaPutBatch {
            nodes: vec![node.clone(), node.clone()],
        });
        roundtrip(MetaGetBatch {
            keys: vec![node.key],
        });
        roundtrip(MetaGetBatchResp {
            nodes: vec![Some(node), None],
        });
    }

    #[test]
    fn version_messages_roundtrip() {
        roundtrip(CreateBlob {
            total_size: 1 << 40,
            page_size: 1 << 16,
        });
        roundtrip(BlobInfo {
            blob: BlobId(9),
            total_size: 1 << 40,
            page_size: 1 << 16,
            latest: 3,
        });
        roundtrip(RequestVersion {
            blob: BlobId(9),
            write: WriteId(5),
            offset: 0,
            size: 1 << 16,
        });
        roundtrip(WriteTicket {
            version: 12,
            borders: vec![
                BorderLink {
                    offset: 0,
                    size: 1 << 20,
                    left: Some(3),
                    right: None,
                },
                BorderLink {
                    offset: 0,
                    size: 1 << 19,
                    left: None,
                    right: Some(0),
                },
            ],
        });
        roundtrip(CompleteWrite {
            blob: BlobId(9),
            version: 12,
        });
        roundtrip(PublishState { latest: 12 });
        roundtrip(GcRequest {
            blob: BlobId(9),
            keep_from: 5,
        });
        roundtrip(GcPlan {
            dead_nodes: vec![NodeKey {
                blob: BlobId(9),
                version: 1,
                offset: 0,
                size: 4096,
            }],
            dead_pages: vec![(
                PageKey {
                    blob: BlobId(9),
                    write: WriteId(1),
                    index: 0,
                },
                vec![ProviderId(3)],
            )],
        });
    }

    #[test]
    fn results_roundtrip() {
        let ok: Result<u64, BlobError> = Ok(17);
        roundtrip(ok);
        let err: Result<u64, BlobError> = Err(BlobError::VersionNotPublished {
            requested: 5,
            latest: 2,
        });
        roundtrip(err);
        let err: Result<(), BlobError> = Err(BlobError::MissingPage {
            tried: vec![ProviderId(1), ProviderId(2)],
        });
        roundtrip(err);
        let err: Result<u64, BlobError> = Err(BlobError::Overload {
            retry_after_hint: 40,
        });
        roundtrip(err);
    }

    #[test]
    fn blob_info_geometry() {
        let info = BlobInfo {
            blob: BlobId(1),
            total_size: 1 << 30,
            page_size: 1 << 16,
            latest: 0,
        };
        assert_eq!(info.geometry().page_count(), 1 << 14);
    }
}
