//! Metadata-tree node types (paper §III.C).
//!
//! Metadata is organized as a *distributed segment tree*, one per blob
//! version: a full binary tree whose root covers the whole blob and whose
//! leaves cover single pages. A node is identified by
//! `(blob, version, offset, size)` and its body is **immutable once
//! written** — the property that makes lock-free concurrent sharing and
//! unbounded client-side caching sound.
//!
//! Inner nodes store the *versions* of their two children (the child
//! intervals are implied by halving), which is exactly how "weaving"
//! works: a border node of version `v` simply records an older version
//! number for the half that `v` did not rewrite.

use crate::geometry::Segment;
use crate::ids::{BlobId, ProviderId, Version, WriteId};
use crate::{wire_newtype, wire_struct};

wire_newtype!(BlobId);
wire_newtype!(crate::ids::NodeId);
wire_newtype!(ProviderId);
wire_newtype!(WriteId);

/// Identity of one metadata tree node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct NodeKey {
    /// Owning blob.
    pub blob: BlobId,
    /// Version whose tree this node belongs to.
    pub version: Version,
    /// Byte offset of the covered interval.
    pub offset: u64,
    /// Byte size of the covered interval (power of two multiple of the
    /// page size).
    pub size: u64,
}

wire_struct!(NodeKey {
    blob,
    version,
    offset,
    size
});

impl NodeKey {
    /// The covered byte interval as a [`Segment`].
    pub fn segment(&self) -> Segment {
        Segment::new(self.offset, self.size)
    }

    /// Key of the left child at version `v` (first half of the interval).
    pub fn left_child(&self, v: Version) -> NodeKey {
        debug_assert!(self.size >= 2);
        NodeKey {
            blob: self.blob,
            version: v,
            offset: self.offset,
            size: self.size / 2,
        }
    }

    /// Key of the right child at version `v` (second half).
    pub fn right_child(&self, v: Version) -> NodeKey {
        debug_assert!(self.size >= 2);
        NodeKey {
            blob: self.blob,
            version: v,
            offset: self.offset + self.size / 2,
            size: self.size / 2,
        }
    }

    /// Stable routing hash used to disperse nodes over the metadata
    /// providers (DHT key).
    pub fn routing_key(&self) -> u64 {
        use blobseer_util::fxhash::mix64;
        mix64(self.blob.0 ^ mix64(self.version) ^ mix64(self.offset) ^ mix64(self.size ^ 0xb10b))
    }
}

/// Where a page physically lives.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PageLoc {
    /// The page's storage key.
    pub key: PageKey,
    /// Providers holding a replica, in preference order. The first entry
    /// is the primary chosen by the provider manager.
    pub replicas: Vec<ProviderId>,
}

wire_struct!(PageLoc { key, replicas });

/// Storage key of one written page.
///
/// Pages are written *before* the write knows its version number (paper
/// §III.B), so the key is `(blob, write_id, page_index)` with `write_id`
/// issued by the provider manager; the version label is attached when the
/// metadata is built.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PageKey {
    /// Owning blob.
    pub blob: BlobId,
    /// The WRITE operation that produced this page.
    pub write: WriteId,
    /// Page index within the blob.
    pub index: u64,
}

wire_struct!(PageKey { blob, write, index });

/// Body of a metadata tree node.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum NodeBody {
    /// Non-leaf: versions of the two children. A version of 0 denotes the
    /// implicit all-zero subtree (nothing stored — "allocate on write").
    Inner {
        /// Version of the left-child node.
        left_version: Version,
        /// Version of the right-child node.
        right_version: Version,
    },
    /// Leaf: locator of the single page this node covers.
    Leaf {
        /// Physical page location.
        page: PageLoc,
    },
}

impl crate::wire::Wire for NodeBody {
    fn encode(&self, out: &mut crate::wire::WireBuf) {
        match self {
            NodeBody::Inner {
                left_version,
                right_version,
            } => {
                out.push(0);
                left_version.encode(out);
                right_version.encode(out);
            }
            NodeBody::Leaf { page } => {
                out.push(1);
                page.encode(out);
            }
        }
    }

    fn decode(r: &mut crate::wire::Reader<'_>) -> Result<Self, crate::error::CodecError> {
        match r.take(1)?[0] {
            0 => Ok(NodeBody::Inner {
                left_version: Version::decode(r)?,
                right_version: Version::decode(r)?,
            }),
            1 => Ok(NodeBody::Leaf {
                page: PageLoc::decode(r)?,
            }),
            tag => Err(crate::error::CodecError::BadTag {
                tag,
                ty: "NodeBody",
            }),
        }
    }

    fn wire_hint(&self) -> usize {
        match self {
            NodeBody::Inner { .. } => 17,
            NodeBody::Leaf { page } => 1 + page.wire_hint(),
        }
    }
}

/// A fully-specified tree node ready to be stored: key plus body.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TreeNode {
    /// Node identity.
    pub key: NodeKey,
    /// Node contents.
    pub body: NodeBody,
}

wire_struct!(TreeNode { key, body });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::Wire;

    fn key(v: Version, offset: u64, size: u64) -> NodeKey {
        NodeKey {
            blob: BlobId(3),
            version: v,
            offset,
            size,
        }
    }

    #[test]
    fn child_keys_halve_interval() {
        let root = key(5, 0, 1024);
        let l = root.left_child(5);
        let r = root.right_child(2);
        assert_eq!((l.offset, l.size, l.version), (0, 512, 5));
        assert_eq!((r.offset, r.size, r.version), (512, 512, 2));
        assert_eq!(l.segment(), Segment::new(0, 512));
    }

    #[test]
    fn routing_keys_disperse() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for v in 0..10 {
            for off in 0..10 {
                seen.insert(key(v, off * 4096, 4096).routing_key());
            }
        }
        assert_eq!(seen.len(), 100, "no collisions on a small set");
    }

    #[test]
    fn node_roundtrips() {
        let inner = TreeNode {
            key: key(7, 0, 65536),
            body: NodeBody::Inner {
                left_version: 7,
                right_version: 3,
            },
        };
        assert_eq!(TreeNode::from_wire(&inner.to_wire()).unwrap(), inner);

        let leaf = TreeNode {
            key: key(7, 65536, 65536),
            body: NodeBody::Leaf {
                page: PageLoc {
                    key: PageKey {
                        blob: BlobId(3),
                        write: WriteId(9),
                        index: 1,
                    },
                    replicas: vec![ProviderId(2), ProviderId(5)],
                },
            },
        };
        assert_eq!(TreeNode::from_wire(&leaf.to_wire()).unwrap(), leaf);
    }

    #[test]
    fn bad_body_tag_rejected() {
        let mut bytes = vec![9u8];
        bytes.extend_from_slice(&[0; 16]);
        assert!(NodeBody::from_wire(&bytes).is_err());
    }
}
