//! Blob geometry and segment algebra.
//!
//! Per the paper's §II: a **page** is a fixed-size substring whose offset
//! is a multiple of `page_size`; a **segment** is a concatenation of
//! consecutive pages; both the blob size and the page size are powers of
//! two. All byte arithmetic of the system funnels through this module.

use crate::error::BlobError;
use std::fmt;

/// A byte range `[offset, offset + size)` within a blob.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Segment {
    /// Byte offset of the first byte.
    pub offset: u64,
    /// Length in bytes.
    pub size: u64,
}

impl fmt::Debug for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.offset, self.end())
    }
}

impl Segment {
    /// Construct a segment.
    pub fn new(offset: u64, size: u64) -> Self {
        Self { offset, size }
    }

    /// One-past-the-last byte offset.
    pub fn end(&self) -> u64 {
        self.offset + self.size
    }

    /// True when the segment contains no bytes.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// True when `self` and `other` share at least one byte.
    pub fn intersects(&self, other: &Segment) -> bool {
        self.offset < other.end() && other.offset < self.end()
    }

    /// True when `self` fully contains `other`.
    pub fn contains(&self, other: &Segment) -> bool {
        self.offset <= other.offset && other.end() <= self.end()
    }

    /// The overlapping byte range, if any.
    pub fn intersection(&self, other: &Segment) -> Option<Segment> {
        let start = self.offset.max(other.offset);
        let end = self.end().min(other.end());
        (start < end).then(|| Segment::new(start, end - start))
    }
}

/// A half-open range of page indices `[start, end)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageRange {
    /// First page index.
    pub start: u64,
    /// One-past-last page index.
    pub end: u64,
}

impl fmt::Debug for PageRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pages[{}, {})", self.start, self.end)
    }
}

impl PageRange {
    /// Number of pages covered.
    pub fn count(&self) -> u64 {
        self.end - self.start
    }

    /// Iterate the page indices.
    pub fn iter(&self) -> impl Iterator<Item = u64> {
        self.start..self.end
    }

    /// True when the range covers no pages.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Static shape of a blob: total logical size and page size, both powers
/// of two (paper §II convention). The *logical* size may be enormous
/// (1 TB in the paper) — storage is allocated on write.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Geometry {
    /// Total logical blob size in bytes (power of two).
    pub total_size: u64,
    /// Page size in bytes (power of two, `<= total_size`).
    pub page_size: u64,
}

impl Geometry {
    /// Validate and construct a geometry.
    pub fn new(total_size: u64, page_size: u64) -> Result<Self, BlobError> {
        if total_size == 0 || !total_size.is_power_of_two() {
            return Err(BlobError::BadSegment {
                segment: Segment::new(0, total_size),
                reason: "total_size must be a nonzero power of two",
            });
        }
        if page_size == 0 || !page_size.is_power_of_two() {
            return Err(BlobError::BadSegment {
                segment: Segment::new(0, page_size),
                reason: "page_size must be a nonzero power of two",
            });
        }
        if page_size > total_size {
            return Err(BlobError::BadSegment {
                segment: Segment::new(0, page_size),
                reason: "page_size must not exceed total_size",
            });
        }
        Ok(Self {
            total_size,
            page_size,
        })
    }

    /// Number of pages in the blob.
    pub fn page_count(&self) -> u64 {
        self.total_size / self.page_size
    }

    /// log2 of the page count == height of the metadata tree.
    pub fn tree_height(&self) -> u32 {
        self.page_count().trailing_zeros()
    }

    /// The page index containing byte `offset`.
    pub fn page_of(&self, offset: u64) -> u64 {
        offset / self.page_size
    }

    /// Byte segment covered by page `index`.
    pub fn page_segment(&self, index: u64) -> Segment {
        Segment::new(index * self.page_size, self.page_size)
    }

    /// The whole blob as a segment.
    pub fn full_segment(&self) -> Segment {
        Segment::new(0, self.total_size)
    }

    /// Page indices covered by `seg` (which need not be aligned).
    pub fn pages_touching(&self, seg: &Segment) -> PageRange {
        if seg.is_empty() {
            return PageRange { start: 0, end: 0 };
        }
        PageRange {
            start: self.page_of(seg.offset),
            end: self.page_of(seg.end() - 1) + 1,
        }
    }

    /// Validate a segment for the **aligned** fast-path API: non-empty,
    /// in-bounds, and page-aligned on both ends (paper §II: reads/writes
    /// operate on segments = whole pages).
    pub fn validate_aligned(&self, seg: &Segment) -> Result<PageRange, BlobError> {
        if seg.is_empty() {
            return Err(BlobError::BadSegment {
                segment: *seg,
                reason: "empty segment",
            });
        }
        if seg.end() > self.total_size {
            return Err(BlobError::BadSegment {
                segment: *seg,
                reason: "out of bounds",
            });
        }
        if !seg.offset.is_multiple_of(self.page_size) || !seg.size.is_multiple_of(self.page_size) {
            return Err(BlobError::BadSegment {
                segment: *seg,
                reason: "segment must be page-aligned",
            });
        }
        Ok(PageRange {
            start: self.page_of(seg.offset),
            end: self.page_of(seg.end() - 1) + 1,
        })
    }

    /// Validate bounds only (for the unaligned read-modify-write path).
    pub fn validate_bounds(&self, seg: &Segment) -> Result<(), BlobError> {
        if seg.is_empty() {
            return Err(BlobError::BadSegment {
                segment: *seg,
                reason: "empty segment",
            });
        }
        if seg.end() > self.total_size {
            return Err(BlobError::BadSegment {
                segment: *seg,
                reason: "out of bounds",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KB: u64 = 1024;

    #[test]
    fn segment_basics() {
        let s = Segment::new(100, 50);
        assert_eq!(s.end(), 150);
        assert!(!s.is_empty());
        assert!(Segment::new(3, 0).is_empty());
    }

    #[test]
    fn intersects_and_contains() {
        let a = Segment::new(0, 100);
        let b = Segment::new(50, 100);
        let c = Segment::new(100, 10);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c), "half-open ranges do not touch at 100");
        assert!(a.contains(&Segment::new(0, 100)));
        assert!(a.contains(&Segment::new(10, 10)));
        assert!(!a.contains(&b));
        assert_eq!(a.intersection(&b), Some(Segment::new(50, 50)));
        assert_eq!(a.intersection(&c), None);
    }

    #[test]
    fn geometry_validation() {
        assert!(Geometry::new(1 << 20, 64 * KB).is_ok());
        assert!(Geometry::new(0, 64).is_err());
        assert!(Geometry::new(100, 64).is_err(), "non power of two total");
        assert!(
            Geometry::new(1 << 20, 1000).is_err(),
            "non power of two page"
        );
        assert!(Geometry::new(64, 128).is_err(), "page larger than blob");
        // page_size == total_size is legal: a single-page blob.
        let g = Geometry::new(64, 64).unwrap();
        assert_eq!(g.page_count(), 1);
        assert_eq!(g.tree_height(), 0);
    }

    #[test]
    fn page_math() {
        let g = Geometry::new(1 << 20, 64 * KB).unwrap(); // 16 pages
        assert_eq!(g.page_count(), 16);
        assert_eq!(g.tree_height(), 4);
        assert_eq!(g.page_of(0), 0);
        assert_eq!(g.page_of(64 * KB - 1), 0);
        assert_eq!(g.page_of(64 * KB), 1);
        assert_eq!(g.page_segment(2), Segment::new(128 * KB, 64 * KB));
        assert_eq!(g.full_segment(), Segment::new(0, 1 << 20));
    }

    #[test]
    fn pages_touching_unaligned() {
        let g = Geometry::new(1 << 20, 64 * KB).unwrap();
        let r = g.pages_touching(&Segment::new(10, 64 * KB));
        assert_eq!((r.start, r.end), (0, 2));
        let r = g.pages_touching(&Segment::new(64 * KB, 64 * KB));
        assert_eq!((r.start, r.end), (1, 2));
        let r = g.pages_touching(&Segment::new(5, 0));
        assert!(r.is_empty());
        assert_eq!(r.count(), 0);
    }

    #[test]
    fn aligned_validation() {
        let g = Geometry::new(1 << 20, 64 * KB).unwrap();
        let ok = g
            .validate_aligned(&Segment::new(64 * KB, 128 * KB))
            .unwrap();
        assert_eq!((ok.start, ok.end), (1, 3));
        assert!(g.validate_aligned(&Segment::new(1, 64 * KB)).is_err());
        assert!(g.validate_aligned(&Segment::new(0, 1)).is_err());
        assert!(g.validate_aligned(&Segment::new(0, 0)).is_err());
        assert!(
            g.validate_aligned(&Segment::new(1 << 20, 64 * KB)).is_err(),
            "out of bounds"
        );
        // Whole blob is valid.
        assert!(g.validate_aligned(&g.full_segment()).is_ok());
    }

    #[test]
    fn bounds_validation() {
        let g = Geometry::new(1 << 20, 64 * KB).unwrap();
        assert!(g.validate_bounds(&Segment::new(5, 3)).is_ok());
        assert!(g.validate_bounds(&Segment::new((1 << 20) - 1, 1)).is_ok());
        assert!(g.validate_bounds(&Segment::new((1 << 20) - 1, 2)).is_err());
        assert!(g.validate_bounds(&Segment::new(0, 0)).is_err());
    }

    #[test]
    fn paper_scale_geometry() {
        // The paper's headline configuration: 1 TB blob, 64 KB pages.
        let g = Geometry::new(1 << 40, 64 * KB).unwrap();
        assert_eq!(g.page_count(), 1 << 24);
        assert_eq!(g.tree_height(), 24);
        let r = g.pages_touching(&Segment::new(123 * 64 * KB, 16 * 1024 * KB));
        assert_eq!(r.count(), 256, "16 MiB segment = 256 pages");
    }
}
