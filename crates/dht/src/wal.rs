//! The metadata provider's durability seam.
//!
//! Mirrors the data provider's `StorageBackend` split: the sharded
//! in-memory index is the serving path either way; the backend behind
//! it decides whether mutations outlive the process. [`VolatileMeta`]
//! is the classic in-memory DHT node; [`WalMeta`] journals every put
//! and remove through the shared record-then-commit engine
//! ([`blobseer_util::recordlog`]) *before* the mutation is applied or
//! acknowledged — write-ahead, group-committed, so "acknowledged means
//! recoverable" holds for tree nodes exactly as it does for pages.
//!
//! ## Log format
//!
//! One generation file `meta.g<N>.log` of 48-byte-header records:
//!
//! * **put** (`BSMTPUT1`): payload is the wire-encoded [`TreeNode`].
//!   Tree nodes are immutable and content-addressed by [`NodeKey`], so
//!   replaying puts in order is idempotent — a double put (replica
//!   repair, retried write) re-inserts the same body.
//! * **remove** (`BSMTDEL1`): payload is the wire-encoded [`NodeKey`]
//!   (GC executing a plan).
//! * group-commit markers / tombstones as defined by the engine.
//!
//! A batched put (`META_PUT_BATCH`, the paper's aggregation
//! optimization) appends all its records under **one** commit marker —
//! the durability analogue of paying one RPC latency per batch.
//!
//! ## Crash model
//!
//! `SIGKILL` at any byte offset: replay surfaces exactly the committed
//! prefix. A torn tail (crash mid-append or mid-commit) is silently
//! dropped — those puts were never acknowledged. A *committed* record
//! that fails to decode is a [`BlobError::Recovery`] with file + offset
//! context, never a panic.

use blobseer_proto::tree::{NodeKey, TreeNode};
use blobseer_proto::wire::Wire;
use blobseer_proto::BlobError;
use blobseer_util::recordlog::{LogError, OwnedRecord, Record, RecordLog, RecordLogOptions};
use std::path::Path;

/// Magic of a put record ("BSMTPUT1"): payload is a wire-encoded
/// [`TreeNode`].
pub const META_PUT_MAGIC: u64 = 0x4253_4d54_5055_5431;

/// Magic of a remove record ("BSMTDEL1"): payload is a wire-encoded
/// [`NodeKey`].
pub const META_REMOVE_MAGIC: u64 = 0x4253_4d54_4445_4c31;

/// The durability seam of one DHT node (`StorageBackend`-style): the
/// serving index stays in memory; implementations decide whether
/// mutations are journaled before they are acknowledged.
pub trait MetaBackend: Send + Sync {
    /// Journal a batch of tree-node puts (one commit marker for the
    /// whole batch). Must return before the puts are acknowledged.
    fn persist_puts(&self, nodes: &[TreeNode]) -> Result<(), BlobError>;

    /// Journal a batch of removes (GC executing a plan).
    fn persist_removes(&self, keys: &[NodeKey]) -> Result<(), BlobError>;

    /// True when mutations survive the process (`WalMeta`).
    fn is_durable(&self) -> bool;

    /// Journal size in bytes (0 for the volatile backend).
    fn log_bytes(&self) -> u64;
}

/// The classic in-memory metadata node: nothing outlives the process.
pub struct VolatileMeta;

impl MetaBackend for VolatileMeta {
    fn persist_puts(&self, _nodes: &[TreeNode]) -> Result<(), BlobError> {
        Ok(())
    }

    fn persist_removes(&self, _keys: &[NodeKey]) -> Result<(), BlobError> {
        Ok(())
    }

    fn is_durable(&self) -> bool {
        false
    }

    fn log_bytes(&self) -> u64 {
        0
    }
}

/// One replayed metadata mutation, in append order.
#[derive(Debug)]
pub enum MetaOp {
    /// Re-insert a tree node.
    Put(TreeNode),
    /// Remove a tree node (GC replay).
    Remove(NodeKey),
}

/// Map an engine error onto the typed recovery error, carrying the log
/// file for context.
fn log_err(path: &Path, e: LogError) -> BlobError {
    BlobError::Recovery {
        file: path.display().to_string(),
        offset: 0,
        detail: match e {
            LogError::Io(op) => op,
            LogError::Poisoned => "meta log poisoned",
            LogError::CommitFailed => "meta log commit failed",
        },
    }
}

/// The write-ahead metadata journal.
#[derive(Debug)]
pub struct WalMeta {
    log: RecordLog,
}

impl WalMeta {
    /// Open (or create) the metadata journal under `dir` and replay it:
    /// returns the backend plus every committed mutation in append
    /// order, ready to be applied to an empty index.
    pub fn open(dir: &Path, opts: RecordLogOptions) -> Result<(Self, Vec<MetaOp>), BlobError> {
        let (log, records) = RecordLog::open(dir, "meta", opts).map_err(|e| log_err(dir, e))?;
        let mut ops = Vec::with_capacity(records.len());
        for rec in records {
            ops.push(decode_op(&rec, &log)?);
        }
        Ok((Self { log }, ops))
    }
}

/// Decode one committed record; failures carry file + offset.
fn decode_op(rec: &OwnedRecord, log: &RecordLog) -> Result<MetaOp, BlobError> {
    let recovery = |detail: &'static str| BlobError::Recovery {
        file: log.path().display().to_string(),
        offset: rec.offset,
        detail,
    };
    match rec.magic {
        META_PUT_MAGIC => Ok(MetaOp::Put(
            TreeNode::from_wire(&rec.payload).map_err(|_| recovery("undecodable tree node"))?,
        )),
        META_REMOVE_MAGIC => Ok(MetaOp::Remove(
            NodeKey::from_wire(&rec.payload).map_err(|_| recovery("undecodable node key"))?,
        )),
        _ => Err(recovery("unknown meta record magic")),
    }
}

impl MetaBackend for WalMeta {
    fn persist_puts(&self, nodes: &[TreeNode]) -> Result<(), BlobError> {
        let encoded: Vec<Vec<u8>> = nodes.iter().map(|n| n.to_wire()).collect();
        let recs: Vec<Record<'_>> = encoded
            .iter()
            .map(|payload| Record {
                magic: META_PUT_MAGIC,
                a: 0,
                b: 0,
                c: 0,
                payload,
            })
            .collect();
        self.log
            .append_batch(&recs)
            .map_err(|e| log_err(self.log.path(), e))
    }

    fn persist_removes(&self, keys: &[NodeKey]) -> Result<(), BlobError> {
        let encoded: Vec<Vec<u8>> = keys.iter().map(|k| k.to_wire()).collect();
        let recs: Vec<Record<'_>> = encoded
            .iter()
            .map(|payload| Record {
                magic: META_REMOVE_MAGIC,
                a: 0,
                b: 0,
                c: 0,
                payload,
            })
            .collect();
        self.log
            .append_batch(&recs)
            .map_err(|e| log_err(self.log.path(), e))
    }

    fn is_durable(&self) -> bool {
        true
    }

    fn log_bytes(&self) -> u64 {
        self.log.log_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_proto::tree::NodeBody;
    use blobseer_proto::BlobId;
    use blobseer_util::recordlog::{encode_header, payload_digest, write_at, REC_HEADER};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "metawal-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn node(v: u64, offset: u64) -> TreeNode {
        TreeNode {
            key: NodeKey {
                blob: BlobId(1),
                version: v,
                offset,
                size: 4096,
            },
            body: NodeBody::Inner {
                left_version: v,
                right_version: v,
            },
        }
    }

    #[test]
    fn puts_and_removes_replay_in_order() {
        let dir = tmp_dir("order");
        {
            let (wal, ops) = WalMeta::open(&dir, RecordLogOptions::default()).unwrap();
            assert!(ops.is_empty());
            wal.persist_puts(&[node(1, 0), node(1, 4096), node(2, 0)])
                .unwrap();
            wal.persist_removes(&[node(1, 0).key]).unwrap();
            assert!(wal.is_durable() && wal.log_bytes() > 0);
        }
        let (_, ops) = WalMeta::open(&dir, RecordLogOptions::default()).unwrap();
        assert_eq!(ops.len(), 4);
        assert!(matches!(&ops[0], MetaOp::Put(n) if n.key.version == 1));
        assert!(matches!(&ops[3], MetaOp::Remove(k) if k.version == 1 && k.offset == 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn committed_garbage_is_typed_error_not_panic() {
        let dir = tmp_dir("garbage");
        // A validly checksummed, committed record whose payload is not
        // a decodable TreeNode: replay must surface Recovery with the
        // offending offset, never panic.
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("meta.g0.log");
        let file = std::fs::File::create(&path).unwrap();
        let payload = b"not a tree node";
        let header = encode_header(
            META_PUT_MAGIC,
            0,
            0,
            0,
            payload.len() as u64,
            payload_digest(payload),
        );
        write_at(&file, &header, 0).unwrap();
        write_at(&file, payload, REC_HEADER).unwrap();
        let marker_at = REC_HEADER + payload.len() as u64;
        let marker = encode_header(blobseer_util::recordlog::COMMIT_MAGIC, 0, 0, 0, 0, 0);
        write_at(&file, &marker, marker_at).unwrap();
        drop(file);
        let err = WalMeta::open(&dir, RecordLogOptions::default()).unwrap_err();
        assert!(
            matches!(err, BlobError::Recovery { offset: 0, .. }),
            "got {err:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn volatile_backend_is_a_noop() {
        let v = VolatileMeta;
        v.persist_puts(&[node(1, 0)]).unwrap();
        v.persist_removes(&[node(1, 0).key]).unwrap();
        assert!(!v.is_durable());
        assert_eq!(v.log_bytes(), 0);
    }
}
