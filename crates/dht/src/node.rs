//! The metadata-provider service: one DHT node.
//!
//! Stores immutable tree nodes keyed by [`NodeKey`]. Handles single and
//! batched puts/gets/removes; batch handling is what the RPC aggregation
//! optimization (paper §V.A) talks to. Processing costs per node are
//! charged through [`ServerCtx`] using [`ServiceCosts`], calibrated to
//! BambooDHT-era behaviour.
//!
//! ## Durability
//!
//! Since PR 7 the node has a `StorageBackend`-style durability seam
//! ([`crate::wal::MetaBackend`]): [`DhtNodeService::new`] keeps the
//! classic volatile node, [`DhtNodeService::open_durable`] journals
//! every put/remove through the shared record-then-commit log engine
//! *before* applying or acknowledging it, and replays the journal into
//! the serving index at open. The log format (put / remove records,
//! batched puts under one group-commit marker) and the crash model
//! (`SIGKILL` at any offset surfaces exactly the committed prefix,
//! committed-but-undecodable bytes are a typed
//! [`BlobError::Recovery`], never a panic) are documented in
//! [`crate::wal`]. Serving reads never touches the journal — the
//! steady-state read path is identical in both modes, and the journal's
//! commit machinery is durability plumbing outside the lockmeter, so
//! the zero-serialization discipline is unchanged.

use crate::wal::{MetaBackend, MetaOp, VolatileMeta, WalMeta};
use blobseer_proto::messages::{
    method, MetaGet, MetaGetBatch, MetaGetBatchResp, MetaPut, MetaPutBatch, MetaRemoveBatch,
};
use blobseer_proto::tree::{NodeBody, NodeKey, TreeNode};
use blobseer_proto::BlobError;
use blobseer_rpc::{error_frame, respond, Frame, ServerCtx, Service};
use blobseer_simnet::ServiceCosts;
use blobseer_util::recordlog::RecordLogOptions;
use blobseer_util::ShardedMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Metadata store of one DHT node (volatile or journal-backed — see
/// the module docs).
pub struct DhtNodeService {
    store: ShardedMap<NodeKey, NodeBody>,
    backend: Box<dyn MetaBackend>,
    costs: ServiceCosts,
    puts: AtomicU64,
    gets: AtomicU64,
}

impl DhtNodeService {
    /// Empty volatile node with the given processing costs.
    pub fn new(costs: ServiceCosts) -> Self {
        Self {
            store: ShardedMap::with_shards(64),
            backend: Box::new(VolatileMeta),
            costs,
            puts: AtomicU64::new(0),
            gets: AtomicU64::new(0),
        }
    }

    /// Open (or create) a journal-backed node under `dir`: the meta
    /// log is replayed into the serving index, and every subsequent
    /// put/remove is journaled before it is acknowledged.
    pub fn open_durable(
        dir: &Path,
        opts: RecordLogOptions,
        costs: ServiceCosts,
    ) -> Result<Self, BlobError> {
        let (wal, ops) = WalMeta::open(dir, opts)?;
        let store = ShardedMap::with_shards(64);
        for op in ops {
            match op {
                // Insert replaces: replaying puts in order gives
                // last-record-wins, matching live idempotent puts.
                MetaOp::Put(node) => {
                    store.insert(node.key, node.body);
                }
                MetaOp::Remove(key) => {
                    store.remove(&key);
                }
            }
        }
        Ok(Self {
            store,
            backend: Box::new(wal),
            costs,
            puts: AtomicU64::new(0),
            gets: AtomicU64::new(0),
        })
    }

    /// True when puts/removes are journaled (outlive the process).
    pub fn is_durable(&self) -> bool {
        self.backend.is_durable()
    }

    /// Journal size in bytes (0 for a volatile node).
    pub fn log_bytes(&self) -> u64 {
        self.backend.log_bytes()
    }

    /// Number of stored tree nodes.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True when the node stores nothing.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// `(puts, gets)` op counters.
    pub fn op_counts(&self) -> (u64, u64) {
        (
            self.puts.load(Ordering::Relaxed),
            self.gets.load(Ordering::Relaxed),
        )
    }

    /// Direct store access for tests/GC verification.
    pub fn contains(&self, key: &NodeKey) -> bool {
        self.store.contains_key(key)
    }

    /// Write-ahead: journal first, apply and acknowledge after — an
    /// acknowledged put is recoverable by replay.
    fn put(&self, node: TreeNode) -> Result<(), BlobError> {
        self.backend.persist_puts(std::slice::from_ref(&node))?;
        self.puts.fetch_add(1, Ordering::Relaxed);
        // Tree nodes are immutable: double-put (replica repair, retried
        // writes) is idempotent.
        self.store.insert(node.key, node.body);
        Ok(())
    }

    /// Batched write-ahead: the whole batch rides one commit marker
    /// (the durability analogue of paying one RPC latency per batch).
    fn put_batch(&self, nodes: Vec<TreeNode>) -> Result<(), BlobError> {
        self.backend.persist_puts(&nodes)?;
        for node in nodes {
            self.puts.fetch_add(1, Ordering::Relaxed);
            self.store.insert(node.key, node.body);
        }
        Ok(())
    }

    fn get(&self, key: &NodeKey) -> Option<TreeNode> {
        self.gets.fetch_add(1, Ordering::Relaxed);
        self.store
            .get_cloned(key)
            .map(|body| TreeNode { key: *key, body })
    }
}

impl Service for DhtNodeService {
    fn name(&self) -> &'static str {
        "metadata-provider"
    }

    fn handle(&self, ctx: &mut ServerCtx, frame: &Frame) -> Frame {
        match frame.method {
            method::META_PUT => {
                ctx.charge(self.costs.meta_store_cpu_ns);
                ctx.charge_latency(self.costs.meta_store_ns);
                respond(frame, |m: MetaPut| self.put(m.node))
            }
            method::META_GET => {
                ctx.charge(self.costs.meta_fetch_ns);
                respond(frame, |m: MetaGet| {
                    self.get(&m.key).ok_or(BlobError::MissingMetadata {
                        blob: m.key.blob,
                        version: m.key.version,
                    })
                })
            }
            method::META_PUT_BATCH => {
                let mut n = 0u64;
                let resp = respond(frame, |m: MetaPutBatch| {
                    n = m.nodes.len() as u64;
                    self.put_batch(m.nodes)
                });
                // CPU per node serializes on this provider; the I/O
                // acknowledgement latency is paid once per message — that
                // asymmetry is the whole point of aggregation.
                ctx.charge(n.max(1) * self.costs.meta_store_cpu_ns);
                ctx.charge_latency(self.costs.meta_store_ns);
                resp
            }
            method::META_GET_BATCH => {
                let mut n = 0u64;
                let resp = respond(frame, |m: MetaGetBatch| {
                    n = m.keys.len() as u64;
                    Ok(MetaGetBatchResp {
                        nodes: m.keys.iter().map(|k| self.get(k)).collect(),
                    })
                });
                ctx.charge(n.max(1) * self.costs.meta_fetch_ns);
                resp
            }
            method::META_REMOVE_BATCH => {
                let mut n = 0u64;
                let resp = respond(frame, |m: MetaRemoveBatch| {
                    n = m.keys.len() as u64;
                    self.backend.persist_removes(&m.keys)?;
                    let mut removed = 0u64;
                    for k in &m.keys {
                        if self.store.remove(k).is_some() {
                            removed += 1;
                        }
                    }
                    Ok(removed)
                });
                ctx.charge(n.max(1) * self.costs.meta_fetch_ns);
                resp
            }
            other => error_frame(other, BlobError::Internal("unknown metadata method")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_proto::BlobId;
    use blobseer_rpc::parse_response;

    fn node(v: u64, offset: u64) -> TreeNode {
        TreeNode {
            key: NodeKey {
                blob: BlobId(1),
                version: v,
                offset,
                size: 4096,
            },
            body: NodeBody::Inner {
                left_version: v,
                right_version: v,
            },
        }
    }

    #[test]
    fn put_get_single() {
        let svc = DhtNodeService::new(ServiceCosts::zero());
        let mut ctx = ServerCtx::new(0);
        let n = node(1, 0);
        let resp = svc.handle(
            &mut ctx,
            &Frame::from_msg(method::META_PUT, &MetaPut { node: n.clone() }),
        );
        parse_response::<()>(&resp).unwrap();
        let resp = svc.handle(
            &mut ctx,
            &Frame::from_msg(method::META_GET, &MetaGet { key: n.key }),
        );
        assert_eq!(parse_response::<TreeNode>(&resp).unwrap(), n);
        assert_eq!(svc.len(), 1);
    }

    #[test]
    fn get_missing_is_error() {
        let svc = DhtNodeService::new(ServiceCosts::zero());
        let mut ctx = ServerCtx::new(0);
        let resp = svc.handle(
            &mut ctx,
            &Frame::from_msg(
                method::META_GET,
                &MetaGet {
                    key: node(9, 0).key,
                },
            ),
        );
        assert!(matches!(
            parse_response::<TreeNode>(&resp),
            Err(BlobError::MissingMetadata { .. })
        ));
    }

    #[test]
    fn batch_roundtrip_and_charges() {
        let costs = ServiceCosts {
            meta_store_ns: 1000,
            meta_store_cpu_ns: 100,
            meta_fetch_ns: 10,
            ..ServiceCosts::zero()
        };
        let svc = DhtNodeService::new(costs);
        let nodes: Vec<TreeNode> = (0..5).map(|i| node(1, i * 4096)).collect();
        let mut ctx = ServerCtx::new(0);
        let resp = svc.handle(
            &mut ctx,
            &Frame::from_msg(
                method::META_PUT_BATCH,
                &MetaPutBatch {
                    nodes: nodes.clone(),
                },
            ),
        );
        parse_response::<()>(&resp).unwrap();
        assert_eq!(ctx.charged, 500, "per-node CPU cost serializes");
        assert_eq!(
            ctx.charged_latency, 1000,
            "store latency paid once per message"
        );

        let keys: Vec<NodeKey> = nodes.iter().map(|n| n.key).collect();
        let mut ctx = ServerCtx::new(0);
        let resp = svc.handle(
            &mut ctx,
            &Frame::from_msg(method::META_GET_BATCH, &MetaGetBatch { keys: keys.clone() }),
        );
        let got = parse_response::<MetaGetBatchResp>(&resp).unwrap();
        assert_eq!(got.nodes.len(), 5);
        assert!(got.nodes.iter().all(|n| n.is_some()));
        assert_eq!(ctx.charged, 50, "per-node fetch cost");
    }

    #[test]
    fn batch_get_reports_missing_as_none() {
        let svc = DhtNodeService::new(ServiceCosts::zero());
        let mut ctx = ServerCtx::new(0);
        svc.handle(
            &mut ctx,
            &Frame::from_msg(method::META_PUT, &MetaPut { node: node(1, 0) }),
        );
        let keys = vec![node(1, 0).key, node(2, 0).key];
        let resp = svc.handle(
            &mut ctx,
            &Frame::from_msg(method::META_GET_BATCH, &MetaGetBatch { keys }),
        );
        let got = parse_response::<MetaGetBatchResp>(&resp).unwrap();
        assert!(got.nodes[0].is_some());
        assert!(got.nodes[1].is_none());
    }

    #[test]
    fn remove_batch_counts() {
        let svc = DhtNodeService::new(ServiceCosts::zero());
        let mut ctx = ServerCtx::new(0);
        for i in 0..4 {
            svc.handle(
                &mut ctx,
                &Frame::from_msg(
                    method::META_PUT,
                    &MetaPut {
                        node: node(1, i * 4096),
                    },
                ),
            );
        }
        let keys = vec![node(1, 0).key, node(1, 4096).key, node(9, 0).key];
        let resp = svc.handle(
            &mut ctx,
            &Frame::from_msg(method::META_REMOVE_BATCH, &MetaRemoveBatch { keys }),
        );
        assert_eq!(parse_response::<u64>(&resp).unwrap(), 2);
        assert_eq!(svc.len(), 2);
    }

    #[test]
    fn double_put_is_idempotent() {
        let svc = DhtNodeService::new(ServiceCosts::zero());
        let mut ctx = ServerCtx::new(0);
        let n = node(1, 0);
        for _ in 0..3 {
            svc.handle(
                &mut ctx,
                &Frame::from_msg(method::META_PUT, &MetaPut { node: n.clone() }),
            );
        }
        assert_eq!(svc.len(), 1);
        assert_eq!(svc.op_counts().0, 3);
    }

    #[test]
    fn durable_node_replays_acknowledged_mutations() {
        use std::sync::atomic::AtomicU64;
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "dht-durable-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let svc = DhtNodeService::open_durable(&dir, Default::default(), ServiceCosts::zero())
                .unwrap();
            assert!(svc.is_durable() && svc.is_empty());
            let mut ctx = ServerCtx::new(0);
            let nodes: Vec<TreeNode> = (0..4).map(|i| node(1, i * 4096)).collect();
            let resp = svc.handle(
                &mut ctx,
                &Frame::from_msg(method::META_PUT_BATCH, &MetaPutBatch { nodes }),
            );
            parse_response::<()>(&resp).unwrap();
            let resp = svc.handle(
                &mut ctx,
                &Frame::from_msg(
                    method::META_REMOVE_BATCH,
                    &MetaRemoveBatch {
                        keys: vec![node(1, 0).key],
                    },
                ),
            );
            assert_eq!(parse_response::<u64>(&resp).unwrap(), 1);
            assert!(svc.log_bytes() > 0);
        }
        // A fresh node on the same dir re-serves every acknowledged put
        // minus the acknowledged remove.
        let svc =
            DhtNodeService::open_durable(&dir, Default::default(), ServiceCosts::zero()).unwrap();
        assert_eq!(svc.len(), 3);
        assert!(!svc.contains(&node(1, 0).key));
        assert!(svc.contains(&node(1, 4096).key));
        let mut ctx = ServerCtx::new(0);
        let resp = svc.handle(
            &mut ctx,
            &Frame::from_msg(
                method::META_GET,
                &MetaGet {
                    key: node(1, 8192).key,
                },
            ),
        );
        assert_eq!(
            parse_response::<TreeNode>(&resp).unwrap(),
            node(1, 8192),
            "replayed node is byte-identical"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_method_rejected() {
        let svc = DhtNodeService::new(ServiceCosts::zero());
        let mut ctx = ServerCtx::new(0);
        let resp = svc.handle(&mut ctx, &Frame::from_msg(0x7777, &0u64));
        assert!(parse_response::<u64>(&resp).is_err());
    }
}
