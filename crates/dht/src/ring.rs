//! Consistent-hashing ring with virtual nodes.
//!
//! The paper stores metadata in an off-the-shelf DHT (BambooDHT) so that
//! tree nodes are "uniformly dispersed among the metadata providers". The
//! ring gives the same property: each member owns many pseudo-random
//! points on a `u64` circle; a key is served by the first `replication`
//! *distinct* members clockwise of its hash. Virtual nodes smooth the load
//! (≈ 1/vnodes imbalance) and membership changes move only the
//! neighbouring arcs.

use blobseer_proto::NodeId;
use blobseer_util::fxhash::mix64;
use blobseer_util::rng::child_seed;

/// A consistent-hash ring.
#[derive(Clone, Debug)]
pub struct Ring {
    /// (position, member) sorted by position.
    points: Vec<(u64, NodeId)>,
    members: Vec<NodeId>,
    vnodes: usize,
    replication: usize,
    seed: u64,
}

impl Ring {
    /// Build a ring.
    ///
    /// * `members` — the participating nodes (metadata providers).
    /// * `vnodes` — virtual nodes per member (64–256 is typical).
    /// * `replication` — how many distinct members serve each key.
    /// * `seed` — placement seed (deterministic layouts for tests).
    pub fn new(members: &[NodeId], vnodes: usize, replication: usize, seed: u64) -> Self {
        assert!(!members.is_empty(), "ring needs at least one member");
        assert!(vnodes >= 1);
        let replication = replication.clamp(1, members.len());
        let mut ring = Self {
            points: Vec::new(),
            members: members.to_vec(),
            vnodes,
            replication,
            seed,
        };
        ring.rebuild();
        ring
    }

    fn rebuild(&mut self) {
        self.points.clear();
        self.points.reserve(self.members.len() * self.vnodes);
        for &m in &self.members {
            let base = child_seed(self.seed, m.0 as u64);
            for v in 0..self.vnodes {
                self.points
                    .push((mix64(base ^ (v as u64).wrapping_mul(0x9e37)), m));
            }
        }
        self.points.sort_unstable();
        self.points.dedup_by_key(|(p, _)| *p);
    }

    /// Current members.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Replication factor.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Add a member (no-op if present).
    pub fn add_member(&mut self, m: NodeId) {
        if !self.members.contains(&m) {
            self.members.push(m);
            self.replication = self.replication.min(self.members.len());
            self.rebuild();
        }
    }

    /// Remove a member (no-op if absent). Panics if it would empty the
    /// ring.
    pub fn remove_member(&mut self, m: NodeId) {
        if let Some(pos) = self.members.iter().position(|&x| x == m) {
            assert!(self.members.len() > 1, "cannot empty the ring");
            self.members.remove(pos);
            self.replication = self.replication.min(self.members.len());
            self.rebuild();
        }
    }

    /// The `replication` distinct members responsible for `key`, primary
    /// first.
    pub fn replicas(&self, key: u64) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.replication);
        if self.points.is_empty() {
            return out;
        }
        let start = self.points.partition_point(|(p, _)| *p < key);
        let n = self.points.len();
        for i in 0..n {
            let (_, m) = self.points[(start + i) % n];
            if !out.contains(&m) {
                out.push(m);
                if out.len() == self.replication {
                    break;
                }
            }
        }
        out
    }

    /// Primary member for `key`.
    pub fn primary(&self, key: u64) -> NodeId {
        self.replicas(key)[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_util::FxHashMap;

    fn members(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn deterministic_layout() {
        let r1 = Ring::new(&members(8), 64, 2, 42);
        let r2 = Ring::new(&members(8), 64, 2, 42);
        for k in 0..100u64 {
            assert_eq!(r1.replicas(mix64(k)), r2.replicas(mix64(k)));
        }
    }

    #[test]
    fn replicas_are_distinct_and_sized() {
        let r = Ring::new(&members(5), 32, 3, 7);
        for k in 0..500u64 {
            let reps = r.replicas(mix64(k));
            assert_eq!(reps.len(), 3);
            let mut uniq = reps.clone();
            uniq.dedup();
            uniq.sort();
            uniq.dedup();
            assert_eq!(uniq.len(), 3, "replicas must be distinct members");
        }
    }

    #[test]
    fn replication_clamped_to_members() {
        let r = Ring::new(&members(2), 16, 5, 1);
        assert_eq!(r.replication(), 2);
        assert_eq!(r.replicas(123).len(), 2);
    }

    #[test]
    fn load_is_roughly_uniform() {
        let r = Ring::new(&members(10), 128, 1, 3);
        let mut counts: FxHashMap<NodeId, u64> = FxHashMap::default();
        let keys = 20_000u64;
        for k in 0..keys {
            *counts.entry(r.primary(mix64(k))).or_default() += 1;
        }
        let expect = keys as f64 / 10.0;
        for (m, c) in &counts {
            let ratio = *c as f64 / expect;
            assert!(
                (0.6..1.4).contains(&ratio),
                "member {m} has load ratio {ratio}"
            );
        }
    }

    #[test]
    fn membership_change_moves_bounded_keys() {
        let mut r = Ring::new(&members(10), 128, 1, 9);
        let keys: Vec<u64> = (0..5000u64).map(mix64).collect();
        let before: Vec<NodeId> = keys.iter().map(|&k| r.primary(k)).collect();
        r.add_member(NodeId(100));
        let after: Vec<NodeId> = keys.iter().map(|&k| r.primary(k)).collect();
        let moved = before.iter().zip(&after).filter(|(a, b)| a != b).count();
        // Adding 1 of 11 members should move ≈ 1/11 ≈ 9% of keys.
        let frac = moved as f64 / keys.len() as f64;
        assert!(frac < 0.2, "moved fraction {frac}");
        // And every moved key moved TO the new member.
        for (i, (a, b)) in before.iter().zip(&after).enumerate() {
            if a != b {
                assert_eq!(*b, NodeId(100), "key {i} moved to an old member");
            }
        }
    }

    #[test]
    fn removing_member_redistributes_its_keys_only() {
        let mut r = Ring::new(&members(6), 64, 1, 11);
        let keys: Vec<u64> = (0..3000u64).map(mix64).collect();
        let before: Vec<NodeId> = keys.iter().map(|&k| r.primary(k)).collect();
        r.remove_member(NodeId(3));
        for (i, (&k, was)) in keys.iter().zip(&before).enumerate() {
            let now = r.primary(k);
            if *was != NodeId(3) {
                assert_eq!(
                    now, *was,
                    "key {i} owned by a surviving member must not move"
                );
            } else {
                assert_ne!(now, NodeId(3));
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot empty the ring")]
    fn cannot_remove_last_member() {
        let mut r = Ring::new(&members(1), 8, 1, 0);
        r.remove_member(NodeId(0));
    }
}
