//! # blobseer-dht
//!
//! The metadata-provider substrate: a from-scratch distributed hash table
//! replacing the paper's BambooDHT/OpenDHT dependency (§V.A). Three
//! pieces:
//!
//! * [`ring`] — consistent hashing with virtual nodes: uniform dispersal
//!   of tree nodes over metadata providers, bounded key movement on
//!   membership change;
//! * [`node`] — the per-node storage service (single + batched
//!   put/get/remove of immutable tree nodes, with BambooDHT-calibrated
//!   processing costs);
//! * [`client`] — replicated, batching client-side access with failover.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod node;
pub mod ring;
pub mod wal;

pub use client::DhtClient;
pub use node::DhtNodeService;
pub use ring::Ring;
pub use wal::{MetaBackend, VolatileMeta, WalMeta};
