//! Client-side DHT access: routing, batching, replication, failover.
//!
//! Tree nodes are dispersed over the metadata providers by routing key
//! (paper §III.C: "the metadata tree nodes are uniformly dispersed among
//! the metadata providers through the underlying DHT"). Puts go to all
//! replicas; gets try the primary first and fail over to the remaining
//! replicas on miss or node death — the paper's §VI points at the DHT's
//! off-the-shelf fault tolerance, which this reproduces.
//!
//! Lock discipline note: the routing ring lives behind an `RwLock` that
//! is only ever written when membership changes; every steady-state
//! access is an uncontended read of effectively-immutable routing
//! state. Like the RCU provider roster and the data-plane sharded
//! stores, those reads sit deliberately outside `lockmeter` — the
//! `lint: allow(unmetered-lock)` sanctions below point here.

use crate::ring::Ring;
use blobseer_proto::messages::{
    method, MetaGetBatch, MetaGetBatchResp, MetaPut, MetaPutBatch, MetaRemoveBatch,
};
use blobseer_proto::tree::{NodeKey, TreeNode};
use blobseer_proto::{BlobError, NodeId};
use blobseer_rpc::{Ctx, RpcClient};
use parking_lot::RwLock;
use std::sync::Arc;

/// A replicated, batching DHT client.
pub struct DhtClient {
    rpc: RpcClient,
    ring: Arc<RwLock<Ring>>,
}

impl DhtClient {
    /// Create a client over an existing ring (shared so membership changes
    /// propagate to every client holding it).
    pub fn new(rpc: RpcClient, ring: Arc<RwLock<Ring>>) -> Self {
        Self { rpc, ring }
    }

    /// Convenience: build a ring over `providers` and wrap it.
    pub fn with_members(
        rpc: RpcClient,
        providers: &[NodeId],
        replication: usize,
        seed: u64,
    ) -> Self {
        let ring = Ring::new(providers, 128, replication, seed);
        // lint: allow(unmetered-lock) — ring construction; reads below carry their
        // own sanction (read-mostly routing state, rewritten only on membership change)
        Self::new(rpc, Arc::new(RwLock::new(ring)))
    }

    /// The shared ring handle.
    pub fn ring(&self) -> &Arc<RwLock<Ring>> {
        &self.ring
    }

    /// Store nodes on every replica. Succeeds if **every node** reached at
    /// least one replica; the error carries the first failure otherwise.
    ///
    /// With aggregation enabled (the default), all nodes bound for one
    /// provider travel in a single `META_PUT_BATCH` message — the paper's
    /// streamed-RPC optimization. With `AggregationPolicy::PerCall`, every
    /// node is its own `META_PUT` message (the `ablate-agg` baseline).
    pub fn put_nodes(&self, ctx: &mut Ctx, nodes: &[TreeNode]) -> Result<(), BlobError> {
        if nodes.is_empty() {
            return Ok(());
        }
        if self.rpc.aggregation() == blobseer_rpc::AggregationPolicy::PerCall {
            return self.put_nodes_per_item(ctx, nodes);
        }
        // (destination, node indices) for every replica of every node.
        let assignments: Vec<(NodeId, Vec<usize>)> = {
            // lint: allow(unmetered-lock) — routing-ring snapshot read: read-mostly
            // state rewritten only on membership change, outside the meter like the
            // RCU provider roster
            let ring = self.ring.read();
            let mut groups: Vec<(NodeId, Vec<usize>)> = Vec::new();
            for (i, n) in nodes.iter().enumerate() {
                for dest in ring.replicas(n.key.routing_key()) {
                    match groups.iter_mut().find(|(d, _)| *d == dest) {
                        Some((_, idxs)) => idxs.push(i),
                        None => groups.push((dest, vec![i])),
                    }
                }
            }
            groups
        };
        let calls: Vec<(NodeId, u16, MetaPutBatch)> = assignments
            .iter()
            .map(|(dest, idxs)| {
                (
                    *dest,
                    method::META_PUT_BATCH,
                    MetaPutBatch {
                        nodes: idxs.iter().map(|&i| nodes[i].clone()).collect(),
                    },
                )
            })
            .collect();
        let results = self.rpc.fan_out::<MetaPutBatch, ()>(ctx, &calls);
        // A node is stored iff at least one of its replica batches landed.
        let mut stored = vec![false; nodes.len()];
        let mut first_err = None;
        for ((_, idxs), res) in assignments.iter().zip(results) {
            match res {
                Ok(()) => {
                    for &i in idxs {
                        stored[i] = true;
                    }
                }
                Err(e) => first_err = Some(e),
            }
        }
        if stored.iter().all(|&s| s) {
            Ok(())
        } else {
            Err(first_err.unwrap_or(BlobError::Internal("metadata put failed")))
        }
    }

    /// Unaggregated puts: one `META_PUT` call per (node, replica).
    fn put_nodes_per_item(&self, ctx: &mut Ctx, nodes: &[TreeNode]) -> Result<(), BlobError> {
        let calls: Vec<(NodeId, u16, MetaPut)> = {
            // lint: allow(unmetered-lock) — routing-ring snapshot read, see module note
            let ring = self.ring.read();
            nodes
                .iter()
                .flat_map(|n| {
                    ring.replicas(n.key.routing_key())
                        .into_iter()
                        .map(|dest| (dest, method::META_PUT, MetaPut { node: n.clone() }))
                        .collect::<Vec<_>>()
                })
                .collect()
        };
        // lint: allow(unmetered-lock) — routing-ring snapshot read, see module note
        let replication = self.ring.read().replication();
        let results = self.rpc.fan_out::<MetaPut, ()>(ctx, &calls);
        // Node i's replicas occupy results[i*R .. (i+1)*R].
        let mut first_err = None;
        for (i, chunk) in results.chunks(replication).enumerate() {
            if !chunk.iter().any(|r| r.is_ok()) {
                first_err = chunk.iter().find_map(|r| r.as_ref().err().cloned());
                let _ = i;
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Fetch nodes by key, in key order (`None` = definitely missing on
    /// every reachable replica). Fails only if some key's replicas were
    /// all unreachable.
    pub fn get_nodes(
        &self,
        ctx: &mut Ctx,
        keys: &[NodeKey],
    ) -> Result<Vec<Option<TreeNode>>, BlobError> {
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        // lint: allow(unmetered-lock) — routing-ring snapshot read, see module note
        let replication = self.ring.read().replication();
        let mut out: Vec<Option<TreeNode>> = vec![None; keys.len()];
        // Indices still to resolve.
        let mut pending: Vec<usize> = (0..keys.len()).collect();
        let mut last_err = None;

        for attempt in 0..replication {
            if pending.is_empty() {
                break;
            }
            // Group pending keys by their `attempt`-th replica.
            let groups: Vec<(NodeId, Vec<usize>)> = {
                // lint: allow(unmetered-lock) — routing-ring snapshot read, see module note
                let ring = self.ring.read();
                let mut groups: Vec<(NodeId, Vec<usize>)> = Vec::new();
                for &i in &pending {
                    let reps = ring.replicas(keys[i].routing_key());
                    let Some(&dest) = reps.get(attempt) else {
                        continue;
                    };
                    match groups.iter_mut().find(|(d, _)| *d == dest) {
                        Some((_, idxs)) => idxs.push(i),
                        None => groups.push((dest, vec![i])),
                    }
                }
                groups
            };
            let calls: Vec<(NodeId, u16, MetaGetBatch)> = groups
                .iter()
                .map(|(dest, idxs)| {
                    (
                        *dest,
                        method::META_GET_BATCH,
                        MetaGetBatch {
                            keys: idxs.iter().map(|&i| keys[i]).collect(),
                        },
                    )
                })
                .collect();
            let results = self
                .rpc
                .fan_out::<MetaGetBatch, MetaGetBatchResp>(ctx, &calls);
            let mut unresolved = Vec::new();
            for ((_, idxs), res) in groups.iter().zip(results) {
                match res {
                    Ok(resp) if resp.nodes.len() == idxs.len() => {
                        for (&i, node) in idxs.iter().zip(resp.nodes) {
                            match node {
                                Some(n) => out[i] = Some(n),
                                // Missing on this replica: retry next.
                                None => unresolved.push(i),
                            }
                        }
                    }
                    Ok(_) => {
                        last_err = Some(BlobError::Internal("malformed batch get response"));
                        unresolved.extend_from_slice(idxs);
                    }
                    Err(e) => {
                        last_err = Some(e);
                        unresolved.extend_from_slice(idxs);
                    }
                }
            }
            pending = unresolved;
            // If this was the last attempt and keys are simply absent (not
            // unreachable), they stay None — callers distinguish absence
            // from transport failure via last_err.
            if attempt + 1 == replication && !pending.is_empty() {
                if let Some(e) = last_err.take() {
                    // Only report failure if a replica was unreachable or
                    // shedding; pure misses are a legitimate None. An
                    // Overload must survive here — decaying it into the
                    // caller's "missing metadata" would erase the backoff
                    // hint (and lie: the node has the key, it shed us).
                    if e.is_retryable() {
                        return Err(e);
                    }
                }
            }
        }
        Ok(out)
    }

    /// Remove keys from every replica (best effort; returns how many
    /// removals the reachable replicas acknowledged).
    pub fn remove_nodes(&self, ctx: &mut Ctx, keys: &[NodeKey]) -> u64 {
        if keys.is_empty() {
            return 0;
        }
        let groups: Vec<(NodeId, Vec<NodeKey>)> = {
            // lint: allow(unmetered-lock) — routing-ring snapshot read, see module note
            let ring = self.ring.read();
            let mut groups: Vec<(NodeId, Vec<NodeKey>)> = Vec::new();
            for &k in keys {
                for dest in ring.replicas(k.routing_key()) {
                    match groups.iter_mut().find(|(d, _)| *d == dest) {
                        Some((_, ks)) => ks.push(k),
                        None => groups.push((dest, vec![k])),
                    }
                }
            }
            groups
        };
        let calls: Vec<(NodeId, u16, MetaRemoveBatch)> = groups
            .into_iter()
            .map(|(dest, keys)| (dest, method::META_REMOVE_BATCH, MetaRemoveBatch { keys }))
            .collect();
        self.rpc
            .fan_out::<MetaRemoveBatch, u64>(ctx, &calls)
            .into_iter()
            .filter_map(|r| r.ok())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::DhtNodeService;
    use blobseer_proto::tree::NodeBody;
    use blobseer_proto::BlobId;
    use blobseer_rpc::InProcTransport;
    use blobseer_simnet::ServiceCosts;

    fn setup(n_providers: u32, replication: usize) -> (DhtClient, Vec<Arc<DhtNodeService>>) {
        let t = Arc::new(InProcTransport::new());
        let client_node = t.add_node();
        let mut services = Vec::new();
        let mut provider_ids = Vec::new();
        for _ in 0..n_providers {
            let id = t.add_node();
            let svc = Arc::new(DhtNodeService::new(ServiceCosts::zero()));
            t.bind(id, svc.clone());
            services.push(svc);
            provider_ids.push(id);
        }
        let rpc = RpcClient::new(t, client_node);
        (
            DhtClient::with_members(rpc, &provider_ids, replication, 7),
            services,
        )
    }

    fn tree_node(v: u64, offset: u64) -> TreeNode {
        TreeNode {
            key: NodeKey {
                blob: BlobId(1),
                version: v,
                offset,
                size: 4096,
            },
            body: NodeBody::Inner {
                left_version: v,
                right_version: v,
            },
        }
    }

    #[test]
    fn put_then_get_across_providers() {
        let (client, services) = setup(4, 1);
        let nodes: Vec<TreeNode> = (0..40).map(|i| tree_node(1, i * 4096)).collect();
        let mut ctx = Ctx::start();
        client.put_nodes(&mut ctx, &nodes).unwrap();
        // Nodes dispersed over all providers.
        let counts: Vec<usize> = services.iter().map(|s| s.len()).collect();
        assert_eq!(counts.iter().sum::<usize>(), 40);
        assert!(counts.iter().all(|&c| c > 0), "dispersal: {counts:?}");

        let keys: Vec<NodeKey> = nodes.iter().map(|n| n.key).collect();
        let got = client.get_nodes(&mut ctx, &keys).unwrap();
        for (want, got) in nodes.iter().zip(got) {
            assert_eq!(got.as_ref(), Some(want));
        }
    }

    #[test]
    fn missing_keys_are_none() {
        let (client, _svcs) = setup(3, 1);
        let mut ctx = Ctx::start();
        let got = client.get_nodes(&mut ctx, &[tree_node(9, 0).key]).unwrap();
        assert_eq!(got, vec![None]);
    }

    #[test]
    fn replication_stores_copies_and_survives_failover() {
        let (client, services) = setup(3, 2);
        let nodes: Vec<TreeNode> = (0..30).map(|i| tree_node(1, i * 4096)).collect();
        let mut ctx = Ctx::start();
        client.put_nodes(&mut ctx, &nodes).unwrap();
        let total: usize = services.iter().map(|s| s.len()).sum();
        assert_eq!(total, 60, "each node stored twice");
        // Empty the primary copies by brute force: clear one provider
        // entirely; every key must still be resolvable via its other
        // replica.
        let victim = &services[0];
        let removed_any = !victim.is_empty();
        // simulate loss by removing through the service API
        let keys: Vec<NodeKey> = nodes.iter().map(|n| n.key).collect();
        for k in &keys {
            if victim.contains(k) {
                let mut ctx2 = blobseer_rpc::ServerCtx::new(0);
                blobseer_rpc::Service::handle(
                    victim.as_ref(),
                    &mut ctx2,
                    &Frame::from_msg(
                        method::META_REMOVE_BATCH,
                        &MetaRemoveBatch { keys: vec![*k] },
                    ),
                );
            }
        }
        assert!(removed_any);
        let got = client.get_nodes(&mut ctx, &keys).unwrap();
        assert!(
            got.iter().all(|g| g.is_some()),
            "failover to surviving replicas"
        );
    }

    use blobseer_rpc::Frame;

    #[test]
    fn remove_nodes_deletes_all_replicas() {
        let (client, services) = setup(3, 2);
        let nodes: Vec<TreeNode> = (0..10).map(|i| tree_node(2, i * 4096)).collect();
        let mut ctx = Ctx::start();
        client.put_nodes(&mut ctx, &nodes).unwrap();
        let keys: Vec<NodeKey> = nodes.iter().map(|n| n.key).collect();
        let removed = client.remove_nodes(&mut ctx, &keys);
        assert_eq!(removed, 20, "both replicas of each node removed");
        assert!(services.iter().all(|s| s.is_empty()));
        let got = client.get_nodes(&mut ctx, &keys).unwrap();
        assert!(got.iter().all(|g| g.is_none()));
    }

    #[test]
    fn empty_batches_are_noops() {
        let (client, _svcs) = setup(2, 1);
        let mut ctx = Ctx::start();
        client.put_nodes(&mut ctx, &[]).unwrap();
        assert_eq!(client.get_nodes(&mut ctx, &[]).unwrap().len(), 0);
        assert_eq!(client.remove_nodes(&mut ctx, &[]), 0);
        assert_eq!(ctx.vt, 0, "no messages sent");
    }
}
