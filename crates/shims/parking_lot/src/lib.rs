//! Minimal std-backed stand-in for the `parking_lot` crate.
//!
//! Provides the exact API subset the workspace uses: [`Mutex`],
//! [`RwLock`] and [`Condvar`] with parking_lot's ergonomics (no poison
//! `Result`s — a panicked holder is treated as having released the lock
//! normally, which matches parking_lot semantics closely enough for this
//! codebase's short critical sections).

#![deny(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::TryLockError;

/// A mutual-exclusion lock (no poisoning).
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create a mutex.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").finish()
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken by condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken by condvar wait")
    }
}

/// A reader–writer lock (no poisoning).
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create an rwlock.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, blocking.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire an exclusive write guard, blocking.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Try to acquire a shared read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(RwLockReadGuard(g)),
            Err(TryLockError::Poisoned(e)) => Some(RwLockReadGuard(e.into_inner())),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire an exclusive write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(RwLockWriteGuard(g)),
            Err(TryLockError::Poisoned(e)) => Some(RwLockWriteGuard(e.into_inner())),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").finish()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Block until notified, releasing the guarded mutex while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    /// Block until notified or `timeout` elapses, releasing the guarded
    /// mutex while parked. Returns a result whose
    /// [`timed_out`](WaitTimeoutResult::timed_out) distinguishes the
    /// wakeup reason — same shape as the real crate.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present");
        let (inner, res) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => e.into_inner(),
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one parked waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake every parked waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Whether a [`Condvar::wait_for`] returned because its timeout elapsed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended by timeout rather than a notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_and_rwlock_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(5);
        assert_eq!(*rw.read(), 5);
        *rw.write() = 6;
        assert_eq!(*rw.read(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        thread::sleep(std::time::Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }
}
