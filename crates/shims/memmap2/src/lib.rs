//! Minimal stand-in for the `memmap2` crate (offline build).
//!
//! Implements exactly what the workspace uses: mapping a file read-only
//! into memory ([`Mmap::map`]) with `Deref<Target = [u8]>`, `Send` and
//! `Sync`. On unix the mapping is a real `mmap(2)` with `MAP_SHARED`, so
//! bytes later written to the file *through its descriptor* become
//! visible in the mapping without re-mapping (the kernel's unified page
//! cache) — the property the provider's append-only page log relies on.
//! On other platforms it degrades to a heap snapshot taken at map time;
//! callers that need write-then-read visibility must re-map (the
//! workspace gates those paths on `cfg(unix)`).
//!
//! Like the real crate, [`Mmap::map`] is `unsafe`: the caller promises
//! the mapped region is not *mutated* underneath live `&[u8]` borrows.
//! Appending past already-borrowed offsets is fine; rewriting them is
//! not.

#![warn(missing_docs)]

use std::fs::File;
use std::io;
use std::ops::Deref;

#[cfg(unix)]
mod sys {
    use std::ffi::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_SHARED: c_int = 1;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// An immutable memory map of a file.
///
/// Unix: a `PROT_READ`/`MAP_SHARED` mapping of the file's full length at
/// map time. Other platforms: a heap snapshot of the file's contents.
#[derive(Debug)]
pub struct Mmap {
    #[cfg(unix)]
    ptr: *const u8,
    #[cfg(unix)]
    len: usize,
    #[cfg(not(unix))]
    data: Vec<u8>,
}

// SAFETY: the mapping is never written through; `&Mmap` only hands out
// shared `&[u8]` views, which are as thread-safe as any shared slice.
#[cfg(unix)]
unsafe impl Send for Mmap {}
// SAFETY: same argument as Send above — the mapped bytes are immutable
// through this type, so concurrent shared access is sound.
#[cfg(unix)]
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Map `file` read-only at its current length.
    ///
    /// # Safety
    /// The caller must ensure no byte of the mapped range is *mutated*
    /// for the lifetime of the map (growing the file and writing beyond
    /// previously read offsets is allowed — this is the append-only-log
    /// contract).
    #[cfg(unix)]
    pub unsafe fn map(file: &File) -> io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;
        let len = file.metadata()?.len();
        if len == 0 {
            return Ok(Mmap {
                ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(),
                len: 0,
            });
        }
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "file too large to map",
            ));
        }
        let ptr = sys::mmap(
            std::ptr::null_mut(),
            len as usize,
            sys::PROT_READ,
            sys::MAP_SHARED,
            file.as_raw_fd(),
            0,
        );
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap {
            ptr: ptr as *const u8,
            len: len as usize,
        })
    }

    /// Map `file` by reading a snapshot of its contents (non-unix
    /// fallback — later file writes are **not** visible).
    ///
    /// # Safety
    /// Nothing is actually mapped, so this is trivially safe; the
    /// signature stays `unsafe` to mirror the unix path and the real
    /// crate, and callers must uphold the same no-mutation contract.
    #[cfg(not(unix))]
    pub unsafe fn map(file: &File) -> io::Result<Mmap> {
        use std::io::Read;
        let mut data = Vec::new();
        let mut f = file.try_clone()?;
        f.read_to_end(&mut data)?;
        Ok(Mmap { data })
    }

    /// Length of the mapped region in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when the mapped region is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[cfg(unix)]
    fn as_slice(&self) -> &[u8] {
        // SAFETY: `ptr..ptr+len` is a live PROT_READ mapping (or a
        // dangling pointer with len 0, a valid empty slice).
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    #[cfg(not(unix))]
    fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(unix)]
impl Drop for Mmap {
    fn drop(&mut self) {
        if self.len > 0 {
            // SAFETY: exactly the region mmap returned; errors at unmap
            // are unrecoverable and ignored, like the real crate.
            unsafe {
                sys::munmap(self.ptr as *mut _, self.len);
            }
        }
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("memmap2-shim-{}-{name}", std::process::id()))
    }

    #[test]
    fn maps_file_contents() {
        let path = temp_path("basic");
        std::fs::write(&path, b"hello mapping").unwrap();
        let file = File::open(&path).unwrap();
        // SAFETY: the file is never written while the map is live.
        let map = unsafe { Mmap::map(&file) }.unwrap();
        assert_eq!(&map[..], b"hello mapping");
        assert_eq!(map.len(), 13);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_file_maps_empty() {
        let path = temp_path("empty");
        std::fs::write(&path, b"").unwrap();
        let file = File::open(&path).unwrap();
        // SAFETY: the file is never written while the map is live.
        let map = unsafe { Mmap::map(&file) }.unwrap();
        assert!(map.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[cfg(unix)]
    #[test]
    fn shared_mapping_sees_fd_writes() {
        use std::os::unix::fs::FileExt;
        let path = temp_path("shared");
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .unwrap();
        file.set_len(4096).unwrap();
        // SAFETY: the fd writes below only fill previously-unread holes
        // past the read offset — the append-only-log contract this shim
        // documents (and this test exists to verify).
        let map = unsafe { Mmap::map(&file) }.unwrap();
        assert_eq!(map[100], 0);
        file.write_all_at(b"appended later", 100).unwrap();
        assert_eq!(&map[100..114], b"appended later");
        let _ = std::fs::remove_file(&path);
    }
}
