//! Minimal stand-in for the `rand` crate (0.8 API subset).
//!
//! Implements exactly what the workspace uses: [`Rng::gen`],
//! [`Rng::gen_range`] over integer and float ranges, [`SeedableRng`], and
//! [`rngs::SmallRng`]. The generator core is xoshiro256++ seeded through
//! splitmix64 — the same construction real `SmallRng` uses on 64-bit
//! targets, chosen here for statistical quality, not compatibility of
//! exact streams.

#![deny(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator core.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods (blanket-implemented for every core).
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (f64::sample(self)) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from the "standard" distribution.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($ty:ty),*) => {$(
        impl Standard for $ty {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 24 random mantissa bits in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128)
                    & (u64::MAX as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $ty)
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = ((end as u128).wrapping_sub(start as u128) & (u64::MAX as u128)) + 1;
                start.wrapping_add((rng.next_u64() as u128 % span) as $ty)
            }
        }
    )*};
}

sample_range_int!(u8, u16, u32, u64, usize, i64);

macro_rules! sample_range_float {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + <$ty as Standard>::sample(rng) * (self.end - self.start)
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                start + <$ty as Standard>::sample(rng) * (end - start)
            }
        }
    )*};
}

sample_range_float!(f32, f64);

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Stretch the seed with splitmix64, as the xoshiro authors
            // recommend, guaranteeing a nonzero state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u32 = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = r.gen_range(5..=5);
            assert_eq!(w, 5);
            let f: f32 = r.gen_range(1.5..2.5);
            assert!((1.5..2.5).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
