//! Minimal stand-in for the `polling` crate (offline build).
//!
//! Implements exactly what the workspace's reactor transport uses: a
//! [`Poller`] that watches raw file descriptors for read/write
//! readiness, reports them as key-tagged [`Event`]s from a blocking
//! [`Poller::wait`], and can be woken from any thread with
//! [`Poller::notify`].
//!
//! * **Linux** — a real `epoll(7)` instance via raw FFI
//!   (`epoll_create1` / `epoll_ctl` / `epoll_wait`), level-triggered,
//!   with an `eventfd(2)` registered for cross-thread wakeups.
//! * **Other unix** — a `poll(2)` fallback over a registration table,
//!   with a self-pipe for wakeups. Same semantics, O(fds) per wait.
//! * **Non-unix** — every constructor fails with
//!   `ErrorKind::Unsupported`; callers (the TCP reactor) detect this
//!   and fall back to thread-per-connection serving.
//!
//! Registrations are level-triggered everywhere: a readable fd keeps
//! reporting until drained, so callers never lose a partial frame to a
//! missed edge.

#![warn(missing_docs)]

use std::io;
use std::time::Duration;

/// Readiness of one registered descriptor, tagged with the caller's key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// The key the descriptor was registered under.
    pub key: usize,
    /// The descriptor has bytes to read (or a pending accept / EOF).
    pub readable: bool,
    /// The descriptor can accept more bytes.
    pub writable: bool,
}

/// Key reserved for the internal wakeup descriptor; never reported.
const NOTIFY_KEY: usize = usize::MAX;

#[cfg(all(unix, target_os = "linux"))]
mod sys {
    //! Raw epoll + eventfd FFI (Linux).
    use std::ffi::{c_int, c_void};

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EFD_CLOEXEC: c_int = 0o2000000;
    pub const EFD_NONBLOCK: c_int = 0o0004000;

    /// `struct epoll_event`: packed on x86-64 (the kernel ABI), naturally
    /// aligned elsewhere — mirrors libc's per-arch definition.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn eventfd(initval: u32, flags: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
    }
}

/// Readiness poller over raw file descriptors. See the module docs for
/// the per-platform backing.
#[derive(Debug)]
pub struct Poller {
    #[cfg(all(unix, target_os = "linux"))]
    epfd: i32,
    #[cfg(all(unix, target_os = "linux"))]
    eventfd: i32,
    #[cfg(all(unix, not(target_os = "linux")))]
    fallback: fallback::PollTable,
}

// SAFETY: the poller only holds kernel descriptors; every syscall on
// them is thread-safe (epoll_ctl/epoll_wait may race freely).
unsafe impl Send for Poller {}
unsafe impl Sync for Poller {}

#[cfg(all(unix, target_os = "linux"))]
impl Poller {
    /// Create an epoll instance with its wakeup eventfd registered.
    pub fn new() -> io::Result<Poller> {
        // SAFETY: no pointers cross this call; it returns a fresh fd.
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: no pointers cross this call; it returns a fresh fd.
        let efd = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
        if efd < 0 {
            let e = io::Error::last_os_error();
            // SAFETY: epfd was just created above and is owned here.
            unsafe { sys::close(epfd) };
            return Err(e);
        }
        let poller = Poller { epfd, eventfd: efd };
        poller.ctl(sys::EPOLL_CTL_ADD, efd, NOTIFY_KEY, true, false)?;
        Ok(poller)
    }

    fn ctl(&self, op: i32, fd: i32, key: usize, readable: bool, writable: bool) -> io::Result<()> {
        let mut events = 0u32;
        if readable {
            events |= sys::EPOLLIN;
        }
        if writable {
            events |= sys::EPOLLOUT;
        }
        let mut ev = sys::EpollEvent {
            events,
            data: key as u64,
        };
        // SAFETY: `ev` is a live `#[repr(C)]` EpollEvent; the kernel
        // reads it within this call only.
        let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Register `fd` under `key` with the given interest.
    pub fn add(&self, fd: i32, key: usize, readable: bool, writable: bool) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, key, readable, writable)
    }

    /// Change the interest set of a registered `fd`.
    pub fn modify(&self, fd: i32, key: usize, readable: bool, writable: bool) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, key, readable, writable)
    }

    /// Remove `fd` from the poller (must happen before the fd closes).
    pub fn delete(&self, fd: i32) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, fd, 0, false, false)
    }

    /// Block until at least one registered fd is ready, `timeout`
    /// expires (`None` = forever), or [`Poller::notify`] is called.
    /// Ready events are appended to `events`; returns how many.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        let ms: i32 = match timeout {
            None => -1,
            Some(t) => t.as_millis().min(i32::MAX as u128) as i32,
        };
        let mut raw = [sys::EpollEvent { events: 0, data: 0 }; 256];
        let n = loop {
            // SAFETY: `raw` holds 256 `#[repr(C)]` events and 256 is
            // the maxevents passed; the kernel writes only within it.
            let rc = unsafe { sys::epoll_wait(self.epfd, raw.as_mut_ptr(), 256, ms) };
            if rc >= 0 {
                break rc as usize;
            }
            let e = io::Error::last_os_error();
            if e.kind() != io::ErrorKind::Interrupted {
                return Err(e);
            }
        };
        let mut pushed = 0;
        for ev in &raw[..n] {
            let key = ev.data as usize;
            let bits = ev.events;
            if key == NOTIFY_KEY {
                // Drain the eventfd so the next wait blocks again.
                let mut buf = 0u64;
                // SAFETY: reads exactly 8 bytes into a live u64 — the
                // eventfd counter width.
                unsafe {
                    sys::read(self.eventfd, &mut buf as *mut u64 as *mut _, 8);
                }
                continue;
            }
            // Errors and hangups surface as readability: the caller's
            // next read observes the actual error/EOF.
            let err = bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0;
            events.push(Event {
                key,
                readable: bits & sys::EPOLLIN != 0 || err,
                writable: bits & sys::EPOLLOUT != 0 || err,
            });
            pushed += 1;
        }
        Ok(pushed)
    }

    /// Wake a concurrent [`Poller::wait`] from any thread.
    pub fn notify(&self) -> io::Result<()> {
        let one = 1u64;
        // SAFETY: writes exactly the 8 live bytes of `one`.
        let rc = unsafe { sys::write(self.eventfd, &one as *const u64 as *const _, 8) };
        // A full eventfd counter still wakes the waiter; ignore EAGAIN.
        if rc < 0 {
            let e = io::Error::last_os_error();
            if e.kind() != io::ErrorKind::WouldBlock {
                return Err(e);
            }
        }
        Ok(())
    }
}

#[cfg(all(unix, target_os = "linux"))]
impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: both fds are owned by this Poller and closed once.
        unsafe {
            sys::close(self.eventfd);
            sys::close(self.epfd);
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod fallback {
    //! `poll(2)` fallback for non-Linux unix: a registration table
    //! rebuilt into a pollfd array per wait, plus a self-pipe wakeup.
    use super::{Event, NOTIFY_KEY};
    use std::collections::HashMap;
    use std::ffi::{c_int, c_void};
    use std::io;
    use std::sync::Mutex;
    use std::time::Duration;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[repr(C)]
    struct PollFd {
        fd: c_int,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: c_int) -> c_int;
        fn pipe(fds: *mut c_int) -> c_int;
        fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    #[derive(Debug)]
    pub struct PollTable {
        regs: Mutex<HashMap<i32, (usize, bool, bool)>>,
        pipe_r: i32,
        pipe_w: i32,
    }

    impl PollTable {
        pub fn new() -> io::Result<PollTable> {
            let mut fds = [0 as c_int; 2];
            // SAFETY: `fds` is a live 2-slot c_int array, exactly what
            // pipe(2) writes.
            if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
                return Err(io::Error::last_os_error());
            }
            // O_NONBLOCK on both ends (F_SETFL = 4, O_NONBLOCK = 4 on
            // the BSDs/macOS this fallback targets).
            // SAFETY: no pointers cross fcntl with integer args.
            unsafe {
                fcntl(fds[0], 4, 4);
                fcntl(fds[1], 4, 4);
            }
            Ok(PollTable {
                regs: Mutex::new(HashMap::new()),
                pipe_r: fds[0],
                pipe_w: fds[1],
            })
        }

        pub fn set(&self, fd: i32, key: usize, readable: bool, writable: bool) {
            self.regs
                .lock()
                .unwrap()
                .insert(fd, (key, readable, writable));
        }

        pub fn delete(&self, fd: i32) {
            self.regs.lock().unwrap().remove(&fd);
        }

        pub fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let mut fds: Vec<PollFd> = vec![PollFd {
                fd: self.pipe_r,
                events: POLLIN,
                revents: 0,
            }];
            let mut keys: Vec<usize> = vec![NOTIFY_KEY];
            for (&fd, &(key, r, w)) in self.regs.lock().unwrap().iter() {
                let mut ev = 0i16;
                if r {
                    ev |= POLLIN;
                }
                if w {
                    ev |= POLLOUT;
                }
                fds.push(PollFd {
                    fd,
                    events: ev,
                    revents: 0,
                });
                keys.push(key);
            }
            let ms: c_int = match timeout {
                None => -1,
                Some(t) => t.as_millis().min(c_int::MAX as u128) as c_int,
            };
            // SAFETY: `fds` is a live Vec of `#[repr(C)]` PollFd and the
            // nfds passed is its exact length.
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, ms) };
            if rc < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(e);
            }
            let mut pushed = 0;
            for (i, pfd) in fds.iter().enumerate() {
                if pfd.revents == 0 {
                    continue;
                }
                if keys[i] == NOTIFY_KEY {
                    let mut buf = [0u8; 64];
                    // SAFETY: reads at most 64 bytes into a live
                    // 64-byte buffer.
                    unsafe {
                        read(self.pipe_r, buf.as_mut_ptr() as *mut _, 64);
                    }
                    continue;
                }
                let err = pfd.revents & (POLLERR | POLLHUP) != 0;
                events.push(Event {
                    key: keys[i],
                    readable: pfd.revents & POLLIN != 0 || err,
                    writable: pfd.revents & POLLOUT != 0 || err,
                });
                pushed += 1;
            }
            Ok(pushed)
        }

        pub fn notify(&self) -> io::Result<()> {
            let one = [1u8];
            // SAFETY: writes exactly the 1 live byte of `one`.
            unsafe {
                write(self.pipe_w, one.as_ptr() as *const _, 1);
            }
            Ok(())
        }
    }

    impl Drop for PollTable {
        fn drop(&mut self) {
            // SAFETY: both pipe fds are owned here and closed once.
            unsafe {
                close(self.pipe_r);
                close(self.pipe_w);
            }
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
impl Poller {
    /// Create a `poll(2)`-backed poller with its wakeup pipe.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            fallback: fallback::PollTable::new()?,
        })
    }

    /// Register `fd` under `key` with the given interest.
    pub fn add(&self, fd: i32, key: usize, readable: bool, writable: bool) -> io::Result<()> {
        self.fallback.set(fd, key, readable, writable);
        Ok(())
    }

    /// Change the interest set of a registered `fd`.
    pub fn modify(&self, fd: i32, key: usize, readable: bool, writable: bool) -> io::Result<()> {
        self.fallback.set(fd, key, readable, writable);
        Ok(())
    }

    /// Remove `fd` from the poller (must happen before the fd closes).
    pub fn delete(&self, fd: i32) -> io::Result<()> {
        self.fallback.delete(fd);
        Ok(())
    }

    /// Block until readiness, timeout, or [`Poller::notify`].
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        self.fallback.wait(events, timeout)
    }

    /// Wake a concurrent [`Poller::wait`] from any thread.
    pub fn notify(&self) -> io::Result<()> {
        self.fallback.notify()
    }
}

#[cfg(not(unix))]
impl Poller {
    /// Unsupported off unix: callers fall back to blocking I/O.
    pub fn new() -> io::Result<Poller> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "readiness polling requires unix",
        ))
    }

    /// Unsupported off unix.
    pub fn add(&self, _fd: i32, _key: usize, _r: bool, _w: bool) -> io::Result<()> {
        unreachable!("no Poller can be constructed off unix")
    }

    /// Unsupported off unix.
    pub fn modify(&self, _fd: i32, _key: usize, _r: bool, _w: bool) -> io::Result<()> {
        unreachable!("no Poller can be constructed off unix")
    }

    /// Unsupported off unix.
    pub fn delete(&self, _fd: i32) -> io::Result<()> {
        unreachable!("no Poller can be constructed off unix")
    }

    /// Unsupported off unix.
    pub fn wait(&self, _events: &mut Vec<Event>, _t: Option<Duration>) -> io::Result<usize> {
        unreachable!("no Poller can be constructed off unix")
    }

    /// Unsupported off unix.
    pub fn notify(&self) -> io::Result<()> {
        unreachable!("no Poller can be constructed off unix")
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::Instant;

    #[test]
    fn reports_readable_when_bytes_arrive() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), 7, true, false).unwrap();

        let mut events = Vec::new();
        // Nothing to read yet: a short wait times out empty.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0, "{events:?}");

        client.write_all(b"ping").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].key, 7);
        assert!(events[0].readable);

        // Level-triggered: still readable until drained.
        events.clear();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(100)))
            .unwrap();
        assert_eq!(n, 1, "undrained fd must keep reporting");
        let mut buf = [0u8; 16];
        let mut srv = &server;
        assert_eq!(srv.read(&mut buf).unwrap(), 4);

        events.clear();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0, "drained fd is quiet");
        poller.delete(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn writable_interest_and_modify() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let _server = listener.accept().unwrap();
        client.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        // Read-only interest on an idle socket: quiet.
        poller.add(client.as_raw_fd(), 3, true, false).unwrap();
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0);
        // Adding write interest: an empty socket buffer is writable now.
        poller.modify(client.as_raw_fd(), 3, true, true).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events[0].writable);
    }

    #[test]
    fn notify_wakes_a_blocked_wait() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let p2 = std::sync::Arc::clone(&poller);
        let waker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            p2.notify().unwrap();
        });
        let mut events = Vec::new();
        let start = Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(30)))
            .unwrap();
        assert_eq!(n, 0, "the wakeup itself is not an event");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "notify must cut the wait short"
        );
        waker.join().unwrap();
    }

    #[test]
    fn closed_peer_reports_readable_for_eof() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), 1, true, false).unwrap();
        drop(client); // peer closes: EOF must surface as readability
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(n >= 1);
        assert!(events.iter().any(|e| e.key == 1 && e.readable));
    }
}
