//! Minimal stand-in for the `criterion` crate.
//!
//! Supports the `criterion_group! { name, config, targets }` /
//! `criterion_main!` layout with benchmark groups, throughput
//! annotations, and wall-clock ns/iter reporting. No statistics beyond
//! a trimmed mean — this exists so `cargo bench` produces usable
//! numbers in an offline build, not to replace criterion's analysis.

#![deny(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1000),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Set the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Set the measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Set the number of samples.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Run one free-standing benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(
            name,
            self.warm_up,
            self.measurement,
            self.sample_size,
            None,
            f,
        );
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// Throughput annotation for a group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_bench(
            &full,
            self.parent.warm_up,
            self.parent.measurement,
            self.parent.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over this sample's iteration count.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Positional command-line arguments act as substring filters, exactly
/// like real criterion: `cargo bench --bench micro -- provider_plan`
/// runs only benchmarks whose full name contains `provider_plan`.
fn filters() -> &'static [String] {
    static FILTERS: std::sync::OnceLock<Vec<String>> = std::sync::OnceLock::new();
    FILTERS.get_or_init(|| {
        std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect()
    })
}

fn run_bench(
    name: &str,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let filters = filters();
    if !filters.is_empty() && !filters.iter().any(|needle| name.contains(needle.as_str())) {
        return;
    }
    // Calibrate: find an iteration count that takes ~1 ms, warming up along
    // the way.
    let mut iters = 1u64;
    let calibrate_until = Instant::now() + warm_up;
    let per_iter;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let sample = b.elapsed.max(Duration::from_nanos(1)) / iters as u32;
        if Instant::now() >= calibrate_until {
            per_iter = sample;
            break;
        }
        let per_iter = sample;
        let target = Duration::from_millis(1);
        let next = (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;
        iters = next.max(1);
    }

    let samples = sample_size.max(1);
    let budget = measurement.as_nanos() / samples as u128;
    let iters = (budget / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;
    let mut results: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        results.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    results.sort_by(|a, b| a.total_cmp(b));
    // Trimmed mean of the middle half.
    let lo = results.len() / 4;
    let hi = (results.len() * 3 / 4).max(lo + 1);
    let mid = &results[lo..hi];
    let ns = mid.iter().sum::<f64>() / mid.len() as f64;

    let rate = throughput.map(|t| match t {
        Throughput::Bytes(b) => format!("  ({:.1} MiB/s)", b as f64 / ns * 1e9 / (1 << 20) as f64),
        Throughput::Elements(e) => format!("  ({:.0} elem/s)", e as f64 / ns * 1e9),
    });
    println!(
        "bench {name:<44} {ns:>12.1} ns/iter{}",
        rate.unwrap_or_default()
    );
}

/// Define a benchmark group entry point.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
