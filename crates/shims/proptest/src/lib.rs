//! Minimal stand-in for the `proptest` crate.
//!
//! Implements the strategy combinators and the `proptest!` macro surface
//! this workspace uses: `any::<T>()`, integer/float range strategies,
//! tuple strategies, `prop_map`, `prop_oneof!`, `collection::vec`,
//! `option::of`, `sample::Index`, and `ProptestConfig::with_cases`.
//!
//! Differences from real proptest, deliberate for an offline build:
//! no shrinking (a failing case panics immediately and prints the case
//! number and seed so it can be replayed), and generation is plain
//! uniform sampling. Set `PROPTEST_SEED` to replay a specific run.

#![deny(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Runner configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// The generation source handed to strategies (splitmix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Deterministic rng for `(test name, case index)`, honouring the
    /// `PROPTEST_SEED` environment variable.
    pub fn for_case(test: &str, case: u64) -> Self {
        let base = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0x00b5_eed0);
        let mut h = base ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        for b in test.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        Self { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)` (`bound` > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator.
pub trait Strategy {
    /// The type generated.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy yielding a constant.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B: Strategy, U, F: Fn(B::Value) -> U> Strategy for Map<B, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy_int {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128)
                    & (u64::MAX as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $ty)
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span =
                    ((end as u128).wrapping_sub(start as u128) & (u64::MAX as u128)) + 1;
                start.wrapping_add((rng.next_u64() as u128 % span) as $ty)
            }
        }
    )*};
}

range_strategy_int!(u8, u16, u32, u64, usize, i64);

macro_rules! range_strategy_float {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                self.start + rng.unit_f64() as $ty * (self.end - self.start)
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                self.start() + rng.unit_f64() as $ty * (self.end() - self.start())
            }
        }
    )*};
}

range_strategy_float!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Weighted-ish union of same-valued strategies (used by `prop_oneof!`).
pub struct OneOf<T> {
    branches: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// Union over `branches` (picked uniformly).
    pub fn new(branches: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(
            !branches.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        Self { branches }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.branches.len() as u64) as usize;
        self.branches[i].generate(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty length range");
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>` (`None` 1/4 of the time).
    pub struct OptionStrategy<S>(S);

    /// `proptest::option::of`.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// Miscellaneous strategy helpers re-exported under `prop::`.
pub mod prop {
    /// Sampling helpers.
    pub mod sample {
        use crate::{Arbitrary, TestRng};

        /// An index into a collection of as-yet-unknown length.
        #[derive(Clone, Copy, Debug)]
        pub struct Index(u64);

        impl Index {
            /// Resolve against a concrete length.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                (self.0 % len as u64) as usize
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut TestRng) -> Self {
                Index(rng.next_u64())
            }
        }
    }
}

/// What users import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Debug-printable wrapper used by the runner's failure message.
pub fn describe_failure(test: &str, case: u64, msg: &dyn fmt::Display) -> String {
    format!("proptest case {case} of `{test}` failed (set PROPTEST_SEED to replay): {msg}")
}

/// Assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform union of strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($branch:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(Box::new($branch) as Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

/// The test-defining macro (no shrinking; prints case number on failure).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( #[test] fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases as u64 {
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        let mut __rng = $crate::TestRng::for_case(stringify!($name), case);
                        $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                        $body
                    }));
                    if let Err(panic) = result {
                        let msg = panic
                            .downcast_ref::<String>()
                            .map(|s| s.as_str())
                            .or_else(|| panic.downcast_ref::<&str>().copied())
                            .unwrap_or("<non-string panic>");
                        panic!("{}", $crate::describe_failure(stringify!($name), case, &msg));
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 0usize..4, z in 1u8..=3) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
            prop_assert!((1..=3).contains(&z));
        }

        #[test]
        fn combinators_compose(
            v in crate::collection::vec(any::<u32>(), 0..5),
            o in crate::option::of(any::<bool>()),
            mapped in (0u64..10).prop_map(|x| x * 2),
            pick in prop_oneof![Just(1u8), Just(2u8)],
        ) {
            prop_assert!(v.len() < 5);
            let _ = o;
            prop_assert_eq!(mapped % 2, 0);
            prop_assert!(pick == 1u8 || pick == 2u8);
            prop_assert_ne!(pick, 0u8);
        }
    }

    #[test]
    fn determinism_per_case() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
