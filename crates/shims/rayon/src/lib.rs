//! Minimal stand-in for the `rayon` crate.
//!
//! Supports the `slice.par_iter().map(f).collect::<Vec<_>>()` shape the
//! workspace uses. Work is executed on scoped OS threads, one contiguous
//! chunk per available core, preserving input order in the collected
//! output — the observable semantics of rayon's indexed parallel
//! iterators for this usage pattern.

#![deny(unsafe_code)]

use std::num::NonZeroUsize;

/// The traits users import.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelIterator};
}

fn worker_count(items: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    cores.min(items).max(1)
}

/// `.par_iter()` on collections borrowing their elements.
pub trait IntoParallelRefIterator<'a> {
    /// Element reference type.
    type Item: Sync + 'a;

    /// Borrow the elements for parallel iteration.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// A borrowed parallel iterator.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

/// Operations on parallel iterators (map → collect).
pub trait ParallelIterator: Sized {
    /// The element type produced.
    type Item;

    /// Apply `f` to every element in parallel.
    fn map<U, F>(self, f: F) -> ParMap<Self, F>
    where
        F: Fn(Self::Item) -> U + Sync,
        U: Send,
    {
        ParMap { base: self, f }
    }

    /// Materialize into a container (only `Vec` is supported).
    fn collect<C: FromParallel<Self::Item>>(self) -> C
    where
        Self::Item: Send,
    {
        C::from_run(self.run())
    }

    /// Execute, returning results in input order.
    fn run(self) -> Vec<Self::Item>
    where
        Self::Item: Send;
}

impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;

    fn run(self) -> Vec<&'a T> {
        self.items.iter().collect()
    }
}

/// A mapped parallel iterator.
pub struct ParMap<B, F> {
    base: B,
    f: F,
}

impl<'a, T, U, F> ParallelIterator for ParMap<ParIter<'a, T>, F>
where
    T: Sync,
    U: Send,
    F: Fn(&'a T) -> U + Sync,
{
    type Item = U;

    fn run(self) -> Vec<U> {
        let items = self.base.items;
        let f = &self.f;
        if items.is_empty() {
            return Vec::new();
        }
        let workers = worker_count(items.len());
        if workers == 1 {
            return items.iter().map(f).collect();
        }
        let chunk = items.len().div_ceil(workers);
        let mut out: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (slots, part) in out.chunks_mut(chunk).zip(items.chunks(chunk)) {
                scope.spawn(move || {
                    for (slot, item) in slots.iter_mut().zip(part) {
                        *slot = Some(f(item));
                    }
                });
            }
        });
        out.into_iter()
            .map(|v| v.expect("worker filled slot"))
            .collect()
    }
}

/// Containers constructible from a parallel run.
pub trait FromParallel<T> {
    /// Build from the ordered results.
    fn from_run(items: Vec<T>) -> Self;
}

impl<T> FromParallel<T> for Vec<T> {
    fn from_run(items: Vec<T>) -> Self {
        items
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
