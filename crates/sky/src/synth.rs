//! Synthetic sky image generation.
//!
//! No real telescope feed is available (DESIGN.md §2), so we synthesize
//! one with the components that matter to a difference-imaging pipeline:
//! a static star field (Gaussian point-spread functions from a
//! deterministic catalog), Gaussian sky background noise per exposure,
//! and injected **transients** (our supernovae) whose brightness follows
//! a rise/decay light curve across epochs. Everything derives from an
//! explicit seed, so detection recall/precision is exactly measurable.

use crate::sky::SkyGeometry;
use blobseer_util::rng::rng_for;
use rand::Rng;
use rayon::prelude::*;

/// A static star in the catalog (tile-local coordinates).
#[derive(Clone, Copy, Debug)]
pub struct Star {
    /// X position within the tile, pixels.
    pub x: f32,
    /// Y position within the tile, pixels.
    pub y: f32,
    /// Peak intensity above background.
    pub peak: f32,
    /// PSF sigma, pixels.
    pub sigma: f32,
}

/// An injected transient event (ground truth for detection scoring).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Transient {
    /// Tile x index.
    pub tx: u32,
    /// Tile y index.
    pub ty: u32,
    /// Position within the tile, pixels.
    pub x: f32,
    /// Position within the tile, pixels.
    pub y: f32,
    /// Epoch at which the transient first brightens.
    pub onset: u32,
    /// Peak intensity above background.
    pub peak: f32,
    /// Epochs from onset to peak.
    pub rise: u32,
    /// Exponential decay scale after the peak, epochs.
    pub decay: f32,
}

impl Transient {
    /// Brightness multiplier at `epoch` (0 before onset, 1 at peak).
    pub fn brightness(&self, epoch: u32) -> f32 {
        if epoch < self.onset {
            return 0.0;
        }
        let t = (epoch - self.onset) as f32;
        let rise = self.rise.max(1) as f32;
        if t <= rise {
            t / rise
        } else {
            (-(t - rise) / self.decay.max(0.5)).exp()
        }
    }
}

/// Synthesis parameters.
#[derive(Clone, Copy, Debug)]
pub struct SynthConfig {
    /// Mean sky background level (ADU).
    pub background: f32,
    /// Per-exposure Gaussian noise sigma (ADU).
    pub noise_sigma: f32,
    /// Stars per tile (Poisson-ish, fixed count for determinism).
    pub stars_per_tile: u32,
    /// Star peak intensity range.
    pub star_peak: (f32, f32),
    /// PSF sigma range, pixels.
    pub psf_sigma: (f32, f32),
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self {
            background: 1000.0,
            noise_sigma: 25.0,
            stars_per_tile: 40,
            star_peak: (500.0, 8000.0),
            psf_sigma: (1.2, 2.4),
        }
    }
}

/// The deterministic model of one simulated sky.
pub struct SkyModel {
    /// Geometry of the survey.
    pub geom: SkyGeometry,
    /// Synthesis parameters.
    pub config: SynthConfig,
    /// World seed.
    pub seed: u64,
    /// Injected transients (ground truth).
    pub transients: Vec<Transient>,
}

impl SkyModel {
    /// Build a model with `n_transients` events injected at deterministic
    /// pseudo-random positions/epochs within `[1, max_epoch)`.
    pub fn new(
        geom: SkyGeometry,
        config: SynthConfig,
        seed: u64,
        n_transients: usize,
        max_epoch: u32,
    ) -> Self {
        let mut rng = rng_for(seed, 0xee);
        let margin = 6.0;
        let span = geom.tile_px as f32 - 2.0 * margin;
        let transients = (0..n_transients)
            .map(|_| Transient {
                tx: rng.gen_range(0..geom.tiles_x),
                ty: rng.gen_range(0..geom.tiles_y),
                x: margin + rng.gen::<f32>() * span,
                y: margin + rng.gen::<f32>() * span,
                onset: rng.gen_range(1..max_epoch.max(2)),
                peak: rng.gen_range(1500.0..6000.0),
                rise: rng.gen_range(1..=2),
                decay: rng.gen_range(2.0..5.0),
            })
            .collect();
        Self {
            geom,
            config,
            seed,
            transients,
        }
    }

    /// The fixed star catalog of one tile (derived from the world seed,
    /// identical across epochs — that is what makes differencing work).
    pub fn catalog(&self, tx: u32, ty: u32) -> Vec<Star> {
        let stream = ((ty as u64) << 32) | tx as u64;
        let mut rng = rng_for(self.seed, stream);
        (0..self.config.stars_per_tile)
            .map(|_| Star {
                x: rng.gen::<f32>() * self.geom.tile_px as f32,
                y: rng.gen::<f32>() * self.geom.tile_px as f32,
                peak: rng.gen_range(self.config.star_peak.0..self.config.star_peak.1),
                sigma: rng.gen_range(self.config.psf_sigma.0..self.config.psf_sigma.1),
            })
            .collect()
    }

    /// Render tile `(tx, ty)` as observed at `epoch`.
    pub fn render_tile(&self, epoch: u32, tx: u32, ty: u32) -> Vec<u16> {
        let n = self.geom.tile_px as usize;
        let mut img = vec![0f32; n * n];

        // Static stars.
        for star in self.catalog(tx, ty) {
            splat_gaussian(&mut img, n, star.x, star.y, star.peak, star.sigma);
        }
        // Transients active this epoch.
        for t in self.transients.iter().filter(|t| t.tx == tx && t.ty == ty) {
            let b = t.brightness(epoch);
            if b > 0.0 {
                splat_gaussian(&mut img, n, t.x, t.y, t.peak * b, 1.8);
            }
        }
        // Background + per-exposure noise (new stream every epoch).
        let stream = 0xbad0_0000u64 ^ ((epoch as u64) << 40) ^ ((ty as u64) << 20) ^ tx as u64;
        let mut rng = rng_for(self.seed, stream);
        img.iter()
            .map(|&v| {
                let noise = gaussian(&mut rng) * self.config.noise_sigma;
                (v + self.config.background + noise).clamp(0.0, 65535.0) as u16
            })
            .collect()
    }

    /// Render a whole epoch (tiles in row-major order), in parallel.
    pub fn render_epoch(&self, epoch: u32) -> Vec<Vec<u16>> {
        let coords: Vec<(u32, u32)> = (0..self.geom.tiles_y)
            .flat_map(|ty| (0..self.geom.tiles_x).map(move |tx| (tx, ty)))
            .collect();
        coords
            .par_iter()
            .map(|&(tx, ty)| self.render_tile(epoch, tx, ty))
            .collect()
    }
}

/// Add a clipped 2-D Gaussian to the image.
fn splat_gaussian(img: &mut [f32], n: usize, cx: f32, cy: f32, peak: f32, sigma: f32) {
    let r = (4.0 * sigma).ceil() as i64;
    let x0 = (cx.floor() as i64 - r).max(0);
    let x1 = (cx.floor() as i64 + r).min(n as i64 - 1);
    let y0 = (cy.floor() as i64 - r).max(0);
    let y1 = (cy.floor() as i64 + r).min(n as i64 - 1);
    let inv2s2 = 1.0 / (2.0 * sigma * sigma);
    for y in y0..=y1 {
        for x in x0..=x1 {
            let dx = x as f32 - cx;
            let dy = y as f32 - cy;
            img[y as usize * n + x as usize] += peak * (-(dx * dx + dy * dy) * inv2s2).exp();
        }
    }
}

/// Standard normal via Box–Muller.
fn gaussian(rng: &mut impl Rng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> SkyModel {
        let geom = SkyGeometry::new(2, 2, 64, 4096);
        SkyModel::new(geom, SynthConfig::default(), 99, 3, 8)
    }

    #[test]
    fn rendering_is_deterministic() {
        let m = model();
        assert_eq!(m.render_tile(2, 0, 0), m.render_tile(2, 0, 0));
        assert_eq!(m.catalog(1, 1).len(), 40);
    }

    #[test]
    fn noise_differs_across_epochs_but_stars_stay() {
        let m = model();
        let a = m.render_tile(0, 0, 0);
        let b = m.render_tile(1, 0, 0);
        assert_ne!(a, b, "per-exposure noise must differ");
        // But the difference should be small everywhere without a
        // transient: bounded by ~8 noise sigmas.
        let has_transient_here = m
            .transients
            .iter()
            .any(|t| t.tx == 0 && t.ty == 0 && t.brightness(1) > 0.05);
        if !has_transient_here {
            let max_diff = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| (x as i32 - y as i32).abs())
                .max()
                .unwrap();
            assert!(max_diff < (8.0 * m.config.noise_sigma) as i32, "{max_diff}");
        }
    }

    #[test]
    fn transient_light_curve_shape() {
        let t = Transient {
            tx: 0,
            ty: 0,
            x: 10.0,
            y: 10.0,
            onset: 3,
            peak: 1000.0,
            rise: 2,
            decay: 3.0,
        };
        assert_eq!(t.brightness(0), 0.0);
        assert_eq!(t.brightness(2), 0.0);
        assert!(t.brightness(4) > 0.0 && t.brightness(4) < 1.0);
        assert!((t.brightness(5) - 1.0).abs() < 1e-6, "peak at onset+rise");
        assert!(t.brightness(6) < 1.0);
        assert!(t.brightness(8) < t.brightness(6), "monotone decay");
    }

    #[test]
    fn transient_brightens_its_tile() {
        let m = model();
        let t = m.transients[0];
        let peak_epoch = t.onset + t.rise;
        let before = m.render_tile(t.onset - 1, t.tx, t.ty);
        let at_peak = m.render_tile(peak_epoch, t.tx, t.ty);
        let n = m.geom.tile_px as usize;
        let idx = (t.y.round() as usize) * n + t.x.round() as usize;
        let delta = at_peak[idx] as f32 - before[idx] as f32;
        assert!(
            delta > 5.0 * m.config.noise_sigma,
            "transient must rise above noise: delta={delta}"
        );
    }

    #[test]
    fn render_epoch_matches_tiles() {
        let m = model();
        let epoch = m.render_epoch(1);
        assert_eq!(epoch.len(), 4);
        assert_eq!(epoch[1], m.render_tile(1, 1, 0), "row-major order");
        assert_eq!(epoch[2], m.render_tile(1, 0, 1));
    }
}
