//! Difference-imaging detection and light-curve classification.
//!
//! The paper's pipeline (§I): "digital images are then compared in an
//! attempt to find variable objects, which might be candidates for
//! supernovae. To confirm ... this requires to analyze the light curve
//! ... of each potential candidate." We implement exactly that:
//!
//! 1. per-tile **difference imaging** of each epoch against a fixed
//!    *reference template* (the epoch-0 exposure — an old blob version,
//!    which is why snapshot reads matter to this application),
//! 2. robust thresholding (median absolute deviation) + connected
//!    components → per-epoch candidates,
//! 3. cross-epoch association by position → **light curves**,
//! 4. a rise-then-decay test → supernova classification.

use crate::sky::SkyGeometry;
use blobseer_util::FxHashMap;

/// A detection in one tile at one epoch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Candidate {
    /// Tile x index.
    pub tx: u32,
    /// Tile y index.
    pub ty: u32,
    /// Flux-weighted centroid x within the tile, pixels.
    pub x: f32,
    /// Flux-weighted centroid y within the tile, pixels.
    pub y: f32,
    /// Epoch (of the *newer* image in the pair).
    pub epoch: u32,
    /// Integrated positive difference flux.
    pub flux: f32,
    /// Peak pixel difference.
    pub peak: f32,
}

/// Detection parameters.
#[derive(Clone, Copy, Debug)]
pub struct DetectConfig {
    /// Threshold in robust sigmas of the difference image.
    pub k_sigma: f32,
    /// Minimum connected pixels above threshold.
    pub min_pixels: usize,
    /// Association radius for light curves, pixels.
    pub match_radius: f32,
    /// Minimum light-curve length to classify.
    pub min_epochs: usize,
}

impl Default for DetectConfig {
    fn default() -> Self {
        Self {
            k_sigma: 5.0,
            min_pixels: 4,
            match_radius: 3.0,
            min_epochs: 3,
        }
    }
}

/// Difference an exposure against the reference template of the same tile
/// and extract candidates. `older` is usually the epoch-0 template.
pub fn detect_tile(
    geom: &SkyGeometry,
    cfg: &DetectConfig,
    tx: u32,
    ty: u32,
    epoch: u32,
    older: &[u16],
    newer: &[u16],
) -> Vec<Candidate> {
    let n = geom.tile_px as usize;
    debug_assert_eq!(older.len(), n * n);
    debug_assert_eq!(newer.len(), n * n);

    // Difference image (new - old): brightening objects are positive.
    let diff: Vec<f32> = newer
        .iter()
        .zip(older)
        .map(|(&a, &b)| a as f32 - b as f32)
        .collect();

    // Robust noise estimate: 1.4826 * MAD.
    let mut abs: Vec<f32> = diff.iter().map(|d| d.abs()).collect();
    let mid = abs.len() / 2;
    abs.select_nth_unstable_by(mid, |a, b| a.partial_cmp(b).unwrap());
    let sigma = (abs[mid] * 1.4826).max(1e-3);
    let threshold = cfg.k_sigma * sigma;

    // Connected components (4-neighbourhood) over above-threshold pixels.
    let mut visited = vec![false; n * n];
    let mut out = Vec::new();
    for start in 0..n * n {
        if visited[start] || diff[start] < threshold {
            continue;
        }
        let mut stack = vec![start];
        visited[start] = true;
        let mut pixels = Vec::new();
        while let Some(p) = stack.pop() {
            pixels.push(p);
            let (px, py) = (p % n, p / n);
            let mut push = |q: usize| {
                if !visited[q] && diff[q] >= threshold {
                    visited[q] = true;
                    stack.push(q);
                }
            };
            if px > 0 {
                push(p - 1);
            }
            if px + 1 < n {
                push(p + 1);
            }
            if py > 0 {
                push(p - n);
            }
            if py + 1 < n {
                push(p + n);
            }
        }
        if pixels.len() < cfg.min_pixels {
            continue;
        }
        let mut flux = 0f32;
        let mut cx = 0f32;
        let mut cy = 0f32;
        let mut peak = 0f32;
        for &p in &pixels {
            let f = diff[p];
            flux += f;
            cx += f * (p % n) as f32;
            cy += f * (p / n) as f32;
            peak = peak.max(f);
        }
        out.push(Candidate {
            tx,
            ty,
            x: cx / flux,
            y: cy / flux,
            epoch,
            flux,
            peak,
        });
    }
    out
}

/// A candidate tracked across epochs.
#[derive(Clone, Debug)]
pub struct LightCurve {
    /// Tile x index.
    pub tx: u32,
    /// Tile y index.
    pub ty: u32,
    /// Mean position, pixels.
    pub x: f32,
    /// Mean position, pixels.
    pub y: f32,
    /// `(epoch, peak_diff_flux)` samples in epoch order.
    pub samples: Vec<(u32, f32)>,
}

impl LightCurve {
    /// Supernova test: enough samples, a clear maximum, rising before it
    /// and decaying after it.
    pub fn is_supernova(&self, cfg: &DetectConfig) -> bool {
        if self.samples.len() < cfg.min_epochs {
            return false;
        }
        let peak_idx = self
            .samples
            .iter()
            .enumerate()
            .max_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        // Non-strict monotonicity with 20% tolerance (noise).
        let rising = self.samples[..=peak_idx]
            .windows(2)
            .all(|w| w[1].1 >= w[0].1 * 0.8);
        let decaying = self.samples[peak_idx..]
            .windows(2)
            .all(|w| w[1].1 <= w[0].1 * 1.2);
        // A single spike (cosmic ray, satellite) has no rise+decay arc.
        let has_arc = peak_idx > 0 || self.samples.len() - peak_idx > 1;
        rising && decaying && has_arc
    }
}

/// Associate per-epoch candidates into light curves by position.
pub fn build_light_curves(cfg: &DetectConfig, candidates: &[Candidate]) -> Vec<LightCurve> {
    // Group by tile first (transients never straddle tiles in our model).
    let mut by_tile: FxHashMap<(u32, u32), Vec<&Candidate>> = FxHashMap::default();
    for c in candidates {
        by_tile.entry((c.tx, c.ty)).or_default().push(c);
    }
    let mut curves = Vec::new();
    for ((tx, ty), mut cands) in by_tile {
        cands.sort_by_key(|c| c.epoch);
        let mut open: Vec<LightCurve> = Vec::new();
        for c in cands {
            match open.iter_mut().find(|lc| {
                let dx = lc.x - c.x;
                let dy = lc.y - c.y;
                (dx * dx + dy * dy).sqrt() <= cfg.match_radius
            }) {
                Some(lc) => {
                    // Running mean position; one sample per epoch (keep the
                    // brighter on duplicates).
                    match lc.samples.iter_mut().find(|(e, _)| *e == c.epoch) {
                        Some(s) => s.1 = s.1.max(c.peak),
                        None => lc.samples.push((c.epoch, c.peak)),
                    }
                    let k = lc.samples.len() as f32;
                    lc.x += (c.x - lc.x) / k;
                    lc.y += (c.y - lc.y) / k;
                }
                None => open.push(LightCurve {
                    tx,
                    ty,
                    x: c.x,
                    y: c.y,
                    samples: vec![(c.epoch, c.peak)],
                }),
            }
        }
        curves.extend(open);
    }
    curves
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sky::SkyGeometry;
    use crate::synth::{SkyModel, SynthConfig, Transient};

    fn geom() -> SkyGeometry {
        SkyGeometry::new(1, 1, 64, 4096)
    }

    fn model_with(transients: Vec<Transient>) -> SkyModel {
        let mut m = SkyModel::new(geom(), SynthConfig::default(), 7, 0, 10);
        m.transients = transients;
        m
    }

    #[test]
    fn quiet_sky_produces_no_candidates() {
        let m = model_with(vec![]);
        let cfg = DetectConfig::default();
        let a = m.render_tile(0, 0, 0);
        let b = m.render_tile(1, 0, 0);
        let cands = detect_tile(&geom(), &cfg, 0, 0, 1, &a, &b);
        assert!(cands.is_empty(), "false positives on pure noise: {cands:?}");
    }

    #[test]
    fn transient_is_detected_near_truth() {
        let t = Transient {
            tx: 0,
            ty: 0,
            x: 30.0,
            y: 20.0,
            onset: 1,
            peak: 4000.0,
            rise: 1,
            decay: 3.0,
        };
        let m = model_with(vec![t]);
        let cfg = DetectConfig::default();
        let before = m.render_tile(0, 0, 0);
        let at_peak = m.render_tile(2, 0, 0);
        let cands = detect_tile(&geom(), &cfg, 0, 0, 2, &before, &at_peak);
        assert_eq!(cands.len(), 1, "{cands:?}");
        let c = cands[0];
        assert!(
            (c.x - 30.0).abs() < 2.0 && (c.y - 20.0).abs() < 2.0,
            "{c:?}"
        );
        assert!(c.peak > 1000.0);
    }

    #[test]
    fn light_curve_classification() {
        let cfg = DetectConfig::default();
        let sn = LightCurve {
            tx: 0,
            ty: 0,
            x: 1.0,
            y: 1.0,
            samples: vec![(1, 500.0), (2, 2000.0), (3, 1200.0), (4, 600.0)],
        };
        assert!(sn.is_supernova(&cfg));
        // A flat repeating variable is not a supernova arc... a strictly
        // periodic source fails the monotone-decay test.
        let variable = LightCurve {
            tx: 0,
            ty: 0,
            x: 1.0,
            y: 1.0,
            samples: vec![(1, 1000.0), (2, 200.0), (3, 1000.0), (4, 200.0)],
        };
        assert!(!variable.is_supernova(&cfg));
        // Too short.
        let short = LightCurve {
            tx: 0,
            ty: 0,
            x: 1.0,
            y: 1.0,
            samples: vec![(1, 1000.0), (2, 500.0)],
        };
        assert!(!short.is_supernova(&cfg));
    }

    #[test]
    fn association_merges_same_position() {
        let cfg = DetectConfig::default();
        let cands = vec![
            Candidate {
                tx: 0,
                ty: 0,
                x: 10.0,
                y: 10.0,
                epoch: 1,
                flux: 10.0,
                peak: 100.0,
            },
            Candidate {
                tx: 0,
                ty: 0,
                x: 10.5,
                y: 9.8,
                epoch: 2,
                flux: 30.0,
                peak: 400.0,
            },
            Candidate {
                tx: 0,
                ty: 0,
                x: 10.2,
                y: 10.1,
                epoch: 3,
                flux: 20.0,
                peak: 200.0,
            },
            // A different object far away.
            Candidate {
                tx: 0,
                ty: 0,
                x: 50.0,
                y: 50.0,
                epoch: 2,
                flux: 15.0,
                peak: 150.0,
            },
        ];
        let curves = build_light_curves(&cfg, &cands);
        assert_eq!(curves.len(), 2);
        let main = curves
            .iter()
            .find(|c| c.samples.len() == 3)
            .expect("3-epoch curve");
        assert!((main.x - 10.2).abs() < 0.5);
        assert!(main.is_supernova(&cfg));
    }

    #[test]
    fn full_detection_cycle_on_synthetic_transient() {
        let t = Transient {
            tx: 0,
            ty: 0,
            x: 40.0,
            y: 40.0,
            onset: 2,
            peak: 4000.0,
            rise: 1,
            decay: 2.5,
        };
        let m = model_with(vec![t]);
        let cfg = DetectConfig::default();
        let mut cands = Vec::new();
        let reference = m.render_tile(0, 0, 0);
        for epoch in 1..8 {
            let cur = m.render_tile(epoch, 0, 0);
            cands.extend(detect_tile(&geom(), &cfg, 0, 0, epoch, &reference, &cur));
        }
        let curves = build_light_curves(&cfg, &cands);
        let sn: Vec<_> = curves.iter().filter(|c| c.is_supernova(&cfg)).collect();
        assert!(
            !sn.is_empty(),
            "the injected transient must classify: {curves:?}"
        );
        let c = sn[0];
        assert!((c.x - 40.0).abs() < 2.5 && (c.y - 40.0).abs() < 2.5);
    }
}
