//! Sky geometry: the 2-D → 1-D mapping of the paper's §I.
//!
//! "Let us consider a very simple abstraction of this problem, in which
//! the view of the sky is a very long string of bytes (blob), obtained by
//! concatenating the images in binary form. Assuming all images have a
//! fixed size, a specific part of the sky is accessible by providing the
//! corresponding offset in the string."
//!
//! Layout: the sky is `tiles_x × tiles_y` tiles of `tile_px × tile_px`
//! 16-bit pixels; one epoch concatenates all tiles row-major; epochs are
//! concatenated in time order. Every tile slot is padded to a multiple of
//! the page size so a tile is always a page-aligned segment — exactly the
//! fine-grain access unit the storage layer optimizes.

use blobseer_proto::Segment;

/// Bytes per pixel (16-bit intensity).
pub const BYTES_PER_PX: u64 = 2;

/// Static shape of the sky survey.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SkyGeometry {
    /// Tiles per row.
    pub tiles_x: u32,
    /// Tiles per column.
    pub tiles_y: u32,
    /// Tile side length in pixels (square tiles).
    pub tile_px: u32,
    /// Storage page size the tile slots are padded to.
    pub page_size: u64,
}

impl SkyGeometry {
    /// Construct and validate.
    pub fn new(tiles_x: u32, tiles_y: u32, tile_px: u32, page_size: u64) -> Self {
        assert!(tiles_x > 0 && tiles_y > 0 && tile_px > 0);
        assert!(page_size.is_power_of_two());
        Self {
            tiles_x,
            tiles_y,
            tile_px,
            page_size,
        }
    }

    /// Number of tiles per epoch.
    pub fn tiles(&self) -> u32 {
        self.tiles_x * self.tiles_y
    }

    /// Pixels per tile.
    pub fn tile_pixels(&self) -> usize {
        (self.tile_px as usize) * (self.tile_px as usize)
    }

    /// Raw (unpadded) bytes of one tile image.
    pub fn tile_bytes(&self) -> u64 {
        self.tile_pixels() as u64 * BYTES_PER_PX
    }

    /// Padded byte size of one tile slot (page multiple).
    pub fn tile_slot(&self) -> u64 {
        self.tile_bytes().div_ceil(self.page_size) * self.page_size
    }

    /// Bytes of one full epoch.
    pub fn epoch_bytes(&self) -> u64 {
        self.tile_slot() * self.tiles() as u64
    }

    /// Blob offset of tile `(tx, ty)` at `epoch`.
    pub fn tile_offset(&self, epoch: u32, tx: u32, ty: u32) -> u64 {
        assert!(tx < self.tiles_x && ty < self.tiles_y);
        let tile_index = (ty as u64) * self.tiles_x as u64 + tx as u64;
        (epoch as u64) * self.epoch_bytes() + tile_index * self.tile_slot()
    }

    /// The segment storing tile `(tx, ty)` at `epoch` (padded slot).
    pub fn tile_segment(&self, epoch: u32, tx: u32, ty: u32) -> Segment {
        Segment::new(self.tile_offset(epoch, tx, ty), self.tile_slot())
    }

    /// Smallest power-of-two blob size holding `epochs` epochs.
    pub fn blob_size(&self, epochs: u32) -> u64 {
        (self.epoch_bytes() * epochs as u64).next_power_of_two()
    }

    /// Convert a tile-local pixel coordinate to sky-global pixels.
    pub fn global_px(&self, tx: u32, ty: u32, x: u32, y: u32) -> (u64, u64) {
        (
            tx as u64 * self.tile_px as u64 + x as u64,
            ty as u64 * self.tile_px as u64 + y as u64,
        )
    }
}

/// Encode a tile image (u16 intensities) into its padded slot bytes.
pub fn encode_tile(geom: &SkyGeometry, pixels: &[u16]) -> Vec<u8> {
    assert_eq!(pixels.len(), geom.tile_pixels());
    let mut out = vec![0u8; geom.tile_slot() as usize];
    for (i, p) in pixels.iter().enumerate() {
        out[2 * i..2 * i + 2].copy_from_slice(&p.to_le_bytes());
    }
    out
}

/// Decode a padded slot back into pixels.
pub fn decode_tile(geom: &SkyGeometry, bytes: &[u8]) -> Vec<u16> {
    assert!(bytes.len() as u64 >= geom.tile_bytes());
    (0..geom.tile_pixels())
        .map(|i| u16::from_le_bytes([bytes[2 * i], bytes[2 * i + 1]]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> SkyGeometry {
        SkyGeometry::new(4, 3, 64, 4096)
    }

    #[test]
    fn sizes_and_padding() {
        let g = geom();
        assert_eq!(g.tiles(), 12);
        assert_eq!(g.tile_bytes(), 64 * 64 * 2);
        assert_eq!(g.tile_slot(), 8192, "8 KiB raw pads to two 4 KiB pages");
        assert_eq!(g.epoch_bytes(), 8192 * 12);
    }

    #[test]
    fn offsets_are_disjoint_and_ordered() {
        let g = geom();
        let mut offs = Vec::new();
        for e in 0..2 {
            for ty in 0..3 {
                for tx in 0..4 {
                    offs.push(g.tile_offset(e, tx, ty));
                }
            }
        }
        for w in offs.windows(2) {
            assert_eq!(w[1] - w[0], g.tile_slot(), "contiguous slots");
        }
        // Page alignment of every slot.
        for o in offs {
            assert_eq!(o % g.page_size, 0);
        }
    }

    #[test]
    fn blob_size_is_power_of_two_and_sufficient() {
        let g = geom();
        let size = g.blob_size(10);
        assert!(size.is_power_of_two());
        assert!(size >= g.epoch_bytes() * 10);
        let last = g.tile_segment(9, 3, 2);
        assert!(last.end() <= size);
    }

    #[test]
    fn tile_codec_roundtrip() {
        let g = geom();
        let pixels: Vec<u16> = (0..g.tile_pixels() as u32)
            .map(|i| (i * 7 % 65521) as u16)
            .collect();
        let bytes = encode_tile(&g, &pixels);
        assert_eq!(bytes.len() as u64, g.tile_slot());
        assert_eq!(decode_tile(&g, &bytes), pixels);
    }

    #[test]
    fn global_pixel_mapping() {
        let g = geom();
        assert_eq!(g.global_px(0, 0, 5, 6), (5, 6));
        assert_eq!(g.global_px(2, 1, 0, 0), (128, 64));
    }

    #[test]
    #[should_panic]
    fn out_of_range_tile_panics() {
        geom().tile_offset(0, 4, 0);
    }
}
