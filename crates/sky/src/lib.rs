//! # blobseer-sky
//!
//! The paper's motivating application (§I): searching for supernovae in a
//! stream of sky images stored as one huge versioned blob.
//!
//! * [`sky`] — the 2-D → 1-D mapping: tiles, epochs, page-aligned slots;
//! * [`synth`] — deterministic synthetic sky: star field, per-exposure
//!   noise, injected transients with rise/decay light curves (the ground
//!   truth);
//! * [`detect`] — reference-template difference imaging, robust
//!   thresholding, connected components, light-curve classification;
//! * [`pipeline`] — telescope writers + detector readers over either the
//!   embedded engine or the simulated cluster, with recall/precision
//!   scoring against the injected ground truth.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod detect;
pub mod pipeline;
pub mod sky;
pub mod synth;

pub use detect::{build_light_curves, detect_tile, Candidate, DetectConfig, LightCurve};
pub use pipeline::{
    score, Detector, LocalBackend, SimBackend, SkyBackend, SurveyReport, Telescope,
};
pub use sky::{decode_tile, encode_tile, SkyGeometry};
pub use synth::{SkyModel, SynthConfig, Transient};
