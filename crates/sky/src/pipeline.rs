//! The end-to-end survey pipeline over the blob store.
//!
//! This is the paper's workload, faithfully: telescope writers append new
//! epochs of the sky as new blob versions **while** detector clients read
//! older versions with fine-grain (one-tile) accesses — the read/write and
//! write/write concurrency story of §I, plus the snapshot semantics the
//! reference-template differencing needs.

use crate::detect::{build_light_curves, detect_tile, Candidate, DetectConfig, LightCurve};
use crate::sky::{decode_tile, encode_tile, SkyGeometry};
use crate::synth::SkyModel;
use blobseer_core::{BlobClient, LocalEngine};
use blobseer_proto::{BlobError, BlobId, Segment, Version};
use blobseer_rpc::Ctx;
use parking_lot::Mutex;
use rayon::prelude::*;
use std::sync::Arc;

/// Storage backend abstraction so the pipeline runs identically over the
/// embedded engine (wall-clock runs) and the simulated cluster
/// (virtual-time benches).
pub trait SkyBackend: Send + Sync {
    /// Page-aligned versioned write; returns the produced version.
    fn write(&self, offset: u64, data: &[u8]) -> Result<Version, BlobError>;

    /// Versioned read (`None` = latest); returns bytes + latest witness.
    fn read(&self, version: Option<Version>, seg: Segment)
        -> Result<(Vec<u8>, Version), BlobError>;

    /// Latest published version.
    fn latest(&self) -> Result<Version, BlobError>;
}

/// Embedded backend.
pub struct LocalBackend {
    engine: Arc<LocalEngine>,
    blob: BlobId,
}

impl LocalBackend {
    /// Allocate a blob sized for `epochs` epochs of `geom`.
    pub fn new(engine: Arc<LocalEngine>, geom: &SkyGeometry, epochs: u32) -> Self {
        let blob = engine
            .alloc(geom.blob_size(epochs), geom.page_size)
            .expect("valid sky geometry");
        Self { engine, blob }
    }
}

impl SkyBackend for LocalBackend {
    fn write(&self, offset: u64, data: &[u8]) -> Result<Version, BlobError> {
        self.engine.write(self.blob, offset, data)
    }

    fn read(
        &self,
        version: Option<Version>,
        seg: Segment,
    ) -> Result<(Vec<u8>, Version), BlobError> {
        self.engine.read(self.blob, version, seg)
    }

    fn latest(&self) -> Result<Version, BlobError> {
        self.engine.latest(self.blob)
    }
}

/// Simulated-cluster backend (one `BlobClient`, its virtual clock guarded
/// by a mutex — each logical actor owns one backend).
pub struct SimBackend {
    client: BlobClient,
    blob: BlobId,
    ctx: Mutex<Ctx>,
}

impl SimBackend {
    /// Wrap an existing client/blob pair.
    pub fn new(client: BlobClient, blob: BlobId) -> Self {
        Self {
            client,
            blob,
            ctx: Mutex::new(Ctx::start()),
        }
    }

    /// Wrap with the actor's clock starting at `vt` (use the cluster's
    /// horizon for actors that are causally after earlier phases).
    pub fn at(client: BlobClient, blob: BlobId, vt: u64) -> Self {
        Self {
            client,
            blob,
            ctx: Mutex::new(Ctx::at(vt)),
        }
    }

    /// The current virtual time of this actor.
    pub fn vt(&self) -> u64 {
        self.ctx.lock().vt
    }
}

impl SkyBackend for SimBackend {
    fn write(&self, offset: u64, data: &[u8]) -> Result<Version, BlobError> {
        let mut ctx = self.ctx.lock();
        self.client.write(&mut ctx, self.blob, offset, data)
    }

    fn read(
        &self,
        version: Option<Version>,
        seg: Segment,
    ) -> Result<(Vec<u8>, Version), BlobError> {
        let mut ctx = self.ctx.lock();
        self.client.read(&mut ctx, self.blob, version, seg)
    }

    fn latest(&self) -> Result<Version, BlobError> {
        let mut ctx = self.ctx.lock();
        self.client.latest(&mut ctx, self.blob)
    }
}

/// A telescope: captures epochs and writes them tile by tile.
pub struct Telescope<'a> {
    /// The sky being observed.
    pub model: &'a SkyModel,
    /// Storage backend.
    pub backend: Arc<dyn SkyBackend>,
}

impl<'a> Telescope<'a> {
    /// Capture and store one epoch; every tile is its own WRITE (this is
    /// what drives write/write concurrency when several telescopes cover
    /// different tile ranges). Returns the last version produced.
    pub fn capture_epoch(&self, epoch: u32) -> Result<Version, BlobError> {
        self.capture_epoch_tiles(epoch, 0, self.model.geom.tiles())
    }

    /// Capture a contiguous tile range `[first, first + count)` of one
    /// epoch (one telescope's share of the sky).
    pub fn capture_epoch_tiles(
        &self,
        epoch: u32,
        first: u32,
        count: u32,
    ) -> Result<Version, BlobError> {
        let geom = &self.model.geom;
        // Render in parallel (rayon), write sequentially per telescope
        // (each write is an independent version).
        let tiles: Vec<(u32, u32)> = (first..first + count)
            .map(|i| (i % geom.tiles_x, i / geom.tiles_x))
            .collect();
        let rendered: Vec<Vec<u16>> = tiles
            .par_iter()
            .map(|&(tx, ty)| self.model.render_tile(epoch, tx, ty))
            .collect();
        let mut last = 0;
        for ((tx, ty), pixels) in tiles.into_iter().zip(rendered) {
            let bytes = encode_tile(geom, &pixels);
            let off = geom.tile_offset(epoch, tx, ty);
            last = self.backend.write(off, &bytes)?;
        }
        Ok(last)
    }
}

/// A detector client: differences tiles of an epoch against the epoch-0
/// reference template, at a *pinned* blob version.
pub struct Detector {
    /// Sky geometry.
    pub geom: SkyGeometry,
    /// Detection parameters.
    pub config: DetectConfig,
    /// Storage backend.
    pub backend: Arc<dyn SkyBackend>,
}

impl Detector {
    /// Scan tiles `[first, first + count)` of `epoch` at blob version `v`
    /// (`None` = latest published).
    pub fn scan_epoch_tiles(
        &self,
        v: Option<Version>,
        epoch: u32,
        first: u32,
        count: u32,
    ) -> Result<Vec<Candidate>, BlobError> {
        let mut out = Vec::new();
        for i in first..first + count {
            let (tx, ty) = (i % self.geom.tiles_x, i / self.geom.tiles_x);
            let ref_seg = self.geom.tile_segment(0, tx, ty);
            let cur_seg = self.geom.tile_segment(epoch, tx, ty);
            let (ref_bytes, _) = self.backend.read(v, ref_seg)?;
            let (cur_bytes, _) = self.backend.read(v, cur_seg)?;
            let reference = decode_tile(&self.geom, &ref_bytes);
            let current = decode_tile(&self.geom, &cur_bytes);
            out.extend(detect_tile(
                &self.geom,
                &self.config,
                tx,
                ty,
                epoch,
                &reference,
                &current,
            ));
        }
        Ok(out)
    }

    /// Scan a whole epoch.
    pub fn scan_epoch(&self, v: Option<Version>, epoch: u32) -> Result<Vec<Candidate>, BlobError> {
        self.scan_epoch_tiles(v, epoch, 0, self.geom.tiles())
    }
}

/// Result of a full survey run.
#[derive(Debug)]
pub struct SurveyReport {
    /// All per-epoch candidates.
    pub candidates: Vec<Candidate>,
    /// Associated light curves.
    pub curves: Vec<LightCurve>,
    /// Curves classified as supernovae.
    pub supernovae: Vec<LightCurve>,
    /// Ground-truth transients that were recovered.
    pub recovered: usize,
    /// Ground-truth transients missed.
    pub missed: usize,
    /// Classified supernovae with no matching injected transient.
    pub false_positives: usize,
}

impl SurveyReport {
    /// Recall against the injected ground truth.
    pub fn recall(&self) -> f64 {
        let total = self.recovered + self.missed;
        if total == 0 {
            1.0
        } else {
            self.recovered as f64 / total as f64
        }
    }
}

/// Score detections against a model's injected transients.
pub fn score(model: &SkyModel, cfg: &DetectConfig, candidates: Vec<Candidate>) -> SurveyReport {
    let curves = build_light_curves(cfg, &candidates);
    let supernovae: Vec<LightCurve> = curves
        .iter()
        .filter(|c| c.is_supernova(cfg))
        .cloned()
        .collect();
    let mut recovered = 0;
    let mut missed = 0;
    for t in &model.transients {
        let hit = supernovae.iter().any(|c| {
            c.tx == t.tx
                && c.ty == t.ty
                && ((c.x - t.x).powi(2) + (c.y - t.y).powi(2)).sqrt() <= 3.0
        });
        if hit {
            recovered += 1;
        } else {
            missed += 1;
        }
    }
    let false_positives = supernovae
        .iter()
        .filter(|c| {
            !model.transients.iter().any(|t| {
                c.tx == t.tx
                    && c.ty == t.ty
                    && ((c.x - t.x).powi(2) + (c.y - t.y).powi(2)).sqrt() <= 3.0
            })
        })
        .count();
    SurveyReport {
        candidates,
        curves,
        supernovae,
        recovered,
        missed,
        false_positives,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthConfig;

    fn small_model(n_transients: usize, epochs: u32) -> SkyModel {
        let geom = SkyGeometry::new(2, 2, 64, 4096);
        SkyModel::new(geom, SynthConfig::default(), 1234, n_transients, epochs)
    }

    #[test]
    fn survey_end_to_end_on_local_engine() {
        // Onsets are confined to the first few epochs so every transient
        // has enough post-peak samples to classify (min_epochs = 3).
        let epochs = 10;
        let model = small_model(3, 4);
        let engine = Arc::new(LocalEngine::new());
        let backend: Arc<dyn SkyBackend> =
            Arc::new(LocalBackend::new(Arc::clone(&engine), &model.geom, epochs));

        let telescope = Telescope {
            model: &model,
            backend: Arc::clone(&backend),
        };
        for e in 0..epochs {
            telescope.capture_epoch(e).unwrap();
        }

        let cfg = DetectConfig::default();
        let detector = Detector {
            geom: model.geom,
            config: cfg,
            backend: Arc::clone(&backend),
        };
        let mut cands = Vec::new();
        for e in 1..epochs {
            cands.extend(detector.scan_epoch(None, e).unwrap());
        }
        let report = score(&model, &cfg, cands);
        assert!(
            report.recall() >= 0.66,
            "recall {} (recovered {}, missed {})",
            report.recall(),
            report.recovered,
            report.missed
        );
        assert_eq!(report.false_positives, 0, "{:?}", report.supernovae);
    }

    #[test]
    fn detectors_run_against_live_writers() {
        // Read/write concurrency: writers append epochs while a detector
        // scans a pinned version — results must be identical to a quiet
        // scan of the same version.
        let epochs = 6;
        let model = Arc::new(small_model(2, epochs - 2));
        let engine = Arc::new(LocalEngine::new());
        let backend: Arc<dyn SkyBackend> = Arc::new(LocalBackend::new(
            Arc::clone(&engine),
            &model.geom,
            epochs + 4,
        ));

        // Seed epochs 0..3 and remember the version.
        let telescope = Telescope {
            model: &model,
            backend: Arc::clone(&backend),
        };
        let mut pinned = 0;
        for e in 0..3 {
            pinned = telescope.capture_epoch(e).unwrap();
        }

        let cfg = DetectConfig::default();
        let quiet = Detector {
            geom: model.geom,
            config: cfg,
            backend: Arc::clone(&backend),
        }
        .scan_epoch(Some(pinned), 2)
        .unwrap();

        // Writer thread appends epochs 3.. while detector rescans.
        let writer = {
            let model = Arc::clone(&model);
            let backend = Arc::clone(&backend);
            std::thread::spawn(move || {
                let t = Telescope {
                    model: &model,
                    backend,
                };
                for e in 3..epochs {
                    t.capture_epoch(e).unwrap();
                }
            })
        };
        let detector = Detector {
            geom: model.geom,
            config: cfg,
            backend: Arc::clone(&backend),
        };
        for _ in 0..5 {
            let live = detector.scan_epoch(Some(pinned), 2).unwrap();
            assert_eq!(
                live.len(),
                quiet.len(),
                "pinned-version scan must be stable"
            );
        }
        writer.join().unwrap();
    }

    #[test]
    fn multi_telescope_partition_covers_sky() {
        let model = small_model(0, 2);
        let engine = Arc::new(LocalEngine::new());
        let backend: Arc<dyn SkyBackend> =
            Arc::new(LocalBackend::new(Arc::clone(&engine), &model.geom, 4));
        let t = Telescope {
            model: &model,
            backend: Arc::clone(&backend),
        };
        // Two telescopes each cover half the tiles of epoch 0.
        t.capture_epoch_tiles(0, 0, 2).unwrap();
        t.capture_epoch_tiles(0, 2, 2).unwrap();
        // Every tile readable and matches a direct render.
        let d = Detector {
            geom: model.geom,
            config: DetectConfig::default(),
            backend: Arc::clone(&backend),
        };
        let _ = d; // detector construction sanity
        for i in 0..4u32 {
            let (tx, ty) = (i % 2, i / 2);
            let seg = model.geom.tile_segment(0, tx, ty);
            let (bytes, _) = backend.read(None, seg).unwrap();
            assert_eq!(
                decode_tile(&model.geom, &bytes),
                model.render_tile(0, tx, ty)
            );
        }
    }
}
