//! The linter's two end-to-end guarantees:
//!
//! 1. **Bin contract** — the `blobseer-lint` binary exits `1` and names
//!    the rule and line on a violating tree, `0` on a sanctioned one.
//! 2. **Self-check** — the real workspace is violation-free, so the CI
//!    `invariant-lint` job is green by construction whenever this test
//!    passes.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

/// The workspace root, two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf();
    assert!(
        root.join("Cargo.toml").exists(),
        "workspace root not found at {root:?}"
    );
    root
}

/// A scratch tree that deletes itself on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("blobseer-lint-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn write(&self, rel: &str, contents: &str) {
        let path = self.0.join(rel);
        fs::create_dir_all(path.parent().expect("rel has a parent")).expect("mkdir");
        fs::write(path, contents).expect("write fixture");
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn lint_bin(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_blobseer-lint"))
        .args(args)
        .output()
        .expect("run blobseer-lint");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.code().unwrap_or(-1), text)
}

#[test]
fn bin_flags_violating_tree_with_rule_and_line() {
    let scratch = Scratch::new("bad");
    scratch.write(
        "crates/dht/src/lib.rs",
        include_str!("fixtures/unmetered_lock_bad.rs"),
    );
    let root = scratch.0.to_string_lossy().into_owned();
    let (code, out) = lint_bin(&["--root", &root, "--rule", "unmetered-lock"]);
    assert_eq!(code, 1, "violating tree must exit 1; output:\n{out}");
    assert!(
        out.contains("crates/dht/src/lib.rs:12: [unmetered-lock]"),
        "diagnostic must name file, line, and rule; output:\n{out}"
    );
}

#[test]
fn bin_accepts_sanctioned_tree() {
    let scratch = Scratch::new("ok");
    scratch.write(
        "crates/dht/src/lib.rs",
        include_str!("fixtures/unmetered_lock_ok.rs"),
    );
    let root = scratch.0.to_string_lossy().into_owned();
    let (code, out) = lint_bin(&["--root", &root]);
    assert_eq!(code, 0, "sanctioned tree must exit 0; output:\n{out}");
}

#[test]
fn bin_lists_rules() {
    let (code, out) = lint_bin(&["--list-rules"]);
    assert_eq!(code, 0);
    for rule in [
        "unmetered-lock",
        "unmetered-copy",
        "undocumented-unsafe",
        "panic-on-serving-path",
        "unguarded-ablation",
        "truncating-cast",
        "bare-allow",
    ] {
        assert!(out.contains(rule), "--list-rules must mention {rule}");
    }
}

#[test]
fn workspace_is_violation_free() {
    let root = workspace_root();
    let violations = blobseer_lint::lint_root(&root, &[], None).expect("walk the workspace");
    assert!(
        violations.is_empty(),
        "the tree must stay lint-clean; found:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
