//! Fixture: allow without a rationale, and an unknown rule.
pub fn head(v: &[u8]) -> u8 {
    // lint: allow(panic-on-serving-path)
    *v.first().unwrap()
}

// lint: allow(not-a-rule) — rationale present but the rule is unknown
pub fn two() -> u8 {
    2
}
