//! Fixture: silent length truncation.
pub fn prefix(len: usize) -> u32 {
    len as u32
}
