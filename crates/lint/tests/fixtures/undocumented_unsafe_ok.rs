//! Fixture: SAFETY-documented unsafe is clean.
pub fn peek(p: *const u8) -> u8 {
    // SAFETY: fixture — caller guarantees `p` is valid for reads.
    unsafe { *p }
}

/// Reads a byte.
///
/// # Safety
///
/// `p` must be valid for reads.
pub unsafe fn peek_raw(p: *const u8) -> u8 {
    // SAFETY: forwarded obligation, see `# Safety` above.
    unsafe { *p }
}
