//! The same conversions, Overload-aware or sanctioned.

pub fn dial(r: Result<(), std::io::Error>) -> Result<(), BlobError> {
    // lint: allow(overload-erasure) — io::Error source, Overload cannot occur
    r.map_err(|_| BlobError::Unreachable("connect failed"))
}

pub fn relay(r: Result<u32, BlobError>) -> Result<u32, BlobError> {
    r.map_err(|e| match e {
        o @ BlobError::Overload { .. } => o,
        _ => BlobError::Unreachable("peer gone"),
    })
}

pub fn named_binding(r: Result<u32, RecvError>) -> Result<u32, BlobError> {
    match r {
        Err(RecvError::Closed) => Err(BlobError::Unreachable("closed")),
        Err(e) => Err(codec(e)),
        Ok(v) => Ok(v),
    }
}
