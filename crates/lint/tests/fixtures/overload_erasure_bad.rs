//! Catch-all conversions that erase a possible `Overload`.

use std::io;

pub fn dial(r: Result<(), io::Error>) -> Result<(), BlobError> {
    r.map_err(|_| BlobError::Unreachable("connect failed"))
}

pub fn relay(r: Result<u32, BlobError>) -> Result<u32, BlobError> {
    match r {
        Ok(v) => Ok(v),
        Err(_) => Err(BlobError::Unreachable("peer gone")),
    }
}

pub fn read_loop(r: Result<Frame, RecvError>) -> BlobError {
    match r {
        Err(RecvError::Io(_)) => BlobError::Unreachable("stream lost"),
        _ => BlobError::Unreachable("unknown failure"),
    }
}
