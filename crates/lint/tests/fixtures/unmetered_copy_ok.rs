//! Fixture: metered, fixed-width, and sanctioned copies are clean.
use blobseer_util::copymeter;

pub fn flatten(segments: &[&[u8]]) -> Vec<u8> {
    let mut out = Vec::new();
    for s in segments {
        copymeter::record_copy(s.len());
        out.extend_from_slice(s);
    }
    out
}

pub fn header(out: &mut Vec<u8>, len: u32) {
    out.extend_from_slice(&len.to_le_bytes());
}

pub fn own(s: &[u8]) -> Vec<u8> {
    // lint: allow(unmetered-copy) — fixture: cold-path snapshot
    s.to_vec()
}
