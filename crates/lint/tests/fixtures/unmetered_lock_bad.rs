//! Fixture: control-plane locks with no meter charge and no sanction.
use parking_lot::{Mutex, RwLock};

pub struct Table {
    map: RwLock<Vec<u32>>,
    gate: Mutex<()>,
}

impl Table {
    pub fn new() -> Self {
        Self {
            map: RwLock::new(Vec::new()),
            gate: Mutex::new(()),
        }
    }

    pub fn snapshot(&self) -> Vec<u32> {
        self.map.read().clone()
    }
}
