//! Fixture: raw ablation toggle outside the RAII guards.
pub fn flip() {
    blobseer_proto::wire::set_zero_copy(false);
}
