//! Fixture: checked or sanctioned narrowing is clean.
pub fn prefix(len: usize) -> Option<u32> {
    u32::try_from(len).ok()
}

pub fn bounded(len: usize) -> u32 {
    // lint: allow(truncating-cast) — fixture: caller bounds len ≤ 1 GiB
    len as u32
}
