//! Fixture: panic on a serving path.
pub fn head(v: &[u8]) -> u8 {
    *v.first().unwrap()
}
