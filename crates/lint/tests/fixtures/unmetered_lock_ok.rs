//! Fixture: metered and sanctioned locks are clean.
use blobseer_util::lockmeter;
use parking_lot::Mutex;

pub fn make() -> Mutex<()> {
    // lint: allow(unmetered-lock) — fixture: initialization-only lock
    Mutex::new(())
}

pub fn charged(m: &Mutex<()>) {
    lockmeter::record_serializing();
    let _g = m.lock();
}
