//! Fixture: guard internals carry sanctions.
pub fn flip_guarded() {
    // lint: allow(unguarded-ablation) — fixture: RAII guard body
    blobseer_proto::wire::set_zero_copy(false);
}
