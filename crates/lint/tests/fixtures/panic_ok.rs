//! Fixture: sanctioned invariant unwrap, and test-code unwrap.
pub fn head(v: &[u8]) -> u8 {
    // lint: allow(panic-on-serving-path) — fixture: caller checks non-empty
    *v.first().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(super::head(&[7u8]), 7u8);
        let v: Option<u8> = Some(1);
        v.unwrap();
    }
}
