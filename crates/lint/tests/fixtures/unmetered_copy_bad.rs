//! Fixture: raw payload copies outside the metered entry points.
pub fn flatten(segments: &[&[u8]]) -> Vec<u8> {
    let mut out = Vec::new();
    for s in segments {
        out.extend_from_slice(s);
    }
    out
}

pub fn own(s: &[u8]) -> Vec<u8> {
    s.to_vec()
}
