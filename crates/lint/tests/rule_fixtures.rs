//! Per-rule fixture pairs: the `_bad` fixture must produce the named
//! violations at the expected lines; the `_ok` twin — the same code
//! metered, documented, or sanctioned — must be clean.
//!
//! Fixtures live under `tests/fixtures/` (excluded from the workspace
//! walk) and are linted through the library entry point under a
//! workspace-relative path chosen to engage the rule's scope.

use blobseer_lint::lint_source;
use blobseer_lint::rules::Violation;

/// Lint `src` as if it lived at `rel_path`, restricted to `rule`.
fn run(rule: &str, rel_path: &str, src: &str) -> Vec<Violation> {
    lint_source(rel_path, src, Some(&[rule.to_string()]))
}

/// Assert the violations hit exactly `rule` at exactly `lines`.
fn assert_hits(found: &[Violation], rule: &str, lines: &[u32]) {
    let got: Vec<u32> = found.iter().map(|v| v.line).collect();
    assert_eq!(got, lines, "expected {rule} at {lines:?}, got: {found:?}");
    assert!(found.iter().all(|v| v.rule == rule));
}

#[test]
fn unmetered_lock_fixture_pair() {
    let bad = run(
        "unmetered-lock",
        "crates/dht/src/lib.rs",
        include_str!("fixtures/unmetered_lock_bad.rs"),
    );
    assert_hits(&bad, "unmetered-lock", &[12, 13, 18]);
    let ok = run(
        "unmetered-lock",
        "crates/dht/src/lib.rs",
        include_str!("fixtures/unmetered_lock_ok.rs"),
    );
    assert!(ok.is_empty(), "sanctioned/metered locks flagged: {ok:?}");
}

#[test]
fn unmetered_lock_scope_is_control_plane_only() {
    // The same source outside the control-plane scope is not checked.
    let out = run(
        "unmetered-lock",
        "crates/bench/src/lib.rs",
        include_str!("fixtures/unmetered_lock_bad.rs"),
    );
    assert!(out.is_empty(), "rule engaged outside its scope: {out:?}");
}

#[test]
fn unmetered_copy_fixture_pair() {
    let bad = run(
        "unmetered-copy",
        "crates/proto/src/wire.rs",
        include_str!("fixtures/unmetered_copy_bad.rs"),
    );
    assert_hits(&bad, "unmetered-copy", &[5, 11]);
    let ok = run(
        "unmetered-copy",
        "crates/proto/src/wire.rs",
        include_str!("fixtures/unmetered_copy_ok.rs"),
    );
    assert!(ok.is_empty(), "metered/sanctioned copies flagged: {ok:?}");
}

#[test]
fn undocumented_unsafe_fixture_pair() {
    let bad = run(
        "undocumented-unsafe",
        "crates/util/src/pagebuf.rs",
        include_str!("fixtures/undocumented_unsafe_bad.rs"),
    );
    assert_hits(&bad, "undocumented-unsafe", &[3]);
    let ok = run(
        "undocumented-unsafe",
        "crates/util/src/pagebuf.rs",
        include_str!("fixtures/undocumented_unsafe_ok.rs"),
    );
    assert!(ok.is_empty(), "documented unsafe flagged: {ok:?}");
}

#[test]
fn panic_on_serving_path_fixture_pair() {
    let bad = run(
        "panic-on-serving-path",
        "crates/rpc/src/server.rs",
        include_str!("fixtures/panic_bad.rs"),
    );
    assert_hits(&bad, "panic-on-serving-path", &[3]);
    let ok = run(
        "panic-on-serving-path",
        "crates/rpc/src/server.rs",
        include_str!("fixtures/panic_ok.rs"),
    );
    assert!(ok.is_empty(), "sanctioned/test unwraps flagged: {ok:?}");
}

#[test]
fn unguarded_ablation_fixture_pair() {
    let bad = run(
        "unguarded-ablation",
        "crates/core/src/deployment.rs",
        include_str!("fixtures/ablation_bad.rs"),
    );
    assert_hits(&bad, "unguarded-ablation", &[3]);
    let ok = run(
        "unguarded-ablation",
        "crates/core/src/deployment.rs",
        include_str!("fixtures/ablation_ok.rs"),
    );
    assert!(ok.is_empty(), "sanctioned toggle flagged: {ok:?}");
    // Benches may flip toggles raw — the ablation *is* the bench.
    let bench = run(
        "unguarded-ablation",
        "crates/bench/src/lib.rs",
        include_str!("fixtures/ablation_bad.rs"),
    );
    assert!(bench.is_empty(), "bench path flagged: {bench:?}");
}

#[test]
fn truncating_cast_fixture_pair() {
    let bad = run(
        "truncating-cast",
        "crates/proto/src/wire.rs",
        include_str!("fixtures/cast_bad.rs"),
    );
    assert_hits(&bad, "truncating-cast", &[3]);
    let ok = run(
        "truncating-cast",
        "crates/proto/src/wire.rs",
        include_str!("fixtures/cast_ok.rs"),
    );
    assert!(ok.is_empty(), "checked/sanctioned casts flagged: {ok:?}");
}

#[test]
fn overload_erasure_fixture_pair() {
    let bad = run(
        "overload-erasure",
        "crates/rpc/src/tcp.rs",
        include_str!("fixtures/overload_erasure_bad.rs"),
    );
    assert_hits(&bad, "overload-erasure", &[6, 12, 18, 19]);
    let ok = run(
        "overload-erasure",
        "crates/rpc/src/tcp.rs",
        include_str!("fixtures/overload_erasure_ok.rs"),
    );
    assert!(
        ok.is_empty(),
        "overload-aware/sanctioned sites flagged: {ok:?}"
    );
    // Outside serving scope (the bench harness fakes whatever it likes).
    let bench = run(
        "overload-erasure",
        "crates/bench/src/lib.rs",
        include_str!("fixtures/overload_erasure_bad.rs"),
    );
    assert!(
        bench.is_empty(),
        "rule engaged outside its scope: {bench:?}"
    );
}

#[test]
fn bare_allow_fixture() {
    let src = include_str!("fixtures/bare_allow_bad.rs");
    let bare = run("bare-allow", "crates/rpc/src/server.rs", src);
    assert_hits(&bare, "bare-allow", &[3, 7]);
    // A rationale-less sanction also fails to suppress its target rule.
    let panics = run("panic-on-serving-path", "crates/rpc/src/server.rs", src);
    assert_hits(&panics, "panic-on-serving-path", &[4]);
}
