//! A small, dependency-free Rust lexer for static invariant checks.
//!
//! The linter does not need a full parser — every rule keys on token
//! shapes (`Ident("unwrap")` preceded by `.` and followed by `(`) plus
//! comment text (`// SAFETY:`, `// lint: allow(...)`). What it *does*
//! need is to never be fooled by lookalikes inside comments, string
//! literals, raw strings, byte strings, or char literals, so the lexer
//! handles all of Rust's literal forms:
//!
//! - line comments (`//`, `///`, `//!`) and **nested** block comments
//! - string / byte-string literals with escapes, spanning lines
//! - raw (byte) strings `r"…"`, `r#"…"#`, `br##"…"##` with any guard depth
//! - char literals vs. lifetimes (`'a'` vs `'a`)
//!
//! Output is a flat token stream with 1-based line numbers plus the
//! comment list (the rules read comments for `SAFETY:` markers and
//! sanctions).

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `unwrap`, `Mutex`, …).
    Ident,
    /// Numeric literal (only the leading run; suffixes lex as idents).
    Number,
    /// Single punctuation character (`.`, `(`, `:`, `!`, …).
    Punct,
    /// Any string-like literal (string, raw string, byte string).
    Str,
    /// Char literal (`'x'`).
    Char,
    /// Lifetime (`'a`) or loop label.
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// One comment (line or block) with the line span it covers.
///
/// `text` is the comment body without the `//` / `/*` introducer; block
/// comment bodies keep their interior newlines.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    pub end_line: u32,
    pub text: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Lex `src` into tokens and comments. Never fails: unterminated
/// literals simply consume to end of file (the compiler, not the
/// linter, is the authority on well-formedness).
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    macro_rules! bump_lines {
        ($slice:expr) => {
            line += $slice.iter().filter(|&&c| c == b'\n').count() as u32
        };
    }

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i + 2;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    line,
                    end_line: line,
                    text: src[start..i].to_string(),
                });
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start_line = line;
                let start = i + 2;
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let end = if i >= 2 { i - 2 } else { i };
                out.comments.push(Comment {
                    line: start_line,
                    end_line: line,
                    text: src[start..end.max(start)].to_string(),
                });
            }
            b'r' | b'b' if is_raw_or_byte_literal(b, i) => {
                // r"…" / r#"…"# / b"…" / br#"…"# / rb is not a thing but
                // br is; consume the whole literal.
                let start_line = line;
                let mut j = i;
                while j < b.len() && (b[j] == b'r' || b[j] == b'b') {
                    j += 1;
                }
                let mut guards = 0usize;
                while j < b.len() && b[j] == b'#' {
                    guards += 1;
                    j += 1;
                }
                debug_assert!(j < b.len() && b[j] == b'"');
                j += 1; // opening quote
                let raw = guards > 0 || b[i] == b'r' || (b[i] == b'b' && b[i + 1] == b'r');
                let body_start = j;
                if raw {
                    // Raw: ends at `"` followed by `guards` hashes; no escapes.
                    'raw: while j < b.len() {
                        if b[j] == b'"' {
                            let mut k = 0;
                            while k < guards && j + 1 + k < b.len() && b[j + 1 + k] == b'#' {
                                k += 1;
                            }
                            if k == guards {
                                break 'raw;
                            }
                        }
                        j += 1;
                    }
                    bump_lines!(&b[body_start..j.min(b.len())]);
                    j = (j + 1 + guards).min(b.len());
                } else {
                    // b"…": escapes apply.
                    while j < b.len() && b[j] != b'"' {
                        if b[j] == b'\\' {
                            j += 1;
                        }
                        j += 1;
                    }
                    bump_lines!(&b[body_start..j.min(b.len())]);
                    j = (j + 1).min(b.len());
                }
                out.tokens.push(Token {
                    kind: TokKind::Str,
                    text: String::new(),
                    line: start_line,
                });
                i = j;
            }
            b'"' => {
                let start_line = line;
                let start = i + 1;
                let mut j = start;
                while j < b.len() && b[j] != b'"' {
                    if b[j] == b'\\' {
                        j += 1;
                    }
                    j += 1;
                }
                bump_lines!(&b[start..j.min(b.len())]);
                out.tokens.push(Token {
                    kind: TokKind::Str,
                    text: String::new(),
                    line: start_line,
                });
                i = (j + 1).min(b.len());
            }
            b'\'' => {
                // Char literal or lifetime. `'\…'` and `'x'` are chars;
                // `'ident` not followed by a closing quote is a lifetime.
                if i + 1 < b.len() && b[i + 1] == b'\\' {
                    let mut j = i + 2;
                    while j < b.len() && b[j] != b'\'' {
                        j += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokKind::Char,
                        text: String::new(),
                        line,
                    });
                    i = (j + 1).min(b.len());
                } else if i + 2 < b.len() && b[i + 2] == b'\'' && b[i + 1] != b'\'' {
                    out.tokens.push(Token {
                        kind: TokKind::Char,
                        text: String::new(),
                        line,
                    });
                    i += 3;
                } else {
                    let start = i + 1;
                    let mut j = start;
                    while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                        j += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokKind::Lifetime,
                        text: src[start..j].to_string(),
                        line,
                    });
                    i = j.max(i + 1);
                }
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                // Numbers may contain `_`, hex digits, `.`, exponents and
                // type suffixes; for lint purposes a coarse munch of
                // [0-9a-zA-Z_.] is fine *except* trailing `..`/method
                // calls: stop a `.` that is not followed by a digit.
                while i < b.len() {
                    let d = b[i];
                    if d == b'.' {
                        if i + 1 < b.len() && b[i + 1].is_ascii_digit() {
                            i += 2;
                            continue;
                        }
                        break;
                    }
                    if d == b'_' || d.is_ascii_alphanumeric() {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: TokKind::Number,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ => {
                out.tokens.push(Token {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Is position `i` the start of a raw string / byte string literal
/// (`r"`, `r#`, `b"`, `br"`, `br#`)? A bare identifier that merely
/// starts with `r`/`b` (e.g. `buf`) is not.
fn is_raw_or_byte_literal(b: &[u8], i: usize) -> bool {
    // Must not be in the middle of an identifier: caller dispatches on
    // the first byte, so check the prefix shape only.
    let rest = &b[i..];
    let shapes: [&[u8]; 4] = [b"r\"", b"b\"", b"br\"", b"rb\""];
    for s in shapes {
        if rest.starts_with(s) {
            // `rb"` is not valid Rust; accept anyway (lexes as junk
            // either way, and being lenient never hides a violation).
            return true;
        }
    }
    // r#"… / br#"… / r#ident (raw identifier) — only a literal if the
    // hashes end in a quote.
    let mut j = 0;
    while j < rest.len() && (rest[j] == b'r' || rest[j] == b'b') && j < 2 {
        j += 1;
    }
    if j == 0 || j >= rest.len() || rest[j] != b'#' {
        return false;
    }
    while j < rest.len() && rest[j] == b'#' {
        j += 1;
    }
    j < rest.len() && rest[j] == b'"'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_tokens() {
        let src = r##"
// unsafe in a comment
/* unwrap() in a block /* nested unsafe */ still comment */
let s = "unsafe { unwrap() }";
let r = r#"Mutex::new"#;
let b = b"panic!";
let c = 'u';
fn real_unsafe() {}
"##;
        let ids = idents(src);
        assert!(ids.contains(&"real_unsafe".to_string()));
        assert!(!ids.contains(&"unsafe".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"Mutex".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
    }

    #[test]
    fn lines_survive_multiline_literals() {
        let src = "let a = \"one\ntwo\";\nunsafe {}\n";
        let lexed = lex(src);
        let uns = lexed
            .tokens
            .iter()
            .find(|t| t.text == "unsafe")
            .expect("unsafe token");
        assert_eq!(uns.line, 3);
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
        assert!(lexed.tokens.iter().any(|t| t.kind == TokKind::Char));
    }

    #[test]
    fn raw_guards_of_any_depth() {
        let src = "let x = r##\"quote \"# inside\"##; unsafe_marker();";
        assert!(idents(src).contains(&"unsafe_marker".to_string()));
        assert!(!idents(src).contains(&"inside".to_string()));
    }

    #[test]
    fn comment_text_is_captured() {
        let lexed = lex("// SAFETY: fine\nlet x = 1; // trailing\n");
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("SAFETY:"));
        assert_eq!(lexed.comments[1].line, 2);
    }
}
