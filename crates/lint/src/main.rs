//! CLI for `blobseer-lint`. See the crate docs for usage; CI runs
//! `cargo run -p blobseer-lint -- --workspace` as the `invariant-lint`
//! job and hard-fails the PR on any unsanctioned violation.

#![deny(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: blobseer-lint [--workspace | --root DIR] [--rule RULE]... [PATHS...]\n\
         \n\
         --workspace   lint every .rs file under the enclosing cargo workspace\n\
         --root DIR    treat DIR as the workspace root (rule scoping is\n\
         \x20             computed from paths relative to it)\n\
         --rule RULE   run only this rule (repeatable)\n\
         --list-rules  print the rule catalog and exit\n\
         \n\
         exit status: 0 clean, 1 violations, 2 usage/IO error"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut workspace = false;
    let mut only: Vec<String> = Vec::new();
    let mut paths: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workspace" => workspace = true,
            "--root" => match args.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => usage(),
            },
            "--rule" => match args.next() {
                Some(r) => {
                    if !blobseer_lint::rules::known_rule(&r) {
                        eprintln!("blobseer-lint: unknown rule `{r}` (see --list-rules)");
                        return ExitCode::from(2);
                    }
                    only.push(r);
                }
                None => usage(),
            },
            "--list-rules" => {
                for (id, summary) in blobseer_lint::rules::RULES {
                    println!("{id:24} {summary}");
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => usage(),
            _ if a.starts_with('-') => usage(),
            _ => paths.push(PathBuf::from(a)),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            if !workspace && paths.is_empty() {
                usage();
            }
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("blobseer-lint: cannot determine cwd: {e}");
                    return ExitCode::from(2);
                }
            };
            match blobseer_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "blobseer-lint: no [workspace] Cargo.toml above {}",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let only = if only.is_empty() {
        None
    } else {
        Some(only.as_slice())
    };
    let violations = match blobseer_lint::lint_root(&root, &paths, only) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("blobseer-lint: {e}");
            return ExitCode::from(2);
        }
    };

    for v in &violations {
        println!("{v}");
    }
    if violations.is_empty() {
        println!("blobseer-lint: clean");
        ExitCode::SUCCESS
    } else {
        println!(
            "blobseer-lint: {} violation(s); sanction deliberate ones with \
             `// lint: allow(<rule>) — <rationale>` on the preceding line",
            violations.len()
        );
        ExitCode::FAILURE
    }
}
