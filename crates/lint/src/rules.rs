//! The rule catalog: each rule encodes one written invariant from
//! `ROADMAP.md` as a token-shape check over [`FileCtx`].
//!
//! Every rule supports the sanction mechanism: a violation is silenced
//! by `// lint: allow(<rule>) — <rationale>` on the preceding line (or
//! trailing on the same line). The rationale is mandatory — a bare
//! `allow` is itself a violation (`bare-allow`), because an allow
//! without a reason is exactly the undocumented exception this linter
//! exists to prevent.
//!
//! # Rules
//!
//! ## `unmetered-lock`
//! Control-plane crates (`dht`, `meta`, `version`, the provider
//! manager, `core`) may only construct or acquire a `Mutex`/`RwLock`
//! next to a `lockmeter` charge, so the "locks are measured, not
//! asserted" invariant holds on *every* path, not just the benched
//! ones.
//!
//! ```text
//! // BAD: an unmetered serialization point
//! let g = self.table.write();
//!
//! // GOOD: charged under its class
//! lockmeter::record_serializing();
//! let g = self.table.write();
//! ```
//!
//! ## `unmetered-copy`
//! Data-path crates (`proto`, `rpc`, `provider`, `meta`, `pagebuf`,
//! `recordlog`) may not copy payload bytes outside the metered entry
//! points (`PageBuf::copy_from_slice`, `assemble_read_into`,
//! `ByteChain::to_vec`). Fixed-width header fields
//! (`…to_le_bytes()` on the same line) are recognized as non-payload.
//!
//! ```text
//! // BAD: a silent payload copy on a cold branch
//! out.extend_from_slice(payload);
//!
//! // GOOD: metered…
//! copymeter::record_copy(payload.len());
//! out.extend_from_slice(payload);
//! // …or sanctioned with a reason
//! // lint: allow(unmetered-copy) — envelope header bytes, not payload
//! out.extend_from_slice(&head);
//! ```
//!
//! ## `undocumented-unsafe`
//! Every `unsafe` keyword (block, fn, impl, trait) anywhere in the
//! workspace — shims included — must carry a `// SAFETY:` comment
//! ending within three lines above it (attributes may intervene).
//!
//! ## `panic-on-serving-path`
//! `unwrap` / `expect` / `panic!` / `unreachable!` / `todo!` /
//! `unimplemented!` are banned in non-test server code: serving paths
//! return the typed `BlobError` taxonomy, they do not abort. Test
//! modules (`#[cfg(test)]`), `tests/`, benches and examples are out of
//! scope.
//!
//! ## `unguarded-ablation`
//! The process-global ablation switches (`set_zero_copy`,
//! `set_serialized_control_plane`, `set_gather_write`) may only be
//! flipped by benches or through the `testsync` RAII guards
//! (`wire::zero_copy_ablation`, `lockmeter::serialized_ablation`) —
//! a raw call in a test races every meter-asserting test in the
//! process.
//!
//! ## `truncating-cast`
//! `as u16` / `as u32` / `as usize` applied to a length/offset-named
//! value in `proto`, `rpc`, or `recordlog` silently wraps — the exact
//! bug class PR 3 fixed by hand in `Frame::encode`. Externally
//! influenced lengths must use checked `try_into` with a typed error;
//! genuinely bounded casts carry a sanction saying *why* they are
//! bounded.
//!
//! ## `overload-erasure`
//! Serving and conversion code may not construct
//! `BlobError::Unreachable` behind a catch-all — a wildcard match arm
//! (`_ =>`, `Err(_) =>`) or an error-discarding closure
//! (`map_err(|_| …)`). Such a conversion silently demotes
//! `Overload { retry_after_hint }` to a connectivity error, erasing
//! the backpressure signal clients back off on (and `Unreachable` is
//! retried *immediately* on idempotent paths — the opposite of what an
//! overloaded server needs). Match the source error explicitly so
//! `Overload` passes through; a conversion whose source type genuinely
//! cannot carry `Overload` (an `io::Error`, a codec error) is
//! sanctioned with that reason.
//!
//! A catch-all whose statement *also* names `Overload` is not flagged —
//! an explicit `Overload` arm above the wildcard is exactly the fix.
//!
//! ```text
//! // BAD: the storm's typed sheds vanish into "peer dead"
//! resp.map_err(|_| BlobError::Unreachable("provider gone"))?;
//!
//! // GOOD: overload survives to the retry policy…
//! resp.map_err(|e| match e {
//!     o @ BlobError::Overload { .. } => o,
//!     _ => BlobError::Unreachable("provider gone"),
//! })?;
//! // …or the conversion provably cannot see one
//! // lint: allow(overload-erasure) — io::Error source, Overload cannot occur
//! stream.map_err(|_| BlobError::Unreachable("tcp connect failed"))?;
//! ```
//!
//! ## `bare-allow`
//! A sanction that does not parse, names an unknown rule, or omits the
//! rationale.

use crate::context::FileCtx;
use crate::lexer::{TokKind, Token};

/// One diagnostic: `path:line: [rule] message`.
#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: &'static str,
    pub rel_path: String,
    pub line: u32,
    pub msg: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.rel_path, self.line, self.rule, self.msg
        )
    }
}

pub const UNMETERED_LOCK: &str = "unmetered-lock";
pub const UNMETERED_COPY: &str = "unmetered-copy";
pub const UNDOCUMENTED_UNSAFE: &str = "undocumented-unsafe";
pub const PANIC_ON_SERVING_PATH: &str = "panic-on-serving-path";
pub const UNGUARDED_ABLATION: &str = "unguarded-ablation";
pub const TRUNCATING_CAST: &str = "truncating-cast";
pub const OVERLOAD_ERASURE: &str = "overload-erasure";
pub const BARE_ALLOW: &str = "bare-allow";

/// Every rule id this linter knows, with a one-line summary.
pub const RULES: &[(&str, &str)] = &[
    (
        UNMETERED_LOCK,
        "Mutex/RwLock construction or acquisition in control-plane code without an adjacent lockmeter charge",
    ),
    (
        UNMETERED_COPY,
        "payload copy primitive in data-path code outside the metered entry points",
    ),
    (
        UNDOCUMENTED_UNSAFE,
        "`unsafe` without a preceding `// SAFETY:` comment",
    ),
    (
        PANIC_ON_SERVING_PATH,
        "unwrap/expect/panic!/unreachable! in non-test server code (use the BlobError taxonomy)",
    ),
    (
        UNGUARDED_ABLATION,
        "ablation switch flipped outside benches or the testsync RAII guards",
    ),
    (
        TRUNCATING_CAST,
        "`as u16/u32/usize` on a length/offset-named value (use checked try_into)",
    ),
    (
        OVERLOAD_ERASURE,
        "Unreachable constructed behind a catch-all arm/closure, erasing a possible Overload",
    ),
    (
        BARE_ALLOW,
        "sanction comment without a rationale, or naming an unknown rule",
    ),
];

/// Is `id` a known rule?
pub fn known_rule(id: &str) -> bool {
    RULES.iter().any(|(r, _)| *r == id)
}

// ---------------------------------------------------------------------------
// Path scoping
// ---------------------------------------------------------------------------

/// Control plane: the crates whose locks the ROADMAP's lock-discipline
/// section governs (dht, meta, version, the provider *manager*, and the
/// client/deployment layer in core).
const CONTROL_PLANE: &[&str] = &[
    "crates/dht/src/",
    "crates/meta/src/",
    "crates/version/src/",
    "crates/provider/src/manager.rs",
    "crates/core/src/",
];

/// Data path: everywhere payload bytes move.
const DATA_PATH: &[&str] = &[
    "crates/proto/src/",
    "crates/rpc/src/",
    "crates/provider/src/",
    "crates/meta/src/",
    "crates/util/src/pagebuf.rs",
    "crates/util/src/recordlog.rs",
];

/// Server code for the panic rule: library sources of every
/// product crate (tests/, benches/, examples/, shims and the bench
/// harness are out of scope).
const SERVING: &[&str] = &[
    "crates/proto/src/",
    "crates/rpc/src/",
    "crates/dht/src/",
    "crates/meta/src/",
    "crates/version/src/",
    "crates/provider/src/",
    "crates/core/src/",
    "crates/util/src/",
];

/// Length-prefix country: where a silent wrap corrupts wire or log state.
const CAST_SCOPE: &[&str] = &[
    "crates/proto/src/",
    "crates/rpc/src/",
    "crates/util/src/recordlog.rs",
];

fn in_scope(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p))
}

fn is_bench_path(path: &str) -> bool {
    path.starts_with("crates/bench/") || path.contains("/benches/")
}

// ---------------------------------------------------------------------------
// The engine entry point
// ---------------------------------------------------------------------------

/// Run every rule (or the `only` subset) against one file.
pub fn check_file(ctx: &FileCtx, only: Option<&[String]>, out: &mut Vec<Violation>) {
    let enabled = |rule: &str| only.is_none_or(|list| list.iter().any(|r| r == rule));
    if enabled(UNMETERED_LOCK) && in_scope(&ctx.rel_path, CONTROL_PLANE) {
        unmetered_lock(ctx, out);
    }
    if enabled(UNMETERED_COPY) && in_scope(&ctx.rel_path, DATA_PATH) {
        unmetered_copy(ctx, out);
    }
    if enabled(UNDOCUMENTED_UNSAFE) {
        undocumented_unsafe(ctx, out);
    }
    if enabled(PANIC_ON_SERVING_PATH) && in_scope(&ctx.rel_path, SERVING) {
        panic_on_serving_path(ctx, out);
    }
    if enabled(UNGUARDED_ABLATION) && !is_bench_path(&ctx.rel_path) {
        unguarded_ablation(ctx, out);
    }
    if enabled(TRUNCATING_CAST) && in_scope(&ctx.rel_path, CAST_SCOPE) {
        truncating_cast(ctx, out);
    }
    if enabled(OVERLOAD_ERASURE) && in_scope(&ctx.rel_path, SERVING) {
        overload_erasure(ctx, out);
    }
    if enabled(BARE_ALLOW) {
        bare_allow(ctx, out);
    }
}

// ---------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------

fn text(tokens: &[Token], i: isize) -> &str {
    if i < 0 {
        return "";
    }
    tokens
        .get(i as usize)
        .map(|t| t.text.as_str())
        .unwrap_or("")
}

fn is_ident(tokens: &[Token], i: isize) -> bool {
    i >= 0
        && tokens
            .get(i as usize)
            .is_some_and(|t| t.kind == TokKind::Ident)
}

/// Is token `i` an identifier immediately followed by `(` — i.e. a call
/// or call-shaped definition?
fn is_call(tokens: &[Token], i: usize) -> bool {
    tokens[i].kind == TokKind::Ident && text(tokens, i as isize + 1) == "("
}

/// Scan backwards from `close` (a `)` or `]`) to its matching opener.
/// Returns the opener's index.
fn matching_open(tokens: &[Token], close: usize, open_ch: &str, close_ch: &str) -> Option<usize> {
    let mut depth = 0i64;
    let mut i = close as isize;
    while i >= 0 {
        let t = &tokens[i as usize];
        if t.kind == TokKind::Punct {
            if t.text == close_ch {
                depth += 1;
            } else if t.text == open_ch {
                depth -= 1;
                if depth == 0 {
                    return Some(i as usize);
                }
            }
        }
        i -= 1;
    }
    None
}

// ---------------------------------------------------------------------------
// unmetered-lock
// ---------------------------------------------------------------------------

/// Identifiers whose presence within the preceding lines marks the
/// acquisition as charged.
const LOCK_METERS: &[&str] = &[
    "lockmeter",
    "record_serializing",
    "record_version_assign",
    "record_sharded",
    "record_shared",
];

/// How many lines above an acquisition a charge may sit.
const LOCK_METER_WINDOW: u32 = 6;

fn unmetered_lock(ctx: &FileCtx, out: &mut Vec<Violation>) {
    let toks = &ctx.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || ctx.in_test(t.line) {
            continue;
        }
        let flagged = match t.text.as_str() {
            // Construction: `Mutex::new(` / `RwLock::new(`.
            "Mutex" | "RwLock" => {
                text(toks, i as isize + 1) == ":"
                    && text(toks, i as isize + 2) == ":"
                    && text(toks, i as isize + 3) == "new"
                    && text(toks, i as isize + 4) == "("
            }
            // Acquisition: zero-argument `.lock()` / `.read()` /
            // `.write()` and the try_ variants. The zero-argument shape
            // is what distinguishes a lock acquisition from
            // `io::Read::read(&mut buf)`.
            "lock" | "read" | "write" | "try_lock" | "try_read" | "try_write" => {
                text(toks, i as isize - 1) == "."
                    && text(toks, i as isize + 1) == "("
                    && text(toks, i as isize + 2) == ")"
            }
            _ => false,
        };
        if !flagged
            || ctx.sanctioned(UNMETERED_LOCK, t.line)
            || ctx.nearby_ident(t.line, LOCK_METER_WINDOW, 0, LOCK_METERS)
        {
            continue;
        }
        out.push(Violation {
            rule: UNMETERED_LOCK,
            rel_path: ctx.rel_path.clone(),
            line: t.line,
            msg: format!(
                "`{}` in control-plane code with no lockmeter charge within {} lines; \
                 charge its LockClass or sanction with a rationale",
                t.text, LOCK_METER_WINDOW
            ),
        });
    }
}

// ---------------------------------------------------------------------------
// unmetered-copy
// ---------------------------------------------------------------------------

const COPY_METERS: &[&str] = &["copymeter", "record_copy"];
const COPY_METER_WINDOW: u32 = 4;

/// Fixed-width integer codecs: a copy whose line converts through
/// `to_le_bytes` et al. moves a header field, not payload.
const FIXED_WIDTH: &[&str] = &[
    "to_le_bytes",
    "to_be_bytes",
    "to_ne_bytes",
    "from_le_bytes",
    "from_be_bytes",
];

fn unmetered_copy(ctx: &FileCtx, out: &mut Vec<Violation>) {
    let toks = &ctx.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || ctx.in_test(t.line) || !is_call(toks, i) {
            continue;
        }
        let prev = text(toks, i as isize - 1);
        let flagged = match t.text.as_str() {
            // Skip definitions (`fn copy_from_slice`) — the metered
            // entry points *are* the definitions.
            _ if prev == "fn" => false,
            "copy_from_slice" | "extend_from_slice" => {
                // `PageBuf::copy_from_slice` is the metered entry point.
                !(prev == ":" && text(toks, i as isize - 3) == "PageBuf")
            }
            "to_vec" => prev == ".",
            "from" => prev == ":" && text(toks, i as isize - 3) == "Vec",
            _ => false,
        };
        if !flagged
            || ctx.sanctioned(UNMETERED_COPY, t.line)
            || ctx.nearby_ident(t.line, COPY_METER_WINDOW, COPY_METER_WINDOW, COPY_METERS)
            || FIXED_WIDTH.iter().any(|f| ctx.line_has_ident(t.line, f))
        {
            continue;
        }
        out.push(Violation {
            rule: UNMETERED_COPY,
            rel_path: ctx.rel_path.clone(),
            line: t.line,
            msg: format!(
                "`{}` in data-path code outside the metered entry points; route payload \
                 bytes through PageBuf/copymeter or sanction with a rationale",
                t.text
            ),
        });
    }
}

// ---------------------------------------------------------------------------
// undocumented-unsafe
// ---------------------------------------------------------------------------

/// How many lines above the `unsafe` keyword the `SAFETY:` comment may
/// end (attributes and the fn signature may intervene).
const SAFETY_WINDOW: u32 = 3;

fn undocumented_unsafe(ctx: &FileCtx, out: &mut Vec<Violation>) {
    for t in &ctx.tokens {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        // `// SAFETY:` justifies an unsafe *use*; a rustdoc `# Safety`
        // section states an unsafe fn's *obligations* — either marker
        // in the comment block above satisfies the rule.
        if ctx.comment_above(t.line, SAFETY_WINDOW, &["SAFETY:", "# Safety"])
            || ctx.sanctioned(UNDOCUMENTED_UNSAFE, t.line)
        {
            continue;
        }
        out.push(Violation {
            rule: UNDOCUMENTED_UNSAFE,
            rel_path: ctx.rel_path.clone(),
            line: t.line,
            msg: "`unsafe` without a `// SAFETY:` comment (or rustdoc `# Safety` section) \
                  ending within 3 lines above"
                .into(),
        });
    }
}

// ---------------------------------------------------------------------------
// panic-on-serving-path
// ---------------------------------------------------------------------------

fn panic_on_serving_path(ctx: &FileCtx, out: &mut Vec<Violation>) {
    let toks = &ctx.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || ctx.in_test(t.line) {
            continue;
        }
        let flagged = match t.text.as_str() {
            "unwrap" | "expect" => {
                text(toks, i as isize - 1) == "." && text(toks, i as isize + 1) == "("
            }
            "panic" | "unreachable" | "todo" | "unimplemented" => {
                text(toks, i as isize + 1) == "!"
                    // `core::panic!` style paths still flag; a `panic`
                    // *module* path (`std::panic::catch_unwind`) does not.
                    && text(toks, i as isize - 1) != "#"
            }
            _ => false,
        };
        if !flagged || ctx.sanctioned(PANIC_ON_SERVING_PATH, t.line) {
            continue;
        }
        out.push(Violation {
            rule: PANIC_ON_SERVING_PATH,
            rel_path: ctx.rel_path.clone(),
            line: t.line,
            msg: format!(
                "`{}` on a serving path; return a typed BlobError (or sanction with a \
                 rationale for provable unreachability)",
                t.text
            ),
        });
    }
}

// ---------------------------------------------------------------------------
// unguarded-ablation
// ---------------------------------------------------------------------------

const ABLATION_SETTERS: &[&str] = &[
    "set_zero_copy",
    "set_serialized_control_plane",
    "set_gather_write",
];

fn unguarded_ablation(ctx: &FileCtx, out: &mut Vec<Violation>) {
    let toks = &ctx.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !ABLATION_SETTERS.contains(&t.text.as_str()) {
            continue;
        }
        // A call, not the definition and not a `use` path mention.
        if !is_call(toks, i) || text(toks, i as isize - 1) == "fn" {
            continue;
        }
        if ctx.sanctioned(UNGUARDED_ABLATION, t.line) {
            continue;
        }
        out.push(Violation {
            rule: UNGUARDED_ABLATION,
            rel_path: ctx.rel_path.clone(),
            line: t.line,
            msg: format!(
                "raw `{}` call outside benches; use the testsync RAII guards \
                 (wire::zero_copy_ablation / lockmeter::serialized_ablation) so the \
                 previous value is restored and meter-asserting tests are excluded",
                t.text
            ),
        });
    }
}

// ---------------------------------------------------------------------------
// truncating-cast
// ---------------------------------------------------------------------------

/// Name fragments that mark a value as a length/offset/size.
const LENGTHY: &[&str] = &[
    "len", "size", "off", "pos", "count", "bytes", "cap", "total",
];

fn lengthy(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    LENGTHY.iter().any(|n| lower.contains(n))
}

fn truncating_cast(ctx: &FileCtx, out: &mut Vec<Violation>) {
    let toks = &ctx.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || t.text != "as" || ctx.in_test(t.line) {
            continue;
        }
        let target = text(toks, i as isize + 1);
        if !matches!(target, "u16" | "u32" | "usize") {
            continue;
        }
        let p = i as isize - 1;
        let hit = if is_ident(toks, p) {
            lengthy(text(toks, p))
        } else {
            match text(toks, p) {
                ")" => cast_subject_matches(toks, p as usize, "(", ")"),
                "]" => cast_subject_matches(toks, p as usize, "[", "]"),
                _ => false,
            }
        };
        if !hit || ctx.sanctioned(TRUNCATING_CAST, t.line) {
            continue;
        }
        out.push(Violation {
            rule: TRUNCATING_CAST,
            rel_path: ctx.rel_path.clone(),
            line: t.line,
            msg: format!(
                "`as {target}` on a length/offset-shaped value can silently wrap; use \
                 checked try_into with a typed error, or sanction with the bound that \
                 makes it safe"
            ),
        });
    }
}

/// For `(…) as uN` / `[…] as uN`: if the bracket is a call/index on a
/// named thing (`buf.len() as u32`, `lens[i] as u16`), test that name;
/// for a bare parenthesized expression (`(off + HDR) as usize`), test
/// every identifier inside.
fn cast_subject_matches(toks: &[Token], close: usize, open: &str, close_ch: &str) -> bool {
    let Some(o) = matching_open(toks, close, open, close_ch) else {
        return false;
    };
    if is_ident(toks, o as isize - 1) {
        return lengthy(text(toks, o as isize - 1));
    }
    toks[o..close]
        .iter()
        .any(|t| t.kind == TokKind::Ident && lengthy(&t.text))
}

// ---------------------------------------------------------------------------
// overload-erasure
// ---------------------------------------------------------------------------

/// How many tokens behind an `Unreachable` construction a catch-all
/// introducer may sit (its own match arm's arrow, or the adapter call
/// whose closure builds it — never a whole other statement, hence the
/// `;` boundary in the scan).
const ERASURE_WINDOW: usize = 20;

/// Combinators whose closure rewrites an error value; a discarded
/// binding (`|_|`, `|_e|`) inside one throws the source — Overload
/// included — away.
const ERASING_ADAPTERS: &[&str] = &["map_err", "or_else", "unwrap_or_else", "map_or_else"];

/// Does `w` (the tokens between the statement boundary and the
/// `Unreachable` ident) end in a match arm whose pattern has a
/// wildcard? The *last* arrow in the window is the construction's own
/// arm; a `_` among the few tokens before it (`_ =>`, `Err(_) =>`,
/// `Err(RecvError::Io(_)) =>`) makes that arm a catch-all.
fn wildcard_arm(w: &[Token]) -> bool {
    let arrow = (1..w.len()).rev().find(|&j| {
        w[j].kind == TokKind::Punct
            && w[j].text == ">"
            && w[j - 1].kind == TokKind::Punct
            && w[j - 1].text == "="
    });
    let Some(arrow) = arrow else { return false };
    w[arrow.saturating_sub(9)..arrow - 1]
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text.starts_with('_'))
}

/// Does `w` contain an erasing-adapter call whose closure discards its
/// error (`map_err(|_| …)`, `unwrap_or_else(|_e| …)`)?
fn erasing_closure(w: &[Token]) -> bool {
    (0..w.len().saturating_sub(4)).any(|j| {
        w[j].kind == TokKind::Ident
            && ERASING_ADAPTERS.contains(&w[j].text.as_str())
            && w[j + 1].text == "("
            && w[j + 2].text == "|"
            && w[j + 3].kind == TokKind::Ident
            && w[j + 3].text.starts_with('_')
            && w[j + 4].text == "|"
    })
}

fn overload_erasure(ctx: &FileCtx, out: &mut Vec<Violation>) {
    let toks = &ctx.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || t.text != "Unreachable" || ctx.in_test(t.line) {
            continue;
        }
        // The statement being scanned: back from the construction to the
        // nearest `;` (or the window bound).
        let lo = i.saturating_sub(ERASURE_WINDOW);
        let start = (lo..i)
            .rev()
            .find(|&j| toks[j].kind == TokKind::Punct && toks[j].text == ";")
            .map_or(lo, |j| j + 1);
        let w = &toks[start..i];
        // An explicit `Overload` mention in the same statement means the
        // author routed it before falling through — the sanctioned fix.
        if !(wildcard_arm(w) || erasing_closure(w))
            || w.iter()
                .any(|t| t.kind == TokKind::Ident && t.text == "Overload")
            || ctx.sanctioned(OVERLOAD_ERASURE, t.line)
        {
            continue;
        }
        out.push(Violation {
            rule: OVERLOAD_ERASURE,
            rel_path: ctx.rel_path.clone(),
            line: t.line,
            msg: "`Unreachable` built behind a catch-all arm/closure erases a possible \
                  `Overload { retry_after_hint }`; match the source explicitly so overload \
                  survives to the retry policy, or sanction with why the source cannot \
                  carry Overload"
                .into(),
        });
    }
}

// ---------------------------------------------------------------------------
// bare-allow
// ---------------------------------------------------------------------------

fn bare_allow(ctx: &FileCtx, out: &mut Vec<Violation>) {
    for s in &ctx.sanctions {
        if !s.parsed {
            out.push(Violation {
                rule: BARE_ALLOW,
                rel_path: ctx.rel_path.clone(),
                line: s.line,
                msg: "malformed sanction; expected `lint: allow(<rule>) — <rationale>`".into(),
            });
            continue;
        }
        if !s.has_rationale {
            out.push(Violation {
                rule: BARE_ALLOW,
                rel_path: ctx.rel_path.clone(),
                line: s.line,
                msg: "bare allow: a sanction must state its rationale after the rule list".into(),
            });
        }
        for r in &s.rules {
            if !known_rule(r) {
                out.push(Violation {
                    rule: BARE_ALLOW,
                    rel_path: ctx.rel_path.clone(),
                    line: s.line,
                    msg: format!("sanction names unknown rule `{r}`"),
                });
            }
        }
    }
}
